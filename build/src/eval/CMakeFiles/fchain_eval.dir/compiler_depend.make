# Empty compiler generated dependencies file for fchain_eval.
# This may be replaced when dependencies are built.
