file(REMOVE_RECURSE
  "CMakeFiles/fchain_eval.dir/auc.cpp.o"
  "CMakeFiles/fchain_eval.dir/auc.cpp.o.d"
  "CMakeFiles/fchain_eval.dir/cases.cpp.o"
  "CMakeFiles/fchain_eval.dir/cases.cpp.o.d"
  "CMakeFiles/fchain_eval.dir/exporter.cpp.o"
  "CMakeFiles/fchain_eval.dir/exporter.cpp.o.d"
  "CMakeFiles/fchain_eval.dir/metrics.cpp.o"
  "CMakeFiles/fchain_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/fchain_eval.dir/report.cpp.o"
  "CMakeFiles/fchain_eval.dir/report.cpp.o.d"
  "CMakeFiles/fchain_eval.dir/runner.cpp.o"
  "CMakeFiles/fchain_eval.dir/runner.cpp.o.d"
  "libfchain_eval.a"
  "libfchain_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
