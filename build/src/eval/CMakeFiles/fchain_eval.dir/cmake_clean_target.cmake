file(REMOVE_RECURSE
  "libfchain_eval.a"
)
