# Empty dependencies file for fchain_markov.
# This may be replaced when dependencies are built.
