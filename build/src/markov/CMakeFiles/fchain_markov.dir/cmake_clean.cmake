file(REMOVE_RECURSE
  "CMakeFiles/fchain_markov.dir/discretizer.cpp.o"
  "CMakeFiles/fchain_markov.dir/discretizer.cpp.o.d"
  "CMakeFiles/fchain_markov.dir/markov_model.cpp.o"
  "CMakeFiles/fchain_markov.dir/markov_model.cpp.o.d"
  "CMakeFiles/fchain_markov.dir/predictor.cpp.o"
  "CMakeFiles/fchain_markov.dir/predictor.cpp.o.d"
  "CMakeFiles/fchain_markov.dir/signature.cpp.o"
  "CMakeFiles/fchain_markov.dir/signature.cpp.o.d"
  "libfchain_markov.a"
  "libfchain_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
