file(REMOVE_RECURSE
  "libfchain_markov.a"
)
