
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/discretizer.cpp" "src/markov/CMakeFiles/fchain_markov.dir/discretizer.cpp.o" "gcc" "src/markov/CMakeFiles/fchain_markov.dir/discretizer.cpp.o.d"
  "/root/repo/src/markov/markov_model.cpp" "src/markov/CMakeFiles/fchain_markov.dir/markov_model.cpp.o" "gcc" "src/markov/CMakeFiles/fchain_markov.dir/markov_model.cpp.o.d"
  "/root/repo/src/markov/predictor.cpp" "src/markov/CMakeFiles/fchain_markov.dir/predictor.cpp.o" "gcc" "src/markov/CMakeFiles/fchain_markov.dir/predictor.cpp.o.d"
  "/root/repo/src/markov/signature.cpp" "src/markov/CMakeFiles/fchain_markov.dir/signature.cpp.o" "gcc" "src/markov/CMakeFiles/fchain_markov.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/fchain_signal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
