file(REMOVE_RECURSE
  "libfchain_core.a"
)
