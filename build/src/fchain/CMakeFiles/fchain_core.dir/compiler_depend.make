# Empty compiler generated dependencies file for fchain_core.
# This may be replaced when dependencies are built.
