file(REMOVE_RECURSE
  "CMakeFiles/fchain_core.dir/adaptive.cpp.o"
  "CMakeFiles/fchain_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/fchain_core.dir/change_selector.cpp.o"
  "CMakeFiles/fchain_core.dir/change_selector.cpp.o.d"
  "CMakeFiles/fchain_core.dir/fchain.cpp.o"
  "CMakeFiles/fchain_core.dir/fchain.cpp.o.d"
  "CMakeFiles/fchain_core.dir/fluctuation_model.cpp.o"
  "CMakeFiles/fchain_core.dir/fluctuation_model.cpp.o.d"
  "CMakeFiles/fchain_core.dir/incident.cpp.o"
  "CMakeFiles/fchain_core.dir/incident.cpp.o.d"
  "CMakeFiles/fchain_core.dir/master.cpp.o"
  "CMakeFiles/fchain_core.dir/master.cpp.o.d"
  "CMakeFiles/fchain_core.dir/pinpoint.cpp.o"
  "CMakeFiles/fchain_core.dir/pinpoint.cpp.o.d"
  "CMakeFiles/fchain_core.dir/slave.cpp.o"
  "CMakeFiles/fchain_core.dir/slave.cpp.o.d"
  "CMakeFiles/fchain_core.dir/validation.cpp.o"
  "CMakeFiles/fchain_core.dir/validation.cpp.o.d"
  "libfchain_core.a"
  "libfchain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
