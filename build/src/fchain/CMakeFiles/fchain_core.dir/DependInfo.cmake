
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fchain/adaptive.cpp" "src/fchain/CMakeFiles/fchain_core.dir/adaptive.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/fchain/change_selector.cpp" "src/fchain/CMakeFiles/fchain_core.dir/change_selector.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/change_selector.cpp.o.d"
  "/root/repo/src/fchain/fchain.cpp" "src/fchain/CMakeFiles/fchain_core.dir/fchain.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/fchain.cpp.o.d"
  "/root/repo/src/fchain/fluctuation_model.cpp" "src/fchain/CMakeFiles/fchain_core.dir/fluctuation_model.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/fluctuation_model.cpp.o.d"
  "/root/repo/src/fchain/incident.cpp" "src/fchain/CMakeFiles/fchain_core.dir/incident.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/incident.cpp.o.d"
  "/root/repo/src/fchain/master.cpp" "src/fchain/CMakeFiles/fchain_core.dir/master.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/master.cpp.o.d"
  "/root/repo/src/fchain/pinpoint.cpp" "src/fchain/CMakeFiles/fchain_core.dir/pinpoint.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/pinpoint.cpp.o.d"
  "/root/repo/src/fchain/slave.cpp" "src/fchain/CMakeFiles/fchain_core.dir/slave.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/slave.cpp.o.d"
  "/root/repo/src/fchain/validation.cpp" "src/fchain/CMakeFiles/fchain_core.dir/validation.cpp.o" "gcc" "src/fchain/CMakeFiles/fchain_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/fchain_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/fchain_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fchain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netdep/CMakeFiles/fchain_netdep.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fchain_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fchain_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fchain_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
