file(REMOVE_RECURSE
  "libfchain_sim.a"
)
