# Empty dependencies file for fchain_sim.
# This may be replaced when dependencies are built.
