file(REMOVE_RECURSE
  "CMakeFiles/fchain_sim.dir/application.cpp.o"
  "CMakeFiles/fchain_sim.dir/application.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/apps.cpp.o"
  "CMakeFiles/fchain_sim.dir/apps.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/cloud.cpp.o"
  "CMakeFiles/fchain_sim.dir/cloud.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/component.cpp.o"
  "CMakeFiles/fchain_sim.dir/component.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/injector.cpp.o"
  "CMakeFiles/fchain_sim.dir/injector.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/record_io.cpp.o"
  "CMakeFiles/fchain_sim.dir/record_io.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/simulator.cpp.o"
  "CMakeFiles/fchain_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fchain_sim.dir/slo.cpp.o"
  "CMakeFiles/fchain_sim.dir/slo.cpp.o.d"
  "libfchain_sim.a"
  "libfchain_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
