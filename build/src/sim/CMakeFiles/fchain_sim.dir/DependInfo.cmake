
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/application.cpp" "src/sim/CMakeFiles/fchain_sim.dir/application.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/application.cpp.o.d"
  "/root/repo/src/sim/apps.cpp" "src/sim/CMakeFiles/fchain_sim.dir/apps.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/apps.cpp.o.d"
  "/root/repo/src/sim/cloud.cpp" "src/sim/CMakeFiles/fchain_sim.dir/cloud.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/cloud.cpp.o.d"
  "/root/repo/src/sim/component.cpp" "src/sim/CMakeFiles/fchain_sim.dir/component.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/component.cpp.o.d"
  "/root/repo/src/sim/injector.cpp" "src/sim/CMakeFiles/fchain_sim.dir/injector.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/injector.cpp.o.d"
  "/root/repo/src/sim/record_io.cpp" "src/sim/CMakeFiles/fchain_sim.dir/record_io.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/record_io.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/fchain_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/slo.cpp" "src/sim/CMakeFiles/fchain_sim.dir/slo.cpp.o" "gcc" "src/sim/CMakeFiles/fchain_sim.dir/slo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fchain_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fchain_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
