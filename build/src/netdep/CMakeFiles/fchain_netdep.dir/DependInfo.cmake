
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netdep/cooccurrence.cpp" "src/netdep/CMakeFiles/fchain_netdep.dir/cooccurrence.cpp.o" "gcc" "src/netdep/CMakeFiles/fchain_netdep.dir/cooccurrence.cpp.o.d"
  "/root/repo/src/netdep/dependency.cpp" "src/netdep/CMakeFiles/fchain_netdep.dir/dependency.cpp.o" "gcc" "src/netdep/CMakeFiles/fchain_netdep.dir/dependency.cpp.o.d"
  "/root/repo/src/netdep/orion.cpp" "src/netdep/CMakeFiles/fchain_netdep.dir/orion.cpp.o" "gcc" "src/netdep/CMakeFiles/fchain_netdep.dir/orion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fchain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fchain_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fchain_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
