file(REMOVE_RECURSE
  "CMakeFiles/fchain_netdep.dir/cooccurrence.cpp.o"
  "CMakeFiles/fchain_netdep.dir/cooccurrence.cpp.o.d"
  "CMakeFiles/fchain_netdep.dir/dependency.cpp.o"
  "CMakeFiles/fchain_netdep.dir/dependency.cpp.o.d"
  "CMakeFiles/fchain_netdep.dir/orion.cpp.o"
  "CMakeFiles/fchain_netdep.dir/orion.cpp.o.d"
  "libfchain_netdep.a"
  "libfchain_netdep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_netdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
