# Empty compiler generated dependencies file for fchain_netdep.
# This may be replaced when dependencies are built.
