file(REMOVE_RECURSE
  "libfchain_netdep.a"
)
