file(REMOVE_RECURSE
  "CMakeFiles/fchain_baselines.dir/fchain_scheme.cpp.o"
  "CMakeFiles/fchain_baselines.dir/fchain_scheme.cpp.o.d"
  "CMakeFiles/fchain_baselines.dir/graph_schemes.cpp.o"
  "CMakeFiles/fchain_baselines.dir/graph_schemes.cpp.o.d"
  "CMakeFiles/fchain_baselines.dir/histogram_scheme.cpp.o"
  "CMakeFiles/fchain_baselines.dir/histogram_scheme.cpp.o.d"
  "CMakeFiles/fchain_baselines.dir/netmedic.cpp.o"
  "CMakeFiles/fchain_baselines.dir/netmedic.cpp.o.d"
  "libfchain_baselines.a"
  "libfchain_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
