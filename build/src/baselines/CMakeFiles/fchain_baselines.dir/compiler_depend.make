# Empty compiler generated dependencies file for fchain_baselines.
# This may be replaced when dependencies are built.
