file(REMOVE_RECURSE
  "libfchain_baselines.a"
)
