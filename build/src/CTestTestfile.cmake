# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("signal")
subdirs("markov")
subdirs("trace")
subdirs("faults")
subdirs("sim")
subdirs("netdep")
subdirs("runtime")
subdirs("fchain")
subdirs("baselines")
subdirs("eval")
