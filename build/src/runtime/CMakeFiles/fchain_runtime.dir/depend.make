# Empty dependencies file for fchain_runtime.
# This may be replaced when dependencies are built.
