file(REMOVE_RECURSE
  "libfchain_runtime.a"
)
