file(REMOVE_RECURSE
  "CMakeFiles/fchain_runtime.dir/flaky_endpoint.cpp.o"
  "CMakeFiles/fchain_runtime.dir/flaky_endpoint.cpp.o.d"
  "libfchain_runtime.a"
  "libfchain_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
