file(REMOVE_RECURSE
  "libfchain_faults.a"
)
