file(REMOVE_RECURSE
  "CMakeFiles/fchain_faults.dir/fault.cpp.o"
  "CMakeFiles/fchain_faults.dir/fault.cpp.o.d"
  "libfchain_faults.a"
  "libfchain_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
