# Empty dependencies file for fchain_faults.
# This may be replaced when dependencies are built.
