file(REMOVE_RECURSE
  "libfchain_signal.a"
)
