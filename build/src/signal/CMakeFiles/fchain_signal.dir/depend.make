# Empty dependencies file for fchain_signal.
# This may be replaced when dependencies are built.
