file(REMOVE_RECURSE
  "CMakeFiles/fchain_signal.dir/burst.cpp.o"
  "CMakeFiles/fchain_signal.dir/burst.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/cusum.cpp.o"
  "CMakeFiles/fchain_signal.dir/cusum.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/fft.cpp.o"
  "CMakeFiles/fchain_signal.dir/fft.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/outlier.cpp.o"
  "CMakeFiles/fchain_signal.dir/outlier.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/smoothing.cpp.o"
  "CMakeFiles/fchain_signal.dir/smoothing.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/spectrum.cpp.o"
  "CMakeFiles/fchain_signal.dir/spectrum.cpp.o.d"
  "CMakeFiles/fchain_signal.dir/tangent.cpp.o"
  "CMakeFiles/fchain_signal.dir/tangent.cpp.o.d"
  "libfchain_signal.a"
  "libfchain_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
