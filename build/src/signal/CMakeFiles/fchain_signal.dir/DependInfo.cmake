
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/burst.cpp" "src/signal/CMakeFiles/fchain_signal.dir/burst.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/burst.cpp.o.d"
  "/root/repo/src/signal/cusum.cpp" "src/signal/CMakeFiles/fchain_signal.dir/cusum.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/cusum.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "src/signal/CMakeFiles/fchain_signal.dir/fft.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/fft.cpp.o.d"
  "/root/repo/src/signal/outlier.cpp" "src/signal/CMakeFiles/fchain_signal.dir/outlier.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/outlier.cpp.o.d"
  "/root/repo/src/signal/smoothing.cpp" "src/signal/CMakeFiles/fchain_signal.dir/smoothing.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/smoothing.cpp.o.d"
  "/root/repo/src/signal/spectrum.cpp" "src/signal/CMakeFiles/fchain_signal.dir/spectrum.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/spectrum.cpp.o.d"
  "/root/repo/src/signal/tangent.cpp" "src/signal/CMakeFiles/fchain_signal.dir/tangent.cpp.o" "gcc" "src/signal/CMakeFiles/fchain_signal.dir/tangent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
