# Empty compiler generated dependencies file for fchain_common.
# This may be replaced when dependencies are built.
