file(REMOVE_RECURSE
  "libfchain_common.a"
)
