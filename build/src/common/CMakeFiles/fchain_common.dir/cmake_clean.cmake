file(REMOVE_RECURSE
  "CMakeFiles/fchain_common.dir/stats.cpp.o"
  "CMakeFiles/fchain_common.dir/stats.cpp.o.d"
  "CMakeFiles/fchain_common.dir/time_series.cpp.o"
  "CMakeFiles/fchain_common.dir/time_series.cpp.o.d"
  "CMakeFiles/fchain_common.dir/types.cpp.o"
  "CMakeFiles/fchain_common.dir/types.cpp.o.d"
  "libfchain_common.a"
  "libfchain_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
