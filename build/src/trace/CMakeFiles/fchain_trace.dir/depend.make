# Empty dependencies file for fchain_trace.
# This may be replaced when dependencies are built.
