file(REMOVE_RECURSE
  "libfchain_trace.a"
)
