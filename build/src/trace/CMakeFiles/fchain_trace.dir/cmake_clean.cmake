file(REMOVE_RECURSE
  "CMakeFiles/fchain_trace.dir/workload_trace.cpp.o"
  "CMakeFiles/fchain_trace.dir/workload_trace.cpp.o.d"
  "libfchain_trace.a"
  "libfchain_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
