# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_diagnosis "/root/repo/build/examples/streaming_diagnosis")
set_tests_properties(example_streaming_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_change "/root/repo/build/examples/workload_change")
set_tests_properties(example_workload_change PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_cloud_deployment "/root/repo/build/examples/online_cloud_deployment")
set_tests_properties(example_online_cloud_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect_run "/root/repo/build/examples/inspect_run" "RUBiS/CpuHog" "7")
set_tests_properties(example_inspect_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accuracy_summary "/root/repo/build/examples/accuracy_summary" "2" "7" "RUBiS/CpuHog")
set_tests_properties(example_accuracy_summary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_cases "/root/repo/build/examples/fchain_cli" "cases")
set_tests_properties(example_cli_cases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
