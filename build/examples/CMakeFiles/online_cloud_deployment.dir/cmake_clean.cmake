file(REMOVE_RECURSE
  "CMakeFiles/online_cloud_deployment.dir/online_cloud_deployment.cpp.o"
  "CMakeFiles/online_cloud_deployment.dir/online_cloud_deployment.cpp.o.d"
  "online_cloud_deployment"
  "online_cloud_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_cloud_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
