# Empty dependencies file for online_cloud_deployment.
# This may be replaced when dependencies are built.
