file(REMOVE_RECURSE
  "CMakeFiles/accuracy_summary.dir/accuracy_summary.cpp.o"
  "CMakeFiles/accuracy_summary.dir/accuracy_summary.cpp.o.d"
  "accuracy_summary"
  "accuracy_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
