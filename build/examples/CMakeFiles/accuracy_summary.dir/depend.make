# Empty dependencies file for accuracy_summary.
# This may be replaced when dependencies are built.
