# Empty compiler generated dependencies file for streaming_diagnosis.
# This may be replaced when dependencies are built.
