file(REMOVE_RECURSE
  "CMakeFiles/streaming_diagnosis.dir/streaming_diagnosis.cpp.o"
  "CMakeFiles/streaming_diagnosis.dir/streaming_diagnosis.cpp.o.d"
  "streaming_diagnosis"
  "streaming_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
