file(REMOVE_RECURSE
  "CMakeFiles/fchain_cli.dir/fchain_cli.cpp.o"
  "CMakeFiles/fchain_cli.dir/fchain_cli.cpp.o.d"
  "fchain_cli"
  "fchain_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fchain_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
