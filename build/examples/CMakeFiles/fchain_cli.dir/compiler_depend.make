# Empty compiler generated dependencies file for fchain_cli.
# This may be replaced when dependencies are built.
