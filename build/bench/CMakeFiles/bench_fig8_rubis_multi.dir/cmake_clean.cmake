file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rubis_multi.dir/bench_fig8_rubis_multi.cpp.o"
  "CMakeFiles/bench_fig8_rubis_multi.dir/bench_fig8_rubis_multi.cpp.o.d"
  "bench_fig8_rubis_multi"
  "bench_fig8_rubis_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rubis_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
