# Empty dependencies file for bench_fig8_rubis_multi.
# This may be replaced when dependencies are built.
