file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hadoop_multi.dir/bench_fig10_hadoop_multi.cpp.o"
  "CMakeFiles/bench_fig10_hadoop_multi.dir/bench_fig10_hadoop_multi.cpp.o.d"
  "bench_fig10_hadoop_multi"
  "bench_fig10_hadoop_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hadoop_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
