# Empty compiler generated dependencies file for bench_fig10_hadoop_multi.
# This may be replaced when dependencies are built.
