file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_changepoints.dir/bench_fig3_changepoints.cpp.o"
  "CMakeFiles/bench_fig3_changepoints.dir/bench_fig3_changepoints.cpp.o.d"
  "bench_fig3_changepoints"
  "bench_fig3_changepoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_changepoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
