# Empty dependencies file for bench_robustness_lossy_telemetry.
# This may be replaced when dependencies are built.
