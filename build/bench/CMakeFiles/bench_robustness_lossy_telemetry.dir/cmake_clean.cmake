file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_lossy_telemetry.dir/bench_robustness_lossy_telemetry.cpp.o"
  "CMakeFiles/bench_robustness_lossy_telemetry.dir/bench_robustness_lossy_telemetry.cpp.o.d"
  "bench_robustness_lossy_telemetry"
  "bench_robustness_lossy_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_lossy_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
