# Empty dependencies file for bench_fig4_expected_error.
# This may be replaced when dependencies are built.
