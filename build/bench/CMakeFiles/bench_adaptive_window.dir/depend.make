# Empty dependencies file for bench_adaptive_window.
# This may be replaced when dependencies are built.
