file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_systems_multi.dir/bench_fig9_systems_multi.cpp.o"
  "CMakeFiles/bench_fig9_systems_multi.dir/bench_fig9_systems_multi.cpp.o.d"
  "bench_fig9_systems_multi"
  "bench_fig9_systems_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_systems_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
