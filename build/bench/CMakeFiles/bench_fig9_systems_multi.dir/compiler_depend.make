# Empty compiler generated dependencies file for bench_fig9_systems_multi.
# This may be replaced when dependencies are built.
