file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fixed_filtering.dir/bench_fig12_fixed_filtering.cpp.o"
  "CMakeFiles/bench_fig12_fixed_filtering.dir/bench_fig12_fixed_filtering.cpp.o.d"
  "bench_fig12_fixed_filtering"
  "bench_fig12_fixed_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fixed_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
