# Empty dependencies file for bench_fig12_fixed_filtering.
# This may be replaced when dependencies are built.
