file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rubis_single.dir/bench_fig6_rubis_single.cpp.o"
  "CMakeFiles/bench_fig6_rubis_single.dir/bench_fig6_rubis_single.cpp.o.d"
  "bench_fig6_rubis_single"
  "bench_fig6_rubis_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rubis_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
