# Empty compiler generated dependencies file for bench_fig6_rubis_single.
# This may be replaced when dependencies are built.
