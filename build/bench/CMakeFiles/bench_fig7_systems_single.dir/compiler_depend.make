# Empty compiler generated dependencies file for bench_fig7_systems_single.
# This may be replaced when dependencies are built.
