file(REMOVE_RECURSE
  "CMakeFiles/test_signal_detect.dir/signal_detect_test.cpp.o"
  "CMakeFiles/test_signal_detect.dir/signal_detect_test.cpp.o.d"
  "test_signal_detect"
  "test_signal_detect.pdb"
  "test_signal_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
