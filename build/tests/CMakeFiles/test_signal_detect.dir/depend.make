# Empty dependencies file for test_signal_detect.
# This may be replaced when dependencies are built.
