file(REMOVE_RECURSE
  "CMakeFiles/test_markov.dir/markov_test.cpp.o"
  "CMakeFiles/test_markov.dir/markov_test.cpp.o.d"
  "test_markov"
  "test_markov.pdb"
  "test_markov[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
