# Empty compiler generated dependencies file for test_scheme_invariants.
# This may be replaced when dependencies are built.
