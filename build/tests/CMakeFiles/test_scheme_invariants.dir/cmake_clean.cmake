file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_invariants.dir/scheme_invariants_test.cpp.o"
  "CMakeFiles/test_scheme_invariants.dir/scheme_invariants_test.cpp.o.d"
  "test_scheme_invariants"
  "test_scheme_invariants.pdb"
  "test_scheme_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
