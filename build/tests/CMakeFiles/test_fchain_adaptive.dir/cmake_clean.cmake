file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_adaptive.dir/fchain_adaptive_test.cpp.o"
  "CMakeFiles/test_fchain_adaptive.dir/fchain_adaptive_test.cpp.o.d"
  "test_fchain_adaptive"
  "test_fchain_adaptive.pdb"
  "test_fchain_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
