# Empty compiler generated dependencies file for test_fchain_adaptive.
# This may be replaced when dependencies are built.
