# Empty compiler generated dependencies file for test_fchain_master_slave.
# This may be replaced when dependencies are built.
