file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_master_slave.dir/fchain_master_slave_test.cpp.o"
  "CMakeFiles/test_fchain_master_slave.dir/fchain_master_slave_test.cpp.o.d"
  "test_fchain_master_slave"
  "test_fchain_master_slave.pdb"
  "test_fchain_master_slave[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_master_slave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
