file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_pinpoint.dir/fchain_pinpoint_test.cpp.o"
  "CMakeFiles/test_fchain_pinpoint.dir/fchain_pinpoint_test.cpp.o.d"
  "test_fchain_pinpoint"
  "test_fchain_pinpoint.pdb"
  "test_fchain_pinpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_pinpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
