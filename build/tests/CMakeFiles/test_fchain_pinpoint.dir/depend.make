# Empty dependencies file for test_fchain_pinpoint.
# This may be replaced when dependencies are built.
