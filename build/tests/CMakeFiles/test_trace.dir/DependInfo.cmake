
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/test_trace.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/fchain_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fchain_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fchain/CMakeFiles/fchain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/netdep/CMakeFiles/fchain_netdep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fchain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/fchain_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fchain_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/fchain_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/fchain_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fchain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fchain_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
