file(REMOVE_RECURSE
  "CMakeFiles/test_sim_application.dir/sim_application_test.cpp.o"
  "CMakeFiles/test_sim_application.dir/sim_application_test.cpp.o.d"
  "test_sim_application"
  "test_sim_application.pdb"
  "test_sim_application[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
