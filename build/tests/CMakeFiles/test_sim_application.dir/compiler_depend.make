# Empty compiler generated dependencies file for test_sim_application.
# This may be replaced when dependencies are built.
