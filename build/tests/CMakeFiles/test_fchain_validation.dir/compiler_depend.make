# Empty compiler generated dependencies file for test_fchain_validation.
# This may be replaced when dependencies are built.
