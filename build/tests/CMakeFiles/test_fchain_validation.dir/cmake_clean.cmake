file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_validation.dir/fchain_validation_test.cpp.o"
  "CMakeFiles/test_fchain_validation.dir/fchain_validation_test.cpp.o.d"
  "test_fchain_validation"
  "test_fchain_validation.pdb"
  "test_fchain_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
