# Empty dependencies file for test_orion.
# This may be replaced when dependencies are built.
