file(REMOVE_RECURSE
  "CMakeFiles/test_orion.dir/orion_test.cpp.o"
  "CMakeFiles/test_orion.dir/orion_test.cpp.o.d"
  "test_orion"
  "test_orion.pdb"
  "test_orion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
