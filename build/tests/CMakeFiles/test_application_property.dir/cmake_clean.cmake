file(REMOVE_RECURSE
  "CMakeFiles/test_application_property.dir/application_property_test.cpp.o"
  "CMakeFiles/test_application_property.dir/application_property_test.cpp.o.d"
  "test_application_property"
  "test_application_property.pdb"
  "test_application_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_application_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
