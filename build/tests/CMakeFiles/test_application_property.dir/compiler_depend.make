# Empty compiler generated dependencies file for test_application_property.
# This may be replaced when dependencies are built.
