# Empty compiler generated dependencies file for test_incident.
# This may be replaced when dependencies are built.
