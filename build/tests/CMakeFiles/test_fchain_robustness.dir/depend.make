# Empty dependencies file for test_fchain_robustness.
# This may be replaced when dependencies are built.
