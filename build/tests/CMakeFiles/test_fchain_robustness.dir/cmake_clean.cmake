file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_robustness.dir/fchain_robustness_test.cpp.o"
  "CMakeFiles/test_fchain_robustness.dir/fchain_robustness_test.cpp.o.d"
  "test_fchain_robustness"
  "test_fchain_robustness.pdb"
  "test_fchain_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
