file(REMOVE_RECURSE
  "CMakeFiles/test_selector_config.dir/selector_config_test.cpp.o"
  "CMakeFiles/test_selector_config.dir/selector_config_test.cpp.o.d"
  "test_selector_config"
  "test_selector_config.pdb"
  "test_selector_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selector_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
