file(REMOVE_RECURSE
  "CMakeFiles/test_auc.dir/auc_test.cpp.o"
  "CMakeFiles/test_auc.dir/auc_test.cpp.o.d"
  "test_auc"
  "test_auc.pdb"
  "test_auc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
