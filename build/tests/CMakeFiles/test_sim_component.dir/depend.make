# Empty dependencies file for test_sim_component.
# This may be replaced when dependencies are built.
