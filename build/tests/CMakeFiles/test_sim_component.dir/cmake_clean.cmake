file(REMOVE_RECURSE
  "CMakeFiles/test_sim_component.dir/sim_component_test.cpp.o"
  "CMakeFiles/test_sim_component.dir/sim_component_test.cpp.o.d"
  "test_sim_component"
  "test_sim_component.pdb"
  "test_sim_component[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
