# Empty compiler generated dependencies file for test_netdep.
# This may be replaced when dependencies are built.
