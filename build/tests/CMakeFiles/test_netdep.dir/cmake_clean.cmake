file(REMOVE_RECURSE
  "CMakeFiles/test_netdep.dir/netdep_test.cpp.o"
  "CMakeFiles/test_netdep.dir/netdep_test.cpp.o.d"
  "test_netdep"
  "test_netdep.pdb"
  "test_netdep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netdep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
