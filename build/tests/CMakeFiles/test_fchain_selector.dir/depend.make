# Empty dependencies file for test_fchain_selector.
# This may be replaced when dependencies are built.
