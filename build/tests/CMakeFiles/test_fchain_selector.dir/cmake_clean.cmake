file(REMOVE_RECURSE
  "CMakeFiles/test_fchain_selector.dir/fchain_selector_test.cpp.o"
  "CMakeFiles/test_fchain_selector.dir/fchain_selector_test.cpp.o.d"
  "test_fchain_selector"
  "test_fchain_selector.pdb"
  "test_fchain_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fchain_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
