// Tests for Orion-style delay-spike dependency discovery.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/runner.h"
#include "netdep/orion.h"

namespace fchain::netdep {
namespace {

/// A chain 0 -> 1 -> 2 where service 1's processing time concentrates in a
/// narrow band around `delay` seconds.
std::vector<FlowEvent> serviceChain(std::size_t requests, double delay,
                                    double jitter, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<FlowEvent> trace;
  double t = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    t += rng.uniform(1.0, 2.5);
    trace.push_back({0, 1, t, 0.02});
    trace.push_back({1, 2, t + delay + rng.uniform(-jitter, jitter), 0.02});
  }
  return trace;
}

TEST(Orion, TypicalSpikeMarksTheDependency) {
  const auto trace = serviceChain(300, 0.30, 0.02);
  const auto spikes = delaySpikes(3, trace);
  ASSERT_FALSE(spikes.empty());
  bool found = false;
  for (const auto& spike : spikes) {
    if (spike.middle == 1 && spike.child_to == 2) {
      found = true;
      EXPECT_NEAR(spike.delay_sec, 0.30, 0.08);
      EXPECT_GT(spike.mass_ratio, 8.0);
      EXPECT_GE(spike.samples, 100u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(inferOrion(3, trace).hasEdge(1, 2));
}

TEST(Orion, SmearedDelaysDoNotSpike) {
  // Delays uniform over the whole histogram range: no typical spike. With
  // flow-count discovery switched off (absurd min_flows), the smeared pair
  // yields no edge while the spiked pair still does — isolating the
  // delay-spike criterion itself.
  DiscoveryConfig no_direct;
  no_direct.min_flows = 1000000;

  const auto smeared = serviceChain(300, 1.0, 0.95, 2);
  for (const auto& spike : delaySpikes(3, smeared)) {
    if (spike.middle == 1 && spike.child_to == 2) {
      EXPECT_LT(spike.mass_ratio, 8.0);
    }
  }
  EXPECT_FALSE(inferOrion(3, smeared, no_direct).hasEdge(1, 2));

  const auto spiked = serviceChain(300, 0.30, 0.02, 2);
  EXPECT_TRUE(inferOrion(3, spiked, no_direct).hasEdge(1, 2));
}

TEST(Orion, TooFewSamplesAreInconclusive) {
  const auto trace = serviceChain(40, 0.30, 0.02, 3);
  EXPECT_TRUE(delaySpikes(3, trace).empty());
}

TEST(Orion, DirectEdgesStillComeFromFlowCounts) {
  const auto trace = serviceChain(300, 0.30, 0.02, 4);
  const auto graph = inferOrion(3, trace);
  EXPECT_TRUE(graph.hasEdge(0, 1));
}

TEST(Orion, StreamingTraceDefeatsIt) {
  std::vector<FlowEvent> trace;
  for (int t = 0; t < 600; ++t) {
    trace.push_back({0, 1, static_cast<double>(t), 1.0});
    trace.push_back({1, 2, static_cast<double>(t) + 0.3, 1.0});
  }
  EXPECT_TRUE(delaySpikes(3, trace).empty());
  EXPECT_TRUE(inferOrion(3, trace).empty());
}

TEST(Orion, AgreesWithCoOccurrenceOnRealRubisTraffic) {
  // Both discoverers, run on the same synthesized RUBiS packet trace, must
  // find (at least) the true forward edges.
  eval::TrialOptions options;
  options.trials = 1;
  options.base_seed = 10;
  const auto set = eval::generateTrials(eval::rubisCpuHog(), options);
  ASSERT_FALSE(set.trials.empty());
  const auto trace = synthesizePacketTrace(set.trials.front().record);
  const auto graph = inferOrion(4, trace);
  for (const auto& edge : set.trials.front().record.app_spec.edges) {
    EXPECT_TRUE(graph.hasEdge(edge.from, edge.to))
        << edge.from << "->" << edge.to;
  }
}

}  // namespace
}  // namespace fchain::netdep
