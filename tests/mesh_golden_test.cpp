// Mesh golden suite: two checked-in localization goldens over generated
// microservice meshes —
//   mesh120_retrystorm_bottleneck  a slow data store whose bounded-retry
//                                  callers amplify upstream call volume
//   mesh80_cachehog                a CPU hog on the cache-fronted data-tier
//                                  caller, degrading its hit ratio
// Each golden is produced by the offline single-master reference and must be
// byte-identical through the FleetMaster at N in {1, 4} shards and through
// the online monitor over a live stream (online vs offline replay).
//
// Regeneration (single-master path only; the sharded and online paths always
// compare against the bytes on disk):
//   FCHAIN_UPDATE_FIXTURES=1 ./build/tests/test_mesh_golden
// (FCHAIN_UPDATE_GOLDEN is accepted too, matching the other golden suites.)
#include <array>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "fleet/fleet.h"
#include "fleet/monitor.h"
#include "netdep/dependency.h"
#include "pinpoint_render.h"
#include "sim/mesh.h"
#include "sim/simulator.h"
#include "sim/stream.h"

namespace fchain::fleet {
namespace {

// --- Scenarios ------------------------------------------------------------

sim::ScenarioConfig meshScenario(std::size_t services,
                                 faults::FaultType type, double intensity,
                                 bool target_store) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Mesh;
  config.mesh = sim::meshConfigFor(services, /*seed=*/7);
  config.seed = 77;
  config.duration_sec = 3600;
  const sim::ApplicationSpec spec = sim::makeMicroMeshSpec(config.mesh);
  faults::FaultSpec fault;
  fault.type = type;
  // Either the hottest data store (the retry-storm victim) or its
  // cache-fronted caller one hop up the reference path.
  fault.targets = {target_store
                       ? spec.reference_path.back()
                       : spec.reference_path[spec.reference_path.size() - 2]};
  fault.start_time = 1300;
  fault.intensity = intensity;
  config.faults = {fault};
  return config;
}

sim::ScenarioConfig retryStormBottleneck() {
  return meshScenario(120, faults::FaultType::Bottleneck, 1.4,
                      /*target_store=*/true);
}

sim::ScenarioConfig cacheHog() {
  return meshScenario(80, faults::FaultType::CpuHog, 1.5,
                      /*target_store=*/false);
}

// --- Incident construction (two slaves splitting the mesh by index) -------

struct Incident {
  std::unique_ptr<core::FChainSlave> front;
  std::unique_ptr<core::FChainSlave> back;
  std::vector<ComponentId> components;
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

Incident makeIncident(const sim::ScenarioConfig& config) {
  Incident incident;
  sim::Simulation sim(config);
  const std::size_t n = sim.app().componentCount();
  incident.front = std::make_unique<core::FChainSlave>(0);
  incident.back = std::make_unique<core::FChainSlave>(1);
  for (ComponentId id = 0; id < n; ++id) {
    incident.components.push_back(id);
    (id < n / 2 ? *incident.front : *incident.back).addComponent(id, 0);
  }
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < n; ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      (id < n / 2 ? *incident.front : *incident.back).ingest(id, sample);
    }
  }
  EXPECT_TRUE(sim.violationTime().has_value())
      << "mesh scenario never violated its SLO";
  incident.tv = sim.violationTime().value_or(sim.now());
  incident.deps = netdep::discoverDependencies(sim.record());
  return incident;
}

std::string singleMasterRender(const Incident& incident) {
  core::FChainMaster master;
  master.registerSlave(incident.front.get());
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  return core::renderPinpoint(
      master.localize(incident.components, incident.tv), incident.tv);
}

std::string fleetRender(const Incident& incident, std::size_t shards) {
  FleetConfig config;
  config.shards = shards;
  FleetMaster fleet(config);
  fleet.addSlave(incident.front.get());
  fleet.addSlave(incident.back.get());
  fleet.setDependencies(incident.deps);
  return core::renderPinpoint(
      fleet.localize(incident.components, incident.tv), incident.tv);
}

// --- Golden plumbing ------------------------------------------------------

std::string goldenPath(const std::string& name) {
  return std::string(FCHAIN_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string readGolden(const std::string& name) {
  const std::string path = goldenPath(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

bool envSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

/// Regen-capable comparison, used ONLY by the single-master reference
/// tests — the sharded and online paths must never write what they are
/// checked against.
void expectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (envSet("FCHAIN_UPDATE_FIXTURES") || envSet("FCHAIN_UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated golden " << path;
  }
  EXPECT_EQ(actual, readGolden(name))
      << "single-master output diverged from " << path
      << "; regenerate with FCHAIN_UPDATE_FIXTURES=1 and review the diff";
}

// --- Single-master references (golden owners) -----------------------------

TEST(MeshGoldenReference, RetryStormBottleneck) {
  const Incident incident = makeIncident(retryStormBottleneck());
  expectMatchesGolden("mesh120_retrystorm_bottleneck",
                      singleMasterRender(incident));
}

TEST(MeshGoldenReference, CacheHog) {
  const Incident incident = makeIncident(cacheHog());
  expectMatchesGolden("mesh80_cachehog", singleMasterRender(incident));
}

// --- Partitioned replay: N in {1, 4} --------------------------------------

void expectFleetMatchesGolden(const sim::ScenarioConfig& config,
                              const std::string& golden_name) {
  const Incident incident = makeIncident(config);
  const std::string golden = readGolden(golden_name);
  ASSERT_EQ(singleMasterRender(incident), golden)
      << golden_name << " is stale relative to the single-master path";
  for (const std::size_t shards : {1u, 4u}) {
    EXPECT_EQ(fleetRender(incident, shards), golden)
        << golden_name << " diverged at " << shards << " shards";
  }
}

TEST(MeshFleetIdentity, RetryStormBottleneck) {
  expectFleetMatchesGolden(retryStormBottleneck(),
                           "mesh120_retrystorm_bottleneck");
}

TEST(MeshFleetIdentity, CacheHog) {
  expectFleetMatchesGolden(cacheHog(), "mesh80_cachehog");
}

// --- Online vs offline replay ---------------------------------------------

void expectOnlineMatchesGolden(const sim::ScenarioConfig& config,
                               const std::string& golden_name) {
  // Offline pass: expected tv + the discovered dependency graph.
  sim::Simulation offline(config);
  while (!offline.violationTime().has_value() && offline.now() < 3600) {
    offline.step();
  }
  ASSERT_TRUE(offline.violationTime().has_value());
  const TimeSec tv = *offline.violationTime();
  const netdep::DependencyGraph deps =
      netdep::discoverDependencies(offline.record());

  sim::StreamingSource source(config);
  const std::vector<ComponentId> ids = source.componentIds();

  core::FChainSlave front(0);
  core::FChainSlave back(1);
  for (ComponentId id : ids) {
    (id < ids.size() / 2 ? front : back).addComponent(id, 0);
  }

  FleetMonitorConfig monitor_config;
  monitor_config.shards = 4;
  FleetMonitor monitor(monitor_config);
  monitor.addSlave(&front);
  monitor.addSlave(&back);
  monitor.setDependencies(deps);

  online::AppSpec app;
  app.name = "mesh";
  app.components = ids;
  app.slo.kind = online::SloSpec::Kind::Latency;
  app.slo.latency_threshold_sec = sim::meshSloLatencyThreshold(config.mesh);
  app.slo.sustain_sec = config.slo_sustain_sec;
  const std::size_t app_index = monitor.addApplication(app);

  while (monitor.incidents().empty() && source.now() < 3600) {
    const sim::StreamTick tick = source.step(
        [&](const sim::StreamSample& sample) { monitor.ingest(sample); });
    monitor.observe(app_index, tick);
    monitor.pump();
  }
  ASSERT_EQ(monitor.incidents().size(), 1u);
  const online::OnlineIncident& incident = monitor.incidents().front();
  EXPECT_EQ(incident.violation_time, tv);
  EXPECT_EQ(core::renderPinpoint(incident.result, incident.violation_time),
            readGolden(golden_name))
      << "online replay diverged from the offline golden";
}

TEST(MeshOnlineIdentity, RetryStormBottleneck) {
  expectOnlineMatchesGolden(retryStormBottleneck(),
                            "mesh120_retrystorm_bottleneck");
}

TEST(MeshOnlineIdentity, CacheHog) {
  expectOnlineMatchesGolden(cacheHog(), "mesh80_cachehog");
}

}  // namespace
}  // namespace fchain::fleet
