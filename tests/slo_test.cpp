// Unit tests for the SLO monitors.
#include <gtest/gtest.h>

#include "sim/slo.h"

namespace fchain::sim {
namespace {

TEST(LatencySlo, RequiresSustainedViolation) {
  LatencySloMonitor monitor(0.1, 3);
  EXPECT_FALSE(monitor.observe(0, 0.2).has_value());
  EXPECT_FALSE(monitor.observe(1, 0.2).has_value());
  const auto tv = monitor.observe(2, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 2);
}

TEST(LatencySlo, DipResetsTheStreak) {
  LatencySloMonitor monitor(0.1, 3);
  monitor.observe(0, 0.2);
  monitor.observe(1, 0.2);
  monitor.observe(2, 0.05);  // back under the threshold
  monitor.observe(3, 0.2);
  monitor.observe(4, 0.2);
  EXPECT_FALSE(monitor.violationTime().has_value());
  const auto tv = monitor.observe(5, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 5);
}

TEST(LatencySlo, LatchesFirstViolation) {
  LatencySloMonitor monitor(0.1, 1);
  monitor.observe(10, 0.5);
  monitor.observe(11, 0.01);
  monitor.observe(12, 0.5);
  ASSERT_TRUE(monitor.violationTime().has_value());
  EXPECT_EQ(*monitor.violationTime(), 10);
}

TEST(LatencySlo, HealthyRunNeverViolates) {
  LatencySloMonitor monitor(0.1, 5);
  for (TimeSec t = 0; t < 1000; ++t) {
    EXPECT_FALSE(monitor.observe(t, 0.05).has_value());
  }
}

TEST(ProgressSlo, ArmsOnlyAfterJobStarts) {
  ProgressSloMonitor monitor(/*window=*/5, /*min_delta=*/0.01);
  for (TimeSec t = 0; t < 50; ++t) {
    EXPECT_FALSE(monitor.observe(t, 0.0).has_value());
  }
}

TEST(ProgressSlo, DetectsStallOverTrailingWindow) {
  ProgressSloMonitor monitor(5, 0.01);
  double progress = 0.0;
  TimeSec t = 0;
  for (; t < 10; ++t) {
    progress += 0.05;
    EXPECT_FALSE(monitor.observe(t, progress).has_value());
  }
  // Stall: progress frozen; after window+1 samples the monitor fires.
  std::optional<TimeSec> tv;
  for (; t < 20 && !tv.has_value(); ++t) tv = monitor.observe(t, progress);
  ASSERT_TRUE(tv.has_value());
  EXPECT_LE(*tv, 16);
}

TEST(ProgressSlo, BurstyProgressDoesNotFalseAlarm) {
  // Progress advances in clumps every 4 s but the 10 s window always sees
  // at least one clump.
  ProgressSloMonitor monitor(10, 0.01);
  double progress = 0.01;
  for (TimeSec t = 0; t < 200; ++t) {
    if (t % 4 == 0) progress += 0.04;
    EXPECT_FALSE(monitor.observe(t, progress).has_value()) << "t=" << t;
  }
}

TEST(ProgressSlo, SlowCreepBelowThresholdCountsAsStall) {
  ProgressSloMonitor monitor(10, 0.01);
  double progress = 0.5;
  std::optional<TimeSec> tv;
  for (TimeSec t = 0; t < 40 && !tv.has_value(); ++t) {
    progress += 0.0001;  // far below min_delta over any window
    tv = monitor.observe(t, progress);
  }
  EXPECT_TRUE(tv.has_value());
}

}  // namespace
}  // namespace fchain::sim
