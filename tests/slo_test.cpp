// Unit tests for the SLO monitors.
#include <gtest/gtest.h>

#include "sim/slo.h"

namespace fchain::sim {
namespace {

TEST(LatencySlo, RequiresSustainedViolation) {
  LatencySloMonitor monitor(0.1, 3);
  EXPECT_FALSE(monitor.observe(0, 0.2).has_value());
  EXPECT_FALSE(monitor.observe(1, 0.2).has_value());
  const auto tv = monitor.observe(2, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 2);
}

TEST(LatencySlo, DipResetsTheStreak) {
  LatencySloMonitor monitor(0.1, 3);
  monitor.observe(0, 0.2);
  monitor.observe(1, 0.2);
  monitor.observe(2, 0.05);  // back under the threshold
  monitor.observe(3, 0.2);
  monitor.observe(4, 0.2);
  EXPECT_FALSE(monitor.violationTime().has_value());
  const auto tv = monitor.observe(5, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 5);
}

TEST(LatencySlo, LatchesFirstViolation) {
  LatencySloMonitor monitor(0.1, 1);
  monitor.observe(10, 0.5);
  monitor.observe(11, 0.01);
  monitor.observe(12, 0.5);
  ASSERT_TRUE(monitor.violationTime().has_value());
  EXPECT_EQ(*monitor.violationTime(), 10);
}

TEST(LatencySlo, HealthyRunNeverViolates) {
  LatencySloMonitor monitor(0.1, 5);
  for (TimeSec t = 0; t < 1000; ++t) {
    EXPECT_FALSE(monitor.observe(t, 0.05).has_value());
  }
}

TEST(ProgressSlo, ArmsOnlyAfterJobStarts) {
  ProgressSloMonitor monitor(/*window=*/5, /*min_delta=*/0.01);
  for (TimeSec t = 0; t < 50; ++t) {
    EXPECT_FALSE(monitor.observe(t, 0.0).has_value());
  }
}

TEST(ProgressSlo, DetectsStallOverTrailingWindow) {
  ProgressSloMonitor monitor(5, 0.01);
  double progress = 0.0;
  TimeSec t = 0;
  for (; t < 10; ++t) {
    progress += 0.05;
    EXPECT_FALSE(monitor.observe(t, progress).has_value());
  }
  // Stall: progress frozen; after window+1 samples the monitor fires.
  std::optional<TimeSec> tv;
  for (; t < 20 && !tv.has_value(); ++t) tv = monitor.observe(t, progress);
  ASSERT_TRUE(tv.has_value());
  EXPECT_LE(*tv, 16);
}

TEST(ProgressSlo, BurstyProgressDoesNotFalseAlarm) {
  // Progress advances in clumps every 4 s but the 10 s window always sees
  // at least one clump.
  ProgressSloMonitor monitor(10, 0.01);
  double progress = 0.01;
  for (TimeSec t = 0; t < 200; ++t) {
    if (t % 4 == 0) progress += 0.04;
    EXPECT_FALSE(monitor.observe(t, progress).has_value()) << "t=" << t;
  }
}

TEST(ProgressSlo, SlowCreepBelowThresholdCountsAsStall) {
  ProgressSloMonitor monitor(10, 0.01);
  double progress = 0.5;
  std::optional<TimeSec> tv;
  for (TimeSec t = 0; t < 40 && !tv.has_value(); ++t) {
    progress += 0.0001;  // far below min_delta over any window
    tv = monitor.observe(t, progress);
  }
  EXPECT_TRUE(tv.has_value());
}

// --- Edge-case properties (online-monitoring satellite) --------------------

TEST(LatencySlo, ValueExactlyAtThresholdIsWithinSlo) {
  // The contract is "exceeds": equality never contributes to the streak.
  LatencySloMonitor monitor(0.1, 2);
  for (TimeSec t = 0; t < 100; ++t) {
    EXPECT_FALSE(monitor.observe(t, 0.1).has_value()) << "t=" << t;
  }
  // And an equality sample *resets* a partial streak like any good sample.
  monitor.observe(100, 0.2);
  monitor.observe(101, 0.1);
  monitor.observe(102, 0.2);
  EXPECT_FALSE(monitor.violationTime().has_value());
  const auto tv = monitor.observe(103, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 103);
}

TEST(LatencySlo, SingleGoodSampleAnywhereInTheStreakResets) {
  // Property: sustain-1 bad samples, one good, sustain-1 bad never latches,
  // for every position of the good sample.
  constexpr std::size_t kSustain = 5;
  for (std::size_t bad_prefix = 0; bad_prefix < kSustain; ++bad_prefix) {
    LatencySloMonitor monitor(0.1, kSustain);
    TimeSec t = 0;
    for (std::size_t i = 0; i < bad_prefix; ++i) monitor.observe(t++, 0.2);
    monitor.observe(t++, 0.05);
    for (std::size_t i = 0; i + 1 < kSustain; ++i) monitor.observe(t++, 0.2);
    EXPECT_FALSE(monitor.violationTime().has_value())
        << "good sample after " << bad_prefix << " bad samples";
  }
}

TEST(LatencySlo, ResetRearmsAndLatchesTheNextSustainedViolation) {
  LatencySloMonitor monitor(0.1, 3);
  monitor.observe(0, 0.2);
  monitor.observe(1, 0.2);
  ASSERT_TRUE(monitor.observe(2, 0.2).has_value());
  // Latched: further samples (good or bad) cannot move the latch.
  monitor.observe(3, 0.01);
  monitor.observe(4, 0.9);
  EXPECT_EQ(*monitor.violationTime(), 2);

  monitor.reset();
  EXPECT_FALSE(monitor.violationTime().has_value());
  // The streak restarts from zero: two bad samples are not enough even
  // though bad samples immediately preceded the reset.
  monitor.observe(5, 0.2);
  EXPECT_FALSE(monitor.observe(6, 0.2).has_value());
  const auto tv = monitor.observe(7, 0.2);
  ASSERT_TRUE(tv.has_value());
  EXPECT_EQ(*tv, 7);
}

TEST(ProgressSlo, BurstClumpsKeepPassingAfterReset) {
  // Re-arming mid-job must tolerate the same burst structure as a fresh
  // monitor: the window restarts empty, so the first clump after reset must
  // not be compared against pre-reset history.
  ProgressSloMonitor monitor(10, 0.01);
  double progress = 0.01;
  TimeSec t = 0;
  for (; t < 60; ++t) {
    if (t % 4 == 0) progress += 0.04;
    ASSERT_FALSE(monitor.observe(t, progress).has_value()) << "t=" << t;
  }
  monitor.reset();
  for (; t < 120; ++t) {
    if (t % 4 == 0) progress += 0.04;
    EXPECT_FALSE(monitor.observe(t, progress).has_value()) << "t=" << t;
  }
}

TEST(ProgressSlo, ResetKeepsTheJobStarted) {
  // After reset the monitor must not wait for progress to leave zero again:
  // a stall right after re-arm latches within window+1 samples even though
  // progress never moves post-reset.
  ProgressSloMonitor monitor(5, 0.01);
  double progress = 0.0;
  TimeSec t = 0;
  for (; t < 10; ++t) monitor.observe(t, progress += 0.05);
  monitor.reset();
  std::optional<TimeSec> tv;
  for (; t < 30 && !tv.has_value(); ++t) tv = monitor.observe(t, progress);
  ASSERT_TRUE(tv.has_value());
  EXPECT_LE(*tv, 16);
}

TEST(ProgressSlo, LatchedMonitorIgnoresRecoveryUntilReset) {
  ProgressSloMonitor monitor(5, 0.01);
  double progress = 0.2;
  TimeSec t = 0;
  for (; t < 5; ++t) monitor.observe(t, progress += 0.05);
  std::optional<TimeSec> tv;
  for (; t < 20 && !tv.has_value(); ++t) tv = monitor.observe(t, progress);
  ASSERT_TRUE(tv.has_value());
  const TimeSec latched = *tv;
  // Progress resumes, but the latch must hold until an explicit reset.
  for (; t < 40; ++t) {
    monitor.observe(t, progress += 0.05);
    EXPECT_EQ(monitor.violationTime(), latched);
  }
}

TEST(LatencySlo, ThresholdAccessorReportsTheConfiguredValue) {
  EXPECT_DOUBLE_EQ(LatencySloMonitor(0.02, 30).threshold(), 0.02);
  EXPECT_DOUBLE_EQ(ProgressSloMonitor(30, 5e-4).minDelta(), 5e-4);
}

}  // namespace
}  // namespace fchain::sim
