// Unit tests for the online monitoring runtime: TelemetryRing bounds and
// gap handling, SLO latch -> auto-trigger, cooldown queueing/drops, re-arm
// after recovery, fire-and-forget ingest over flaky transports, the
// checkpointed ingest path, and the online.* metric instruments.
#include <array>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/recovery.h"
#include "online/checkpointed_endpoint.h"
#include "online/monitor.h"
#include "online/ring.h"
#include "runtime/flaky_endpoint.h"

namespace fchain::online {
namespace {

std::array<double, kMetricCount> sampleAt(TimeSec t, ComponentId id) {
  // Deterministic, mildly wiggly telemetry; distinct per component.
  std::array<double, kMetricCount> s{};
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    s[m] = 10.0 + static_cast<double>(id) +
           std::sin(static_cast<double>(t) * 0.1 + static_cast<double>(m));
  }
  return s;
}

// --- TelemetryRing --------------------------------------------------------

TEST(TelemetryRing, AppendsAndEvictsAtCapacity) {
  TelemetryRing ring(5);
  ring.addComponent(0);
  for (TimeSec t = 0; t < 12; ++t) ring.push(0, t, sampleAt(t, 0));
  EXPECT_EQ(ring.occupancy(), 5u);
  EXPECT_EQ(ring.evictions(), 7u);
  EXPECT_EQ(ring.startTime(0), TimeSec{7});
  EXPECT_EQ(ring.endTime(0), TimeSec{12});
  EXPECT_FALSE(ring.at(0, 6).has_value());
  ASSERT_TRUE(ring.at(0, 11).has_value());
  EXPECT_EQ(*ring.at(0, 11), sampleAt(11, 0));
}

TEST(TelemetryRing, GapIsFilledWithLastValue) {
  TelemetryRing ring(10);
  ring.addComponent(3);
  ring.push(3, 0, sampleAt(0, 3));
  ring.push(3, 4, sampleAt(4, 3));  // gap of 3 seconds
  EXPECT_EQ(ring.occupancy(), 5u);
  ASSERT_TRUE(ring.at(3, 2).has_value());
  EXPECT_EQ(*ring.at(3, 2), sampleAt(0, 3));  // filled with the last value
  EXPECT_EQ(*ring.at(3, 4), sampleAt(4, 3));
}

TEST(TelemetryRing, DuplicateOverwritesInPlace) {
  TelemetryRing ring(10);
  ring.addComponent(0);
  ring.push(0, 0, sampleAt(0, 0));
  ring.push(0, 1, sampleAt(1, 0));
  std::array<double, kMetricCount> fixed{};
  fixed.fill(99.0);
  ring.push(0, 0, fixed);
  EXPECT_EQ(ring.occupancy(), 2u);
  EXPECT_EQ(*ring.at(0, 0), fixed);
}

TEST(TelemetryRing, StaleSampleIsIgnored) {
  TelemetryRing ring(3);
  ring.addComponent(0);
  for (TimeSec t = 0; t < 6; ++t) ring.push(0, t, sampleAt(t, 0));
  const std::size_t occupancy = ring.occupancy();
  EXPECT_TRUE(ring.push(0, 1, sampleAt(1, 0)));  // older than the window
  EXPECT_EQ(ring.occupancy(), occupancy);
  EXPECT_EQ(ring.startTime(0), TimeSec{3});
}

TEST(TelemetryRing, HugeGapRestartsTheWindow) {
  TelemetryRing ring(5);
  ring.addComponent(0);
  ring.push(0, 0, sampleAt(0, 0));
  ring.push(0, 1, sampleAt(1, 0));
  ring.push(0, 1000, sampleAt(1000, 0));  // fill would flush everything
  EXPECT_EQ(ring.occupancy(), 1u);
  EXPECT_EQ(ring.evictions(), 2u);
  EXPECT_EQ(ring.startTime(0), TimeSec{1000});
}

TEST(TelemetryRing, ShrinkingTheBudgetTrimsExistingWindows) {
  TelemetryRing ring(10);
  ring.addComponent(0);
  ring.addComponent(1);
  for (TimeSec t = 0; t < 10; ++t) {
    ring.push(0, t, sampleAt(t, 0));
    ring.push(1, t, sampleAt(t, 1));
  }
  EXPECT_EQ(ring.occupancy(), 20u);
  ring.setCapacityPerComponent(4);
  EXPECT_EQ(ring.occupancy(), 8u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.startTime(0), TimeSec{6});
}

TEST(TelemetryRing, UnknownComponentIsRejected) {
  TelemetryRing ring(5);
  EXPECT_FALSE(ring.push(42, 0, sampleAt(0, 42)));
}

// --- Monitor fixtures -----------------------------------------------------

/// Two slaves x two components, one latency app across all four. The
/// FChainConfig keeps the paper defaults (the synthetic streams here are
/// short; only trigger plumbing is under test, not localization quality).
struct Fixture {
  OnlineMonitorConfig config;
  std::unique_ptr<core::FChainSlave> front;
  std::unique_ptr<core::FChainSlave> back;
  std::unique_ptr<OnlineMonitor> monitor;
  std::size_t app = 0;

  explicit Fixture(OnlineMonitorConfig cfg = {}) : config(std::move(cfg)) {
    front = std::make_unique<core::FChainSlave>(0, config.fchain);
    back = std::make_unique<core::FChainSlave>(1, config.fchain);
    front->addComponent(0, 0);
    front->addComponent(1, 0);
    back->addComponent(2, 0);
    back->addComponent(3, 0);
    monitor = std::make_unique<OnlineMonitor>(config);
    monitor->addSlave(front.get());
    monitor->addSlave(back.get());
    AppSpec spec;
    spec.name = "app";
    spec.components = {0, 1, 2, 3};
    spec.slo.kind = SloSpec::Kind::Latency;
    spec.slo.latency_threshold_sec = 0.1;
    spec.slo.sustain_sec = 3;
    app = monitor->addApplication(spec);
  }

  void streamTick(TimeSec t, double latency) {
    for (ComponentId id = 0; id < 4; ++id) {
      monitor->ingest(id, t, sampleAt(t, id));
    }
    monitor->observeLatency(app, t, latency);
    monitor->pump();
  }
};

// --- Triggering -----------------------------------------------------------

TEST(OnlineMonitor, SustainedViolationAutoTriggersLocalization) {
  Fixture fx;
  for (TimeSec t = 0; t < 200; ++t) fx.streamTick(t, 0.05);
  EXPECT_TRUE(fx.monitor->incidents().empty());
  for (TimeSec t = 200; t < 210; ++t) fx.streamTick(t, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 1u);
  const OnlineIncident& incident = fx.monitor->incidents()[0];
  EXPECT_EQ(incident.app, fx.app);
  EXPECT_EQ(incident.violation_time, 202);  // sustain=3: latched on tick 202
  EXPECT_EQ(incident.triggered_at, 202);
  EXPECT_EQ(incident.queued_delay_sec, 0);
  EXPECT_DOUBLE_EQ(incident.result.coverage, 1.0);
  const auto snap = fx.monitor->metrics().snapshot();
  EXPECT_EQ(snap.counters.at("online.slo_latches"), 1u);
  EXPECT_EQ(snap.counters.at("online.triggers"), 1u);
  EXPECT_EQ(snap.histograms.at("online.trigger_latency_ms").count, 1u);
}

TEST(OnlineMonitor, LatchedMonitorDoesNotRetriggerWhileViolationPersists) {
  Fixture fx;
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05);
  // Violation persists for minutes (injected faults never end).
  for (TimeSec t = 100; t < 400; ++t) fx.streamTick(t, 0.5);
  EXPECT_EQ(fx.monitor->incidents().size(), 1u);
}

TEST(OnlineMonitor, RearmsAfterRecoveryAndCatchesTheNextFault) {
  OnlineMonitorConfig cfg;
  cfg.rearm_good_sec = 10;
  cfg.cooldown_sec = 5;
  Fixture fx(cfg);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05);
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 1u);
  // Recovery: rearm_good_sec of in-SLO signal re-arms the monitor...
  for (TimeSec t = 110; t < 150; ++t) fx.streamTick(t, 0.05);
  EXPECT_EQ(fx.monitor->incidents().size(), 1u);
  // ...so a second sustained violation latches and triggers afresh.
  for (TimeSec t = 150; t < 160; ++t) fx.streamTick(t, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 2u);
  EXPECT_EQ(fx.monitor->incidents()[1].violation_time, 152);
}

TEST(OnlineMonitor, RecoveryShorterThanRearmWindowDoesNotRearm) {
  OnlineMonitorConfig cfg;
  cfg.rearm_good_sec = 20;
  Fixture fx(cfg);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05);
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 1u);
  // 10 good seconds < rearm_good_sec, then the violation resumes: the
  // still-latched monitor must not fire a second incident.
  for (TimeSec t = 110; t < 120; ++t) fx.streamTick(t, 0.05);
  for (TimeSec t = 120; t < 200; ++t) fx.streamTick(t, 0.5);
  EXPECT_EQ(fx.monitor->incidents().size(), 1u);
}

// --- Cooldown and queueing ------------------------------------------------

/// Two apps on disjoint component pairs, latching close together.
struct TwoAppFixture {
  std::unique_ptr<core::FChainSlave> front;
  std::unique_ptr<core::FChainSlave> back;
  std::unique_ptr<OnlineMonitor> monitor;
  std::size_t app_a = 0;
  std::size_t app_b = 0;

  explicit TwoAppFixture(OnlineMonitorConfig cfg) {
    front = std::make_unique<core::FChainSlave>(0, cfg.fchain);
    back = std::make_unique<core::FChainSlave>(1, cfg.fchain);
    front->addComponent(0, 0);
    front->addComponent(1, 0);
    back->addComponent(2, 0);
    back->addComponent(3, 0);
    monitor = std::make_unique<OnlineMonitor>(cfg);
    monitor->addSlave(front.get());
    monitor->addSlave(back.get());
    AppSpec a;
    a.name = "a";
    a.components = {0, 1};
    a.slo.sustain_sec = 3;
    AppSpec b;
    b.name = "b";
    b.components = {2, 3};
    b.slo.sustain_sec = 3;
    app_a = monitor->addApplication(a);
    app_b = monitor->addApplication(b);
  }

  void streamTick(TimeSec t, double lat_a, double lat_b) {
    for (ComponentId id = 0; id < 4; ++id) {
      monitor->ingest(id, t, sampleAt(t, id));
    }
    monitor->observeLatency(app_a, t, lat_a);
    monitor->observeLatency(app_b, t, lat_b);
    monitor->pump();
  }
};

TEST(OnlineMonitor, OverlappingIncidentQueuesThroughTheCooldown) {
  OnlineMonitorConfig cfg;
  cfg.cooldown_sec = 30;
  TwoAppFixture fx(cfg);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05, 0.05);
  // Both apps violate; A latches first (observed first), B queues.
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 1u);
  EXPECT_EQ(fx.monitor->incidents()[0].app, fx.app_a);
  EXPECT_EQ(fx.monitor->pendingTriggers(), 1u);
  // The cooldown expires mid-stream; pump() fires the queued incident with
  // its original violation time.
  for (TimeSec t = 110; t < 140; ++t) fx.streamTick(t, 0.5, 0.5);
  ASSERT_EQ(fx.monitor->incidents().size(), 2u);
  const OnlineIncident& queued = fx.monitor->incidents()[1];
  EXPECT_EQ(queued.app, fx.app_b);
  EXPECT_EQ(queued.violation_time, 102);
  EXPECT_GT(queued.triggered_at, queued.violation_time);
  EXPECT_EQ(queued.queued_delay_sec,
            queued.triggered_at - queued.violation_time);
  const auto snap = fx.monitor->metrics().snapshot();
  EXPECT_EQ(snap.counters.at("online.incidents_queued"), 1u);
  EXPECT_EQ(snap.counters.at("online.triggers"), 2u);
}

TEST(OnlineMonitor, QueueBoundDropsExcessLatches) {
  OnlineMonitorConfig cfg;
  cfg.cooldown_sec = 1000;  // nothing after the first fires in-band
  cfg.max_pending_incidents = 0;
  TwoAppFixture fx(cfg);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05, 0.05);
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5, 0.5);
  EXPECT_EQ(fx.monitor->incidents().size(), 1u);
  EXPECT_EQ(fx.monitor->pendingTriggers(), 0u);
  const auto snap = fx.monitor->metrics().snapshot();
  EXPECT_EQ(snap.counters.at("online.incidents_dropped"), 1u);
  EXPECT_EQ(snap.counters.at("online.slo_latches"), 2u);
}

TEST(OnlineMonitor, DrainFlushesTheQueueRegardlessOfCooldown) {
  OnlineMonitorConfig cfg;
  cfg.cooldown_sec = 1000;
  TwoAppFixture fx(cfg);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05, 0.05);
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5, 0.5);
  ASSERT_EQ(fx.monitor->pendingTriggers(), 1u);
  EXPECT_EQ(fx.monitor->drain(), 1u);
  EXPECT_EQ(fx.monitor->incidents().size(), 2u);
}

// --- Ring budget under streaming ------------------------------------------

TEST(OnlineMonitor, RingOccupancyNeverExceedsTheDerivedCapacity) {
  OnlineMonitorConfig cfg;
  cfg.retention_sec = 50;
  Fixture fx(cfg);
  double peak = 0.0;
  for (TimeSec t = 0; t < 300; ++t) {
    fx.streamTick(t, 0.05);
    peak = std::max(
        peak, fx.monitor->metrics().snapshot().gauges.at(
                  "online.ring_occupancy"));
    ASSERT_LE(fx.monitor->ringOccupancy(), fx.monitor->ringCapacity());
  }
  EXPECT_EQ(fx.monitor->ringCapacity(), 200u);  // 50 samples x 4 components
  EXPECT_EQ(peak, 200.0);
  EXPECT_EQ(fx.monitor->metrics().snapshot().gauges.at("online.ring_peak"),
            200.0);
  EXPECT_GT(
      fx.monitor->metrics().snapshot().counters.at("online.ring_evictions"),
      0u);
}

TEST(OnlineMonitor, ByteCapShrinksThePerComponentWindow) {
  OnlineMonitorConfig cfg;
  cfg.retention_sec = 1000;
  // Budget for 10 samples x 4 components.
  cfg.max_ring_bytes = TelemetryRing::kBytesPerSample * 40;
  Fixture fx(cfg);
  EXPECT_EQ(fx.monitor->ring().capacityPerComponent(), 10u);
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05);
  EXPECT_LE(fx.monitor->ringOccupancy(), 40u);
  EXPECT_LE(fx.monitor->ring().approxBytes(), cfg.max_ring_bytes);
}

TEST(OnlineMonitor, DerivedRetentionCoversTheAnalysisWindows) {
  OnlineMonitorConfig cfg;
  Fixture fx(cfg);
  const core::FChainConfig& f = cfg.fchain;
  EXPECT_GE(fx.monitor->retentionSec(),
            f.lookback_sec + f.history_error_window_sec +
                2 * f.burst_half_window_sec);
}

// --- Transport behaviour --------------------------------------------------

TEST(OnlineMonitor, UnroutableComponentCountsAsIngestFailure) {
  Fixture fx;
  fx.monitor->ingest(99, 0, sampleAt(0, 99));
  EXPECT_EQ(
      fx.monitor->metrics().snapshot().counters.at("online.ingest_failures"),
      1u);
}

TEST(OnlineMonitor, FlakyIngestIsLossyButGapFillRepairsTheSlave) {
  OnlineMonitorConfig cfg;
  core::FChainSlave slave(0, cfg.fchain);
  slave.addComponent(0, 0);
  OnlineMonitor monitor(cfg);
  runtime::FlakyConfig flaky;
  flaky.drop_probability = 0.2;
  flaky.seed = 5;
  monitor.addEndpoint(
      std::make_shared<runtime::FlakyEndpoint>(
          std::make_shared<runtime::LocalEndpoint>(&slave), flaky),
      {0});
  AppSpec spec;
  spec.name = "lossy";
  spec.components = {0};
  monitor.addApplication(spec);
  for (TimeSec t = 0; t < 400; ++t) monitor.ingest(0, t, sampleAt(t, 0));
  const auto snap = monitor.metrics().snapshot();
  const std::uint64_t failures = snap.counters.at("online.ingest_failures");
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, 400u);
  // The slave's series is gap-filled back to a contiguous 1 Hz stream; at
  // most the tail sample is missing (if the final sends were dropped).
  ASSERT_NE(slave.seriesOf(0), nullptr);
  EXPECT_GE(slave.seriesOf(0)->endTime(), 395);
  EXPECT_EQ(slave.ingestStatsOf(0)->gaps_filled + 400 - failures,
            static_cast<std::size_t>(slave.seriesOf(0)->endTime()));
}

TEST(OnlineMonitor, CheckpointedIngestJournalsEverySample) {
  const std::string dir =
      ::testing::TempDir() + "/online_checkpointed_ingest";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  OnlineMonitorConfig cfg;
  core::FChainSlave slave(0, cfg.fchain);
  slave.addComponent(0, 0);
  core::SlaveCheckpointer checkpointer(slave, dir);
  OnlineMonitor monitor(cfg);
  monitor.addEndpoint(
      std::make_shared<CheckpointedEndpoint>(&slave, &checkpointer), {0});
  for (TimeSec t = 0; t < 50; ++t) monitor.ingest(0, t, sampleAt(t, 0));
  EXPECT_EQ(checkpointer.journaledSinceSnapshot(), 50u);
  // Crash now: recovery rebuilds a slave with the identical series.
  const auto recovered = core::SlaveCheckpointer::recover(dir, 0, cfg.fchain);
  ASSERT_NE(recovered.slave.seriesOf(0), nullptr);
  EXPECT_EQ(recovered.slave.seriesOf(0)->endTime(),
            slave.seriesOf(0)->endTime());
}

TEST(OnlineMonitor, IncidentCallbackSeesTheIncidentSynchronously) {
  Fixture fx;
  std::vector<TimeSec> seen;
  fx.monitor->onIncident(
      [&](const OnlineIncident& incident) {
        seen.push_back(incident.violation_time);
        // At callback time the slaves hold complete data through the
        // trigger tick — the equivalence-harness contract.
        EXPECT_EQ(fx.front->seriesOf(0)->endTime(),
                  incident.triggered_at + 1);
      });
  for (TimeSec t = 0; t < 100; ++t) fx.streamTick(t, 0.05);
  for (TimeSec t = 100; t < 110; ++t) fx.streamTick(t, 0.5);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 102);
}

TEST(OnlineMonitor, ApplicationWithNoComponentsIsRejected) {
  OnlineMonitor monitor;
  AppSpec empty;
  empty.name = "empty";
  EXPECT_THROW(monitor.addApplication(empty), std::invalid_argument);
}

}  // namespace
}  // namespace fchain::online
