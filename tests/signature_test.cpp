// Tests for spectral analysis and PRESS's signature-driven prediction mode.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "common/stats.h"
#include "markov/signature.h"
#include "signal/spectrum.h"

namespace fchain {
namespace {

std::vector<double> sine(std::size_t n, double period, double amplitude,
                         double base = 100.0, double noise = 0.0,
                         std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(base +
                 amplitude * std::sin(2.0 * std::numbers::pi *
                                      static_cast<double>(i) / period) +
                 (noise > 0 ? rng.gaussian(0.0, noise) : 0.0));
  }
  return xs;
}

// ------------------------------------------------------------- spectrum ---

TEST(Spectrum, PeriodogramPeaksAtTheToneBin) {
  const auto xs = sine(256, 16.0, 5.0);
  const auto power = signal::periodogram(xs);
  std::size_t peak = 1;
  for (std::size_t k = 2; k < power.size(); ++k) {
    if (power[k] > power[peak]) peak = k;
  }
  EXPECT_EQ(peak, 16u);  // 256 / 16 = bin 16
}

TEST(Spectrum, DominantPeriodFindsTheCycle) {
  const auto xs = sine(512, 32.0, 10.0, 100.0, 0.5, 2);
  const auto dominant = signal::dominantPeriod(xs);
  ASSERT_TRUE(dominant.has_value());
  EXPECT_NEAR(static_cast<double>(dominant->period), 32.0, 2.0);
  EXPECT_GT(dominant->power_fraction, 0.5);
}

TEST(Spectrum, WhiteNoiseHasNoDominantPeriod) {
  Rng rng(3);
  std::vector<double> xs(512);
  for (double& x : xs) x = rng.gaussian(50.0, 5.0);
  const auto dominant = signal::dominantPeriod(xs);
  // A peak always exists, but it holds only a sliver of the energy.
  if (dominant.has_value()) {
    EXPECT_LT(dominant->power_fraction, 0.2);
  }
}

TEST(Spectrum, PeriodBandIsRespected) {
  const auto xs = sine(512, 8.0, 10.0);
  const auto dominant = signal::dominantPeriod(xs, /*min_period=*/16);
  if (dominant.has_value()) {
    EXPECT_GE(dominant->period, 16u);
  }
}

TEST(Spectrum, ShortSignalsAreSafe) {
  EXPECT_FALSE(signal::dominantPeriod(std::vector<double>{1, 2, 3}).has_value());
  EXPECT_TRUE(signal::periodogram(std::vector<double>{1.0}).empty());
}

TEST(Spectrum, AutocorrelationBasics) {
  const auto xs = sine(256, 16.0, 5.0);
  EXPECT_NEAR(signal::autocorrelation(xs, 0), 1.0, 1e-9);
  EXPECT_GT(signal::autocorrelation(xs, 16), 0.8);   // one full cycle
  EXPECT_LT(signal::autocorrelation(xs, 8), -0.8);   // half cycle
  EXPECT_DOUBLE_EQ(signal::autocorrelation(xs, 300), 0.0);  // lag >= n
}

// ------------------------------------------------------------ signature ---

TEST(SignaturePredictor, LocksOntoAPeriodicSignal) {
  markov::SignatureConfig config;
  config.refresh = 100;
  markov::SignaturePredictor predictor(config);
  const auto xs = sine(600, 20.0, 15.0, 100.0, 0.3, 4);
  for (double x : xs) predictor.observe(x);
  ASSERT_TRUE(predictor.period().has_value());
  EXPECT_NEAR(static_cast<double>(*predictor.period()), 20.0, 2.0);
  const auto prediction = predictor.predictNext();
  ASSERT_TRUE(prediction.has_value());
  // The next sample continues the sine.
  const double expected =
      100.0 + 15.0 * std::sin(2.0 * std::numbers::pi * 600.0 / 20.0);
  EXPECT_NEAR(*prediction, expected, 3.0);
}

TEST(SignaturePredictor, StaysOffForAperiodicSignals) {
  markov::SignatureConfig config;
  config.refresh = 100;
  markov::SignaturePredictor predictor(config);
  Rng rng(5);
  for (int i = 0; i < 600; ++i) predictor.observe(rng.gaussian(50.0, 5.0));
  EXPECT_FALSE(predictor.period().has_value());
  EXPECT_FALSE(predictor.predictNext().has_value());
}

TEST(HybridPredictor, BeatsMarkovOnSquareWaves) {
  // A 20 s square wave: the Markov expectation predictor mispredicts every
  // flip; the signature mode nails the whole cycle.
  auto square = [](std::size_t i) {
    return (i / 10) % 2 == 0 ? 20.0 : 80.0;
  };
  markov::HybridPredictor hybrid(0);
  markov::OnlinePredictor plain(0);
  double hybrid_tail = 0.0, plain_tail = 0.0;
  for (std::size_t i = 0; i < 1200; ++i) {
    const double h = hybrid.observe(square(i));
    const double p = plain.observe(square(i));
    if (i >= 900) {
      hybrid_tail += h;
      plain_tail += p;
    }
  }
  EXPECT_TRUE(hybrid.signatureMode());
  EXPECT_LT(hybrid_tail, plain_tail * 0.5);
}

TEST(HybridPredictor, FallsBackToMarkovWhenAperiodic) {
  markov::HybridPredictor hybrid(0);
  Rng rng(6);
  for (int i = 0; i < 800; ++i) hybrid.observe(rng.gaussian(40.0, 2.0));
  EXPECT_FALSE(hybrid.signatureMode());
  EXPECT_TRUE(hybrid.predictNext().has_value());  // Markov still serves
}

TEST(HybridPredictor, NovelExcursionStillSpikesTheError) {
  markov::HybridPredictor hybrid(0);
  const auto xs = sine(800, 20.0, 10.0, 100.0, 0.3, 7);
  for (double x : xs) hybrid.observe(x);
  const double spike = hybrid.observe(400.0);  // fault-like excursion
  const auto errors = hybrid.errors().values();
  std::vector<double> normal(errors.begin() + 200, errors.end() - 1);
  EXPECT_GT(spike, 10.0 * percentile(normal, 90.0));
}

TEST(HybridPredictor, ErrorSeriesAligned) {
  markov::HybridPredictor hybrid(500);
  for (int i = 0; i < 40; ++i) hybrid.observe(1.0);
  EXPECT_EQ(hybrid.errors().startTime(), 500);
  EXPECT_EQ(hybrid.errors().endTime(), 540);
}

}  // namespace
}  // namespace fchain
