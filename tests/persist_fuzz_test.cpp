// Deterministic fuzz-style corpus tests for the persistence layer.
//
// The crash-tolerance story (PR 4) rests on one codec property: damaged
// bytes are *rejected with the byte offset of the damage* — never crashed
// on, never silently read as garbage state. These tests grind that property
// with a corpus of valid artifacts (a real slave snapshot, a sample
// journal, an incident journal — checked into tests/fixtures/corrupt_frames/
// so the byte format itself is pinned in version control) mutated by
//   - exhaustive truncation: every proper prefix of every artifact;
//   - exhaustive single-bit flips over frame headers and a whole small
//     frame at the codec level;
//   - seeded random bit flips over the full artifacts (fixed seeds, fixed
//     trial counts — the "fuzz" is replayable, a failure is a test case).
//
// Acceptance per mutation is format-specific:
//   - a snapshot decode must throw CorruptDataError (the frame CRC covers
//     the whole payload, so *any* flip is detectable) with offset() inside
//     the buffer and "byte offset" in the message;
//   - a journal read may instead degrade cleanly: record-region damage is
//     the crash-torn-tail signature, so the valid record *prefix* is
//     returned with clean = false — but the returned records must be a
//     byte-exact prefix of what was written (no garbage acceptance), and
//     header damage must throw.
//
// Regenerate the corpus after an intentional format change:
//   FCHAIN_UPDATE_FIXTURES=1 ./build/tests/test_persist_fuzz
// then review the binary diff like any other code change.
#include <array>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fchain/slave.h"
#include "persist/codec.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace fchain::persist {
namespace {

// --- Corpus construction (fully deterministic) ----------------------------

std::array<double, kMetricCount> sampleAt(TimeSec t, ComponentId id) {
  std::array<double, kMetricCount> sample{};
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const double base = 10.0 * (static_cast<double>(m) + 1.0) +
                        3.0 * static_cast<double>(id);
    sample[m] = base + ((t * 7 + m * 13 + id * 29) % 17) * 0.25;
  }
  return sample;
}

/// A real slave's learned state: two components, 150 s of telemetry —
/// enough to calibrate the discretizers so the snapshot carries non-trivial
/// Markov mass, error history, and series payloads.
std::vector<std::uint8_t> buildSnapshotBytes() {
  core::FChainSlave slave(0);
  slave.addComponent(0, 0);
  slave.addComponent(1, 0);
  for (TimeSec t = 0; t < 150; ++t) {
    slave.ingestAt(0, t, sampleAt(t, 0));
    slave.ingestAt(1, t, sampleAt(t, 1));
  }
  return encodeSlaveSnapshot(slave.snapshot(/*epoch=*/3));
}

std::vector<std::uint8_t> readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

void writeBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

constexpr std::size_t kJournalRecords = 40;

std::vector<SampleRecord> journalRecords() {
  std::vector<SampleRecord> records;
  for (std::size_t i = 0; i < kJournalRecords; ++i) {
    SampleRecord record;
    record.component = static_cast<ComponentId>(i % 3);
    record.t = static_cast<TimeSec>(100 + i);
    record.sample = sampleAt(record.t, record.component);
    records.push_back(record);
  }
  return records;
}

std::vector<std::uint8_t> buildSampleJournalBytes(const std::string& scratch) {
  {
    SampleJournalWriter writer(scratch, /*epoch=*/3, /*truncate=*/true);
    for (const SampleRecord& record : journalRecords()) writer.append(record);
  }
  return readBytes(scratch);
}

/// Three incidents: two completed, one deliberately left pending (so the
/// valid baseline itself exercises the pending() scan).
std::vector<std::uint8_t> buildIncidentJournalBytes(
    const std::string& scratch) {
  std::filesystem::remove(scratch);
  {
    IncidentJournal journal(scratch);
    const std::uint64_t a = journal.logStart({0, 1, 2, 3}, 1000);
    journal.logDone(a);
    journal.logStart({2, 5}, 2000);  // never done: stays pending
    const std::uint64_t c = journal.logStart({0, 2, 5, 7, 9}, 2500);
    journal.logDone(c);
  }
  return readBytes(scratch);
}

// --- Fixture management ---------------------------------------------------

std::string fixturePath(const std::string& name) {
  return std::string(FCHAIN_FIXTURE_DIR) + "/" + name;
}

bool updateFixturesRequested() {
  const char* update = std::getenv("FCHAIN_UPDATE_FIXTURES");
  return update != nullptr && update[0] != '\0' &&
         !(update[0] == '0' && update[1] == '\0');
}

struct Corpus {
  std::vector<std::uint8_t> snapshot;
  std::vector<std::uint8_t> sample_journal;
  std::vector<std::uint8_t> incident_journal;
};

/// Loads the checked-in corpus (regenerating it first when requested).
Corpus corpus() {
  const std::string scratch = ::testing::TempDir() + "/persist_fuzz_scratch";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  if (updateFixturesRequested()) {
    std::filesystem::create_directories(FCHAIN_FIXTURE_DIR);
    writeBytes(fixturePath("snapshot.bin"), buildSnapshotBytes());
    writeBytes(fixturePath("samples.journal"),
               buildSampleJournalBytes(scratch + "/samples.journal"));
    writeBytes(fixturePath("incidents.journal"),
               buildIncidentJournalBytes(scratch + "/incidents.journal"));
  }
  Corpus c;
  c.snapshot = readBytes(fixturePath("snapshot.bin"));
  c.sample_journal = readBytes(fixturePath("samples.journal"));
  c.incident_journal = readBytes(fixturePath("incidents.journal"));
  return c;
}

void expectByteOffsetError(const CorruptDataError& error, std::size_t size) {
  EXPECT_LE(error.offset(), size);
  EXPECT_NE(std::string(error.what()).find("byte offset"), std::string::npos)
      << error.what();
}

// --- Corpus freshness -----------------------------------------------------

// The encoders must still produce the checked-in bytes; a mismatch means
// the on-disk format changed and the corpus (and, for snapshots/journals,
// the version number) needs a deliberate regeneration.
TEST(PersistFuzz, CorpusMatchesCurrentEncoders) {
  const Corpus c = corpus();
  const std::string scratch = ::testing::TempDir() + "/persist_fuzz_fresh";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  EXPECT_EQ(c.snapshot, buildSnapshotBytes());
  EXPECT_EQ(c.sample_journal,
            buildSampleJournalBytes(scratch + "/samples.journal"));
  EXPECT_EQ(c.incident_journal,
            buildIncidentJournalBytes(scratch + "/incidents.journal"));
  // And the valid baselines round-trip.
  const SlaveSnapshot snapshot = decodeSlaveSnapshot(c.snapshot);
  EXPECT_EQ(snapshot.vms.size(), 2u);
  EXPECT_EQ(snapshot.epoch, 3u);
}

// --- Snapshot mutations ---------------------------------------------------

TEST(PersistFuzz, EverySnapshotTruncationIsRejectedWithAnOffset) {
  const std::vector<std::uint8_t> valid = corpus().snapshot;
  ASSERT_GT(valid.size(), kFrameHeaderSize);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::span<const std::uint8_t> prefix(valid.data(), len);
    try {
      decodeSlaveSnapshot(prefix);
      FAIL() << "truncation to " << len << " bytes decoded successfully";
    } catch (const CorruptDataError& error) {
      expectByteOffsetError(error, len);
    }
    // No other exception type, no crash: anything else propagates and
    // fails the test harness.
  }
}

TEST(PersistFuzz, SeededBitFlipsOverASnapshotAreAllRejected) {
  const std::vector<std::uint8_t> valid = corpus().snapshot;
  Rng rng(0xf1a9'0001);
  for (int trial = 0; trial < 512; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t byte = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(bytes.size())));
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.below(8));
    bytes[byte] ^= bit;
    try {
      decodeSlaveSnapshot(bytes);
      FAIL() << "bit flip at byte " << byte << " mask " << int(bit)
             << " decoded successfully";
    } catch (const CorruptDataError& error) {
      expectByteOffsetError(error, bytes.size());
    }
  }
}

// At the codec layer the guarantee is exhaustive: *every* single-bit flip
// anywhere in a framed buffer is rejected (magic, version — v0 is invalid,
// so the version word has no undetectable flip — length, checksum, and the
// CRC-covered payload).
TEST(PersistFuzz, EverySingleBitFlipInAFrameIsRejected) {
  Encoder payload;
  for (int i = 0; i < 3; ++i) payload.f64(1.5 + i);
  const std::vector<std::uint8_t> valid =
      frame(kSnapshotMagic, /*version=*/1, payload.buffer());
  for (std::size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> bytes = valid;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(unframe(bytes, kSnapshotMagic, /*max_version=*/1),
                   CorruptDataError)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

// --- Sample journal mutations ---------------------------------------------

/// The journal header is magic u32 | version u32 | epoch u64. The epoch is
/// deliberately outside any checksum (it is cross-validated against the
/// snapshot by SlaveCheckpointer, not by the codec), so a flip there reads
/// back as a different epoch with intact records.
constexpr std::size_t kJournalHeaderBytes = 16;

/// Journal acceptance: header damage throws with an offset; record-region
/// damage replays the valid record *prefix*. Either way the records handed
/// back must be a byte-exact prefix of what was written — never garbage.
void expectSaneSampleJournal(const std::string& path, std::size_t size) {
  const std::vector<SampleRecord> original = journalRecords();
  try {
    const SampleJournalReplay replay = readSampleJournal(path);
    ASSERT_LE(replay.records.size(), original.size());
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      EXPECT_EQ(replay.records[i].component, original[i].component);
      EXPECT_EQ(replay.records[i].t, original[i].t);
      EXPECT_EQ(replay.records[i].sample, original[i].sample);  // bit-exact
    }
  } catch (const CorruptDataError& error) {
    expectByteOffsetError(error, size);
  }
}

TEST(PersistFuzz, EverySampleJournalTruncationDegradesOrRejects) {
  const std::vector<std::uint8_t> valid = corpus().sample_journal;
  const std::string path = ::testing::TempDir() + "/fuzz_trunc.journal";
  for (std::size_t len = 0; len < valid.size(); ++len) {
    writeBytes(path, {valid.begin(), valid.begin() + len});
    // A cut exactly on a record boundary legitimately reads clean (it is
    // indistinguishable from a shorter journal); any other cut must either
    // throw (header region) or drop the torn tail.
    expectSaneSampleJournal(path, len);
  }
}

TEST(PersistFuzz, SeededBitFlipsOverASampleJournalNeverYieldGarbage) {
  const std::vector<std::uint8_t> valid = corpus().sample_journal;
  const std::string path = ::testing::TempDir() + "/fuzz_flip.journal";
  Rng rng(0xf1a9'0002);
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t byte = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(bytes.size())));
    bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    writeBytes(path, bytes);
    expectSaneSampleJournal(path, bytes.size());
    if (byte >= kJournalHeaderBytes) {
      // Record-region damage is the torn-tail signature: the scan stops at
      // the flipped record (a CRC collision is the only escape, and these
      // fixed seeds prove none occurs).
      const SampleJournalReplay replay = readSampleJournal(path);
      EXPECT_FALSE(replay.clean) << "flip at byte " << byte;
      EXPECT_LT(replay.records.size(), kJournalRecords);
    }
  }
}

// --- Incident journal mutations -------------------------------------------

/// pending() must throw with an offset or compute from a valid prefix:
/// every entry it returns must match an incident we actually logged (no
/// garbage), and entries can only move from done to pending (dropping a
/// suffix can lose a Done marker, never invent one).
void expectSaneIncidentPending(const std::string& path, std::size_t size) {
  try {
    const auto pending = IncidentJournal::pending(path);
    for (const IncidentJournal::Pending& p : pending) {
      if (p.id == 1) {
        EXPECT_EQ(p.components, (std::vector<ComponentId>{0, 1, 2, 3}));
        EXPECT_EQ(p.violation_time, 1000);
      } else if (p.id == 2) {
        EXPECT_EQ(p.components, (std::vector<ComponentId>{2, 5}));
        EXPECT_EQ(p.violation_time, 2000);
      } else if (p.id == 3) {
        EXPECT_EQ(p.components, (std::vector<ComponentId>{0, 2, 5, 7, 9}));
        EXPECT_EQ(p.violation_time, 2500);
      } else {
        ADD_FAILURE() << "pending() invented incident id " << p.id;
      }
    }
  } catch (const CorruptDataError& error) {
    expectByteOffsetError(error, size);
  }
}

TEST(PersistFuzz, EveryIncidentJournalTruncationDegradesOrRejects) {
  const std::vector<std::uint8_t> valid = corpus().incident_journal;
  const std::string path = ::testing::TempDir() + "/fuzz_trunc_incident.j";
  for (std::size_t len = 0; len < valid.size(); ++len) {
    writeBytes(path, {valid.begin(), valid.begin() + len});
    expectSaneIncidentPending(path, len);
  }
}

TEST(PersistFuzz, SeededBitFlipsOverAnIncidentJournalNeverYieldGarbage) {
  const std::vector<std::uint8_t> valid = corpus().incident_journal;
  const std::string path = ::testing::TempDir() + "/fuzz_flip_incident.j";
  Rng rng(0xf1a9'0003);
  for (int trial = 0; trial < 256; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t byte = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(bytes.size())));
    bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    writeBytes(path, bytes);
    expectSaneIncidentPending(path, bytes.size());
  }
}

// A writer reopening a journal whose tail is torn must truncate the damage
// instead of appending behind it (PR 4's invariant) — fuzz the reopen path
// too: for every truncation point, reopening for append then reading back
// must never crash and must yield a prefix of the original records plus the
// new record.
TEST(PersistFuzz, ReopeningEveryTruncatedJournalTruncatesTheTornTail) {
  const std::vector<std::uint8_t> valid = corpus().sample_journal;
  const std::vector<SampleRecord> original = journalRecords();
  const std::string path = ::testing::TempDir() + "/fuzz_reopen.journal";
  SampleRecord extra;
  extra.component = 9;
  extra.t = 999;
  extra.sample = sampleAt(extra.t, extra.component);
  for (std::size_t len = 0; len < valid.size(); ++len) {
    writeBytes(path, {valid.begin(), valid.begin() + len});
    try {
      {
        SampleJournalWriter writer(path, /*epoch=*/3, /*truncate=*/false);
        writer.append(extra);
      }
      const SampleJournalReplay replay = readSampleJournal(path);
      EXPECT_TRUE(replay.clean) << "reopen left damage at prefix " << len;
      ASSERT_FALSE(replay.records.empty());
      EXPECT_EQ(replay.records.back().t, extra.t);
      ASSERT_LE(replay.records.size() - 1, original.size());
      for (std::size_t i = 0; i + 1 < replay.records.size(); ++i) {
        EXPECT_EQ(replay.records[i].t, original[i].t);
        EXPECT_EQ(replay.records[i].sample, original[i].sample);
      }
    } catch (const CorruptDataError& error) {
      // A file cut inside the *header* is untrustworthy for append...
      expectByteOffsetError(error, len);
    } catch (const std::runtime_error&) {
      // ...or is recreated/rejected via the writer's own error path.
    }
  }
}

}  // namespace
}  // namespace fchain::persist
