// Tests for the top-level incident-report API.
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "fchain/incident.h"

namespace fchain::core {
namespace {

const eval::TrialSet& cpuHogTrials() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 2;
    options.base_seed = 17;
    options.keep_snapshots = true;
    return eval::generateTrials(eval::rubisCpuHog(), options);
  }();
  return set;
}

TEST(Incident, DiagnosesARealIncident) {
  ASSERT_FALSE(cpuHogTrials().trials.empty());
  const auto& trial = cpuHogTrials().trials.front();
  const auto report = diagnoseIncident(trial.record);
  EXPECT_TRUE(report.diagnosed);
  EXPECT_EQ(report.violation_time, *trial.record.violation_time);
  EXPECT_TRUE(report.dependency_available);
  EXPECT_EQ(report.dependency_edges, 4u);
  EXPECT_FALSE(report.result.external_factor);
  EXPECT_EQ(report.result.pinpointed, trial.record.ground_truth);
  EXPECT_FALSE(report.validated.has_value());  // no snapshot supplied
}

TEST(Incident, ValidationRunsWhenSnapshotSupplied) {
  ASSERT_FALSE(cpuHogTrials().trials.empty());
  const auto& trial = cpuHogTrials().trials.front();
  const auto report =
      diagnoseIncident(trial.record, &*trial.snapshot);
  ASSERT_TRUE(report.validated.has_value());
  for (ComponentId id : *report.validated) {
    EXPECT_TRUE(std::find(report.result.pinpointed.begin(),
                          report.result.pinpointed.end(),
                          id) != report.result.pinpointed.end());
  }
}

TEST(Incident, EmptyRecordIsSafe) {
  sim::RunRecord record;
  const auto report = diagnoseIncident(record);
  EXPECT_FALSE(report.diagnosed);
  EXPECT_NE(formatIncidentReport(report, record).find("no SLO violation"),
            std::string::npos);
}

TEST(Incident, FixedWindowModeRespectsConfig) {
  ASSERT_FALSE(cpuHogTrials().trials.empty());
  const auto& trial = cpuHogTrials().trials.front();
  DiagnosisOptions options;
  options.adaptive_window = false;
  options.config.lookback_sec = 100;
  const auto report = diagnoseIncident(trial.record, nullptr, options);
  EXPECT_EQ(report.lookback_window, 100);
}

TEST(Incident, NoDiscoveryFallsBackToChronology) {
  ASSERT_FALSE(cpuHogTrials().trials.empty());
  const auto& trial = cpuHogTrials().trials.front();
  DiagnosisOptions options;
  options.discover_dependencies = false;
  const auto report = diagnoseIncident(trial.record, nullptr, options);
  EXPECT_FALSE(report.dependency_available);
  EXPECT_EQ(report.dependency_edges, 0u);
  EXPECT_FALSE(report.result.pinpointed.empty());
}

TEST(Incident, FormatNamesTheChainAndVerdict) {
  ASSERT_FALSE(cpuHogTrials().trials.empty());
  const auto& trial = cpuHogTrials().trials.front();
  const auto report = diagnoseIncident(trial.record, &*trial.snapshot);
  const auto text = formatIncidentReport(report, trial.record);
  EXPECT_NE(text.find("SLO violation at t="), std::string::npos);
  EXPECT_NE(text.find("propagation chain"), std::string::npos);
  EXPECT_NE(text.find("pinpointed"), std::string::npos);
  EXPECT_NE(text.find("db"), std::string::npos);
  EXPECT_NE(text.find("after online validation"), std::string::npos);
}

TEST(Incident, ExternalFactorFormatting) {
  eval::TrialOptions options;
  options.trials = 3;
  options.base_seed = 5;
  const auto set = eval::generateTrials(eval::rubisWorkloadSurge(), options);
  for (const auto& trial : set.trials) {
    const auto report = diagnoseIncident(trial.record);
    if (!report.result.external_factor) continue;
    const auto text = formatIncidentReport(report, trial.record);
    EXPECT_NE(text.find("EXTERNAL FACTOR"), std::string::npos);
    EXPECT_NE(text.find("workload increase"), std::string::npos);
    return;  // one formatted external verdict is enough
  }
  GTEST_SKIP() << "no surge trial produced an external verdict";
}

}  // namespace
}  // namespace fchain::core
