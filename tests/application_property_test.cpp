// Property sweeps over the application engine with randomized topologies:
// conservation and boundedness invariants that must hold regardless of the
// DAG's shape, rates or buffer sizes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/application.h"

namespace fchain::sim {
namespace {

/// Builds a random layered DAG: `layers` tiers, 1-3 components each, every
/// component wired to 1-2 components of the next tier, random capacities
/// and buffers. Noiseless, amplification 1, so work is conserved exactly.
ApplicationSpec randomDag(Rng& rng, std::size_t layers) {
  ApplicationSpec spec;
  spec.name = "random";
  std::vector<std::vector<ComponentId>> tiers;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::size_t width = 1 + rng.below(3);
    std::vector<ComponentId> tier;
    for (std::size_t i = 0; i < width; ++i) {
      ComponentSpec component;
      component.name =
          "c" + std::to_string(layer) + "_" + std::to_string(i);
      component.cpu_demand = rng.uniform(0.002, 0.01);
      component.cpu_capacity = rng.uniform(0.5, 2.0);
      component.buffer_limit = rng.uniform(50.0, 500.0);
      component.noise_level = 0.0;
      component.background_cpu = 0.0;
      tier.push_back(static_cast<ComponentId>(spec.components.size()));
      spec.components.push_back(component);
    }
    tiers.push_back(std::move(tier));
  }
  for (std::size_t layer = 0; layer + 1 < layers; ++layer) {
    for (ComponentId from : tiers[layer]) {
      const std::size_t fanout = 1 + rng.below(2);
      std::vector<ComponentId> chosen;
      for (std::size_t f = 0; f < fanout; ++f) {
        chosen.push_back(
            tiers[layer + 1][rng.below(tiers[layer + 1].size())]);
      }
      std::sort(chosen.begin(), chosen.end());
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
      const double weight = 1.0 / static_cast<double>(chosen.size());
      for (ComponentId to : chosen) {
        spec.edges.push_back({from, to, weight});
      }
    }
  }
  spec.reference_path = {tiers.front().front()};
  return spec;
}

class ApplicationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApplicationProperty, QueuesStayWithinBufferPlusDrain) {
  Rng rng(GetParam());
  const auto spec = randomDag(rng, 2 + rng.below(3));
  Application app(spec, GetParam());
  app.setWorkload(std::vector<double>(300, rng.uniform(20.0, 200.0)));
  for (int t = 0; t < 300; ++t) {
    app.step();
    for (ComponentId id = 0; id < app.componentCount(); ++id) {
      const auto& state = app.stateOf(id);
      for (double queue : state.in_queues) {
        EXPECT_GE(queue, -1e-6);
        // The allowance admits at most one extra tick of downstream drain
        // beyond the buffer; nominal capacity bounds that drain.
        const double drain_bound =
            spec.components[id].cpu_capacity / spec.components[id].cpu_demand;
        EXPECT_LE(queue,
                  spec.components[id].buffer_limit + drain_bound + 1e-6)
            << "component " << id << " at t=" << t;
      }
    }
  }
}

TEST_P(ApplicationProperty, WorkIsConservedEndToEnd) {
  Rng rng(GetParam() ^ 0x55);
  const auto spec = randomDag(rng, 3);
  Application app(spec, GetParam());
  const double rate = rng.uniform(10.0, 80.0);
  app.setWorkload(std::vector<double>(600, rate));
  // Sources are components with no in-edges (a random DAG can leave
  // later-tier components unwired, which also makes them sources); sinks
  // have no out-edges.
  std::vector<bool> has_in(app.componentCount(), false);
  std::vector<bool> has_out(app.componentCount(), false);
  for (const auto& edge : spec.edges) {
    has_in[edge.to] = true;
    has_out[edge.from] = true;
  }
  double accepted = 0.0, completed = 0.0;
  for (int t = 0; t < 600; ++t) {
    app.step();
    for (ComponentId id = 0; id < app.componentCount(); ++id) {
      const auto& state = app.stateOf(id);
      if (!has_in[id]) accepted += state.arrived - state.dropped;
      if (!has_out[id]) completed += state.processed;
    }
  }
  // Everything accepted either completed or is still inside the system.
  double in_flight = 0.0;
  for (ComponentId id = 0; id < app.componentCount(); ++id) {
    in_flight += app.stateOf(id).totalQueue();
  }
  EXPECT_NEAR(accepted, completed + in_flight, accepted * 0.02 + 10.0);
}

TEST_P(ApplicationProperty, MetricsAreFiniteAndNonNegative) {
  Rng rng(GetParam() ^ 0x77);
  const auto spec = randomDag(rng, 2 + rng.below(3));
  Application app(spec, GetParam());
  app.setWorkload(std::vector<double>(200, rng.uniform(20.0, 300.0)));
  for (int t = 0; t < 200; ++t) app.step();
  for (ComponentId id = 0; id < app.componentCount(); ++id) {
    for (MetricKind kind : kAllMetrics) {
      for (double value : app.metricsOf(id).of(kind).values()) {
        EXPECT_TRUE(std::isfinite(value));
        EXPECT_GE(value, 0.0);
      }
    }
  }
}

TEST_P(ApplicationProperty, DeterministicForIdenticalSeeds) {
  Rng rng_a(GetParam() ^ 0x99), rng_b(GetParam() ^ 0x99);
  const auto spec_a = randomDag(rng_a, 3);
  const auto spec_b = randomDag(rng_b, 3);
  Application a(spec_a, 1234), b(spec_b, 1234);
  a.setWorkload(std::vector<double>(150, 50.0));
  b.setWorkload(std::vector<double>(150, 50.0));
  for (int t = 0; t < 150; ++t) {
    a.step();
    b.step();
  }
  for (ComponentId id = 0; id < a.componentCount(); ++id) {
    for (MetricKind kind : kAllMetrics) {
      const auto va = a.metricsOf(id).of(kind).values();
      const auto vb = b.metricsOf(id).of(kind).values();
      for (std::size_t i = 0; i < va.size(); i += 37) {
        EXPECT_DOUBLE_EQ(va[i], vb[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApplicationProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fchain::sim
