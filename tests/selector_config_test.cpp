// Behavioural tests for the selector's configuration knobs: each knob must
// move the decision in its documented direction.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fchain/change_selector.h"

namespace fchain::core {
namespace {

/// Series with a persistent mid-size step at t=850 over mild noise.
struct StepFixture {
  MetricSeries series{0};
  NormalFluctuationModel model{0};

  explicit StepFixture(double step, double noise_sigma = 1.0,
                       std::uint64_t seed = 1) {
    Rng rng(seed);
    for (std::size_t i = 0; i < 900; ++i) {
      std::array<double, kMetricCount> sample{};
      sample[metricIndex(MetricKind::CpuUsage)] =
          40.0 + rng.gaussian(0.0, noise_sigma) + (i >= 850 ? step : 0.0);
      series.append(sample);
      model.observe(sample);
    }
  }

  std::optional<MetricFinding> analyze(const FChainConfig& config) const {
    return AbnormalChangeSelector(config).analyzeMetric(
        MetricKind::CpuUsage, series.of(MetricKind::CpuUsage),
        model.errorsOf(MetricKind::CpuUsage), 899);
  }
};

TEST(SelectorConfig, HigherErrorMarginIsStricter) {
  const StepFixture fixture(12.0);
  FChainConfig lax;
  lax.error_margin = 1.0;
  FChainConfig strict;
  strict.error_margin = 50.0;
  EXPECT_TRUE(fixture.analyze(lax).has_value());
  EXPECT_FALSE(fixture.analyze(strict).has_value());
}

TEST(SelectorConfig, HistoryFloorCanBeDisabled) {
  // A step small enough that the history floor filters it, but large enough
  // to clear the raw burst threshold.
  const StepFixture fixture(6.0, 1.5, 3);
  FChainConfig with_floor;
  FChainConfig no_floor;
  no_floor.history_error_window_sec = 0;
  const bool with = fixture.analyze(with_floor).has_value();
  const bool without = fixture.analyze(no_floor).has_value();
  // Disabling the floor can only make the selector more permissive.
  EXPECT_TRUE(without || !with);
}

TEST(SelectorConfig, PersistenceKnobControlsTransientRejection) {
  // A flash-crowd-style excursion: a sharp jump decaying back to baseline
  // long before violation time. Its onset error beats the (low-frequency)
  // burst threshold, so only the persistence check stands between it and a
  // false abnormal finding.
  Rng rng(4);
  MetricSeries series(0);
  NormalFluctuationModel model(0);
  for (std::size_t i = 0; i < 900; ++i) {
    std::array<double, kMetricCount> sample{};
    double value = 40.0 + rng.gaussian(0.0, 1.0);
    if (i >= 830) {
      value += 25.0 * std::exp(-static_cast<double>(i - 830) / 10.0);
    }
    sample[metricIndex(MetricKind::CpuUsage)] = value;
    series.append(sample);
    model.observe(sample);
  }
  FChainConfig checking;
  FChainConfig lenient;
  lenient.persistence_fraction = 0.0;
  const auto with_check = AbnormalChangeSelector(checking).analyzeMetric(
      MetricKind::CpuUsage, series.of(MetricKind::CpuUsage),
      model.errorsOf(MetricKind::CpuUsage), 899);
  const auto without_check = AbnormalChangeSelector(lenient).analyzeMetric(
      MetricKind::CpuUsage, series.of(MetricKind::CpuUsage),
      model.errorsOf(MetricKind::CpuUsage), 899);
  EXPECT_FALSE(with_check.has_value());
  EXPECT_TRUE(without_check.has_value());
}

TEST(SelectorConfig, BurstPercentileScalesTheThreshold) {
  const StepFixture fixture(8.0, 2.0, 5);
  FChainConfig lax;
  lax.burst.magnitude_percentile = 50.0;
  FChainConfig strict = lax;
  strict.burst.magnitude_percentile = 99.0;
  const auto lax_finding = fixture.analyze(lax);
  const auto strict_finding = fixture.analyze(strict);
  if (lax_finding.has_value() && strict_finding.has_value()) {
    EXPECT_LE(lax_finding->expected_error, strict_finding->expected_error);
  } else {
    // Stricter percentile can only lose findings, never gain them.
    EXPECT_TRUE(lax_finding.has_value() || !strict_finding.has_value());
  }
}

TEST(SelectorConfig, LookbackZeroWindowIsSafe) {
  const StepFixture fixture(12.0);
  FChainConfig config;
  config.lookback_sec = 0;
  EXPECT_FALSE(fixture.analyze(config).has_value());
}

TEST(SelectorConfig, ViolationBeforeDataIsSafe) {
  const StepFixture fixture(12.0);
  FChainConfig config;
  const auto finding = AbnormalChangeSelector(config).analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), /*tv=*/-50);
  EXPECT_FALSE(finding.has_value());
}

TEST(SelectorConfig, AdaptiveSmoothingPicksWidthByJitter) {
  // Indirect check: on a very noisy step series, adaptive smoothing must
  // still find the step (it smooths hard); on a clean one, likewise (it
  // smooths little). Both ends of the knob behave.
  const StepFixture noisy(45.0, 6.0, 6);
  const StepFixture clean(25.0, 0.3, 7);
  FChainConfig config;
  config.adaptive_smoothing = true;
  EXPECT_TRUE(noisy.analyze(config).has_value());
  EXPECT_TRUE(clean.analyze(config).has_value());
}

TEST(SelectorConfig, FindingFieldsAreInternallyConsistent) {
  const StepFixture fixture(15.0);
  const auto finding = fixture.analyze({});
  ASSERT_TRUE(finding.has_value());
  EXPECT_LE(finding->onset, finding->change_point);
  EXPECT_GT(finding->prediction_error, finding->expected_error);
  EXPECT_EQ(finding->metric, MetricKind::CpuUsage);
  EXPECT_EQ(finding->trend, Trend::Up);
}

}  // namespace
}  // namespace fchain::core
