// Unit & property tests for signal/fft and signal/burst.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <numbers>
#include <span>

#include "common/rng.h"
#include "obs/trace.h"
#include "signal/burst.h"
#include "signal/fft.h"

// Allocation counter for the ±Q-window round-trip micro-assert below: the
// change selector FFTs a small window around every candidate change point,
// so each direction of the transform is required to allocate exactly once.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fchain::signal {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(nextPow2(1), 1u);
  EXPECT_EQ(nextPow2(2), 2u);
  EXPECT_EQ(nextPow2(3), 4u);
  EXPECT_EQ(nextPow2(41), 64u);
  EXPECT_EQ(nextPow2(64), 64u);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  fftInPlace(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneConcentratesInOneBin) {
  constexpr std::size_t kN = 64;
  constexpr std::size_t kFreq = 5;
  std::vector<double> xs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * kFreq * i / kN);
  }
  const auto spectrum = fftReal(xs);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < kN / 2; ++i) {
    if (std::abs(spectrum[i]) > std::abs(spectrum[peak])) peak = i;
  }
  EXPECT_EQ(peak, kFreq);
  // Conjugate symmetry of a real signal's spectrum.
  for (std::size_t i = 1; i < kN / 2; ++i) {
    EXPECT_NEAR(std::abs(spectrum[i]), std::abs(spectrum[kN - i]), 1e-9);
  }
}

TEST(Fft, NonPow2InputThrows) {
  std::vector<std::complex<double>> data(12, 0.0);
  EXPECT_THROW(fftInPlace(data), std::invalid_argument);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(-10.0, 10.0);
  auto spectrum = fftReal(xs);
  const auto back = ifftToReal(std::move(spectrum), n);
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], xs[i], 1e-9) << "i=" << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 41, 64, 100,
                                           128, 333, 1024));

TEST(Fft, QWindowRoundTripAllocatesOncePerDirection) {
  // The selector's ±Q window is 2Q+1 = 41 samples by default. fftReal must
  // build its padded spectrum in a single allocation (reserve + bulk
  // assign, no element-wise growth or resize-reallocation), and ifftToReal
  // must transform in the moved-in buffer so its only allocation is the
  // returned real vector.
  constexpr std::size_t kQWindow = 41;
  std::vector<double> xs(kQWindow);
  for (std::size_t i = 0; i < kQWindow; ++i) {
    xs[i] = std::sin(0.37 * static_cast<double>(i));
  }

  // The claim is about the *kernel*: recording a profiling span (e.g. a
  // FCHAIN_TRACE=1 CI run) legitimately allocates, so silence the global
  // tracer around the counted region.
  obs::Tracer& tracer = obs::tracer();
  const bool trace_was_enabled = tracer.enabled();
  tracer.setEnabled(false);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  auto spectrum = fftReal(xs);
  const std::size_t after_forward =
      g_allocations.load(std::memory_order_relaxed);
  auto back = ifftToReal(std::move(spectrum), kQWindow);
  const std::size_t after_inverse =
      g_allocations.load(std::memory_order_relaxed);
  tracer.setEnabled(trace_was_enabled);

  EXPECT_EQ(after_forward - before, 1u);
  EXPECT_EQ(after_inverse - after_forward, 1u);
  ASSERT_EQ(back.size(), kQWindow);
  for (std::size_t i = 0; i < kQWindow; ++i) {
    EXPECT_NEAR(back[i], xs[i], 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  constexpr std::size_t kN = 128;
  Rng rng(77);
  std::vector<double> xs(kN);
  double time_energy = 0.0;
  for (double& x : xs) {
    x = rng.gaussian();
    time_energy += x * x;
  }
  const auto spectrum = fftReal(xs);
  double freq_energy = 0.0;
  for (const auto& bin : spectrum) freq_energy += std::norm(bin);
  EXPECT_NEAR(freq_energy / kN, time_energy, 1e-6);
}

// ---------------------------------------------------------------- burst ---

TEST(Burst, ConstantSignalHasZeroExpectedError) {
  std::vector<double> xs(41, 42.0);
  EXPECT_NEAR(expectedPredictionError(xs), 0.0, 1e-9);
}

TEST(Burst, SlowRampIsMostlyFilteredOut) {
  // A slow linear ramp is low-frequency content: the synthesized burst
  // signal should be small relative to the ramp's total swing.
  std::vector<double> xs;
  for (int i = 0; i < 41; ++i) xs.push_back(100.0 + 2.0 * i);  // swing 80
  EXPECT_LT(expectedPredictionError(xs), 20.0);
}

TEST(Burst, AlternatingSignalKeepsItsAmplitude) {
  // A +-A alternation is the highest frequency there is: the burst signal
  // carries essentially all of it.
  std::vector<double> xs;
  for (int i = 0; i < 41; ++i) xs.push_back(i % 2 == 0 ? 110.0 : 90.0);
  EXPECT_GT(expectedPredictionError(xs), 5.0);
}

TEST(Burst, BurstierSignalGetsHigherThreshold) {
  Rng rng(5);
  std::vector<double> calm, bursty;
  for (int i = 0; i < 41; ++i) {
    const double base = 50.0;
    calm.push_back(base + rng.gaussian(0.0, 1.0));
    bursty.push_back(base + rng.gaussian(0.0, 8.0));
  }
  EXPECT_GT(expectedPredictionError(bursty),
            2.0 * expectedPredictionError(calm));
}

TEST(Burst, TinyWindowsAreSafe) {
  // Cold-start semantic: a window shorter than min_window has no spectrum
  // to estimate burstiness from, so the expected error is +inf ("no
  // threshold yet" — nothing can look abnormal), not 0.0 (which made
  // *every* nonzero error look abnormal).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(expectedPredictionError(std::vector<double>{}), inf);
  EXPECT_EQ(expectedPredictionError(std::vector<double>{1.0}), inf);
  BurstConfig config;
  std::vector<double> window;
  for (std::size_t i = 0; i < config.min_window; ++i) {
    window.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  // One below the minimum: still cold. At the minimum: finite threshold.
  EXPECT_EQ(expectedPredictionError(
                std::span<const double>(window).subspan(1), config),
            inf);
  EXPECT_TRUE(std::isfinite(expectedPredictionError(window, config)));
  const auto burst = burstSignal(std::vector<double>{1.0});
  ASSERT_EQ(burst.size(), 1u);
  EXPECT_DOUBLE_EQ(burst[0], 0.0);
}

class BurstFraction : public ::testing::TestWithParam<double> {};

TEST_P(BurstFraction, HigherFractionKeepsMoreEnergy) {
  // Property: widening the high-frequency band can only add energy to the
  // burst signal (Parseval: each extra bin contributes non-negatively).
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 41; ++i) xs.push_back(rng.gaussian(100.0, 5.0));
  BurstConfig narrow;
  narrow.high_freq_fraction = GetParam();
  BurstConfig wide;
  wide.high_freq_fraction = std::min(1.0, GetParam() + 0.2);
  auto energy = [&](const BurstConfig& config) {
    double sum = 0.0;
    for (double b : burstSignal(xs, config)) sum += b * b;
    return sum;
  };
  EXPECT_LE(energy(narrow), energy(wide) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BurstFraction,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8));

}  // namespace
}  // namespace fchain::signal
