// Tests for the baseline schemes behind the FaultLocalizer interface.
#include <gtest/gtest.h>

#include "baselines/fchain_scheme.h"
#include "baselines/graph_schemes.h"
#include "baselines/histogram_scheme.h"
#include "baselines/netmedic.h"
#include "eval/runner.h"

namespace fchain::baselines {
namespace {

/// Shared incidents (kept static: simulation runs once per suite).
const eval::TrialSet& rubisCpuHogTrials() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 3;
    options.base_seed = 12;
    return eval::generateTrials(eval::rubisCpuHog(), options);
  }();
  return set;
}

const eval::TrialSet& systemsTrials() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 2;
    options.base_seed = 12;
    return eval::generateTrials(eval::systemsMemLeak(), options);
  }();
  return set;
}

TEST(Histogram, FaultyComponentScoresHighest) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  HistogramScheme scheme;
  for (const auto& trial : rubisCpuHogTrials().trials) {
    const TimeSec tv = *trial.record.violation_time;
    const double db_score = scheme.score(trial.record, 3, tv);
    const double web_score = scheme.score(trial.record, 0, tv);
    EXPECT_GT(db_score, web_score);
  }
}

TEST(Histogram, ThresholdSweepIsMonotoneInSetSize) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  HistogramScheme scheme;
  const auto input = eval::inputFor(rubisCpuHogTrials().trials.front());
  std::size_t previous = 100;
  for (double threshold : scheme.thresholdSweep()) {
    const auto pinpointed = scheme.localize(input, threshold);
    EXPECT_LE(pinpointed.size(), previous);
    previous = pinpointed.size();
  }
}

TEST(NetMedic, RankingContainsEveryComponentOnce) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  NetMedicScheme scheme;
  const auto ranking =
      scheme.rank(eval::inputFor(rubisCpuHogTrials().trials.front()));
  EXPECT_EQ(ranking.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const auto& [id, score] : ranking) {
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    EXPECT_GE(score, 0.0);
  }
  // Scores must be sorted descending.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].second, ranking[i].second);
  }
}

TEST(NetMedic, WiderDeltaPinpointsMore) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  NetMedicScheme scheme;
  const auto input = eval::inputFor(rubisCpuHogTrials().trials.front());
  const auto narrow = scheme.localize(input, 0.02);
  const auto wide = scheme.localize(input, 0.5);
  EXPECT_LE(narrow.size(), wide.size());
  EXPECT_FALSE(narrow.empty());
}

TEST(GraphSchemes, UpstreamAbnormalPicksSubgraphSources) {
  // a -> b -> c, all abnormal: only a survives; d abnormal off-graph: kept.
  netdep::DependencyGraph graph(4);
  graph.addEdge(0, 1);
  graph.addEdge(1, 2);
  std::vector<core::ComponentFinding> abnormal(4);
  for (ComponentId id = 0; id < 4; ++id) abnormal[id].component = id;
  const auto picked = upstreamAbnormal(abnormal, graph);
  EXPECT_EQ(picked, (std::vector<ComponentId>{0, 3}));
}

TEST(GraphSchemes, TopologyBlamesUpstreamOnBackPressure) {
  // The paper's failure mode: db fault propagates upstream; Topology blames
  // the web tier instead of the db.
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  TopologyScheme scheme;
  std::size_t blamed_db = 0, blamed_upstream = 0;
  for (const auto& trial : rubisCpuHogTrials().trials) {
    const auto pinpointed =
        scheme.localize(eval::inputFor(trial), scheme.defaultThreshold());
    for (ComponentId id : pinpointed) {
      if (id == 3) {
        ++blamed_db;
      } else {
        ++blamed_upstream;
      }
    }
  }
  EXPECT_GT(blamed_upstream, blamed_db);
}

TEST(GraphSchemes, DependencyDegeneratesWithoutDiscoveredGraph) {
  // System S: discovery finds nothing, so the Dependency scheme reports
  // every abnormal component (paper §III-B).
  ASSERT_FALSE(systemsTrials().trials.empty());
  DependencyScheme dependency;
  TopologyScheme topology;
  for (const auto& trial : systemsTrials().trials) {
    ASSERT_TRUE(trial.discovered.empty());
    const auto input = eval::inputFor(trial);
    const auto dep_set = dependency.localize(input, 2.0);
    const auto topo_set = topology.localize(input, 2.0);
    EXPECT_GE(dep_set.size(), topo_set.size());
  }
}

TEST(FixedFiltering, ExtremesBracketTheOutputSize) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  FixedFilteringScheme scheme;
  const auto input = eval::inputFor(rubisCpuHogTrials().trials.front());
  const auto permissive = scheme.localize(input, 0.01);
  const auto strict = scheme.localize(input, 1000.0);
  EXPECT_TRUE(strict.empty());
  EXPECT_FALSE(permissive.empty());
}

TEST(FChainScheme, DefaultThresholdPinpointsTheCulprit) {
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  FChainScheme scheme;
  std::size_t correct = 0;
  for (const auto& trial : rubisCpuHogTrials().trials) {
    const auto pinpointed =
        scheme.localize(eval::inputFor(trial), scheme.defaultThreshold());
    if (pinpointed == trial.record.ground_truth) ++correct;
  }
  EXPECT_GE(correct, rubisCpuHogTrials().trials.size() - 1);
}

TEST(FChainScheme, PalIgnoresDependencies) {
  PalScheme pal;
  EXPECT_EQ(pal.name(), "PAL");
  // PAL's config is fixed at construction; nothing to assert beyond running
  // it end to end without dependency input.
  ASSERT_FALSE(rubisCpuHogTrials().trials.empty());
  auto input = eval::inputFor(rubisCpuHogTrials().trials.front());
  input.discovered = nullptr;
  EXPECT_NO_THROW(pal.localize(input, 2.0));
}

TEST(Schemes, NamesAreDistinct) {
  FChainScheme a;
  PalScheme b;
  FixedFilteringScheme c;
  HistogramScheme d;
  NetMedicScheme e;
  TopologyScheme f;
  DependencyScheme g;
  std::vector<std::string> names{a.name(), b.name(), c.name(), d.name(),
                                 e.name(), f.name(), g.name()};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace fchain::baselines
