// End-to-end smoke test: simulate a RUBiS CpuHog incident and check that
// FChain pinpoints the database server.
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "baselines/fchain_scheme.h"

namespace fchain {
namespace {

TEST(Smoke, RubisCpuHogPinpointsDb) {
  eval::FaultCase fault_case = eval::rubisCpuHog();
  eval::TrialOptions options;
  options.trials = 2;
  options.base_seed = 7;
  const auto set = eval::generateTrials(fault_case, options);
  ASSERT_FALSE(set.trials.empty()) << "no trial produced an SLO violation";

  baselines::FChainScheme scheme(fault_case.fchain_config);
  for (const auto& trial : set.trials) {
    const auto pinpointed =
        scheme.localize(eval::inputFor(trial), scheme.defaultThreshold());
    EXPECT_EQ(pinpointed, trial.record.ground_truth);
  }
}

}  // namespace
}  // namespace fchain
