// Trace-replay identity suite (sim/trace.h): a recorded workload trace
// replayed from disk must be *bit-identical* to live generation at the same
// seed — intensities, the telemetry they drive through sim::StreamingSource,
// and the pinpoint verdict of an incident under that workload. The streaming
// TraceCursor must match the full in-memory evaluation bit for bit while
// keeping only the active event window resident. Damaged trace files are
// rejected with the absolute byte offset of the damage, per the persist
// conventions.
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "persist/codec.h"
#include "pinpoint_render.h"
#include "sim/mesh.h"
#include "sim/simulator.h"
#include "sim/stream.h"
#include "sim/trace.h"

namespace fchain::sim {
namespace {

TraceConfig testTraceConfig() {
  TraceConfig config;
  config.seed = 42;
  config.duration_sec = 4000;
  config.base_users_per_sec = 350.0;
  config.flash_per_hour = 4.0;
  config.shift_per_hour = 2.0;
  return config;
}

std::string tempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(TraceFormat, RoundTripIsBitExact) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  ASSERT_FALSE(trace.events.empty());
  const std::string path = tempPath("roundtrip.fctrace");
  writeTraceFile(path, trace);
  const WorkloadTrace loaded = readTraceFile(path);

  EXPECT_EQ(loaded.config.seed, trace.config.seed);
  EXPECT_EQ(loaded.config.duration_sec, trace.config.duration_sec);
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i].kind, trace.events[i].kind);
    EXPECT_EQ(loaded.events[i].start, trace.events[i].start);
    // Bit-level double equality, not approximate.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.events[i].magnitude),
              std::bit_cast<std::uint64_t>(trace.events[i].magnitude));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.events[i].duration_sec),
              std::bit_cast<std::uint64_t>(trace.events[i].duration_sec));
  }
  // And the replayed intensity function is the same bits everywhere.
  for (TimeSec t = 0; t < static_cast<TimeSec>(trace.config.duration_sec);
       ++t) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(loaded.intensityAt(t)),
              std::bit_cast<std::uint64_t>(trace.intensityAt(t)))
        << "intensity diverged at t=" << t;
  }
  std::filesystem::remove(path);
}

TEST(TraceCursorStreaming, BitEqualToFullEvaluationWithBoundedWindow) {
  // A long, dense trace: the streaming claim is only meaningful when the
  // event population far exceeds what can be active at once.
  TraceConfig config = testTraceConfig();
  config.duration_sec = 50'000;
  config.flash_per_hour = 80.0;
  config.shift_per_hour = 10.0;
  const WorkloadTrace trace = generateWorkloadTrace(config);
  ASSERT_GT(trace.events.size(), 400u);
  const std::string path = tempPath("cursor.fctrace");
  writeTraceFile(path, trace);

  TraceCursor cursor(path);
  for (TimeSec t = 0; t < static_cast<TimeSec>(trace.config.duration_sec);
       ++t) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(cursor.intensityAt(t)),
              std::bit_cast<std::uint64_t>(trace.intensityAt(t)))
        << "cursor diverged at t=" << t;
  }
  // Streaming keeps only the active window resident, not the whole trace.
  EXPECT_LT(cursor.maxActiveEvents(), trace.events.size() / 4);
  std::filesystem::remove(path);
}

TEST(TraceGeneration, DeterministicPerSeedAndSeedSensitive) {
  const WorkloadTrace a = generateWorkloadTrace(testTraceConfig());
  const WorkloadTrace b = generateWorkloadTrace(testTraceConfig());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.events[i].magnitude),
              std::bit_cast<std::uint64_t>(b.events[i].magnitude));
    EXPECT_EQ(a.events[i].start, b.events[i].start);
  }
  TraceConfig other = testTraceConfig();
  other.seed = 43;
  const WorkloadTrace c = generateWorkloadTrace(other);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].start != c.events[i].start;
  }
  EXPECT_TRUE(differs) << "seed 43 produced the same event schedule as 42";
}

// --- Replay identity through the simulator --------------------------------

/// Runs a faulted mesh scenario under the given recorded workload and
/// returns (pinpoint render, flattened telemetry) for byte comparison.
struct ReplayResult {
  std::string verdict;
  std::vector<std::uint64_t> telemetry_bits;
};

ReplayResult runUnderTrace(std::shared_ptr<const WorkloadTrace> workload) {
  ScenarioConfig config;
  config.kind = AppKind::Mesh;
  config.mesh = meshConfigFor(80, /*seed=*/7);
  config.seed = 77;
  config.duration_sec = 3600;
  config.workload_trace = std::move(workload);
  const ApplicationSpec spec = makeMicroMeshSpec(config.mesh);
  faults::FaultSpec fault;
  fault.type = faults::FaultType::Bottleneck;
  fault.targets = {spec.reference_path.back()};
  fault.start_time = 1300;
  fault.intensity = 1.5;
  config.faults = {fault};

  StreamingSource source(config);
  const std::vector<ComponentId> ids = source.componentIds();
  core::FChainSlave slave(0);
  for (ComponentId id : ids) slave.addComponent(id, 0);

  ReplayResult result;
  while (!source.simulation().violationTime().has_value() &&
         source.now() < 3600) {
    source.step([&](const StreamSample& sample) {
      slave.ingestAt(sample.component, sample.t, sample.values);
      for (const double v : sample.values) {
        result.telemetry_bits.push_back(std::bit_cast<std::uint64_t>(v));
      }
    });
  }
  EXPECT_TRUE(source.simulation().violationTime().has_value());
  const TimeSec tv =
      source.simulation().violationTime().value_or(source.now());

  core::FChainMaster master;
  master.registerSlave(&slave);
  master.setDependencies(netdep::discoverDependencies(source.record()));
  result.verdict = core::renderPinpoint(master.localize(ids, tv), tv);
  return result;
}

TEST(TraceReplayIdentity, FileReplayMatchesLiveGeneration) {
  TraceConfig config = testTraceConfig();
  config.base_users_per_sec = 400.0;  // match the mesh calibration default

  // "Live": the trace as generated in memory this run.
  const auto live = std::make_shared<const WorkloadTrace>(
      generateWorkloadTrace(config));
  // "Replay": the same trace after a disk round trip.
  const std::string path = tempPath("replay.fctrace");
  writeTraceFile(path, *live);
  const auto replayed =
      std::make_shared<const WorkloadTrace>(readTraceFile(path));

  const ReplayResult live_run = runUnderTrace(live);
  const ReplayResult replay_run = runUnderTrace(replayed);

  // Byte-identical telemetry, byte-identical verdict.
  ASSERT_EQ(live_run.telemetry_bits.size(), replay_run.telemetry_bits.size());
  EXPECT_EQ(live_run.telemetry_bits, replay_run.telemetry_bits);
  EXPECT_EQ(live_run.verdict, replay_run.verdict);
  EXPECT_FALSE(live_run.verdict.empty());
  std::filesystem::remove(path);
}

// --- Damage rejection (persist fuzz conventions) --------------------------

TEST(TraceDamage, TruncationRejectedWithByteOffset) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  const std::vector<std::uint8_t> bytes = encodeTrace(trace);
  ASSERT_GT(bytes.size(), persist::kFrameHeaderSize * 2);

  // Truncating anywhere must throw, and the reported offset must be within
  // the truncated buffer (never past it) — pointing at the damage.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, persist::kFrameHeaderSize,
        bytes.size() / 2, bytes.size() - 3}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + keep);
    try {
      decodeTrace(cut);
      FAIL() << "truncation to " << keep << " bytes was accepted";
    } catch (const persist::CorruptDataError& e) {
      EXPECT_LE(e.offset(), cut.size()) << e.what();
    }
  }
}

TEST(TraceDamage, BitFlipRejectedWithOffsetInsideDamagedFrame) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  std::vector<std::uint8_t> bytes = encodeTrace(trace);

  // Locate the second frame (the first event) by walking the first frame's
  // length field, then flip one payload byte inside it.
  std::uint64_t header_len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    header_len |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
  }
  const std::size_t event_frame =
      persist::kFrameHeaderSize + static_cast<std::size_t>(header_len);
  const std::size_t victim = event_frame + persist::kFrameHeaderSize + 2;
  ASSERT_LT(victim, bytes.size());
  bytes[victim] ^= 0x40;

  try {
    decodeTrace(bytes);
    FAIL() << "bit flip was accepted";
  } catch (const persist::CorruptDataError& e) {
    // The checksum failure is attributed to the damaged frame, not the file
    // start: absolute offset = frame start + header size.
    EXPECT_EQ(e.offset(), event_frame + persist::kFrameHeaderSize)
        << e.what();
  }
}

TEST(TraceDamage, TrailingBytesRejected) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  std::vector<std::uint8_t> bytes = encodeTrace(trace);
  const std::size_t clean_size = bytes.size();
  bytes.push_back(0xEE);
  try {
    decodeTrace(bytes);
    FAIL() << "trailing byte was accepted";
  } catch (const persist::CorruptDataError& e) {
    EXPECT_EQ(e.offset(), clean_size) << e.what();
  }
}

TEST(TraceDamage, CursorRejectsTruncatedFile) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  const std::vector<std::uint8_t> bytes = encodeTrace(trace);
  // Cut mid-way through the event list.
  const std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  const std::string path = tempPath("truncated.fctrace");
  persist::writeFileAtomic(path, cut);

  TraceCursor cursor(path);
  bool threw = false;
  try {
    for (TimeSec t = 0; t < static_cast<TimeSec>(trace.config.duration_sec);
         ++t) {
      cursor.intensityAt(t);
    }
  } catch (const persist::CorruptDataError& e) {
    threw = true;
    EXPECT_LE(e.offset(), cut.size()) << e.what();
  }
  EXPECT_TRUE(threw) << "cursor replayed a truncated file to completion";
  std::filesystem::remove(path);
}

TEST(TraceDamage, WrongMagicRejectedAtOffsetZero) {
  const WorkloadTrace trace = generateWorkloadTrace(testTraceConfig());
  std::vector<std::uint8_t> bytes = encodeTrace(trace);
  bytes[0] ^= 0xFF;
  try {
    decodeTrace(bytes);
    FAIL() << "wrong magic was accepted";
  } catch (const persist::CorruptDataError& e) {
    EXPECT_EQ(e.offset(), 0u) << e.what();
  }
}

}  // namespace
}  // namespace fchain::sim
