// Tests for the online pinpointing validator: scaling the right resource on
// a true culprit relieves the SLO; scaling an innocent component does not.
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "fchain/fchain.h"

namespace fchain::core {
namespace {

ComponentFinding cpuFinding(ComponentId id) {
  ComponentFinding f;
  f.component = id;
  MetricFinding m;
  m.metric = MetricKind::CpuUsage;
  f.metrics.push_back(m);
  return f;
}

class ValidationTest : public ::testing::Test {
 protected:
  static const eval::TrialSet& bottleneckTrials() {
    static const eval::TrialSet set = [] {
      eval::TrialOptions options;
      options.trials = 3;
      options.base_seed = 21;
      options.keep_snapshots = true;
      return eval::generateTrials(eval::systemsBottleneck(), options);
    }();
    return set;
  }
};

TEST_F(ValidationTest, ConfirmsTrueCulprit) {
  ASSERT_FALSE(bottleneckTrials().trials.empty());
  OnlineValidator validator;
  std::size_t confirmed = 0, total = 0;
  for (const auto& trial : bottleneckTrials().trials) {
    const ComponentId culprit = trial.record.ground_truth.front();
    ++total;
    if (validator.validateComponent(*trial.snapshot, cpuFinding(culprit))) {
      ++confirmed;
    }
  }
  // CPU scaling must relieve a CPU-cap bottleneck in (almost) every trial.
  EXPECT_GE(confirmed, total - (total > 2 ? 1 : 0));
}

TEST_F(ValidationTest, RejectsInnocentComponent) {
  ASSERT_FALSE(bottleneckTrials().trials.empty());
  OnlineValidator validator;
  std::size_t wrongly_confirmed = 0;
  for (const auto& trial : bottleneckTrials().trials) {
    const ComponentId culprit = trial.record.ground_truth.front();
    // Pick a PE that is neither the culprit nor on its downstream path:
    // scaling it cannot help the SLO.
    for (ComponentId innocent = 1; innocent <= 5; ++innocent) {
      if (innocent == culprit) continue;
      if (trial.record.app_spec.components[innocent].name == "PE4" ||
          trial.record.app_spec.components[innocent].name == "PE5") {
        if (validator.validateComponent(*trial.snapshot,
                                        cpuFinding(innocent))) {
          ++wrongly_confirmed;
        }
        break;
      }
    }
  }
  EXPECT_LE(wrongly_confirmed, 1u);
}

TEST_F(ValidationTest, ValidateFiltersThePinpointedSet) {
  ASSERT_FALSE(bottleneckTrials().trials.empty());
  const auto& trial = bottleneckTrials().trials.front();
  const auto result = localizeRecord(trial.record, &trial.discovered, {});
  if (result.pinpointed.empty()) GTEST_SKIP() << "nothing pinpointed";
  OnlineValidator validator;
  const auto confirmed = validator.validate(*trial.snapshot, result);
  // The confirmed set is a subset of the pinpointed set.
  for (ComponentId id : confirmed) {
    EXPECT_TRUE(std::find(result.pinpointed.begin(), result.pinpointed.end(),
                          id) != result.pinpointed.end());
  }
}

TEST(Validation, MemoryScalingRelievesMemLeak) {
  eval::TrialOptions options;
  options.trials = 2;
  options.base_seed = 31;
  options.keep_snapshots = true;
  const auto set = eval::generateTrials(eval::rubisMemLeak(), options);
  ASSERT_FALSE(set.trials.empty());
  OnlineValidator validator;
  for (const auto& trial : set.trials) {
    ComponentFinding f;
    f.component = trial.record.ground_truth.front();  // the db
    MetricFinding m;
    m.metric = MetricKind::MemoryUsage;
    f.metrics.push_back(m);
    EXPECT_TRUE(validator.validateComponent(*trial.snapshot, f));
  }
}

}  // namespace
}  // namespace fchain::core
