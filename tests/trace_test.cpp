// Unit tests for trace/: synthetic workload generation and CSV loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/stats.h"
#include "trace/workload_trace.h"

namespace fchain::trace {
namespace {

TEST(Trace, GeneratesRequestedLength) {
  Rng rng(1);
  const auto trace = generateDiurnalTrace(nasaLikeConfig(), 5000, rng);
  EXPECT_EQ(trace.size(), 5000u);
}

TEST(Trace, AllIntensitiesNonNegative) {
  Rng rng(2);
  for (double v : generateDiurnalTrace(clarknetLikeConfig(), 8000, rng)) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(Trace, DeterministicForSameSeed) {
  Rng a(3), b(3);
  const auto ta = generateDiurnalTrace(nasaLikeConfig(), 1000, a);
  const auto tb = generateDiurnalTrace(nasaLikeConfig(), 1000, b);
  EXPECT_EQ(ta, tb);
}

TEST(Trace, MeanTracksBaseRate) {
  Rng rng(4);
  DiurnalTraceConfig config = nasaLikeConfig();
  config.flash_per_hour = 0.0;  // flashes bias the mean upward
  const auto trace =
      generateDiurnalTrace(config, static_cast<std::size_t>(
                                       config.diurnal_period_sec), rng);
  // Over one full period the sinusoids integrate to ~zero.
  EXPECT_NEAR(mean(trace), config.base_rate, config.base_rate * 0.1);
}

TEST(Trace, DiurnalCycleIsVisible) {
  Rng rng(5);
  DiurnalTraceConfig config = nasaLikeConfig();
  config.noise_level = 0.0;
  config.flash_per_hour = 0.0;
  config.secondary_amplitude = 0.0;
  const auto trace = generateDiurnalTrace(config, 7200, rng);
  // Peak near a quarter period, trough near three quarters.
  const double peak = trace[1800];
  const double trough = trace[5400];
  EXPECT_GT(peak, config.base_rate * 1.4);
  EXPECT_LT(trough, config.base_rate * 0.6);
}

TEST(Trace, FlashCrowdsAddBursts) {
  DiurnalTraceConfig calm = nasaLikeConfig();
  calm.flash_per_hour = 0.0;
  DiurnalTraceConfig flashy = calm;
  flashy.flash_per_hour = 30.0;
  Rng a(6), b(6);
  const auto calm_trace = generateDiurnalTrace(calm, 7200, a);
  const auto flashy_trace = generateDiurnalTrace(flashy, 7200, b);
  EXPECT_GT(maxValue(flashy_trace), maxValue(calm_trace) * 1.2);
}

TEST(Trace, CsvLoaderParsesValueAndTimeValueRows) {
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  {
    std::ofstream out(path);
    out << "# header comment\n";
    out << "10.5\n";
    out << "3,20.25\n";
    out << "not-a-number\n";
    out << "4,30\n";
  }
  const auto values = loadTraceCsv(path);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 10.5);
  EXPECT_DOUBLE_EQ(values[1], 20.25);
  EXPECT_DOUBLE_EQ(values[2], 30.0);
  std::remove(path.c_str());
}

TEST(Trace, MissingCsvYieldsEmpty) {
  EXPECT_TRUE(loadTraceCsv("/nonexistent/path.csv").empty());
}

}  // namespace
}  // namespace fchain::trace
