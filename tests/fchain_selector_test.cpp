// Tests for the abnormal change point selector — the heart of FChain.
// Synthetic series with controlled faults verify each filter stage:
// CUSUM -> outlier magnitude -> persistence -> predictability -> rollback.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fchain/change_selector.h"

namespace fchain::core {
namespace {

/// Builds a MetricSeries whose CpuUsage channel is `values` and whose other
/// channels are flat, plus a replayed fluctuation model.
struct Fixture {
  MetricSeries series{0};
  NormalFluctuationModel model{0};

  explicit Fixture(const std::vector<double>& cpu_values) {
    for (double value : cpu_values) {
      std::array<double, kMetricCount> sample{};
      sample[metricIndex(MetricKind::CpuUsage)] = value;
      sample[metricIndex(MetricKind::MemoryUsage)] = 500.0;
      series.append(sample);
      model.observe(sample);
    }
  }
};

/// Noisy baseline with an optional persistent step at `fault_at`.
std::vector<double> makeCpuSeries(std::size_t n, std::size_t fault_at,
                                  double step, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = 40.0 + rng.gaussian(0.0, 1.0);
    if (fault_at > 0 && i >= fault_at) value += step;
    values.push_back(value);
  }
  return values;
}

TEST(Selector, QuietSeriesYieldsNoFinding) {
  Fixture fixture(makeCpuSeries(900, 0, 0.0, 1));
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  EXPECT_FALSE(finding.has_value());
}

TEST(Selector, PersistentStepIsDetectedNearOnset) {
  Fixture fixture(makeCpuSeries(900, 850, 30.0, 2));
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  ASSERT_TRUE(finding.has_value());
  EXPECT_NEAR(static_cast<double>(finding->onset), 850.0, 8.0);
  EXPECT_EQ(finding->trend, Trend::Up);
  EXPECT_GT(finding->prediction_error, finding->expected_error);
}

TEST(Selector, DownwardStepHasDownTrend) {
  Fixture fixture(makeCpuSeries(900, 860, -25.0, 3));
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  ASSERT_TRUE(finding.has_value());
  EXPECT_EQ(finding->trend, Trend::Down);
}

TEST(Selector, DecayedTransientIsRejectedByPersistence) {
  // A strong spike at t=830 that fully decays by ~t=860: by violation time
  // the regime is back to normal, so no abnormal change may be reported.
  auto values = makeCpuSeries(900, 0, 0.0, 4);
  for (std::size_t i = 830; i < 860; ++i) {
    values[i] += 35.0 * std::exp(-static_cast<double>(i - 830) / 8.0);
  }
  Fixture fixture(values);
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  EXPECT_FALSE(finding.has_value());
}

TEST(Selector, LearnedOscillationIsNotAbnormal) {
  // A workload square wave that the Markov model has seen hundreds of
  // times: its change points are predictable, hence filtered.
  std::vector<double> values;
  Rng rng(5);
  for (std::size_t i = 0; i < 900; ++i) {
    values.push_back(((i / 30) % 2 == 0 ? 30.0 : 60.0) +
                     rng.gaussian(0.0, 0.5));
  }
  Fixture fixture(values);
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  EXPECT_FALSE(finding.has_value());
}

TEST(Selector, PalModeSkipsThePredictabilityTest) {
  // A persistent step whose prediction error is *below* an impossibly high
  // fixed threshold: FChain(fixed) filters it, PAL (no predictability test
  // at all) still reports it — proving the test is truly skipped.
  Fixture fixture(makeCpuSeries(900, 850, 30.0, 5));
  const auto& cpu = fixture.series.of(MetricKind::CpuUsage);
  const auto& errors = fixture.model.errorsOf(MetricKind::CpuUsage);

  FChainConfig strict;
  strict.fixed_error_threshold = 1e9;
  EXPECT_FALSE(AbnormalChangeSelector(strict)
                   .analyzeMetric(MetricKind::CpuUsage, cpu, errors, 899)
                   .has_value());

  FChainConfig pal = strict;
  pal.use_predictability = false;
  const auto finding = AbnormalChangeSelector(pal).analyzeMetric(
      MetricKind::CpuUsage, cpu, errors, 899);
  ASSERT_TRUE(finding.has_value());
  // PAL never evaluated an expected error.
  EXPECT_DOUBLE_EQ(finding->expected_error, 0.0);
}

TEST(Selector, FixedThresholdModeRespectsTheKnob) {
  Fixture fixture(makeCpuSeries(900, 850, 30.0, 6));
  FChainConfig lax;
  lax.fixed_error_threshold = 0.5;
  FChainConfig strict;
  strict.fixed_error_threshold = 1000.0;
  const auto& cpu = fixture.series.of(MetricKind::CpuUsage);
  const auto& errors = fixture.model.errorsOf(MetricKind::CpuUsage);
  EXPECT_TRUE(AbnormalChangeSelector(lax)
                  .analyzeMetric(MetricKind::CpuUsage, cpu, errors, 899)
                  .has_value());
  EXPECT_FALSE(AbnormalChangeSelector(strict)
                   .analyzeMetric(MetricKind::CpuUsage, cpu, errors, 899)
                   .has_value());
}

TEST(Selector, RollbackRecoversGradualOnset) {
  // A gradual ramp starting at 800: the strongest change point sits in the
  // middle of the manifestation; rollback must walk it back to ~800.
  auto values = makeCpuSeries(900, 0, 0.0, 7);
  for (std::size_t i = 800; i < 900; ++i) {
    values[i] += 0.8 * static_cast<double>(i - 800);
  }
  Fixture fixture(values);
  FChainConfig with_rollback;
  FChainConfig without_rollback;
  without_rollback.use_rollback = false;
  const auto& cpu = fixture.series.of(MetricKind::CpuUsage);
  const auto& errors = fixture.model.errorsOf(MetricKind::CpuUsage);
  const auto rolled = AbnormalChangeSelector(with_rollback)
                          .analyzeMetric(MetricKind::CpuUsage, cpu, errors, 899);
  const auto raw = AbnormalChangeSelector(without_rollback)
                       .analyzeMetric(MetricKind::CpuUsage, cpu, errors, 899);
  ASSERT_TRUE(rolled.has_value());
  ASSERT_TRUE(raw.has_value());
  EXPECT_LE(rolled->onset, raw->onset);
  EXPECT_NEAR(static_cast<double>(rolled->onset), 800.0, 25.0);
}

TEST(Selector, LookbackWindowBoundsTheSearch) {
  // Fault at t=700 but the look-back window [800, 900] misses it entirely:
  // inside the window the series is a steady (shifted) level.
  Fixture fixture(makeCpuSeries(900, 700, 30.0, 8));
  FChainConfig config;
  config.lookback_sec = 100;
  AbnormalChangeSelector selector(config);
  const auto finding = selector.analyzeMetric(
      MetricKind::CpuUsage, fixture.series.of(MetricKind::CpuUsage),
      fixture.model.errorsOf(MetricKind::CpuUsage), 899);
  EXPECT_FALSE(finding.has_value());
}

TEST(Selector, ComponentOnsetIsEarliestAcrossMetrics) {
  // Memory starts leaking at 820; cpu jumps at 860. The component finding
  // must carry the memory onset.
  Rng rng(9);
  MetricSeries series(0);
  NormalFluctuationModel model(0);
  for (std::size_t i = 0; i < 900; ++i) {
    std::array<double, kMetricCount> sample{};
    sample[metricIndex(MetricKind::CpuUsage)] =
        40.0 + rng.gaussian(0.0, 1.0) + (i >= 860 ? 30.0 : 0.0);
    sample[metricIndex(MetricKind::MemoryUsage)] =
        500.0 + rng.gaussian(0.0, 1.0) +
        (i >= 820 ? 10.0 * static_cast<double>(i - 820) : 0.0);
    series.append(sample);
    model.observe(sample);
  }
  AbnormalChangeSelector selector;
  const auto finding = selector.analyzeComponent(3, series, model, 899);
  ASSERT_TRUE(finding.has_value());
  EXPECT_EQ(finding->component, 3u);
  ASSERT_GE(finding->metrics.size(), 2u);
  EXPECT_NEAR(static_cast<double>(finding->onset), 820.0, 15.0);
  EXPECT_EQ(finding->trend, Trend::Up);
}

TEST(Selector, TooShortWindowIsSafe) {
  Fixture fixture(makeCpuSeries(8, 0, 0.0, 10));
  AbnormalChangeSelector selector;
  EXPECT_FALSE(selector
                   .analyzeMetric(MetricKind::CpuUsage,
                                  fixture.series.of(MetricKind::CpuUsage),
                                  fixture.model.errorsOf(MetricKind::CpuUsage),
                                  7)
                   .has_value());
}

}  // namespace
}  // namespace fchain::core
