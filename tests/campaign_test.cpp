// Tests for the fault-injection campaign layer: fault-name round-trips,
// enumeration/shuffle determinism, outcome classification, set-relation
// tokens, and byte-identical report rendering under a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/episode.h"
#include "campaign/report.h"
#include "eval/frontier.h"
#include "faults/fault.h"

namespace fchain::campaign {
namespace {

using eval::Outcome;

// --- faultTypeFromName (satellite 1) ------------------------------------

TEST(FaultNames, RoundTripsEveryEnumValue) {
  for (faults::FaultType type : faults::kAllFaultTypes) {
    const std::string_view name = faults::faultTypeName(type);
    EXPECT_EQ(faults::faultTypeFromName(name), type) << name;
  }
}

TEST(FaultNames, UnknownNameThrows) {
  EXPECT_THROW((void)faults::faultTypeFromName("NoSuchFault"),
               std::invalid_argument);
  EXPECT_THROW((void)faults::faultTypeFromName(""), std::invalid_argument);
  // Names are case-sensitive.
  EXPECT_THROW((void)faults::faultTypeFromName("memleak"),
               std::invalid_argument);
}

TEST(FaultNames, CallLevelAndExternalPredicates) {
  EXPECT_TRUE(faults::isCallLevel(faults::FaultType::CallLatency));
  EXPECT_TRUE(faults::isCallLevel(faults::FaultType::CallFailure));
  EXPECT_FALSE(faults::isCallLevel(faults::FaultType::CpuHog));
  EXPECT_TRUE(faults::isExternalFactor(faults::FaultType::WorkloadSurge));
  EXPECT_TRUE(faults::isExternalFactor(faults::FaultType::SharedSlowdown));
  EXPECT_FALSE(faults::isExternalFactor(faults::FaultType::CallFailure));
}

// --- Enumeration (tentpole + satellite 2) -------------------------------

TEST(Enumeration, DefaultConfigCoversAtLeastAThousandEpisodes) {
  const auto episodes = enumerateEpisodes(CampaignConfig{});
  EXPECT_GE(episodes.size(), 1000u);
}

TEST(Enumeration, IdsAreAPermutationAndSeedsAreUnique) {
  const auto episodes = enumerateEpisodes(CampaignConfig{});
  std::set<std::size_t> ids;
  std::set<std::uint64_t> seeds;
  for (const EpisodeSpec& spec : episodes) {
    ids.insert(spec.id);
    seeds.insert(spec.seed);
  }
  ASSERT_EQ(ids.size(), episodes.size());
  ASSERT_EQ(seeds.size(), episodes.size());
  // Ids are assigned in enumeration order, so the shuffled list still holds
  // exactly {0, ..., n-1}.
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), episodes.size() - 1);
}

TEST(Enumeration, EveryEpisodeIsFullyDetermined) {
  const auto episodes = enumerateEpisodes(CampaignConfig{});
  for (const EpisodeSpec& spec : episodes) {
    ASSERT_FALSE(spec.faults.empty()) << "ep#" << spec.id;
    // Co-timed pairs: both faults share one start instant, drawn so that
    // every duration leaves the models a long healthy prefix.
    for (const faults::FaultSpec& fault : spec.faults) {
      EXPECT_EQ(fault.start_time, spec.faults.front().start_time)
          << "ep#" << spec.id;
      EXPECT_GE(fault.start_time, 1150) << "ep#" << spec.id;
      EXPECT_LE(fault.start_time, 1450) << "ep#" << spec.id;
      EXPECT_LT(static_cast<std::size_t>(fault.start_time), spec.duration_sec)
          << "ep#" << spec.id;
    }
  }
}

TEST(Enumeration, CallLevelFaultsOnlyTargetCallers) {
  const auto episodes = enumerateEpisodes(CampaignConfig{});
  for (const EpisodeSpec& spec : episodes) {
    const sim::ApplicationSpec app = sim::makeAppSpec(spec.app);
    std::set<ComponentId> callers;
    for (const auto& edge : app.edges) callers.insert(edge.from);
    for (const faults::FaultSpec& fault : spec.faults) {
      if (!faults::isCallLevel(fault.type)) continue;
      for (ComponentId id : fault.targets) {
        EXPECT_TRUE(callers.contains(id))
            << "ep#" << spec.id << ": call fault on sink " << id;
      }
    }
  }
}

TEST(Enumeration, SameSeedSameOrderDifferentSeedDifferentOrder) {
  CampaignConfig config;
  const auto a = enumerateEpisodes(config);
  const auto b = enumerateEpisodes(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
  config.seed = 2;
  const auto c = enumerateEpisodes(config);
  ASSERT_EQ(a.size(), c.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != c[i].id) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "different seed left the run order intact";
}

TEST(Enumeration, TruncationSamplesTheShuffledOrder) {
  CampaignConfig config;
  const auto full = enumerateEpisodes(config);
  config.max_episodes = 16;
  const auto capped = enumerateEpisodes(config);
  ASSERT_EQ(capped.size(), 16u);
  // The cap is a prefix of the shuffled full order, so per-episode identity
  // (id, seed, faults) is unchanged by truncation.
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].id, full[i].id);
    EXPECT_EQ(capped[i].seed, full[i].seed);
  }
}

TEST(Enumeration, FaultLabelJoinsPairs) {
  EpisodeSpec spec;
  spec.faults.resize(2);
  spec.faults[0].type = faults::FaultType::MemLeak;
  spec.faults[1].type = faults::FaultType::CpuHog;
  EXPECT_EQ(spec.faultLabel(), "MemLeak+CpuHog");
  spec.faults.resize(1);
  EXPECT_EQ(spec.faultLabel(), "MemLeak");
}

// --- Classification -----------------------------------------------------

IncidentFacts firedAt(TimeSec t, std::vector<ComponentId> pinpointed,
                      bool external = false) {
  IncidentFacts facts;
  facts.fired = true;
  facts.violation_time = t;
  facts.external_verdict = external;
  facts.pinpointed = std::move(pinpointed);
  return facts;
}

TEST(Classify, SilentMonitorMeansMissed) {
  EXPECT_EQ(classify({3}, false, 1200, IncidentFacts{}), Outcome::Missed);
}

TEST(Classify, ViolationBeforeFaultStartIsFalseAlarm) {
  EXPECT_EQ(classify({3}, false, 1200, firedAt(900, {3})),
            Outcome::FalseAlarm);
}

TEST(Classify, CurtailedAnalysisIsTimedOut) {
  IncidentFacts facts = firedAt(1300, {3});
  facts.watchdog_trips = 1;
  EXPECT_EQ(classify({3}, false, 1200, facts), Outcome::TimedOut);
  facts.watchdog_trips = 0;
  facts.deadline_skips = 2;
  EXPECT_EQ(classify({3}, false, 1200, facts), Outcome::TimedOut);
}

TEST(Classify, ComponentFaultOutcomes) {
  EXPECT_EQ(classify({3}, false, 1200, firedAt(1300, {3})),
            Outcome::Localized);
  EXPECT_EQ(classify({3}, false, 1200, firedAt(1300, {1})),
            Outcome::Mislocalized);
  EXPECT_EQ(classify({1, 3}, false, 1200, firedAt(1300, {3})),
            Outcome::Mislocalized);
  EXPECT_EQ(classify({3}, false, 1200, firedAt(1300, {})), Outcome::Missed);
  // Blaming the environment for a genuine component fault is a
  // mislocalization, not a pass.
  EXPECT_EQ(classify({3}, false, 1200, firedAt(1300, {}, true)),
            Outcome::Mislocalized);
}

TEST(Classify, ExternalFactorOutcomes) {
  EXPECT_EQ(classify({}, true, 1200, firedAt(1300, {}, true)),
            Outcome::ExternalCauseCorrect);
  // Blaming components for an external factor is a false alarm.
  EXPECT_EQ(classify({}, true, 1200, firedAt(1300, {2})),
            Outcome::FalseAlarm);
}

TEST(SetRelation, AllTokens) {
  EXPECT_EQ(setRelation({1, 3}, {1, 3}), "exact");
  EXPECT_EQ(setRelation({1, 3}, {1}), "subset");
  EXPECT_EQ(setRelation({1}, {1, 3}), "superset");
  EXPECT_EQ(setRelation({1, 2}, {2, 3}), "overlap");
  EXPECT_EQ(setRelation({1}, {3}), "disjoint");
  EXPECT_EQ(setRelation({1}, {}), "empty");
  EXPECT_EQ(setRelation({}, {2}), "no-truth");
  EXPECT_EQ(setRelation({}, {}), "no-truth");
}

// --- Report aggregation and rendering -----------------------------------

EpisodeRecord record(std::size_t id, faults::FaultType type, double intensity,
                     Outcome outcome) {
  EpisodeRecord rec;
  rec.spec.id = id;
  rec.spec.intensity = intensity;
  rec.spec.faults.resize(1);
  rec.spec.faults[0].type = type;
  rec.spec.faults[0].intensity = intensity;
  rec.truth = {3};
  rec.outcome = outcome;
  rec.relation = outcome == Outcome::Localized ? "exact" : "disjoint";
  return rec;
}

TEST(FrontierReport, CellsClustersAndGateScalar) {
  std::vector<EpisodeRecord> episodes = {
      record(0, faults::FaultType::MemLeak, 0.5, Outcome::Localized),
      record(1, faults::FaultType::MemLeak, 0.5, Outcome::Mislocalized),
      record(2, faults::FaultType::MemLeak, 1.0, Outcome::Localized),
      record(3, faults::FaultType::CallLatency, 1.0, Outcome::Missed),
      record(4, faults::FaultType::MemLeak, 0.5, Outcome::Mislocalized),
  };
  CampaignConfig config;
  config.seed = 7;
  const eval::FrontierReport report = buildFrontierReport(config, episodes);
  EXPECT_EQ(report.seed, 7u);
  EXPECT_EQ(report.episode_count, 5u);
  EXPECT_EQ(report.totals.of(Outcome::Localized), 2u);
  // The gate scalar only counts single-fault resource episodes — the
  // CallLatency miss is excluded from its denominator.
  EXPECT_DOUBLE_EQ(report.single_fault_resource_localized_rate, 0.5);
  // Cells sorted by fault name then intensity.
  ASSERT_EQ(report.cells.size(), 3u);
  EXPECT_EQ(report.cells[0].fault, "CallLatency");
  EXPECT_EQ(report.cells[1].fault, "MemLeak");
  EXPECT_DOUBLE_EQ(report.cells[1].intensity, 0.5);
  EXPECT_DOUBLE_EQ(report.cells[1].outcomes.correctRate(), 1.0 / 3.0);
  // Clusters: the doubled MemLeak mislocalization leads, exemplar is the
  // lowest-id member.
  ASSERT_EQ(report.clusters.size(), 2u);
  EXPECT_EQ(report.clusters[0].count, 2u);
  EXPECT_NE(report.clusters[0].example.find("ep#1"), std::string::npos);
}

TEST(FrontierReport, RenderingIsDeterministic) {
  std::vector<EpisodeRecord> episodes = {
      record(0, faults::FaultType::CpuHog, 1.0, Outcome::Localized),
      record(1, faults::FaultType::CpuHog, 1.7, Outcome::Missed),
  };
  const eval::FrontierReport report =
      buildFrontierReport(CampaignConfig{}, episodes);
  const std::string json = eval::frontierJson(report);
  const std::string md = eval::frontierMarkdown(report);
  EXPECT_EQ(json, eval::frontierJson(report));
  EXPECT_EQ(md, eval::frontierMarkdown(report));
  EXPECT_NE(json.find("\"single_fault_resource_localized_rate\""),
            std::string::npos);
  EXPECT_NE(md.find("accuracy"), std::string::npos);
}

// --- End-to-end determinism (satellite 2) -------------------------------

// A small capped sweep run twice with one seed must produce byte-identical
// reports; the cap keeps this inside tier-1 budgets while still exercising
// the full enumerate -> run -> classify -> render pipeline.
TEST(CampaignDeterminism, SameSeedByteIdenticalReports) {
  CampaignConfig config;
  config.seed = 11;
  config.max_episodes = 4;
  const CampaignResult first = runCampaign(config);
  const CampaignResult second = runCampaign(config);
  ASSERT_EQ(first.episodes.size(), 4u);
  ASSERT_EQ(second.episodes.size(), 4u);
  for (std::size_t i = 0; i < first.episodes.size(); ++i) {
    EXPECT_EQ(first.episodes[i].spec.id, second.episodes[i].spec.id);
    EXPECT_EQ(first.episodes[i].outcome, second.episodes[i].outcome);
    EXPECT_EQ(first.episodes[i].incident.pinpointed,
              second.episodes[i].incident.pinpointed);
  }
  EXPECT_EQ(eval::frontierJson(first.report),
            eval::frontierJson(second.report));
  EXPECT_EQ(eval::frontierMarkdown(first.report),
            eval::frontierMarkdown(second.report));
  // Every episode got classified (the report accounts for all of them).
  EXPECT_EQ(first.report.totals.total(), first.episodes.size());
}

// Per-episode parallelism is a pure scheduling change: workers write
// pre-allocated run-order slots, so the record vector and every report
// rendering match the serial bytes exactly.
TEST(CampaignDeterminism, ParallelWorkersByteIdenticalToSerial) {
  CampaignConfig config;
  config.seed = 11;
  config.max_episodes = 6;
  const CampaignResult serial = runCampaign(config);

  config.worker_threads = 4;
  std::size_t last_done = 0;
  std::size_t calls = 0;
  const CampaignResult parallel =
      runCampaign(config, [&](std::size_t done, std::size_t total,
                              const EpisodeRecord& record) {
        // Completion order may differ from run order, but `done` counts
        // monotonically and every record is a fully-classified episode.
        EXPECT_EQ(done, last_done + 1);
        EXPECT_EQ(total, 6u);
        EXPECT_FALSE(record.relation.empty());
        last_done = done;
        ++calls;
      });
  EXPECT_EQ(calls, 6u);

  ASSERT_EQ(parallel.episodes.size(), serial.episodes.size());
  for (std::size_t i = 0; i < serial.episodes.size(); ++i) {
    EXPECT_EQ(parallel.episodes[i].spec.id, serial.episodes[i].spec.id);
    EXPECT_EQ(parallel.episodes[i].outcome, serial.episodes[i].outcome);
    EXPECT_EQ(parallel.episodes[i].incident.pinpointed,
              serial.episodes[i].incident.pinpointed);
    EXPECT_EQ(parallel.episodes[i].relation, serial.episodes[i].relation);
  }
  EXPECT_EQ(eval::frontierJson(parallel.report),
            eval::frontierJson(serial.report));
  EXPECT_EQ(eval::frontierMarkdown(parallel.report),
            eval::frontierMarkdown(serial.report));
}

}  // namespace
}  // namespace fchain::campaign
