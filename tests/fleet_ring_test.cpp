// Property tests for the fleet tier's consistent-hash assignment
// (fleet/hash_ring.h): total/unique ownership, shard-set-order invariance,
// and the bounded-remap contract under membership change.
#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fleet/aggregator.h"
#include "fleet/hash_ring.h"

namespace fchain::fleet {
namespace {

constexpr ComponentId kKeySpace = 10'000;

std::vector<ShardId> ownersOf(const HashRing& ring) {
  std::vector<ShardId> owners;
  owners.reserve(kKeySpace);
  for (ComponentId id = 0; id < kKeySpace; ++id) {
    owners.push_back(ring.ownerOfComponent(id));
  }
  return owners;
}

TEST(FleetRing, EveryComponentOwnedByExactlyOneKnownShard) {
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const HashRing ring(shards);
    std::set<ShardId> seen;
    for (ComponentId id = 0; id < kKeySpace; ++id) {
      const ShardId owner = ring.ownerOfComponent(id);
      EXPECT_LT(owner, shards);
      // Ownership is a pure function of the ring: asking again answers the
      // same (exactly-one-owner is the conjunction of the two).
      EXPECT_EQ(owner, ring.ownerOfComponent(id));
      seen.insert(owner);
    }
    // With 10k keys over <= 8 shards every shard owns something.
    EXPECT_EQ(seen.size(), shards);
  }
}

TEST(FleetRing, PartitionCoversAndPreservesOrder) {
  const HashRing ring(4);
  std::vector<ComponentId> components;
  for (ComponentId id = 0; id < 257; ++id) components.push_back(id * 7 + 1);

  const std::vector<ShardPartial> slices = partitionByOwner(ring, components);
  std::vector<ComponentId> gathered;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(slices[i - 1].shard, slices[i].shard);
    }
    EXPECT_FALSE(slices[i].components.empty());
    // Caller order inside the slice: our input is ascending, so each slice
    // must be strictly ascending too.
    EXPECT_TRUE(std::is_sorted(slices[i].components.begin(),
                               slices[i].components.end()));
    for (const ComponentId id : slices[i].components) {
      EXPECT_EQ(ring.ownerOfComponent(id), slices[i].shard);
      gathered.push_back(id);
    }
  }
  // The slices are a partition: disjoint and covering.
  std::sort(gathered.begin(), gathered.end());
  EXPECT_EQ(gathered, components);
}

TEST(FleetRing, AssignmentInvariantUnderShardSetOrder) {
  const std::vector<ShardId> base = {0, 1, 2, 3, 4, 5, 6};
  const HashRing reference(base);
  Rng rng(mixSeed(0xF1EE7, 1));
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<ShardId> shuffled = base;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    const HashRing permuted(shuffled);
    EXPECT_EQ(permuted.shards(), reference.shards());
    for (ComponentId id = 0; id < kKeySpace; id += 3) {
      ASSERT_EQ(permuted.ownerOfComponent(id),
                reference.ownerOfComponent(id))
          << "owner depends on shard insertion order";
    }
  }
}

TEST(FleetRing, AddShardRemapsBoundedAndOnlyToNewShard) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    HashRing before(shards);
    const std::vector<ShardId> old_owners = ownersOf(before);
    HashRing after = before;
    const ShardId added = static_cast<ShardId>(shards);
    after.addShard(added);
    std::size_t moved = 0;
    const std::vector<ShardId> new_owners = ownersOf(after);
    for (ComponentId id = 0; id < kKeySpace; ++id) {
      if (new_owners[id] == old_owners[id]) continue;
      ++moved;
      // A key may only move to the shard that joined.
      EXPECT_EQ(new_owners[id], added);
    }
    const double fraction = static_cast<double>(moved) / kKeySpace;
    EXPECT_LT(fraction, 2.0 / static_cast<double>(shards + 1))
        << "shards=" << shards << " moved=" << moved;
    EXPECT_GT(moved, 0u);
  }
}

TEST(FleetRing, RemoveShardRemapsBoundedAndOnlyFromRemovedShard) {
  for (const std::size_t shards : {2u, 4u, 8u}) {
    HashRing before(shards);
    const std::vector<ShardId> old_owners = ownersOf(before);
    HashRing after = before;
    const ShardId removed = static_cast<ShardId>(shards / 2);
    after.removeShard(removed);
    std::size_t moved = 0;
    const std::vector<ShardId> new_owners = ownersOf(after);
    for (ComponentId id = 0; id < kKeySpace; ++id) {
      if (new_owners[id] == old_owners[id]) continue;
      ++moved;
      // Only keys the removed shard owned may move.
      EXPECT_EQ(old_owners[id], removed);
      EXPECT_NE(new_owners[id], removed);
    }
    const double fraction = static_cast<double>(moved) / kKeySpace;
    EXPECT_LT(fraction, 2.0 / static_cast<double>(shards));
    EXPECT_GT(moved, 0u);
  }
}

TEST(FleetRing, AddThenRemoveRoundTripsToTheSameAssignment) {
  HashRing ring(4);
  const std::vector<ShardId> before = ownersOf(ring);
  ring.addShard(9);
  ring.removeShard(9);
  EXPECT_EQ(ownersOf(ring), before);
  // Duplicate add / unknown remove are no-ops.
  ring.addShard(2);
  ring.removeShard(42);
  EXPECT_EQ(ownersOf(ring), before);
}

TEST(FleetRing, AppKeysAreDeterministicAndNameSensitive) {
  const HashRing ring(8);
  EXPECT_EQ(ring.ownerOfApp("rubis"), ring.ownerOfApp("rubis"));
  EXPECT_EQ(HashRing::appKey("systems"), HashRing::appKey("systems"));
  EXPECT_NE(HashRing::appKey("rubis"), HashRing::appKey("rubis2"));
  // Apps spread: 64 distinct names must not all land on one shard.
  std::set<ShardId> owners;
  for (int i = 0; i < 64; ++i) {
    owners.insert(ring.ownerOfApp("app-" + std::to_string(i)));
  }
  EXPECT_GT(owners.size(), 1u);
}

TEST(FleetRing, EmptyRingThrows) {
  const HashRing ring(std::vector<ShardId>{});
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.ownerOfComponent(0), std::logic_error);
}

}  // namespace
}  // namespace fchain::fleet
