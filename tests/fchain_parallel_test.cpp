// Parallel localization engine tests: the worker pool, batched slave
// analysis, and the determinism guarantee — localize() must return a
// PinpointResult bit-identical to the serial reference path at any thread
// count, including under injected endpoint outages (degraded mode).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fchain/fchain.h"
#include "obs/trace.h"
#include "netdep/dependency.h"
#include "runtime/flaky_endpoint.h"
#include "runtime/worker_pool.h"
#include "sim/simulator.h"

namespace fchain::core {
namespace {

// --- WorkerPool -----------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskAcrossThreads) {
  runtime::WorkerPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(WorkerPool, ThreadCountClampsToAtLeastOne) {
  runtime::WorkerPool pool(-3);
  EXPECT_EQ(pool.threadCount(), 1);
  std::atomic<int> counter{0};
  pool.run({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

TEST(WorkerPool, ReusableAcrossRuns) {
  runtime::WorkerPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(WorkerPool, PropagatesFirstTaskExceptionAndStaysUsable) {
  runtime::WorkerPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(counter.load(), 5);  // the other tasks still ran to completion
  pool.run({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 6);
}

// --- Shared incident fixture ----------------------------------------------

/// One RUBiS CpuHog incident ingested into two slaves of two VMs each:
/// slave_front hosts {web=0, app1=1}, slave_back hosts {app2=2, db=3}; the
/// fault is on the db VM. Built once — localization is a read-only fan-out,
/// so every test can share the ingested state.
struct Cluster {
  FChainSlave front{0};  // components 0, 1
  FChainSlave back{1};   // components 2, 3
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

Cluster& cluster() {
  static Cluster& instance = *[] {
    auto* c = new Cluster();
    sim::ScenarioConfig config;
    config.kind = sim::AppKind::Rubis;
    config.seed = 77;
    faults::FaultSpec fault;
    fault.type = faults::FaultType::CpuHog;
    fault.targets = {3};
    fault.start_time = 2000;
    fault.intensity = 1.35;
    config.faults = {fault};

    c->front.addComponent(0, 0);
    c->front.addComponent(1, 0);
    c->back.addComponent(2, 0);
    c->back.addComponent(3, 0);

    sim::Simulation sim(config);
    while (!sim.violationTime().has_value() && sim.now() < 3600) {
      sim.step();
      const TimeSec t = sim.now() - 1;
      for (ComponentId id = 0; id < 4; ++id) {
        std::array<double, kMetricCount> sample{};
        for (MetricKind kind : kAllMetrics) {
          sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
        }
        (id < 2 ? c->front : c->back).ingest(id, sample);
      }
    }
    EXPECT_TRUE(sim.violationTime().has_value());
    c->tv = *sim.violationTime();
    c->deps = netdep::discoverDependencies(sim.record());
    return c;
  }();
  return instance;
}

bool sameFinding(const ComponentFinding& a, const ComponentFinding& b) {
  if (a.component != b.component || a.onset != b.onset || a.trend != b.trend ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const MetricFinding& ma = a.metrics[i];
    const MetricFinding& mb = b.metrics[i];
    if (ma.metric != mb.metric || ma.onset != mb.onset ||
        ma.change_point != mb.change_point || ma.trend != mb.trend ||
        ma.prediction_error != mb.prediction_error ||
        ma.expected_error != mb.expected_error) {
      return false;
    }
  }
  return true;
}

/// Byte-level equality of every PinpointResult field.
bool samePinpoint(const PinpointResult& a, const PinpointResult& b) {
  if (a.pinpointed != b.pinpointed || a.external_factor != b.external_factor ||
      a.external_trend != b.external_trend || a.coverage != b.coverage ||
      a.unanalyzed != b.unanalyzed || a.chain.size() != b.chain.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    if (!sameFinding(a.chain[i], b.chain[i])) return false;
  }
  return true;
}

// --- Batched slave analysis -----------------------------------------------

TEST(SlaveBatch, BatchMatchesPerComponentAnalysisAtAnyThreadCount) {
  Cluster& c = cluster();
  const std::vector<ComponentId> ids = {2, 3, 99};  // 99 is unknown
  std::vector<std::optional<ComponentFinding>> reference;
  for (ComponentId id : ids) reference.push_back(c.back.analyze(id, c.tv));
  EXPECT_FALSE(reference[2].has_value());

  for (int threads : {0, 3, 8}) {
    c.back.setAnalysisThreads(threads);
    const auto batch = c.back.analyzeBatch(ids, c.tv);
    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i].has_value(), reference[i].has_value()) << i;
      if (batch[i].has_value()) {
        EXPECT_TRUE(sameFinding(*batch[i], *reference[i])) << i;
      }
    }
  }
  c.back.setAnalysisThreads(0);
}

// --- Master determinism: serial vs parallel -------------------------------

PinpointResult localizeHealthy(int threads) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(threads);
  master.registerSlave(&c.front);
  master.registerSlave(&c.back);
  master.setDependencies(c.deps);
  return master.localize({0, 1, 2, 3}, c.tv);
}

TEST(ParallelLocalize, HealthyClusterIsIdenticalAcrossThreadCounts) {
  const PinpointResult serial = localizeHealthy(0);
  EXPECT_EQ(serial.pinpointed, (std::vector<ComponentId>{3}));
  EXPECT_DOUBLE_EQ(serial.coverage, 1.0);
  for (int threads : {1, 2, 8}) {
    const PinpointResult parallel = localizeHealthy(threads);
    EXPECT_TRUE(samePinpoint(serial, parallel)) << threads << " threads";
  }
}

/// The front slave (web + app1) is dark for the whole incident, so the
/// batch covering components {0, 1} exhausts its retries while {2, 3}
/// analyze normally — degraded mode under parallel fan-out.
PinpointResult localizeWithOutage(int threads) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(threads);
  runtime::FlakyConfig outage;
  outage.outage_windows = {{0, 1'000'000}};
  master.registerEndpoint(
      std::make_shared<runtime::FlakyEndpoint>(
          std::make_shared<runtime::LocalEndpoint>(&c.front), outage),
      {0, 1});
  master.registerSlave(&c.back);
  master.setDependencies(c.deps);
  return master.localize({0, 1, 2, 3}, c.tv);
}

TEST(ParallelLocalize, EndpointOutageIsIdenticalAcrossThreadCounts) {
  const PinpointResult serial = localizeWithOutage(0);
  EXPECT_DOUBLE_EQ(serial.coverage, 0.5);
  EXPECT_EQ(serial.unanalyzed, (std::vector<ComponentId>{0, 1}));
  EXPECT_NE(std::find(serial.pinpointed.begin(), serial.pinpointed.end(),
                      ComponentId{3}),
            serial.pinpointed.end());
  for (int threads : {1, 2, 8}) {
    const PinpointResult parallel = localizeWithOutage(threads);
    EXPECT_TRUE(samePinpoint(serial, parallel)) << threads << " threads";
  }
}

TEST(ParallelLocalize, SlaveSideParallelismPreservesTheVerdict) {
  Cluster& c = cluster();
  const PinpointResult serial = localizeHealthy(0);
  c.front.setAnalysisThreads(4);
  c.back.setAnalysisThreads(4);
  const PinpointResult parallel = localizeHealthy(4);
  c.front.setAnalysisThreads(0);
  c.back.setAnalysisThreads(0);
  EXPECT_TRUE(samePinpoint(serial, parallel));
}

// --- Batch transport accounting -------------------------------------------

TEST(ParallelLocalize, OneBatchRequestPerSlave) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(2);
  master.registerSlave(&c.front);
  master.registerSlave(&c.back);
  (void)master.localize({0, 1, 2, 3}, c.tv);
  const auto stats = master.runtimeStats();
  EXPECT_EQ(stats.requests, 2u);  // one batch per slave, not one per VM
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(ParallelLocalize, OutageExhaustsBatchRetriesAndMarksEndpointDown) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(2);
  runtime::FlakyConfig outage;
  outage.outage_windows = {{0, 1'000'000}};
  master.registerEndpoint(
      std::make_shared<runtime::FlakyEndpoint>(
          std::make_shared<runtime::LocalEndpoint>(&c.front), outage),
      {0, 1});
  const auto result = master.localize({0, 1}, c.tv);
  EXPECT_DOUBLE_EQ(result.coverage, 0.0);
  const auto stats = master.runtimeStats();
  EXPECT_EQ(stats.requests, 3u);  // the batch burned the full retry budget
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failures, 2u);  // both components stayed unanalyzed
  EXPECT_GT(stats.simulated_backoff_ms, 0.0);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Down);

  // A later localization outside the outage window probes once and fully
  // recovers the endpoint — same policy as the serial path.
  const auto after = master.localize({0, 1}, 1'000'001);
  EXPECT_DOUBLE_EQ(after.coverage, 1.0);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Healthy);
}

// --- Observability: pool drain + stats adapter ----------------------------

TEST(WorkerPool, PendingCountRisesWhileBlockedAndDrainsToZero) {
  runtime::WorkerPool pool(1);
  EXPECT_EQ(pool.pendingCount(), 0u);
  std::atomic<bool> release{false};
  std::atomic<std::size_t> observed_pending{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&pool, &release, &observed_pending] {
    // The single worker is parked here, so the remaining tasks are still
    // pending — the count must include them plus this running task.
    observed_pending.store(pool.pendingCount());
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 3; ++i) tasks.push_back([] {});
  std::thread runner([&pool, &tasks] { pool.run(std::move(tasks)); });
  while (observed_pending.load() == 0) std::this_thread::yield();
  EXPECT_EQ(observed_pending.load(), 4u);
  release.store(true);
  runner.join();
  EXPECT_EQ(pool.pendingCount(), 0u);
}

TEST(ParallelLocalize, PoolDrainsToZeroAfterLocalize) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(4);
  master.registerSlave(&c.front);
  master.registerSlave(&c.back);
  master.setDependencies(c.deps);
  (void)master.localize({0, 1, 2, 3}, c.tv);
  // localize() waits for the fan-out, so no batch job may still be queued —
  // and the master records that drained depth as a gauge.
  EXPECT_DOUBLE_EQ(
      master.metrics().snapshot().gauges.at("master.pool_pending"), 0.0);
}

TEST(ParallelLocalize, RuntimeStatsAdapterMatchesRegistrySnapshot) {
  // Exercise retries *and* failures (dark front slave burns the full retry
  // budget), then check the legacy struct is exactly the registry values.
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(2);
  runtime::FlakyConfig outage;
  outage.outage_windows = {{0, 1'000'000}};
  master.registerEndpoint(
      std::make_shared<runtime::FlakyEndpoint>(
          std::make_shared<runtime::LocalEndpoint>(&c.front), outage),
      {0, 1});
  master.registerSlave(&c.back);
  (void)master.localize({0, 1, 2, 3}, c.tv);

  const MasterRuntimeStats stats = master.runtimeStats();
  const obs::MetricsSnapshot snap = master.metrics().snapshot();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.failures, 0u);
  EXPECT_GT(stats.simulated_backoff_ms, 0.0);
  EXPECT_EQ(stats.requests, snap.counters.at("master.requests"));
  EXPECT_EQ(stats.retries, snap.counters.at("master.retries"));
  EXPECT_EQ(stats.failures, snap.counters.at("master.failures"));
  EXPECT_EQ(stats.simulated_backoff_ms, snap.gauges.at("master.backoff_ms"));
  // Every localize() lands one observation in the latency histogram.
  EXPECT_EQ(snap.histograms.at("master.localize_ms").count, 1u);
}

TEST(ParallelLocalize, TracedLocalizeEmitsPipelineSpans) {
  // Flip the global tracer on around one parallel localization and check the
  // span taxonomy covers every pipeline layer; the verdict itself must be
  // untouched by tracing.
  Cluster& c = cluster();
  const PinpointResult reference = localizeHealthy(0);
  obs::Tracer& tracer = obs::tracer();
  const bool was_enabled = tracer.enabled();
  tracer.setEnabled(true);
  tracer.clear();
  const PinpointResult traced = localizeHealthy(2);
  tracer.setEnabled(was_enabled);
  EXPECT_TRUE(samePinpoint(reference, traced));

  std::set<std::string> names;
  for (const obs::SpanRecord& r : tracer.records()) names.insert(r.name);
  tracer.clear();
  for (const char* expected :
       {"master.localize", "master.fanout", "master.merge", "master.batch",
        "pool.queue_wait", "pool.task", "slave.analyze_batch",
        "slave.analyze_vm", "selector.component", "selector.metric",
        "signal.cusum", "signal.burst_threshold"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
  }
}

// --- Concurrent localizations ---------------------------------------------

TEST(ParallelLocalize, ConcurrentLocalizeCallsAgree) {
  Cluster& c = cluster();
  FChainMaster master;
  master.setWorkerThreads(4);
  master.registerSlave(&c.front);
  master.registerSlave(&c.back);
  master.setDependencies(c.deps);
  const PinpointResult reference = master.localize({0, 1, 2, 3}, c.tv);

  std::vector<PinpointResult> results(4);
  std::vector<std::thread> callers;
  callers.reserve(results.size());
  for (auto& slot : results) {
    callers.emplace_back([&master, &c, &slot] {
      slot = master.localize({0, 1, 2, 3}, c.tv);
    });
  }
  for (auto& caller : callers) caller.join();
  for (const PinpointResult& result : results) {
    EXPECT_TRUE(samePinpoint(reference, result));
  }
}

}  // namespace
}  // namespace fchain::core
