// Tests for record persistence and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/exporter.h"
#include "eval/runner.h"
#include "fchain/fchain.h"
#include "persist/codec.h"
#include "sim/record_io.h"

namespace fchain {
namespace {

/// Re-frames a (possibly hand-corrupted) record body under a fresh, valid
/// v2 header. Corruption tests need this to get *past* the checksum gate
/// and exercise the parse-level validation behind it.
std::string reframeRecord(const std::string& text) {
  const auto newline = text.find('\n');
  EXPECT_NE(newline, std::string::npos);
  const std::string body = text.substr(newline + 1);
  return "fchain-record-v2 " + std::to_string(body.size()) + " " +
         std::to_string(persist::crc32(body.data(), body.size())) + "\n" +
         body;
}

const eval::TrialData& sampleTrial() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = 8;
    return eval::generateTrials(eval::rubisCpuHog(), options);
  }();
  return set.trials.front();
}

TEST(RecordIo, RoundTripPreservesEverythingObservable) {
  const auto& record = sampleTrial().record;
  std::stringstream buffer;
  sim::saveRecord(buffer, record);
  const auto loaded = sim::loadRecord(buffer);

  EXPECT_EQ(loaded.app_spec.name, record.app_spec.name);
  EXPECT_EQ(loaded.app_spec.wire_style, record.app_spec.wire_style);
  EXPECT_EQ(loaded.app_spec.batch, record.app_spec.batch);
  ASSERT_EQ(loaded.app_spec.components.size(),
            record.app_spec.components.size());
  for (std::size_t i = 0; i < loaded.app_spec.components.size(); ++i) {
    EXPECT_EQ(loaded.app_spec.components[i].name,
              record.app_spec.components[i].name);
  }
  ASSERT_EQ(loaded.app_spec.edges.size(), record.app_spec.edges.size());
  EXPECT_EQ(loaded.violation_time, record.violation_time);
  EXPECT_EQ(loaded.ground_truth, record.ground_truth);
  ASSERT_EQ(loaded.faults.size(), record.faults.size());
  EXPECT_EQ(loaded.faults[0].type, record.faults[0].type);
  EXPECT_EQ(loaded.faults[0].start_time, record.faults[0].start_time);

  ASSERT_EQ(loaded.metrics.size(), record.metrics.size());
  for (std::size_t c = 0; c < loaded.metrics.size(); ++c) {
    for (MetricKind kind : kAllMetrics) {
      const auto& a = loaded.metrics[c].of(kind);
      const auto& b = record.metrics[c].of(kind);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(a.startTime(), b.startTime());
      for (TimeSec t = a.startTime(); t < a.endTime(); t += 97) {
        EXPECT_NEAR(a.at(t), b.at(t), 1e-6);
      }
    }
  }
  ASSERT_EQ(loaded.edge_traffic.size(), record.edge_traffic.size());
}

TEST(RecordIo, DiagnosisOfLoadedRecordMatchesOriginal) {
  const auto& trial = sampleTrial();
  std::stringstream buffer;
  sim::saveRecord(buffer, trial.record);
  const auto loaded = sim::loadRecord(buffer);

  const auto discovered_original =
      netdep::discoverDependencies(trial.record);
  const auto discovered_loaded = netdep::discoverDependencies(loaded);
  const auto original =
      core::localizeRecord(trial.record, &discovered_original, {});
  const auto replayed = core::localizeRecord(loaded, &discovered_loaded, {});
  EXPECT_EQ(original.pinpointed, replayed.pinpointed);
}

TEST(RecordIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/record_io_test.rec";
  sim::saveRecord(path, sampleTrial().record);
  const auto loaded = sim::loadRecord(path);
  EXPECT_EQ(loaded.ground_truth, sampleTrial().record.ground_truth);
  std::remove(path.c_str());
}

TEST(RecordIo, MissingFileThrows) {
  EXPECT_THROW(sim::loadRecord("/nonexistent/incident.rec"),
               std::runtime_error);
}

TEST(RecordIo, GarbageInputThrows) {
  std::stringstream buffer("this is not a record");
  EXPECT_THROW(sim::loadRecord(buffer), std::runtime_error);
}

// A record whose metric stream was corrupted to NaN/inf (broken exporter,
// truncated float, bit rot) must be rejected with a clear parse error, not
// silently fed into the Markov models.
TEST(RecordIo, NonFiniteMetricValueRejectedOnLoad) {
  sim::RunRecord tiny;
  tiny.app_spec.name = "tiny";
  tiny.app_spec.components.resize(1);
  tiny.app_spec.components[0].name = "c0";
  MetricSeries series(0);
  for (int i = 0; i < 3; ++i) {
    std::array<double, kMetricCount> sample{};
    sample.fill(1.25);
    series.append(sample);
  }
  tiny.metrics.push_back(series);

  // Sanity: the uncorrupted record round-trips.
  std::stringstream clean;
  sim::saveRecord(clean, tiny);
  const std::string text = clean.str();
  std::stringstream pristine(text);
  EXPECT_NO_THROW(sim::loadRecord(pristine));

  for (const char* poison : {"nan", "inf", "-inf", "bogus"}) {
    std::string corrupted = text;
    const auto pos = corrupted.find("1.25");
    ASSERT_NE(pos, std::string::npos);
    corrupted.replace(pos, 4, poison);
    // Re-frame under a valid header: this simulates a *writer* that emitted
    // garbage (checksum fine), which must still be rejected at parse level.
    std::stringstream in(reframeRecord(corrupted));
    try {
      sim::loadRecord(in);
      FAIL() << "corrupted value '" << poison << "' was accepted";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
          << e.what();
    }
  }
}

TEST(RecordIo, NonFiniteEdgeTrafficRejectedOnLoad) {
  sim::RunRecord tiny;
  tiny.app_spec.name = "tiny";
  tiny.edge_traffic = {{3.5, 4.5}};
  std::stringstream clean;
  sim::saveRecord(clean, tiny);
  std::string corrupted = clean.str();
  const auto pos = corrupted.find("4.5");
  ASSERT_NE(pos, std::string::npos);
  corrupted.replace(pos, 3, "nan");
  std::stringstream in(reframeRecord(corrupted));
  EXPECT_THROW(sim::loadRecord(in), std::runtime_error);
}

// Bit rot *without* a matching header rewrite must die at the checksum
// gate, and the error must carry the byte offset of the damage domain.
TEST(RecordIo, ChecksumMismatchRejectedOnLoad) {
  std::stringstream buffer;
  sim::saveRecord(buffer, sampleTrial().record);
  std::string text = buffer.str();
  const auto pos = text.find("rubis");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = 'x';  // single flipped byte, header untouched
  std::stringstream in(text);
  try {
    sim::loadRecord(in);
    FAIL() << "bit-rotted record was accepted";
  } catch (const persist::CorruptDataError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(RecordIo, TruncatedRecordRejectedOnLoad) {
  std::stringstream buffer;
  sim::saveRecord(buffer, sampleTrial().record);
  const std::string text = buffer.str();
  std::stringstream in(text.substr(0, text.size() / 2));
  try {
    sim::loadRecord(in);
    FAIL() << "truncated record was accepted";
  } catch (const persist::CorruptDataError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
    EXPECT_GT(e.offset(), 0u);
  }
}

// Archives written before the integrity header must stay loadable.
TEST(RecordIo, LegacyV1RecordStillLoads) {
  std::stringstream buffer;
  sim::saveRecord(buffer, sampleTrial().record);
  const std::string text = buffer.str();
  const auto newline = text.find('\n');
  const std::string legacy = "fchain-record-v1\n" + text.substr(newline + 1);
  std::stringstream in(legacy);
  const auto loaded = sim::loadRecord(in);
  EXPECT_EQ(loaded.ground_truth, sampleTrial().record.ground_truth);
}

// A corrupt count field (checksum valid, so a writer bug) must be rejected
// before it can drive a multi-gigabyte allocation.
TEST(RecordIo, ImplausibleCountRejectedOnLoad) {
  sim::RunRecord tiny;
  tiny.app_spec.name = "tiny";
  std::stringstream clean;
  sim::saveRecord(clean, tiny);
  std::string corrupted = clean.str();
  const auto pos = corrupted.find("components 0");
  ASSERT_NE(pos, std::string::npos);
  corrupted.replace(pos, 12, "components 999999999");
  std::stringstream in(reframeRecord(corrupted));
  try {
    sim::loadRecord(in);
    FAIL() << "implausible count was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  }
}

TEST(Exporter, CurvesCsvShape) {
  eval::SchemeCurve curve;
  curve.scheme = "X";
  eval::RocPoint point;
  point.threshold = 0.5;
  point.counts.tp = 2;
  point.counts.fp = 1;
  point.precision = point.counts.precision();
  point.recall = point.counts.recall();
  curve.points = {point};

  std::stringstream out;
  eval::writeCurvesCsv(out, {curve});
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, "scheme,threshold,precision,recall,tp,fp,fn");
  std::getline(out, line);
  EXPECT_EQ(line.substr(0, 6), "X,0.5,");
}

TEST(Exporter, MetricsCsvHasHeaderAndOneRowPerSecond) {
  const auto& record = sampleTrial().record;
  std::stringstream out;
  eval::writeMetricsCsv(out, record);
  std::string header;
  std::getline(out, header);
  EXPECT_NE(header.find("web.cpu_usage"), std::string::npos);
  EXPECT_NE(header.find("db.disk_write"), std::string::npos);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(out, line)) ++rows;
  EXPECT_EQ(rows, record.metrics[0].size());
}

}  // namespace
}  // namespace fchain
