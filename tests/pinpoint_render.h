// Shared golden-file rendering of a PinpointResult.
//
// Every suite that compares localization output against the checked-in
// goldens in tests/golden/ must render the result to the *same bytes*; this
// header is the single definition (it used to be byte-copied into each
// suite). The rendering deliberately excludes raw prediction-error doubles:
// onsets, change points, trends, and the pinpointed/unanalyzed sets are
// integer results of the deterministic pipeline and stable across
// platforms, while 17-digit doubles would make the goldens brittle under
// legitimate FP-contraction differences.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "fchain/pinpoint.h"

namespace fchain::core {

inline std::string renderPinpoint(const PinpointResult& result, TimeSec tv) {
  std::ostringstream out;
  out << "violation_time: " << tv << "\n";
  char coverage[32];
  std::snprintf(coverage, sizeof(coverage), "%.4f", result.coverage);
  out << "coverage: " << coverage << "\n";
  out << "external_factor: "
      << (result.external_factor
              ? std::string(trendName(result.external_trend))
              : std::string("none"))
      << "\n";
  out << "pinpointed:";
  for (ComponentId id : result.pinpointed) out << " " << id;
  if (result.pinpointed.empty()) out << " (none)";
  out << "\n";
  out << "unanalyzed:";
  for (ComponentId id : result.unanalyzed) out << " " << id;
  if (result.unanalyzed.empty()) out << " (none)";
  out << "\n";
  out << "chain:\n";
  for (const ComponentFinding& finding : result.chain) {
    out << "  component " << finding.component << " onset=" << finding.onset
        << " trend=" << trendName(finding.trend) << "\n";
    for (const MetricFinding& metric : finding.metrics) {
      out << "    " << metricName(metric.metric) << " onset=" << metric.onset
          << " change_point=" << metric.change_point
          << " trend=" << trendName(metric.trend) << "\n";
    }
  }
  return out.str();
}

}  // namespace fchain::core
