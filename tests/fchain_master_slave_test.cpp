// Integration test of the online master/slave deployment: slaves ingest
// per-host VM samples second by second; the master fans out the analysis on
// an SLO violation. The online path must agree with the offline replay path
// used by the evaluation harness.
#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "sim/simulator.h"

namespace fchain::core {
namespace {

TEST(MasterSlave, OnlineLocalizationMatchesOfflineReplay) {
  // One RUBiS CpuHog incident.
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = 77;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};

  // Two hosts: {web, app1} and {app2, db} — slaves are per host.
  FChainSlave slave_a(0), slave_b(1);
  slave_a.addComponent(0, 0);
  slave_a.addComponent(1, 0);
  slave_b.addComponent(2, 0);
  slave_b.addComponent(3, 0);

  sim::Simulation sim(config);
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < 4; ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      (id < 2 ? slave_a : slave_b).ingest(id, sample);
    }
  }
  ASSERT_TRUE(sim.violationTime().has_value());
  const TimeSec tv = *sim.violationTime();

  FChainMaster master;
  master.registerSlave(&slave_a);
  master.registerSlave(&slave_b);
  const auto record = sim.record();
  master.setDependencies(netdep::discoverDependencies(record));

  const auto online = master.localize({0, 1, 2, 3}, tv);
  EXPECT_EQ(online.pinpointed, (std::vector<ComponentId>{3}));

  // The offline replay path must reach the same verdict.
  const auto discovered = netdep::discoverDependencies(record);
  const auto offline = localizeRecord(record, &discovered, {});
  EXPECT_EQ(online.pinpointed, offline.pinpointed);
  ASSERT_EQ(online.chain.size(), offline.chain.size());
  for (std::size_t i = 0; i < online.chain.size(); ++i) {
    EXPECT_EQ(online.chain[i].component, offline.chain[i].component);
    EXPECT_EQ(online.chain[i].onset, offline.chain[i].onset);
  }
}

TEST(MasterSlave, SlaveIgnoresUnknownComponents) {
  FChainSlave slave(0);
  slave.addComponent(7, 0);
  EXPECT_TRUE(slave.monitors(7));
  EXPECT_FALSE(slave.monitors(8));
  slave.ingest(8, {});  // silently ignored
  EXPECT_FALSE(slave.analyze(8, 100).has_value());
  EXPECT_EQ(slave.components(), (std::vector<ComponentId>{7}));
}

TEST(MasterSlave, MasterSkipsUnmonitoredComponents) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  FChainMaster master;
  master.registerSlave(&slave);
  // Component 1 is monitored by nobody: localize must not crash and must
  // simply have no finding for it.
  const auto result = master.localize({0, 1}, 50);
  EXPECT_TRUE(result.pinpointed.empty());
}

}  // namespace
}  // namespace fchain::core
