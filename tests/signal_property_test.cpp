// Property tests for the signal kernels (src/signal), run over many
// deterministic random seeds:
//   - CUSUM change-point detection is invariant under a constant offset
//     (the cumulative sum of mean-centered samples does not see the mean).
//   - Tangent rollback is monotone: the recovered onset never lies after
//     the triggering change point.
//   - The real FFT round-trips: ifftToReal(fftReal(x), n) reconstructs x.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "signal/cusum.h"
#include "signal/fft.h"
#include "signal/tangent.h"

namespace fchain::signal {
namespace {

/// Noisy series with a handful of genuine level shifts: piecewise-constant
/// levels plus uniform noise, the shape CUSUM is built for.
std::vector<double> randomShiftSeries(Rng& rng, std::size_t n) {
  std::vector<double> xs;
  xs.reserve(n);
  double level = rng.uniform(-5.0, 5.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.uniform() < 0.02) {
      level += rng.uniform(-4.0, 4.0);  // occasional regime change
    }
    xs.push_back(level + rng.uniform(-0.5, 0.5));
  }
  return xs;
}

std::vector<std::size_t> changeIndices(const std::vector<ChangePoint>& points) {
  std::vector<std::size_t> indices;
  indices.reserve(points.size());
  for (const ChangePoint& p : points) indices.push_back(p.index);
  return indices;
}

// --- CUSUM: constant-offset invariance ------------------------------------

TEST(SignalProperty, CusumInvariantUnderConstantOffset) {
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    Rng rng(mixSeed(0xc05f5e7, seed));
    const std::vector<double> xs = randomShiftSeries(rng, 160);
    const double offset = rng.uniform(-100.0, 100.0);
    std::vector<double> shifted = xs;
    for (double& v : shifted) v += offset;

    const auto base = detectChangePoints(xs);
    const auto moved = detectChangePoints(shifted);
    // The detected *positions* must be identical: centering subtracts the
    // mean, so a constant offset cancels exactly (offset + sample is one
    // double addition, no catastrophic cancellation at these magnitudes).
    EXPECT_EQ(changeIndices(base), changeIndices(moved))
        << "seed " << seed << " offset " << offset;
    // Level shifts across each change are offset-free too.
    ASSERT_EQ(base.size(), moved.size()) << "seed " << seed;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_NEAR(base[i].shift, moved[i].shift, 1e-6)
          << "seed " << seed << " change " << i;
    }
  }
}

TEST(SignalProperty, CusumFindsNothingInConstantSeries) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(mixSeed(0xf1a7, seed));
    const std::vector<double> xs(128, rng.uniform(-10.0, 10.0));
    EXPECT_TRUE(detectChangePoints(xs).empty()) << "seed " << seed;
  }
}

// --- Tangent rollback: onset monotonicity ---------------------------------

TEST(SignalProperty, RollbackOnsetNeverAfterSelectedChangePoint) {
  std::size_t rolled_back_at_least_once = 0;
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    Rng rng(mixSeed(0x7a4637, seed));
    const std::vector<double> xs = randomShiftSeries(rng, 200);
    const auto points = detectChangePoints(xs);
    if (points.empty()) continue;
    for (std::size_t selected = 0; selected < points.size(); ++selected) {
      const std::size_t onset = rollbackOnset(xs, points, selected);
      // The onset is one of the detected change points at or before the
      // selected one — rollback only ever walks backwards.
      EXPECT_LE(onset, selected) << "seed " << seed;
      EXPECT_LE(points[onset].index, points[selected].index)
          << "seed " << seed;
      if (onset < selected) ++rolled_back_at_least_once;
    }
  }
  // The property trivially holds if rollback never moves; make sure the
  // inputs actually exercised the walk.
  EXPECT_GT(rolled_back_at_least_once, 0u);
}

TEST(SignalProperty, RollbackStopsAtSlopeRegimeChange) {
  // A flat run, then a steady ramp split by CUSUM into several change
  // points: rolling back from a mid-ramp point must not cross into the
  // flat regime (the tangent differs there by construction).
  std::vector<double> xs(60, 0.0);
  for (std::size_t i = 0; i < 60; ++i) xs.push_back(static_cast<double>(i));
  const auto points = detectChangePoints(xs);
  if (points.size() < 2) GTEST_SKIP() << "segmentation too coarse";
  const std::size_t onset = rollbackOnset(xs, points, points.size() - 1);
  // The onset change point still lies inside (or at the boundary of) the
  // ramp, never back in the flat prefix.
  EXPECT_GE(points[onset].index, 55u);
}

// --- FFT round-trip -------------------------------------------------------

TEST(SignalProperty, FftRoundTripReconstructsSignal) {
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    Rng rng(mixSeed(0xfff7, seed));
    // Sizes straddle the power-of-two padding: exact powers, one below,
    // one above, and odd lengths.
    const std::size_t n = 3 + static_cast<std::size_t>(rng.below(200));
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(-1e3, 1e3));

    auto spectrum = fftReal(xs);
    EXPECT_EQ(spectrum.size(), nextPow2(n));
    const std::vector<double> back = ifftToReal(std::move(spectrum), n);
    ASSERT_EQ(back.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i], xs[i], 1e-6 * 1e3) << "seed " << seed << " i=" << i;
    }
  }
}

TEST(SignalProperty, FftOfZerosIsZero) {
  const std::vector<double> xs(37, 0.0);
  auto spectrum = fftReal(xs);
  for (const auto& bin : spectrum) {
    EXPECT_EQ(bin.real(), 0.0);
    EXPECT_EQ(bin.imag(), 0.0);
  }
  const std::vector<double> back = ifftToReal(std::move(spectrum), 37);
  for (double v : back) EXPECT_EQ(v, 0.0);
}

TEST(SignalProperty, FftLinearity) {
  // fft(a*x) == a*fft(x) — a cheap spot-check that the transform is the
  // linear map it claims to be, over a few seeds.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(mixSeed(0x11a2, seed));
    const std::size_t n = 64;
    std::vector<double> xs, scaled;
    const double a = rng.uniform(0.5, 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = rng.uniform(-10.0, 10.0);
      xs.push_back(v);
      scaled.push_back(a * v);
    }
    const auto fx = fftReal(xs);
    const auto fs = fftReal(scaled);
    ASSERT_EQ(fx.size(), fs.size());
    for (std::size_t i = 0; i < fx.size(); ++i) {
      EXPECT_NEAR(fs[i].real(), a * fx[i].real(), 1e-8 * 10.0 * n);
      EXPECT_NEAR(fs[i].imag(), a * fx[i].imag(), 1e-8 * 10.0 * n);
    }
  }
}

}  // namespace
}  // namespace fchain::signal
