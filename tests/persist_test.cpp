// Tests for the binary persistence layer: codec primitives, framed
// container, snapshot encode/decode validation, and the append-only
// journals (torn-tail tolerance, incident pending scan, epoch handling).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "persist/codec.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace fchain::persist {
namespace {

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Codec primitives -----------------------------------------------------

TEST(Codec, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Codec, Crc32ChunkedEqualsWhole) {
  const char* text = "crash-tolerant state";
  const std::size_t len = 20;
  const std::uint32_t whole = crc32(text, len);
  std::uint32_t chunked = crc32(text, 7);
  chunked = crc32(text + 7, len - 7, chunked);
  EXPECT_EQ(chunked, whole);
}

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.u8(0xAB);
  enc.u32(0xDEADBEEFu);
  enc.u64(0x0123456789ABCDEFull);
  enc.i64(-42);
  enc.f64(3.14159);
  const auto bytes = enc.take();

  Decoder dec(bytes);
  EXPECT_EQ(dec.u8(), 0xAB);
  EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.i64(), -42);
  EXPECT_EQ(dec.f64(), 3.14159);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, DoublesRoundTripBitExactly) {
  // Values chosen to break any text round-trip: subnormal, NaN payload,
  // signed zero, extreme exponents. The codec must restore exact bits.
  const std::vector<double> values = {
      0.1 + 0.2,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  Encoder enc;
  enc.doubles(values);
  Decoder dec(enc.buffer());
  const auto restored = dec.doubles();
  ASSERT_EQ(restored.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored[i]),
              std::bit_cast<std::uint64_t>(values[i]))
        << "value index " << i;
  }
}

TEST(Codec, DecoderRejectsReadPastEnd) {
  Encoder enc;
  enc.u32(7);
  Decoder dec(enc.buffer());
  dec.u32();
  try {
    dec.u32();
    FAIL() << "read past end was accepted";
  } catch (const CorruptDataError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(Codec, DoublesCountGuardBlocksHugeAllocation) {
  // A corrupt u64 count far beyond the remaining bytes must throw, not
  // attempt the allocation.
  Encoder enc;
  enc.u64(std::uint64_t{1} << 60);
  Decoder dec(enc.buffer());
  EXPECT_THROW(dec.doubles(), CorruptDataError);
}

// --- Framed container -----------------------------------------------------

TEST(Codec, FrameRoundTrip) {
  Encoder payload;
  payload.u64(1234);
  const auto framed = frame(0x54534554u, 3, payload.buffer());
  EXPECT_EQ(framed.size(), kFrameHeaderSize + payload.size());
  const FrameView view = unframe(framed, 0x54534554u, 3);
  EXPECT_EQ(view.version, 3u);
  Decoder dec(view.payload);
  EXPECT_EQ(dec.u64(), 1234u);
}

TEST(Codec, UnframeRejectsEachCorruption) {
  Encoder payload;
  payload.u64(99);
  auto framed = frame(0x54534554u, 1, payload.buffer());

  {  // wrong magic — offset 0
    auto bad = framed;
    bad[0] ^= 0xFF;
    try {
      unframe(bad, 0x54534554u, 1);
      FAIL();
    } catch (const CorruptDataError& e) {
      EXPECT_EQ(e.offset(), 0u);
    }
  }
  {  // future version — offset 4
    try {
      unframe(framed, 0x54534554u, 0);
      FAIL();
    } catch (const CorruptDataError& e) {
      EXPECT_EQ(e.offset(), 4u);
    }
  }
  {  // truncated payload — offset 8 (length field disagrees with the bytes)
    auto bad = framed;
    bad.pop_back();
    try {
      unframe(bad, 0x54534554u, 1);
      FAIL();
    } catch (const CorruptDataError& e) {
      EXPECT_EQ(e.offset(), 8u);
    }
  }
  {  // flipped payload bit — checksum failure, anchored at the payload
    auto bad = framed;
    bad[kFrameHeaderSize] ^= 0x01;
    try {
      unframe(bad, 0x54534554u, 1);
      FAIL();
    } catch (const CorruptDataError& e) {
      EXPECT_EQ(e.offset(), kFrameHeaderSize);
    }
  }
}

// --- File I/O -------------------------------------------------------------

TEST(Codec, WriteFileAtomicRoundTrip) {
  const std::string path = tempPath("persist_atomic.bin");
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  writeFileAtomic(path, bytes);
  EXPECT_TRUE(fileExists(path));
  EXPECT_FALSE(fileExists(path + ".tmp"));
  EXPECT_EQ(readFileBytes(path), bytes);
  // Overwrite: the old content is fully replaced, never blended.
  const std::vector<std::uint8_t> next = {9, 8};
  writeFileAtomic(path, next);
  EXPECT_EQ(readFileBytes(path), next);
  std::remove(path.c_str());
}

TEST(Codec, ReadMissingFileThrows) {
  EXPECT_THROW(readFileBytes("/nonexistent/state.bin"), std::runtime_error);
}

// --- Snapshot codec -------------------------------------------------------

SlaveSnapshot sampleSnapshot() {
  SlaveSnapshot snapshot;
  snapshot.host = 7;
  snapshot.epoch = 3;
  VmSnapshotState vm;
  vm.component = 2;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    vm.series[m].start = 100;
    vm.series[m].values = {0.5, 0.25, 0.75};
    auto& p = vm.predictors[m];
    p.bins = 2;
    p.calibration_samples = 4;
    p.padding = 0.05;
    p.calibrated = true;
    p.lo = 0.0;
    p.hi = 1.0;
    p.width = 0.5;
    p.decay = 0.98;
    p.laplace = 1.0;
    p.counts = {1.0, 2.0, 3.0, 4.0};
    p.row_mass = {3.0, 7.0};
    p.errors.start = 100;
    p.errors.values = {0.01, 0.02, 0.03};
    p.has_last_state = true;
    p.last_state = 1;
    p.has_predicted_next = true;
    p.predicted_next = 0.6;
  }
  vm.gaps_filled = 5;
  vm.quarantined = 1;
  snapshot.vms.push_back(vm);
  return snapshot;
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const SlaveSnapshot original = sampleSnapshot();
  const auto bytes = encodeSlaveSnapshot(original);
  const SlaveSnapshot decoded = decodeSlaveSnapshot(bytes);
  EXPECT_EQ(decoded.host, original.host);
  EXPECT_EQ(decoded.epoch, original.epoch);
  ASSERT_EQ(decoded.vms.size(), 1u);
  const auto& vm = decoded.vms[0];
  EXPECT_EQ(vm.component, 2);
  EXPECT_EQ(vm.gaps_filled, 5u);
  EXPECT_EQ(vm.quarantined, 1u);
  const auto& p = vm.predictors[0];
  EXPECT_EQ(p.bins, 2u);
  EXPECT_TRUE(p.calibrated);
  EXPECT_EQ(p.counts, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(p.row_mass, (std::vector<double>{3.0, 7.0}));
  EXPECT_TRUE(p.has_last_state);
  EXPECT_EQ(p.last_state, 1u);
  EXPECT_EQ(p.predicted_next, 0.6);
  EXPECT_EQ(vm.series[0].values, (std::vector<double>{0.5, 0.25, 0.75}));
}

TEST(Snapshot, DecodeRejectsBitRotAnywhere) {
  const auto bytes = encodeSlaveSnapshot(sampleSnapshot());
  // Flip one bit in every 7th byte position, one at a time; every single
  // corruption must be caught (checksum covers the whole payload).
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    auto bad = bytes;
    bad[i] ^= 0x10;
    EXPECT_THROW(decodeSlaveSnapshot(bad), CorruptDataError)
        << "flip at byte " << i << " was accepted";
  }
}

TEST(Snapshot, DecodeRejectsTruncation) {
  const auto bytes = encodeSlaveSnapshot(sampleSnapshot());
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, kFrameHeaderSize,
                           bytes.size() - 1}) {
    std::vector<std::uint8_t> bad(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(decodeSlaveSnapshot(bad), CorruptDataError)
        << "truncation to " << keep << " bytes was accepted";
  }
}

TEST(Snapshot, DecodeRejectsInconsistentModelShape) {
  // A payload that frames correctly but violates structural invariants
  // (counts size != bins^2) must be rejected by validation, not trusted.
  SlaveSnapshot snapshot = sampleSnapshot();
  snapshot.vms[0].predictors[3].counts.pop_back();
  const auto bytes = encodeSlaveSnapshot(snapshot);
  EXPECT_THROW(decodeSlaveSnapshot(bytes), CorruptDataError);
}

TEST(Snapshot, SaveLoadFileRoundTrip) {
  const std::string path = tempPath("persist_snapshot.snap");
  saveSlaveSnapshot(path, sampleSnapshot());
  const SlaveSnapshot loaded = loadSlaveSnapshot(path);
  EXPECT_EQ(loaded.host, 7);
  EXPECT_EQ(loaded.epoch, 3u);
  std::remove(path.c_str());
}

// --- Sample journal -------------------------------------------------------

SampleRecord makeRecord(ComponentId id, TimeSec t, double base) {
  SampleRecord record;
  record.component = id;
  record.t = t;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    record.sample[m] = base + static_cast<double>(m);
  }
  return record;
}

TEST(SampleJournal, AppendAndReplay) {
  const std::string path = tempPath("persist_journal.journal");
  std::remove(path.c_str());
  {
    SampleJournalWriter writer(path, /*epoch=*/5, /*truncate=*/true);
    writer.append(makeRecord(0, 100, 1.5));
    writer.append(makeRecord(1, 101, 2.5));
    EXPECT_EQ(writer.recordsWritten(), 2u);
  }
  const auto replay = readSampleJournal(path);
  EXPECT_EQ(replay.epoch, 5u);
  EXPECT_TRUE(replay.clean);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].component, 0);
  EXPECT_EQ(replay.records[0].t, 100);
  EXPECT_EQ(replay.records[0].sample[0], 1.5);
  EXPECT_EQ(replay.records[1].component, 1);
  std::remove(path.c_str());
}

TEST(SampleJournal, AppendModeContinuesExistingFile) {
  const std::string path = tempPath("persist_journal_append.journal");
  std::remove(path.c_str());
  {
    SampleJournalWriter writer(path, 1, /*truncate=*/true);
    writer.append(makeRecord(0, 10, 1.0));
  }
  {
    // Re-open without truncating (a checkpointer restart mid-epoch).
    SampleJournalWriter writer(path, 1, /*truncate=*/false);
    writer.append(makeRecord(0, 11, 2.0));
  }
  const auto replay = readSampleJournal(path);
  EXPECT_EQ(replay.epoch, 1u);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[1].t, 11);
  std::remove(path.c_str());
}

/// Simulates a crash mid-append: chops `bytes` off the end of the file.
void chopTail(const std::string& path, std::size_t bytes) {
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() - bytes));
}

TEST(SampleJournal, TornTailDroppedNotFatal) {
  const std::string path = tempPath("persist_journal_torn.journal");
  std::remove(path.c_str());
  {
    SampleJournalWriter writer(path, 2, /*truncate=*/true);
    writer.append(makeRecord(0, 100, 1.0));
    writer.append(makeRecord(0, 101, 2.0));
  }
  chopTail(path, 5);

  const auto replay = readSampleJournal(path);
  EXPECT_FALSE(replay.clean);
  ASSERT_EQ(replay.records.size(), 1u);  // valid prefix survives
  EXPECT_EQ(replay.records[0].t, 100);
  std::remove(path.c_str());
}

TEST(SampleJournal, ReopenAfterTornTailTruncatesBeforeAppending) {
  const std::string path = tempPath("persist_journal_torn_reopen.journal");
  std::remove(path.c_str());
  {
    SampleJournalWriter writer(path, 3, /*truncate=*/true);
    writer.append(makeRecord(0, 100, 1.0));
    writer.append(makeRecord(0, 101, 2.0));
  }
  chopTail(path, 5);  // crash mid-append tears the t=101 record
  {
    // Restart mid-epoch: the writer must drop the torn record, or every
    // record it appends lands behind a corrupt frame and is lost to replay.
    SampleJournalWriter writer(path, 3, /*truncate=*/false);
    writer.append(makeRecord(0, 102, 3.0));
  }
  const auto replay = readSampleJournal(path);
  EXPECT_TRUE(replay.clean);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].t, 100);
  EXPECT_EQ(replay.records[1].t, 102);
  std::remove(path.c_str());
}

TEST(SampleJournal, ReopenAfterCrashDuringCreationStartsFresh) {
  const std::string path = tempPath("persist_journal_short.journal");
  std::remove(path.c_str());
  {
    // Crash mid-header: the file exists but is shorter than a header.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("FCJL", 4);
  }
  {
    SampleJournalWriter writer(path, 9, /*truncate=*/false);
    writer.append(makeRecord(0, 50, 1.0));
  }
  const auto replay = readSampleJournal(path);
  EXPECT_EQ(replay.epoch, 9u);
  EXPECT_TRUE(replay.clean);
  ASSERT_EQ(replay.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(SampleJournal, DamagedHeaderIsFatal) {
  const std::string path = tempPath("persist_journal_header.journal");
  std::remove(path.c_str());
  {
    SampleJournalWriter writer(path, 2, /*truncate=*/true);
    writer.append(makeRecord(0, 100, 1.0));
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(0);
  file.put('\x00');  // clobber the magic
  file.close();
  EXPECT_THROW(readSampleJournal(path), CorruptDataError);
  std::remove(path.c_str());
}

// --- Incident journal -----------------------------------------------------

TEST(IncidentJournal, PendingTracksUnfinishedIncidents) {
  const std::string path = tempPath("persist_incidents.journal");
  std::remove(path.c_str());
  {
    IncidentJournal journal(path);
    const auto a = journal.logStart({0, 1, 2}, 1000);
    const auto b = journal.logStart({3}, 1100);
    journal.logDone(a);
    EXPECT_NE(a, b);
  }
  const auto pending = IncidentJournal::pending(path);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].components, (std::vector<ComponentId>{3}));
  EXPECT_EQ(pending[0].violation_time, 1100);
  std::remove(path.c_str());
}

TEST(IncidentJournal, IdsContinueAcrossReopen) {
  const std::string path = tempPath("persist_incidents_reopen.journal");
  std::remove(path.c_str());
  std::uint64_t first = 0;
  {
    IncidentJournal journal(path);
    first = journal.logStart({0}, 500);
    journal.logDone(first);
  }
  {
    IncidentJournal journal(path);  // master restart
    const auto next = journal.logStart({1}, 600);
    EXPECT_GT(next, first);
  }
  const auto pending = IncidentJournal::pending(path);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].components, (std::vector<ComponentId>{1}));
  std::remove(path.c_str());
}

TEST(IncidentJournal, PendingOnMissingFileIsEmpty) {
  EXPECT_TRUE(IncidentJournal::pending(tempPath("never_written.journal"))
                  .empty());
}

TEST(IncidentJournal, ReopenAfterTornTailKeepsLaterRecordsVisible) {
  const std::string path = tempPath("persist_incidents_torn.journal");
  std::remove(path.c_str());
  std::uint64_t a = 0;
  {
    IncidentJournal journal(path);
    a = journal.logStart({0}, 100);
    journal.logStart({1}, 200);  // torn by the "crash" below
  }
  chopTail(path, 3);

  // Reopening must truncate the torn start record; appending behind it
  // would hide the done-marker and the new incident from every future scan
  // (incident a re-run forever, incident c lost from crash tolerance).
  std::uint64_t c = 0;
  {
    IncidentJournal journal(path);
    journal.logDone(a);
    c = journal.logStart({2}, 300);
  }
  const auto pending = IncidentJournal::pending(path);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, c);
  EXPECT_EQ(pending[0].components, (std::vector<ComponentId>{2}));
  EXPECT_EQ(pending[0].violation_time, 300);
  std::remove(path.c_str());
}

TEST(IncidentJournal, ReopenAfterCrashDuringCreationStartsFresh) {
  const std::string path = tempPath("persist_incidents_short.journal");
  std::remove(path.c_str());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("FCIJ", 4);  // crash mid-header
  }
  IncidentJournal journal(path);
  const auto id = journal.logStart({4}, 700);
  const auto pending = IncidentJournal::pending(path);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, id);
  std::remove(path.c_str());
}

TEST(IncidentJournal, ConcurrentLogCallsNeitherCorruptNorReuseIds) {
  // FChainMaster::localize is documented safe for concurrent calls and
  // drives logStart/logDone; interleaved record bytes or a racy id counter
  // would corrupt the journal. Runs under the TSan CI job.
  const std::string path = tempPath("persist_incidents_threads.journal");
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    IncidentJournal journal(path);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&journal, i] {
        for (int k = 0; k < kPerThread; ++k) {
          const auto id = journal.logStart(
              {static_cast<ComponentId>(i)}, 1000 + k);
          journal.logDone(id);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  // Every record framed intact (a torn/corrupt record would stop the scan
  // early and strand incidents as pending)...
  EXPECT_TRUE(IncidentJournal::pending(path).empty());
  // ...and all 100 ids were distinct: the reopened sequence continues past
  // the highest one.
  IncidentJournal reopened(path);
  EXPECT_EQ(reopened.logStart({0}, 2000),
            static_cast<std::uint64_t>(kThreads * kPerThread) + 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fchain::persist
