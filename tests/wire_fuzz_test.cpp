// Deterministic fuzz-style corpus tests for the wire protocol.
//
// The multi-process transport (runtime/wire.h) inherits the persistence
// codec's damage contract: a truncated or bit-flipped frame is rejected
// with persist::CorruptDataError carrying the byte offset of the damage —
// never crashed on, never decoded as a garbage message. These tests grind
// that contract with a corpus of valid frames (handshake both directions,
// analyze request/reply with real findings, streaming ingest — checked into
// tests/fixtures/wire_frames/ so the wire format itself is pinned in
// version control) mutated by
//   - exhaustive truncation: every proper prefix of every frame;
//   - exhaustive single-bit flips over every frame in the corpus;
//   - seeded random multi-bit flips (fixed seeds, replayable);
// plus the two header-level rejections the socket layer depends on:
// version-mismatch frames and frames announcing an oversized payload.
//
// Regenerate the corpus after an intentional format change:
//   FCHAIN_UPDATE_FIXTURES=1 ./build/tests/test_wire_fuzz
// then review the binary diff like any other code change.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "persist/codec.h"
#include "runtime/wire.h"

namespace fchain::runtime::wire {
namespace {

using persist::CorruptDataError;

// --- Corpus construction (fully deterministic) ----------------------------

std::vector<std::uint8_t> buildHello() { return encodeHello(Hello{}); }

std::vector<std::uint8_t> buildHelloReply() {
  HelloReply msg;
  msg.host = 1;
  msg.components = {2, 3};
  msg.identity_hash = slaveIdentityHash(msg.host, msg.components);
  return encodeHelloReply(msg);
}

std::vector<std::uint8_t> buildAnalyzeRequest() {
  AnalyzeBatchRequest msg;
  msg.components = {0, 1, 2, 3};
  msg.violation_time = 2029;
  msg.deadline_ms = 250.0;
  return encodeAnalyzeBatchRequest(msg);
}

/// A realistic batch reply: one rich finding, one absent slot, one finding
/// with awkward doubles (negative zero, subnormal) so the f64 bit-cast path
/// is part of the pinned bytes.
std::vector<std::uint8_t> buildAnalyzeReply() {
  AnalyzeBatchReply msg;
  msg.status = EndpointStatus::Ok;
  msg.latency_ms = 12.25;
  core::ComponentFinding finding;
  finding.component = 3;
  finding.onset = 1999;
  finding.trend = Trend::Up;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    core::MetricFinding m;
    m.metric = static_cast<MetricKind>(i);
    m.onset = 1999 + static_cast<TimeSec>(i);
    m.change_point = 2001 + static_cast<TimeSec>(i);
    m.trend = i % 2 == 0 ? Trend::Up : Trend::Down;
    m.prediction_error = 61.913879003039398 + 0.125 * static_cast<double>(i);
    m.expected_error = 23.781063591909241;
    finding.metrics.push_back(m);
  }
  msg.findings.push_back(finding);
  msg.findings.push_back(std::nullopt);
  core::ComponentFinding awkward;
  awkward.component = 1;
  awkward.onset = 2017;
  awkward.trend = Trend::Down;
  core::MetricFinding m;
  m.metric = static_cast<MetricKind>(0);
  m.onset = 2017;
  m.change_point = 2017;
  m.trend = Trend::Flat;
  m.prediction_error = -0.0;
  m.expected_error = 4.9406564584124654e-324;  // smallest subnormal
  awkward.metrics.push_back(m);
  msg.findings.push_back(awkward);
  return encodeAnalyzeBatchReply(msg);
}

std::vector<std::uint8_t> buildIngestRequest() {
  IngestRequest msg;
  msg.component = 2;
  msg.t = 1234;
  msg.deadline_ms = 50.0;
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    msg.sample[i] = 10.0 * static_cast<double>(i + 1) + 0.25;
  }
  return encodeIngestRequest(msg);
}

// --- Fixture management ---------------------------------------------------

std::string fixturePath(const std::string& name) {
  return std::string(FCHAIN_FIXTURE_DIR) + "/" + name;
}

bool updateFixturesRequested() {
  const char* update = std::getenv("FCHAIN_UPDATE_FIXTURES");
  return update != nullptr && update[0] != '\0' &&
         !(update[0] == '0' && update[1] == '\0');
}

std::vector<std::uint8_t> readBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

void writeBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

struct CorpusEntry {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

std::vector<CorpusEntry> corpus() {
  const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
      builders = {{"hello.bin", buildHello()},
                  {"hello_reply.bin", buildHelloReply()},
                  {"analyze_request.bin", buildAnalyzeRequest()},
                  {"analyze_reply.bin", buildAnalyzeReply()},
                  {"ingest_request.bin", buildIngestRequest()}};
  if (updateFixturesRequested()) {
    std::filesystem::create_directories(FCHAIN_FIXTURE_DIR);
    for (const auto& [name, bytes] : builders) {
      writeBytes(fixturePath(name), bytes);
    }
  }
  std::vector<CorpusEntry> entries;
  for (const auto& [name, bytes] : builders) {
    entries.push_back({name, readBytes(fixturePath(name))});
  }
  return entries;
}

void expectByteOffsetError(const CorruptDataError& error, std::size_t size) {
  EXPECT_LE(error.offset(), size);
  EXPECT_NE(std::string(error.what()).find("byte offset"), std::string::npos)
      << error.what();
}

// --- Corpus freshness -----------------------------------------------------

// The encoders must still produce the checked-in bytes; a mismatch means
// the wire format changed and the corpus (and the protocol version) needs a
// deliberate regeneration.
TEST(WireFuzz, CorpusMatchesCurrentEncoders) {
  const std::vector<CorpusEntry> entries = corpus();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].bytes, buildHello());
  EXPECT_EQ(entries[1].bytes, buildHelloReply());
  EXPECT_EQ(entries[2].bytes, buildAnalyzeRequest());
  EXPECT_EQ(entries[3].bytes, buildAnalyzeReply());
  EXPECT_EQ(entries[4].bytes, buildIngestRequest());
}

// And the valid baselines decode back to the exact messages, doubles
// bit-for-bit — the multi-process identity guarantee in miniature.
TEST(WireFuzz, CorpusRoundTripsBitExactly) {
  const std::vector<CorpusEntry> entries = corpus();
  const Message hello = decodeMessage(entries[0].bytes);
  EXPECT_EQ(std::get<Hello>(hello).protocol_version, kWireVersion);

  const Message hello_reply_msg = decodeMessage(entries[1].bytes);
  const auto& hello_reply = std::get<HelloReply>(hello_reply_msg);
  EXPECT_EQ(hello_reply.host, 1u);
  EXPECT_EQ(hello_reply.components, (std::vector<ComponentId>{2, 3}));
  EXPECT_EQ(hello_reply.identity_hash, slaveIdentityHash(1, {2, 3}));

  const Message request_msg = decodeMessage(entries[2].bytes);
  const auto& request = std::get<AnalyzeBatchRequest>(request_msg);
  EXPECT_EQ(request.components, (std::vector<ComponentId>{0, 1, 2, 3}));
  EXPECT_EQ(request.violation_time, 2029);

  const Message reply_msg = decodeMessage(entries[3].bytes);
  const auto& reply = std::get<AnalyzeBatchReply>(reply_msg);
  ASSERT_EQ(reply.findings.size(), 3u);
  ASSERT_TRUE(reply.findings[0].has_value());
  EXPECT_FALSE(reply.findings[1].has_value());
  ASSERT_TRUE(reply.findings[2].has_value());
  EXPECT_EQ(reply.findings[0]->metrics.size(), kMetricCount);
  EXPECT_EQ(reply.findings[0]->metrics[0].prediction_error,
            61.913879003039398);
  // Bit-exact doubles: negative zero keeps its sign bit, the subnormal
  // survives untouched.
  EXPECT_TRUE(std::signbit(reply.findings[2]->metrics[0].prediction_error));
  EXPECT_EQ(reply.findings[2]->metrics[0].expected_error,
            4.9406564584124654e-324);

  const Message ingest_msg = decodeMessage(entries[4].bytes);
  const auto& ingest = std::get<IngestRequest>(ingest_msg);
  EXPECT_EQ(ingest.component, 2u);
  EXPECT_EQ(ingest.t, 1234);
}

// The identity hash is what reconnect idempotence and the split-brain guard
// both hang off: order-insensitive over the claim set, sensitive to every
// change in it.
TEST(WireFuzz, IdentityHashIsOrderInsensitiveAndClaimSensitive) {
  EXPECT_EQ(slaveIdentityHash(1, {2, 3}), slaveIdentityHash(1, {3, 2}));
  EXPECT_NE(slaveIdentityHash(1, {2, 3}), slaveIdentityHash(2, {2, 3}));
  EXPECT_NE(slaveIdentityHash(1, {2, 3}), slaveIdentityHash(1, {2}));
  EXPECT_NE(slaveIdentityHash(1, {2, 3}), slaveIdentityHash(1, {2, 4}));
  EXPECT_NE(slaveIdentityHash(1, {}), slaveIdentityHash(2, {}));
}

// --- Exhaustive mutations --------------------------------------------------

TEST(WireFuzz, EveryTruncationOfEveryFrameIsRejectedWithAnOffset) {
  for (const CorpusEntry& entry : corpus()) {
    for (std::size_t len = 0; len < entry.bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix(entry.bytes.data(), len);
      try {
        decodeMessage(prefix);
        FAIL() << entry.name << " truncated to " << len
               << " bytes decoded successfully";
      } catch (const CorruptDataError& error) {
        expectByteOffsetError(error, len);
      }
      // Any other exception type (or a crash) propagates and fails.
    }
  }
}

// The frame CRC covers the whole payload and persist::unframe validates
// magic / version / length, so *every* single-bit flip anywhere in any
// corpus frame — header and payload alike — must be rejected.
TEST(WireFuzz, EverySingleBitFlipInEveryFrameIsRejected) {
  for (const CorpusEntry& entry : corpus()) {
    for (std::size_t byte = 0; byte < entry.bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> bytes = entry.bytes;
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        try {
          decodeMessage(bytes);
          FAIL() << entry.name << " flip at byte " << byte << " bit " << bit
                 << " decoded successfully";
        } catch (const CorruptDataError& error) {
          expectByteOffsetError(error, bytes.size());
        }
      }
    }
  }
}

// Multi-bit damage (2–8 independent flips per trial) can in principle fool
// a CRC; these fixed seeds prove no collision occurs on these frames — a
// failure would be a replayable test case, not a flake.
TEST(WireFuzz, SeededMultiBitFlipsAreAllRejected) {
  std::uint64_t salt = 0;
  for (const CorpusEntry& entry : corpus()) {
    Rng rng(0xf1a9'0010 + salt++);
    for (int trial = 0; trial < 256; ++trial) {
      std::vector<std::uint8_t> bytes = entry.bytes;
      const int flips = 2 + static_cast<int>(rng.below(7));
      for (int f = 0; f < flips; ++f) {
        const std::size_t byte = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(bytes.size())));
        bytes[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      try {
        decodeMessage(bytes);
        // All flips may have cancelled out (same byte+bit hit twice): only
        // a byte-identical buffer is allowed to decode.
        EXPECT_EQ(bytes, entry.bytes)
            << entry.name << " trial " << trial
            << ": damaged frame decoded successfully";
      } catch (const CorruptDataError& error) {
        expectByteOffsetError(error, bytes.size());
      }
    }
  }
}

// --- Header-level rejections the socket layer depends on --------------------

TEST(WireFuzz, FutureProtocolVersionIsRejectedAtTheVersionOffset) {
  persist::Encoder payload;
  payload.u8(static_cast<std::uint8_t>(MsgType::Hello));
  payload.u32(kWireVersion + 1);
  const std::vector<std::uint8_t> frame =
      persist::frame(kWireMagic, kWireVersion + 1, payload.buffer());
  try {
    decodeMessage(frame);
    FAIL() << "future-version frame decoded successfully";
  } catch (const CorruptDataError& error) {
    EXPECT_EQ(error.offset(), 4u);
    expectByteOffsetError(error, frame.size());
  }
}

TEST(WireFuzz, VersionZeroIsRejected) {
  persist::Encoder payload;
  payload.u8(static_cast<std::uint8_t>(MsgType::Hello));
  payload.u32(kWireVersion);
  const std::vector<std::uint8_t> frame =
      persist::frame(kWireMagic, 0, payload.buffer());
  EXPECT_THROW(decodeMessage(frame), CorruptDataError);
}

TEST(WireFuzz, OversizedPayloadIsRejected) {
  // A structurally valid frame whose payload exceeds the wire bound: the
  // persist layer accepts it (CRC and length check out), the wire layer must
  // still refuse — the bound is what lets the socket reader reject a lying
  // length header before allocating.
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(kMaxFramePayload) + 1, 0);
  payload[0] = static_cast<std::uint8_t>(MsgType::Shutdown);
  const std::vector<std::uint8_t> frame =
      persist::frame(kWireMagic, kWireVersion, payload);
  try {
    decodeMessage(frame);
    FAIL() << "oversized frame decoded successfully";
  } catch (const CorruptDataError& error) {
    EXPECT_NE(std::string(error.what()).find("oversized"), std::string::npos);
    expectByteOffsetError(error, frame.size());
  }
}

// Malformed *payloads* wrapped in perfectly valid frames: the tag and body
// validators (enum ranges, count bounds, presence flags, trailing bytes)
// must reject what the CRC cannot.
TEST(WireFuzz, ValidlyFramedGarbagePayloadsAreRejected) {
  const auto framed = [](const std::vector<std::uint8_t>& payload) {
    return persist::frame(kWireMagic, kWireVersion, payload);
  };
  // Unknown tag (0 and out-of-range).
  EXPECT_THROW(decodeMessage(framed({0x00})), CorruptDataError);
  EXPECT_THROW(decodeMessage(framed({0x7f})), CorruptDataError);
  // Empty payload: no tag at all.
  EXPECT_THROW(decodeMessage(framed({})), CorruptDataError);
  // Hello with trailing bytes after the message.
  {
    persist::Encoder payload;
    payload.u8(static_cast<std::uint8_t>(MsgType::Hello));
    payload.u32(kWireVersion);
    payload.u8(0xab);
    EXPECT_THROW(decodeMessage(framed(payload.buffer())), CorruptDataError);
  }
  // HelloReply announcing more components than the payload holds.
  {
    persist::Encoder payload;
    payload.u8(static_cast<std::uint8_t>(MsgType::HelloReply));
    payload.u32(kWireVersion);
    payload.u32(1);
    payload.u64(0);
    payload.u64(1u << 30);  // component count
    EXPECT_THROW(decodeMessage(framed(payload.buffer())), CorruptDataError);
  }
  // AnalyzeBatchReply with an out-of-range presence flag.
  {
    persist::Encoder payload;
    payload.u8(static_cast<std::uint8_t>(MsgType::AnalyzeBatchReply));
    payload.u8(0);       // status Ok
    payload.f64(0.0);    // latency
    payload.u64(1);      // one slot
    payload.u8(2);       // presence flag must be 0/1
    EXPECT_THROW(decodeMessage(framed(payload.buffer())), CorruptDataError);
  }
  // IngestReply with an out-of-range status.
  {
    persist::Encoder payload;
    payload.u8(static_cast<std::uint8_t>(MsgType::IngestReply));
    payload.u8(17);
    payload.f64(0.0);
    EXPECT_THROW(decodeMessage(framed(payload.buffer())), CorruptDataError);
  }
}

}  // namespace
}  // namespace fchain::runtime::wire
