// Unit & property tests for signal/: CUSUM+bootstrap change point detection,
// change-magnitude outlier filtering, smoothing, and tangent rollback.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "signal/cusum.h"
#include "signal/outlier.h"
#include "signal/smoothing.h"
#include "signal/tangent.h"

namespace fchain::signal {
namespace {

std::vector<double> noisySeries(std::size_t n, double mean, double sigma,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.gaussian(mean, sigma);
  return xs;
}

// ---------------------------------------------------------------- cusum ---

TEST(Cusum, NoChangePointsOnStationaryNoise) {
  const auto xs = noisySeries(200, 50.0, 1.0, 3);
  const auto points = detectChangePoints(xs);
  // Bootstrap at 95 % confidence may rarely fire on pure noise, but must
  // not fire repeatedly.
  EXPECT_LE(points.size(), 1u);
}

struct StepCase {
  std::size_t position;
  double magnitude;
};

class CusumStep : public ::testing::TestWithParam<StepCase> {};

TEST_P(CusumStep, DetectsSingleStepNearTruePosition) {
  const auto [position, magnitude] = GetParam();
  auto xs = noisySeries(200, 50.0, 1.0, position);
  for (std::size_t i = position; i < xs.size(); ++i) xs[i] += magnitude;
  const auto points = detectChangePoints(xs);
  ASSERT_FALSE(points.empty());
  // The closest detected point must land near the true step.
  std::size_t best = points[0].index;
  for (const auto& point : points) {
    if (std::llabs(static_cast<long long>(point.index) -
                   static_cast<long long>(position)) <
        std::llabs(static_cast<long long>(best) -
                   static_cast<long long>(position))) {
      best = point.index;
    }
  }
  EXPECT_NEAR(static_cast<double>(best), static_cast<double>(position), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    Steps, CusumStep,
    ::testing::Values(StepCase{50, 5.0}, StepCase{100, 5.0},
                      StepCase{150, 5.0}, StepCase{100, -8.0},
                      StepCase{100, 3.0}, StepCase{70, 20.0}));

TEST(Cusum, ShiftSignMatchesStepDirection) {
  auto up = noisySeries(120, 10.0, 0.5, 21);
  for (std::size_t i = 60; i < up.size(); ++i) up[i] += 6.0;
  const auto up_points = detectChangePoints(up);
  ASSERT_FALSE(up_points.empty());
  EXPECT_GT(up_points.front().shift, 0.0);

  auto down = noisySeries(120, 10.0, 0.5, 22);
  for (std::size_t i = 60; i < down.size(); ++i) down[i] -= 6.0;
  const auto down_points = detectChangePoints(down);
  ASSERT_FALSE(down_points.empty());
  EXPECT_LT(down_points.front().shift, 0.0);
}

TEST(Cusum, DetectsTwoSteps) {
  auto xs = noisySeries(300, 0.0, 0.5, 33);
  for (std::size_t i = 100; i < xs.size(); ++i) xs[i] += 5.0;
  for (std::size_t i = 200; i < xs.size(); ++i) xs[i] += 5.0;
  const auto points = detectChangePoints(xs);
  ASSERT_GE(points.size(), 2u);
  bool near_100 = false, near_200 = false;
  for (const auto& point : points) {
    near_100 = near_100 || (point.index > 90 && point.index < 110);
    near_200 = near_200 || (point.index > 190 && point.index < 210);
  }
  EXPECT_TRUE(near_100);
  EXPECT_TRUE(near_200);
}

TEST(Cusum, DeterministicAcrossCalls) {
  auto xs = noisySeries(150, 5.0, 2.0, 44);
  for (std::size_t i = 70; i < xs.size(); ++i) xs[i] += 8.0;
  const auto a = detectChangePoints(xs);
  const auto b = detectChangePoints(xs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_DOUBLE_EQ(a[i].confidence, b[i].confidence);
  }
}

TEST(Cusum, RespectsMinSegment) {
  CusumConfig config;
  config.min_segment = 30;
  auto xs = noisySeries(100, 0.0, 0.2, 55);
  for (std::size_t i = 50; i < xs.size(); ++i) xs[i] += 10.0;
  for (const auto& point : detectChangePoints(xs, config)) {
    EXPECT_GE(point.index, config.min_segment);
    EXPECT_LE(point.index, xs.size() - config.min_segment);
  }
}

TEST(Cusum, TooShortSeriesYieldsNothing) {
  EXPECT_TRUE(detectChangePoints(std::vector<double>{1, 2, 3}).empty());
  EXPECT_TRUE(detectChangePoints({}).empty());
}

// -------------------------------------------------------------- outlier ---

TEST(Outlier, KeepsOnlyTheLargeShift) {
  std::vector<ChangePoint> points;
  for (std::size_t i = 0; i < 8; ++i) {
    points.push_back({10 * (i + 1), 0.99, 1.0 + 0.1 * static_cast<double>(i)});
  }
  points.push_back({95, 0.99, 40.0});  // the outlier
  const auto outliers = outlierChangePoints(points);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_EQ(outliers[0].index, 95u);
}

TEST(Outlier, FewPointsPassThrough) {
  std::vector<ChangePoint> points{{5, 0.99, 1.0}, {9, 0.99, 100.0}};
  EXPECT_EQ(outlierChangePoints(points).size(), 2u);
}

TEST(Outlier, IdenticalShiftsDegenerateCase) {
  std::vector<ChangePoint> points(6, ChangePoint{10, 0.99, 2.0});
  // All identical: nothing is an outlier.
  EXPECT_TRUE(outlierChangePoints(points).empty());
  points.push_back({70, 0.99, 30.0});  // a clear multiple of the median
  EXPECT_EQ(outlierChangePoints(points).size(), 1u);
}

// ------------------------------------------------------------ smoothing ---

TEST(Smoothing, MovingAveragePreservesConstant) {
  const std::vector<double> xs(20, 7.0);
  for (double v : movingAverage(xs, 3)) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Smoothing, MovingAverageReducesVariance) {
  Rng rng(66);
  std::vector<double> xs(300);
  for (double& x : xs) x = rng.gaussian(0.0, 1.0);
  const auto smooth = movingAverage(xs, 3);
  double raw_var = 0.0, smooth_var = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    raw_var += xs[i] * xs[i];
    smooth_var += smooth[i] * smooth[i];
  }
  EXPECT_LT(smooth_var, raw_var * 0.4);
}

TEST(Smoothing, ZeroHalfWindowIsIdentity) {
  const std::vector<double> xs{1, 5, 2, 8};
  const auto out = movingAverage(xs, 0);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(out[i], xs[i]);
}

TEST(Smoothing, EwmaAlphaOneIsIdentity) {
  const std::vector<double> xs{3, 1, 4, 1, 5};
  const auto out = ewma(xs, 1.0);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_DOUBLE_EQ(out[i], xs[i]);
}

TEST(Smoothing, EwmaTracksLevelShift) {
  std::vector<double> xs(50, 0.0);
  for (std::size_t i = 25; i < xs.size(); ++i) xs[i] = 10.0;
  const auto out = ewma(xs, 0.3);
  EXPECT_LT(out[26], 10.0);     // lags the step
  EXPECT_GT(out.back(), 9.5);   // converges
}

// -------------------------------------------------------------- tangent ---

TEST(Tangent, TangentAtRecoversLocalSlope) {
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(2.0 * i);
  EXPECT_NEAR(tangentAt(xs, 30, 5), 2.0, 1e-9);
  EXPECT_NEAR(tangentAt(xs, 0, 5), 2.0, 1e-9);   // clamped window
  EXPECT_NEAR(tangentAt(xs, 59, 5), 2.0, 1e-9);  // clamped window
}

TEST(Tangent, RollbackWalksToOnsetOfGradualRamp) {
  // Flat until t=60, then a steady ramp; CUSUM-style points at 70, 80, 90.
  std::vector<double> xs(60, 10.0);
  for (int i = 0; i < 60; ++i) xs.push_back(10.0 + 3.0 * i);
  std::vector<ChangePoint> points{
      {40, 0.99, 0.1}, {62, 0.99, 20.0}, {75, 0.99, 30.0}, {90, 0.99, 45.0}};
  // Anchor on the last point; rollback should reach the ramp start (~62)
  // but NOT the pre-fault point at 40.
  const std::size_t onset = rollbackOnset(xs, points, 3);
  EXPECT_EQ(onset, 1u);
}

TEST(Tangent, RollbackStopsAtOppositeShiftSign) {
  std::vector<double> xs(120, 5.0);
  for (int i = 60; i < 120; ++i) xs[i] = 5.0 + 2.0 * (i - 60);
  std::vector<ChangePoint> points{
      {50, 0.99, -15.0}, {70, 0.99, 20.0}, {85, 0.99, 30.0}};
  const std::size_t onset = rollbackOnset(xs, points, 2);
  EXPECT_GE(onset, 1u);  // never crosses the negative-shift point at 50
}

TEST(Tangent, RollbackFromFirstPointIsIdentity) {
  std::vector<double> xs(50, 1.0);
  std::vector<ChangePoint> points{{25, 0.9, 1.0}};
  EXPECT_EQ(rollbackOnset(xs, points, 0), 0u);
  EXPECT_EQ(rollbackOnset(xs, {}, 0), 0u);
}

}  // namespace
}  // namespace fchain::signal
