// Multi-application soak: hours of simulated 1 Hz traffic streamed through
// one OnlineMonitor, with three staggered fault injections across three
// different benchmark applications (RUBiS latency SLO, System S latency SLO,
// Hadoop progress SLO) sharing one global component-id space.
//
// What the soak certifies, per ISSUE acceptance:
//   - every injected incident is auto-detected (SLO latch) and localized,
//     including one that latches inside another incident's cooldown and
//     fires late from the queue;
//   - every online result is bit-identical to the offline pipeline run over
//     the record as of the trigger tick (for queued incidents the slave has
//     kept learning past tv, so the offline comparator replays the model to
//     the trigger-time series end — localizeRecord's tv+1 replay is the
//     degenerate immediate-trigger case);
//   - ring occupancy never exceeds the configured cap, tick by tick, for
//     the whole run (the byte cap here is deliberately binding);
//   - the PR-4 durability paths ride along: the incident journal holds no
//     pending entries at the end, and a checkpointed slave's persisted
//     state recovers to the exact live series.
//
// Scale: FCHAIN_SOAK_TICKS overrides the simulated duration (default 7200
// ticks = 2 simulated hours; CI's soak job runs longer). All triggering is
// in sample time, so every scale replays the same three incidents.
#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "fchain/recovery.h"
#include "netdep/dependency.h"
#include "online/checkpointed_endpoint.h"
#include "online/monitor.h"
#include "pinpoint_render.h"
#include "sim/apps.h"
#include "sim/stream.h"

namespace fchain::online {
namespace {

std::size_t soakTicks() {
  const char* env = std::getenv("FCHAIN_SOAK_TICKS");
  if (env == nullptr || env[0] == '\0') return 7200;
  const unsigned long long ticks = std::strtoull(env, nullptr, 10);
  // The third fault starts at t=3400; below this floor the run could end
  // before its latch and the soak would vacuously "pass" with 2 incidents.
  return std::max<std::size_t>(5000, static_cast<std::size_t>(ticks));
}

faults::FaultSpec fault(faults::FaultType type, std::vector<ComponentId> on,
                        TimeSec start, double intensity = 1.0) {
  faults::FaultSpec spec;
  spec.type = type;
  spec.targets = std::move(on);
  spec.start_time = start;
  spec.intensity = intensity;
  return spec;
}

struct SoakApp {
  std::string name;
  sim::ScenarioConfig config;
  ComponentId offset = 0;
  SloSpec slo;
};

/// The three-application fleet. Fault starts are staggered so that the
/// System S latch lands inside the RUBiS incident's 600 s cooldown (forcing
/// the queued-trigger path) while the Hadoop latch fires after it expires.
std::vector<SoakApp> fleet(std::size_t ticks) {
  std::vector<SoakApp> apps(3);

  apps[0].name = "rubis";
  apps[0].config.kind = sim::AppKind::Rubis;
  apps[0].config.seed = 77;
  apps[0].config.faults = {
      fault(faults::FaultType::CpuHog, {3}, 2000, 1.35)};
  apps[0].offset = 0;

  apps[1].name = "streams";
  apps[1].config.kind = sim::AppKind::SystemS;
  apps[1].config.seed = 101;
  apps[1].config.faults = {
      fault(faults::FaultType::CpuHog, {2}, 2300, 1.4)};
  apps[1].offset = 4;

  apps[2].name = "batch";
  apps[2].config.kind = sim::AppKind::Hadoop;
  apps[2].config.seed = 55;
  // The paper's Hadoop "CpuHog": an infinite-loop bug in every map task.
  apps[2].config.faults = {
      fault(faults::FaultType::InfiniteLoop, {0, 1, 2}, 3400)};
  apps[2].offset = 11;
  apps[2].slo.kind = SloSpec::Kind::Progress;

  for (SoakApp& app : apps) {
    app.config.duration_sec = ticks;  // workload trace must cover the run
    if (app.slo.kind == SloSpec::Kind::Latency) {
      app.slo.latency_threshold_sec = sim::sloLatencyThreshold(app.config.kind);
      app.slo.sustain_sec = app.config.slo_sustain_sec;
    }
  }
  return apps;
}

/// Offline reference for one app: expected latch time + the dependency graph
/// the online master must hold before streaming starts (discovery is
/// deterministic on the seeded scenario).
struct OfflineReference {
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

OfflineReference offlineReference(const sim::ScenarioConfig& config) {
  OfflineReference ref;
  sim::Simulation sim(config);
  const auto duration = static_cast<TimeSec>(config.duration_sec);
  while (!sim.violationTime().has_value() && sim.now() < duration) sim.step();
  EXPECT_TRUE(sim.violationTime().has_value());
  ref.tv = sim.violationTime().value_or(0);
  ref.deps = netdep::discoverDependencies(sim.record());
  return ref;
}

/// The offline side of the equivalence check: FChain over a recorded window
/// whose series may extend past tv (a queued trigger fired late, after the
/// slaves kept learning). The model is replayed to the series end — exactly
/// the online slave's continuously learned state at the trigger tick. When
/// the series ends at tv + 1 this is core::localizeRecord.
core::PinpointResult replayLocalize(const sim::RunRecord& record, TimeSec tv,
                                    const netdep::DependencyGraph* deps,
                                    const core::FChainConfig& config) {
  core::AbnormalChangeSelector selector(config);
  std::vector<core::ComponentFinding> findings;
  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    const auto model = core::replayModel(
        record.metrics[id], record.metrics[id].endTime(), config.predictor);
    if (auto finding =
            selector.analyzeComponent(id, record.metrics[id], model, tv)) {
      findings.push_back(std::move(*finding));
    }
  }
  core::IntegratedPinpointer pinpointer(config);
  return pinpointer.pinpoint(std::move(findings), record.metrics.size(),
                             deps);
}

/// Maps an online result from global ids back into one app's local id space.
core::PinpointResult shiftDown(core::PinpointResult result,
                               ComponentId offset) {
  for (ComponentId& id : result.pinpointed) id -= offset;
  for (ComponentId& id : result.unanalyzed) id -= offset;
  for (core::ComponentFinding& finding : result.chain) {
    finding.component -= offset;
  }
  return result;
}

TEST(OnlineSoak, MultiAppHoursLongRunLocalizesEveryIncidentBitIdentically) {
  const std::size_t ticks = soakTicks();
  const std::vector<SoakApp> apps = fleet(ticks);

  // Pass 1: per-app offline references, then the merged global dependency
  // graph (System S contributes nothing — the paper's streaming negative
  // finding — and no cross-application edges exist by construction).
  std::vector<OfflineReference> refs;
  std::size_t total_components = 0;
  std::vector<std::unique_ptr<sim::StreamingSource>> sources;
  for (const SoakApp& app : apps) {
    refs.push_back(offlineReference(app.config));
    sources.push_back(
        std::make_unique<sim::StreamingSource>(app.config, app.offset));
    total_components += sources.back()->componentCount();
  }
  // Per-app graphs lifted into the global id space. Kept separate per app
  // (not merged into one cluster graph): System S discovery finds nothing —
  // the paper's negative finding — and its localization must keep the
  // chronology-only fallback, which a merged non-empty graph would defeat.
  std::vector<netdep::DependencyGraph> global_deps;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    netdep::DependencyGraph lifted(total_components);
    const auto& adjacency = refs[a].deps.adjacency();
    for (ComponentId from = 0; from < adjacency.size(); ++from) {
      for (ComponentId to : adjacency[from]) {
        lifted.addEdge(apps[a].offset + from, apps[a].offset + to);
      }
    }
    global_deps.push_back(std::move(lifted));
  }

  // One slave per application; the RUBiS slave is additionally checkpointed
  // (journal-then-ingest durability under sustained streaming load).
  const std::string state_dir = ::testing::TempDir() + "/online_soak_state";
  std::filesystem::remove_all(state_dir);
  std::filesystem::create_directories(state_dir);

  OnlineMonitorConfig cfg;
  cfg.cooldown_sec = 600;
  cfg.worker_threads = 2;
  cfg.max_ring_bytes = 768 * 1024;  // binding: shrinks the derived window
  cfg.ingest_deadline_ms = 1000.0;

  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    slaves.push_back(std::make_unique<core::FChainSlave>(
        static_cast<HostId>(a), cfg.fchain));
    for (ComponentId id : sources[a]->componentIds()) {
      slaves.back()->addComponent(id, /*start_time=*/0);
    }
  }
  core::CheckpointPolicy checkpoint_policy;
  checkpoint_policy.snapshot_interval_sec = 1800;
  core::SlaveCheckpointer checkpointer(*slaves[0], state_dir,
                                       checkpoint_policy);

  OnlineMonitor monitor(cfg);
  monitor.addEndpoint(std::make_shared<CheckpointedEndpoint>(slaves[0].get(),
                                                             &checkpointer),
                      sources[0]->componentIds());
  for (std::size_t a = 1; a < apps.size(); ++a) {
    monitor.addSlave(slaves[a].get());
  }
  runtime::WatchdogConfig watchdog;  // supervision on, generous: never trips
  watchdog.call_timeout_ms = 60'000;
  watchdog.localize_deadline_ms = 300'000;
  monitor.setWatchdog(watchdog);
  persist::IncidentJournal journal(state_dir + "/incidents.journal");
  monitor.setIncidentJournal(&journal);

  std::vector<std::size_t> app_index;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    AppSpec spec;
    spec.name = apps[a].name;
    spec.components = sources[a]->componentIds();
    spec.slo = apps[a].slo;
    app_index.push_back(monitor.addApplication(spec));
    monitor.setDependencies(app_index.back(), global_deps[a]);
  }

  // The equivalence harness: capture each app's record at the exact trigger
  // tick (the callback runs synchronously inside observe()/pump()).
  struct Captured {
    OnlineIncident incident;
    sim::RunRecord record;
  };
  std::vector<Captured> captured;
  monitor.onIncident([&](const OnlineIncident& incident) {
    captured.push_back({incident, sources[incident.app]->record()});
  });

  // Pass 2: the lockstep stream. Per tick: ingest every component of every
  // app, observe every SLO signal, then pump queued triggers.
  const std::size_t kRingCheckStride = 256;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    std::array<sim::StreamTick, 3> slo_ticks;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      slo_ticks[a] = sources[a]->step(
          [&](const sim::StreamSample& sample) { monitor.ingest(sample); });
    }
    for (std::size_t a = 0; a < apps.size(); ++a) {
      monitor.observe(app_index[a], slo_ticks[a]);
    }
    monitor.pump();

    ASSERT_LE(monitor.ringOccupancy(), monitor.ringCapacity())
        << "ring cap violated at tick " << tick;
    if (tick % kRingCheckStride == 0) {
      const auto snap = monitor.metrics().snapshot();
      ASSERT_EQ(snap.gauges.at("online.ring_occupancy"),
                static_cast<double>(monitor.ringOccupancy()));
      ASSERT_LE(snap.gauges.at("online.ring_peak"),
                static_cast<double>(monitor.ringCapacity()));
    }
  }
  monitor.drain();

  // --- Every incident detected -------------------------------------------
  ASSERT_EQ(captured.size(), apps.size());
  std::vector<bool> seen(apps.size(), false);
  for (const Captured& c : captured) {
    ASSERT_LT(c.incident.app, apps.size());
    EXPECT_FALSE(seen[c.incident.app])
        << apps[c.incident.app].name << " triggered twice";
    seen[c.incident.app] = true;
    // The monitor latched the same violation the simulator's own reference
    // SLO monitor latched.
    EXPECT_EQ(c.incident.violation_time, refs[c.incident.app].tv)
        << apps[c.incident.app].name;
  }

  // The stagger forces the queued path: the System S latch lands inside the
  // RUBiS cooldown and fires late, violation anchor preserved.
  const auto snap = monitor.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("online.triggers"), apps.size());
  EXPECT_EQ(snap.counters.at("online.slo_latches"), apps.size());
  EXPECT_GE(snap.counters.at("online.incidents_queued"), 1u);
  EXPECT_EQ(snap.counters.at("online.incidents_dropped"), 0u);
  EXPECT_GT(snap.counters.at("online.ring_evictions"), 0u)
      << "a binding ring cap over a multi-hour run must evict";
  const bool any_queued = std::any_of(
      captured.begin(), captured.end(),
      [](const Captured& c) { return c.incident.queued_delay_sec > 0; });
  EXPECT_TRUE(any_queued);

  // --- Bit-identity: online trigger == offline replay over same window ---
  for (const Captured& c : captured) {
    const SoakApp& app = apps[c.incident.app];
    const core::PinpointResult offline = replayLocalize(
        c.record, c.incident.violation_time, &refs[c.incident.app].deps,
        cfg.fchain);
    const core::PinpointResult online =
        shiftDown(c.incident.result, app.offset);
    EXPECT_EQ(core::renderPinpoint(online, c.incident.violation_time),
              core::renderPinpoint(offline, c.incident.violation_time))
        << app.name << " online result diverged from offline replay (tv="
        << c.incident.violation_time << ", triggered_at="
        << c.incident.triggered_at << ")";
    EXPECT_DOUBLE_EQ(online.coverage, offline.coverage) << app.name;
    EXPECT_EQ(online.pinpointed, offline.pinpointed) << app.name;
  }
  // Ground truth spot-check on the best-understood scenario: the RUBiS
  // CpuHog blames the db VM (local id 3), as the goldens pin.
  for (const Captured& c : captured) {
    if (apps[c.incident.app].name != "rubis") continue;
    EXPECT_EQ(shiftDown(c.incident.result, apps[c.incident.app].offset)
                  .pinpointed,
              (std::vector<ComponentId>{3}));
  }

  // --- PR-4 durability paths ---------------------------------------------
  EXPECT_TRUE(persist::IncidentJournal::pending(journal.path()).empty())
      << "an incident was journaled as started but never marked done";
  EXPECT_GT(checkpointer.epoch(), 0u);
  const auto recovered =
      core::SlaveCheckpointer::recover(state_dir, 0, cfg.fchain);
  for (ComponentId id : sources[0]->componentIds()) {
    ASSERT_NE(recovered.slave.seriesOf(id), nullptr);
    ASSERT_NE(slaves[0]->seriesOf(id), nullptr);
    EXPECT_EQ(recovered.slave.seriesOf(id)->endTime(),
              slaves[0]->seriesOf(id)->endTime());
  }
}

}  // namespace
}  // namespace fchain::online
