// Telemetry-fault tolerance tests: gap-filled/duplicate/NaN ingestion,
// flaky slave endpoints with retries and health tracking, degraded-mode
// pinpointing with partial coverage, and the monitoring-fault injector.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "fchain/fchain.h"
#include "runtime/flaky_endpoint.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace fchain::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::array<double, kMetricCount> flatSample(double value) {
  std::array<double, kMetricCount> sample{};
  sample.fill(value);
  return sample;
}

// --- TimeSeries::appendAt -------------------------------------------------

TEST(TimeSeriesAppendAt, InOrderAppendsNormally) {
  TimeSeries series(100);
  const auto r = series.appendAt(100, 1.0);
  EXPECT_EQ(r.gap_filled, 0u);
  EXPECT_FALSE(r.overwrote);
  EXPECT_FALSE(r.dropped);
  EXPECT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series.at(100), 1.0);
}

TEST(TimeSeriesAppendAt, GapFillLastValue) {
  TimeSeries series(0);
  series.appendAt(0, 2.0);
  const auto r = series.appendAt(4, 10.0, GapFill::LastValue);
  EXPECT_EQ(r.gap_filled, 3u);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.at(1), 2.0);
  EXPECT_DOUBLE_EQ(series.at(3), 2.0);
  EXPECT_DOUBLE_EQ(series.at(4), 10.0);
}

TEST(TimeSeriesAppendAt, GapFillLinearInterpolates) {
  TimeSeries series(0);
  series.appendAt(0, 0.0);
  const auto r = series.appendAt(4, 8.0, GapFill::Linear);
  EXPECT_EQ(r.gap_filled, 3u);
  EXPECT_DOUBLE_EQ(series.at(1), 2.0);
  EXPECT_DOUBLE_EQ(series.at(2), 4.0);
  EXPECT_DOUBLE_EQ(series.at(3), 6.0);
  EXPECT_DOUBLE_EQ(series.at(4), 8.0);
}

TEST(TimeSeriesAppendAt, GapOnEmptySeriesBackfillsWithValue) {
  TimeSeries series(10);
  const auto r = series.appendAt(13, 5.0);
  EXPECT_EQ(r.gap_filled, 3u);
  EXPECT_DOUBLE_EQ(series.at(10), 5.0);
  EXPECT_DOUBLE_EQ(series.at(13), 5.0);
}

TEST(TimeSeriesAppendAt, DuplicateOverwritesLatestWins) {
  TimeSeries series(0);
  series.appendAt(0, 1.0);
  series.appendAt(1, 2.0);
  const auto r = series.appendAt(0, 7.0);
  EXPECT_TRUE(r.overwrote);
  EXPECT_DOUBLE_EQ(series.at(0), 7.0);
  EXPECT_EQ(series.size(), 2u);
}

TEST(TimeSeriesAppendAt, StaleSampleDropped) {
  TimeSeries series(50);
  series.appendAt(50, 1.0);
  const auto r = series.appendAt(49, 9.0);
  EXPECT_TRUE(r.dropped);
  EXPECT_EQ(series.size(), 1u);
}

// --- FChainSlave ingestion hardening --------------------------------------

TEST(SlaveIngest, GapsAreFilledAndCounted) {
  FChainSlave slave(0);
  slave.addComponent(1, 0);
  slave.ingestAt(1, 0, flatSample(3.0));
  slave.ingestAt(1, 5, flatSample(3.0));  // 4 missing seconds
  const IngestStats* stats = slave.ingestStatsOf(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->gaps_filled, 4u);
  EXPECT_EQ(stats->quarantined, 0u);
  // Series and model error series stay aligned.
  EXPECT_FALSE(slave.analyze(1, 6).has_value());  // too short, not UB
}

TEST(SlaveIngest, NonFiniteValuesAreQuarantined) {
  FChainSlave slave(0);
  slave.addComponent(1, 0);
  slave.ingestAt(1, 0, flatSample(5.0));
  auto bad = flatSample(5.0);
  bad[0] = kNan;
  bad[3] = kInf;
  bad[5] = -kInf;
  slave.ingestAt(1, 1, bad);
  const IngestStats* stats = slave.ingestStatsOf(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->quarantined, 3u);
  // Analysis over the repaired stream is safe (no finding on 2 samples).
  EXPECT_FALSE(slave.analyze(1, 1).has_value());
}

TEST(SlaveIngest, QuarantinedDuplicateKeepsValueAlreadyStoredAtThatSecond) {
  // Regression: a non-finite metric arriving as a duplicate/out-of-order
  // delivery used to be substituted with the series *tail* value, silently
  // overwriting the correct history at time t with a stale newer value.
  FChainSlave slave(0);
  slave.addComponent(1, 0);
  slave.ingestAt(1, 0, flatSample(1.0));
  slave.ingestAt(1, 1, flatSample(2.0));
  slave.ingestAt(1, 2, flatSample(3.0));

  auto resend = flatSample(9.0);
  resend[0] = kNan;  // corrupt re-send of second 1
  slave.ingestAt(1, 1, resend);

  const IngestStats* stats = slave.ingestStatsOf(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->quarantined, 1u);
  EXPECT_EQ(stats->duplicates, 1u);
  const MetricSeries* series = slave.seriesOf(1);
  ASSERT_NE(series, nullptr);
  // The corrupted metric keeps the good value already stored at t=1 (2.0),
  // not the tail value (3.0); the finite metrics take the re-sent value.
  EXPECT_DOUBLE_EQ(series->of(kAllMetrics[0]).at(1), 2.0);
  EXPECT_DOUBLE_EQ(series->of(kAllMetrics[1]).at(1), 9.0);
  // History before and after the re-sent second is untouched.
  EXPECT_DOUBLE_EQ(series->of(kAllMetrics[0]).at(0), 1.0);
  EXPECT_DOUBLE_EQ(series->of(kAllMetrics[0]).at(2), 3.0);
}

TEST(SlaveIngest, QuarantineBeforeFirstSampleUsesZero) {
  FChainSlave slave(0);
  slave.addComponent(1, 0);
  slave.ingestAt(1, 0, flatSample(kNan));
  const IngestStats* stats = slave.ingestStatsOf(1);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->quarantined, kMetricCount);
}

TEST(SlaveIngest, DuplicatesStaleAndWildTimestampsCounted) {
  FChainSlave slave(10);
  slave.addComponent(2, 100);
  slave.ingestAt(2, 100, flatSample(1.0));
  slave.ingestAt(2, 101, flatSample(2.0));
  slave.ingestAt(2, 100, flatSample(9.0));        // duplicate
  slave.ingestAt(2, 50, flatSample(9.0));         // stale
  slave.ingestAt(2, 1'000'000, flatSample(9.0));  // clock corruption
  const IngestStats* stats = slave.ingestStatsOf(2);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->duplicates, 1u);
  EXPECT_EQ(stats->stale_dropped, 1u);
  EXPECT_EQ(stats->future_dropped, 1u);
}

TEST(SlaveIngest, LegacyIngestStillAppends) {
  FChainSlave slave(0);
  slave.addComponent(3, 0);
  for (int i = 0; i < 10; ++i) slave.ingest(3, flatSample(1.0));
  const IngestStats* stats = slave.ingestStatsOf(3);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->gaps_filled, 0u);
  EXPECT_EQ(stats->duplicates, 0u);
}

// --- FChainSlave::analyze edge cases --------------------------------------

TEST(SlaveAnalyze, EmptySeriesReturnsNullopt) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  EXPECT_FALSE(slave.analyze(0, 100).has_value());
}

TEST(SlaveAnalyze, TooShortSeriesReturnsNullopt) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  // Far fewer samples than the 100 s look-back window.
  for (int i = 0; i < 30; ++i) slave.ingest(0, flatSample(4.0));
  EXPECT_FALSE(slave.analyze(0, 30).has_value());
}

TEST(SlaveAnalyze, GappedConstantSeriesReturnsNullopt) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  for (TimeSec t = 0; t < 400; t += 3) {  // two of every three samples lost
    slave.ingestAt(0, t, flatSample(4.0));
  }
  EXPECT_FALSE(slave.analyze(0, 399).has_value());
  EXPECT_GT(slave.ingestStatsOf(0)->gaps_filled, 0u);
}

TEST(SlaveAnalyze, ViolationBeforeSeriesStartIsSafe) {
  FChainSlave slave(0);
  slave.addComponent(0, 1000);
  for (int i = 0; i < 200; ++i) slave.ingest(0, flatSample(4.0));
  EXPECT_FALSE(slave.analyze(0, 500).has_value());  // tv predates the data
}

// --- Master registration guards -------------------------------------------

TEST(MasterRegistration, RejectsSameSlaveTwice) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  FChainMaster master;
  master.registerSlave(&slave);
  EXPECT_THROW(master.registerSlave(&slave), std::invalid_argument);
}

TEST(MasterRegistration, RejectsDuplicateComponentClaims) {
  FChainSlave a(0), b(1);
  a.addComponent(5, 0);
  b.addComponent(5, 0);  // same ComponentId on another host
  FChainMaster master;
  master.registerSlave(&a);
  EXPECT_THROW(master.registerSlave(&b), std::invalid_argument);
}

TEST(MasterRegistration, RejectsNullSlave) {
  FChainMaster master;
  EXPECT_THROW(master.registerSlave(nullptr), std::invalid_argument);
}

// --- Discovery retry path (registerEndpoint) -------------------------------

TEST(MasterDiscovery, RetriesAreCountedBackedOffAndHealthTracked) {
  // Regression: discovery used to spin its retry loop with no backoff, no
  // health accounting, and no stats counting — a discovery storm against a
  // cold-starting slave was invisible in every diagnostic surface.
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  runtime::FlakyConfig cold;
  cold.fail_first = 2;  // two cold-start failures, then discovery lands
  auto endpoint = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&slave), cold);

  FChainMaster master;
  master.registerEndpoint(endpoint);

  const auto stats = master.runtimeStats();
  EXPECT_EQ(stats.requests, 3u);  // two failures + the success
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.simulated_backoff_ms, 0.0);  // retries are paced
  // The discovery failures carry into the endpoint's health history.
  ASSERT_EQ(master.endpointHealth().size(), 1u);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Healthy);
}

TEST(MasterDiscovery, ExhaustedDiscoveryCountsAsFailure) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  runtime::FlakyConfig black;
  black.drop_probability = 1.0;
  auto endpoint = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&slave), black);

  FChainMaster master;
  EXPECT_THROW(master.registerEndpoint(endpoint), std::runtime_error);
  const auto stats = master.runtimeStats();
  EXPECT_EQ(stats.requests, 3u);  // the full retry budget was spent
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_GT(stats.simulated_backoff_ms, 0.0);
  EXPECT_TRUE(master.endpointHealth().empty());  // never registered
}

// --- Endpoint health and retry behaviour ----------------------------------

TEST(EndpointHealth, TransitionsHealthyDegradedDownAndRecovers) {
  runtime::EndpointHealth health(1, 3);
  EXPECT_EQ(health.state(), runtime::HealthState::Healthy);
  health.recordFailure();
  EXPECT_EQ(health.state(), runtime::HealthState::Degraded);
  health.recordFailure();
  health.recordFailure();
  EXPECT_EQ(health.state(), runtime::HealthState::Down);
  health.recordSuccess();
  EXPECT_EQ(health.state(), runtime::HealthState::Healthy);
}

TEST(RetryPolicy, BackoffGrowsAndIsCapped) {
  runtime::RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 300.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(runtime::retryDelayMs(policy, 0, 1), 100.0);
  EXPECT_DOUBLE_EQ(runtime::retryDelayMs(policy, 1, 1), 200.0);
  EXPECT_DOUBLE_EQ(runtime::retryDelayMs(policy, 2, 1), 300.0);  // capped
  EXPECT_DOUBLE_EQ(runtime::retryDelayMs(policy, 5, 1), 300.0);
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  runtime::RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.jitter_fraction = 0.2;
  const double a = runtime::retryDelayMs(policy, 0, 42);
  const double b = runtime::retryDelayMs(policy, 0, 42);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 80.0);
  EXPECT_LE(a, 120.0);
  EXPECT_NE(a, runtime::retryDelayMs(policy, 0, 43));
}

TEST(FlakyEndpoint, RetriesRecoverFromColdStart) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  auto local = std::make_shared<runtime::LocalEndpoint>(&slave);
  runtime::FlakyConfig flaky;
  flaky.fail_first = 2;  // first two analyze attempts fail, the third lands
  auto endpoint =
      std::make_shared<runtime::FlakyEndpoint>(std::move(local), flaky);

  FChainMaster master;
  master.registerEndpoint(endpoint, {0});  // manifest-based, no discovery RPC
  const auto result = master.localize({0}, 100);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_TRUE(result.unanalyzed.empty());
  EXPECT_GT(master.runtimeStats().retries, 0u);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Healthy);
}

TEST(FlakyEndpoint, DeadSlaveYieldsPartialCoverageNotFailure) {
  FChainSlave alive(0), dead(1);
  alive.addComponent(0, 0);
  dead.addComponent(1, 0);

  runtime::FlakyConfig black;
  black.drop_probability = 1.0;
  auto dead_ep = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&dead), black);

  FChainMaster master;
  master.registerSlave(&alive);
  // Discovery must not depend on the flaky transport here: the drop rate is
  // 1, so register via the in-process slave first, then swap in the flaky
  // endpoint path by registering the endpoint for the *other* component.
  EXPECT_THROW(master.registerEndpoint(dead_ep), std::runtime_error);

  // An endpoint that answered discovery but dies afterwards:
  runtime::FlakyConfig late_death;
  late_death.outage_windows = {{50, 1'000'000}};
  FChainSlave dying(2);
  dying.addComponent(2, 0);
  auto dying_ep = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&dying), late_death);
  master.registerEndpoint(dying_ep);

  const auto result = master.localize({0, 2}, 100);  // tv inside the outage
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{2}));
  EXPECT_GT(master.runtimeStats().failures, 0u);
  const auto health = master.endpointHealth();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0], runtime::HealthState::Healthy);
  EXPECT_EQ(health[1], runtime::HealthState::Down);
}

TEST(FlakyEndpoint, DownEndpointRecoversAfterOutage) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  runtime::FlakyConfig outage;
  outage.outage_windows = {{100, 200}};
  auto endpoint = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&slave), outage);
  FChainMaster master;
  master.registerEndpoint(endpoint);

  auto during = master.localize({0}, 150);
  EXPECT_DOUBLE_EQ(during.coverage, 0.0);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Down);

  auto after = master.localize({0}, 250);  // single probe succeeds
  EXPECT_DOUBLE_EQ(after.coverage, 1.0);
  EXPECT_EQ(master.endpointHealth().front(), runtime::HealthState::Healthy);
}

TEST(FlakyEndpoint, TimeoutWhenLatencyExceedsDeadline) {
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  runtime::FlakyConfig slow;
  slow.latency_mean_ms = 500.0;  // above the default 200 ms deadline
  auto endpoint = std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&slave), slow);

  runtime::AnalyzeRequest request;
  request.component = 0;
  request.violation_time = 10;
  request.deadline_ms = 200.0;
  EXPECT_EQ(endpoint->analyze(request).status,
            runtime::EndpointStatus::Timeout);
  request.deadline_ms = 0.0;  // no deadline: the slow reply is accepted
  EXPECT_EQ(endpoint->analyze(request).status, runtime::EndpointStatus::Ok);
}

// --- Degraded-mode pinpointing, end to end --------------------------------

TEST(DegradedMode, LocalizesDespiteLossAndDeadSlave) {
  // One RUBiS CpuHog incident (as in the master/slave integration test).
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = 77;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};

  sim::TelemetryFaultSpec loss;
  loss.type = sim::TelemetryFaultType::SampleDropBurst;
  loss.rate = 0.10;  // 10 % uniform sample loss for the whole run
  loss.seed = 9;
  sim::TelemetryFaultInjector telemetry({loss});

  // Four slaves, one per component; slave 0 (web) will be unreachable.
  std::vector<FChainSlave> slaves;
  for (HostId h = 0; h < 4; ++h) slaves.emplace_back(h);
  for (ComponentId id = 0; id < 4; ++id) slaves[id].addComponent(id, 0);

  sim::Simulation sim(config);
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < 4; ++id) {
      if (telemetry.sampleDropped(id, t)) continue;  // slave sees a gap
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      slaves[id].ingestAt(id, t, sample);
    }
  }
  ASSERT_TRUE(sim.violationTime().has_value());
  const TimeSec tv = *sim.violationTime();

  FChainMaster master;
  runtime::FlakyConfig dead;
  dead.outage_windows = {{0, 1'000'000}};
  master.registerEndpoint(std::make_shared<runtime::FlakyEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(&slaves[0]), dead));
  for (ComponentId id = 1; id < 4; ++id) master.registerSlave(&slaves[id]);

  const auto result = master.localize({0, 1, 2, 3}, tv);
  EXPECT_LT(result.coverage, 1.0);
  EXPECT_DOUBLE_EQ(result.coverage, 0.75);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{0}));
  // The faulty component is still pinpointed from partial findings.
  EXPECT_FALSE(result.pinpointed.empty());
  EXPECT_NE(std::find(result.pinpointed.begin(), result.pinpointed.end(),
                      ComponentId{3}),
            result.pinpointed.end());
  // Some telemetry was actually lost and repaired along the way.
  EXPECT_GT(slaves[3].ingestStatsOf(3)->gaps_filled, 0u);
}

// --- TelemetryFaultInjector -----------------------------------------------

TEST(TelemetryInjector, DropWindowAndRateRespected) {
  sim::TelemetryFaultSpec spec;
  spec.type = sim::TelemetryFaultType::SampleDropBurst;
  spec.start_time = 100;
  spec.duration_sec = 50;
  spec.rate = 1.0;
  spec.targets = {2};
  sim::TelemetryFaultInjector injector({spec});

  EXPECT_FALSE(injector.sampleDropped(2, 99));    // before the window
  EXPECT_TRUE(injector.sampleDropped(2, 100));    // inside
  EXPECT_TRUE(injector.sampleDropped(2, 149));
  EXPECT_FALSE(injector.sampleDropped(2, 150));   // after
  EXPECT_FALSE(injector.sampleDropped(1, 120));   // untargeted component
}

TEST(TelemetryInjector, DropDecisionsAreDeterministic) {
  sim::TelemetryFaultSpec spec;
  spec.rate = 0.5;
  spec.seed = 4;
  sim::TelemetryFaultInjector a({spec}), b({spec});
  std::size_t dropped = 0;
  for (TimeSec t = 0; t < 1000; ++t) {
    EXPECT_EQ(a.sampleDropped(0, t), b.sampleDropped(0, t));
    if (a.sampleDropped(0, t)) ++dropped;
  }
  EXPECT_GT(dropped, 400u);  // ~500 expected
  EXPECT_LT(dropped, 600u);
}

TEST(TelemetryInjector, CorruptionProducesNonFiniteOrWildValues) {
  sim::TelemetryFaultSpec spec;
  spec.type = sim::TelemetryFaultType::ValueCorruption;
  spec.rate = 1.0;
  spec.seed = 11;
  sim::TelemetryFaultInjector injector({spec});
  auto sample = flatSample(1.0);
  EXPECT_TRUE(injector.corruptSample(0, 10, sample));
  bool any_bad = false;
  for (double v : sample) {
    if (!std::isfinite(v) || std::fabs(v) > 1e6) any_bad = true;
  }
  EXPECT_TRUE(any_bad);
}

TEST(TelemetryInjector, SlaveOutageWindows) {
  sim::TelemetryFaultSpec spec;
  spec.type = sim::TelemetryFaultType::SlaveOutage;
  spec.start_time = 10;
  spec.duration_sec = 5;
  spec.hosts = {1};
  sim::TelemetryFaultInjector injector({spec});
  EXPECT_FALSE(injector.slaveDown(1, 9));
  EXPECT_TRUE(injector.slaveDown(1, 12));
  EXPECT_FALSE(injector.slaveDown(1, 15));
  EXPECT_FALSE(injector.slaveDown(0, 12));  // other hosts unaffected
}

TEST(RetryPolicy, JitterNeverEscapesTheCap) {
  // The cap applies before jitter, so the worst case is max * (1 + frac);
  // sweep attempts and salts to make sure no combination escapes it.
  runtime::RetryPolicy policy;
  policy.base_backoff_ms = 50.0;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_ms = 400.0;
  policy.jitter_fraction = 0.25;
  for (int attempt = 0; attempt < 8; ++attempt) {
    for (std::uint64_t salt = 0; salt < 64; ++salt) {
      const double delay = runtime::retryDelayMs(policy, attempt, salt);
      EXPECT_GE(delay, 0.0);
      EXPECT_LE(delay, 400.0 * 1.25)
          << "attempt " << attempt << " salt " << salt;
    }
  }
}

TEST(RetryPolicy, SaltsDecorrelateButEachSaltIsStable) {
  // The schedule must be a pure function of (policy, attempt, salt) — and
  // different salts must actually spread (otherwise a fleet of masters
  // retries in lockstep).
  runtime::RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.jitter_fraction = 0.2;
  std::set<double> distinct;
  for (std::uint64_t salt = 0; salt < 32; ++salt) {
    const double first = runtime::retryDelayMs(policy, 1, salt);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_DOUBLE_EQ(runtime::retryDelayMs(policy, 1, salt), first);
    }
    distinct.insert(first);
  }
  EXPECT_GT(distinct.size(), 16u);  // near-collision-free over 32 salts
}

// EndpointHealth is copied while worker threads record outcomes (endpoints
// live in a vector that registration can grow). The copy must be race-free
// (TSan-checked in CI) and land in a consistent state.
TEST(EndpointHealth, CopyAndAssignWhileConcurrentlyRecording) {
  runtime::EndpointHealth health(1, 3);
  constexpr int kWrites = 100000;
  std::thread success_writer([&] {
    for (int i = 0; i < kWrites; ++i) health.recordSuccess();
  });
  std::thread failure_writer([&] {
    for (int i = 0; i < kWrites; ++i) health.recordFailure();
  });

  for (int i = 0; i < 2000; ++i) {
    runtime::EndpointHealth copy(health);      // copy-construct under fire
    runtime::EndpointHealth assigned;
    assigned = health;                         // copy-assign under fire
    for (const auto* h : {&copy, &assigned}) {
      // A copy is a snapshot: internally consistent even mid-bombardment.
      const auto state = h->state();
      EXPECT_TRUE(state == runtime::HealthState::Healthy ||
                  state == runtime::HealthState::Degraded ||
                  state == runtime::HealthState::Down);
      EXPECT_GE(h->consecutiveFailures(), 0);
      EXPECT_LE(static_cast<std::size_t>(h->consecutiveFailures()),
                h->totalFailures() + 1);
    }
  }
  success_writer.join();
  failure_writer.join();
  // Atomic counters lose nothing under contention.
  EXPECT_EQ(health.totalSuccesses(), static_cast<std::size_t>(kWrites));
  EXPECT_EQ(health.totalFailures(), static_cast<std::size_t>(kWrites));
}

TEST(TelemetryInjector, CorruptedSamplesEndUpQuarantinedBySlave) {
  sim::TelemetryFaultSpec spec;
  spec.type = sim::TelemetryFaultType::ValueCorruption;
  spec.rate = 0.3;
  spec.seed = 5;
  sim::TelemetryFaultInjector injector({spec});

  FChainSlave slave(0);
  slave.addComponent(0, 0);
  for (TimeSec t = 0; t < 200; ++t) {
    auto sample = flatSample(2.0);
    injector.corruptSample(0, t, sample);
    slave.ingestAt(0, t, sample);
  }
  const IngestStats* stats = slave.ingestStatsOf(0);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->quarantined, 0u);
  // Analysis over the repaired stream must never see a non-finite value:
  // a constant series with quarantine substitutions yields no finding (the
  // wild-value corruptions are finite and *should* perturb the series, but
  // must not crash the selector).
  (void)slave.analyze(0, 199);
}

}  // namespace
}  // namespace fchain::core
