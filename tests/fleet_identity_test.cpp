// Partitioned-replay golden suite for the fleet tier: the N-shard
// localization result must be *byte-identical* to the single-master golden
// for every N in {1, 2, 4, 8} on the campaign's canonical scenarios —
// including a shard crash mid-localization followed by journal-driven
// recovery, and the online FleetMonitor fan-in over a live stream.
//
// Golden ownership: single_fault / concurrent_fault are produced by
// test_golden_localization (the offline single-master reference) and are
// never regenerated here. The two fleet-only scenarios (System S CpuHog,
// Hadoop InfiniteLoop — the campaign's other overlay bases) get their own
// goldens, regenerated from the *single-master* path only:
//   FCHAIN_UPDATE_GOLDEN=1 ./build/tests/test_fleet_identity
// The sharded paths always compare against the bytes on disk.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "fleet/fleet.h"
#include "fleet/monitor.h"
#include "netdep/dependency.h"
#include "pinpoint_render.h"
#include "sim/apps.h"
#include "sim/simulator.h"
#include "sim/stream.h"

namespace fchain::fleet {
namespace {

// --- Scenarios ------------------------------------------------------------

sim::ScenarioConfig scenario(sim::AppKind kind, faults::FaultType type,
                             const std::vector<ComponentId>& targets,
                             double intensity, TimeSec start = 2000) {
  faults::FaultSpec fault;
  fault.type = type;
  fault.targets = targets;
  fault.start_time = start;
  fault.intensity = intensity;
  sim::ScenarioConfig config;
  config.kind = kind;
  config.seed = 77;
  config.faults = {fault};
  return config;
}

sim::ScenarioConfig rubisCpuHog() {
  return scenario(sim::AppKind::Rubis, faults::FaultType::CpuHog, {3}, 1.35);
}
sim::ScenarioConfig rubisOffloadBug() {
  return scenario(sim::AppKind::Rubis, faults::FaultType::OffloadBug, {1, 2},
                  1.0);
}
sim::ScenarioConfig systemSCpuHog() {
  return scenario(sim::AppKind::SystemS, faults::FaultType::CpuHog, {2},
                  1.35);
}
sim::ScenarioConfig hadoopInfiniteLoop() {
  // Hadoop is a batch job: spin all three map nodes inside the campaign's
  // fault-start window ([1150, 1450]) so the job's aggregate progress
  // stalls hard enough to latch the progress SLO (one spinning map of
  // three only slows the sort — the reducers keep draining).
  return scenario(sim::AppKind::Hadoop, faults::FaultType::InfiniteLoop,
                  {0, 1, 2}, 1.0, /*start=*/1300);
}

// --- Incident construction ------------------------------------------------

/// A fully-ingested incident: two slaves splitting the app's components by
/// index (front = first half on host 0), the recorded violation time, and
/// the discovered dependency graph — the same construction the offline
/// golden flow uses, generalized over application size.
struct Incident {
  std::unique_ptr<core::FChainSlave> front;
  std::unique_ptr<core::FChainSlave> back;
  std::vector<ComponentId> components;
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

Incident makeIncident(const sim::ScenarioConfig& config) {
  Incident incident;
  sim::Simulation sim(config);
  const std::size_t n = sim.app().componentCount();
  incident.front = std::make_unique<core::FChainSlave>(0);
  incident.back = std::make_unique<core::FChainSlave>(1);
  for (ComponentId id = 0; id < n; ++id) {
    incident.components.push_back(id);
    (id < n / 2 ? *incident.front : *incident.back).addComponent(id, 0);
  }
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < n; ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      (id < n / 2 ? *incident.front : *incident.back).ingest(id, sample);
    }
  }
  EXPECT_TRUE(sim.violationTime().has_value())
      << "scenario never violated its SLO";
  incident.tv = sim.violationTime().value_or(sim.now());
  incident.deps = netdep::discoverDependencies(sim.record());
  return incident;
}

std::string singleMasterRender(const Incident& incident) {
  core::FChainMaster master;
  master.registerSlave(incident.front.get());
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  return core::renderPinpoint(
      master.localize(incident.components, incident.tv), incident.tv);
}

std::string fleetRender(const Incident& incident, FleetConfig config) {
  FleetMaster fleet(std::move(config));
  fleet.addSlave(incident.front.get());
  fleet.addSlave(incident.back.get());
  fleet.setDependencies(incident.deps);
  return core::renderPinpoint(
      fleet.localize(incident.components, incident.tv), incident.tv);
}

// --- Golden plumbing ------------------------------------------------------

std::string goldenPath(const std::string& name) {
  return std::string(FCHAIN_GOLDEN_DIR) + "/" + name + ".golden";
}

std::string readGolden(const std::string& name) {
  const std::string path = goldenPath(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Regen-capable comparison, used ONLY by the single-master reference
/// tests — the sharded paths must never write what they are checked against.
void expectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  const char* update = std::getenv("FCHAIN_UPDATE_GOLDEN");
  if (update != nullptr && update[0] != '\0' &&
      !(update[0] == '0' && update[1] == '\0')) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated golden " << path;
  }
  EXPECT_EQ(actual, readGolden(name))
      << "single-master output diverged from " << path
      << "; regenerate with FCHAIN_UPDATE_GOLDEN=1 and review the diff";
}

void expectFleetMatchesGolden(const sim::ScenarioConfig& config,
                              const std::string& golden_name) {
  const Incident incident = makeIncident(config);
  const std::string golden = readGolden(golden_name);
  // Guard against a stale golden: the single-master path must agree with
  // the bytes on disk before they are used as the sharding reference.
  ASSERT_EQ(singleMasterRender(incident), golden)
      << golden_name << " is stale relative to the single-master path";
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    FleetConfig fleet_config;
    fleet_config.shards = shards;
    EXPECT_EQ(fleetRender(incident, fleet_config), golden)
        << golden_name << " diverged at " << shards << " shards";
  }
}

// --- Single-master references for the fleet-only goldens ------------------

TEST(FleetGoldenReference, SystemSCpuHog) {
  const Incident incident = makeIncident(systemSCpuHog());
  expectMatchesGolden("fleet_systems_cpuhog", singleMasterRender(incident));
}

TEST(FleetGoldenReference, HadoopInfiniteLoop) {
  const Incident incident = makeIncident(hadoopInfiniteLoop());
  expectMatchesGolden("fleet_hadoop_infloop", singleMasterRender(incident));
}

// --- Partitioned replay: N in {1, 2, 4, 8} --------------------------------

TEST(FleetIdentity, RubisSingleFault) {
  expectFleetMatchesGolden(rubisCpuHog(), "single_fault");
}

TEST(FleetIdentity, RubisConcurrentFault) {
  expectFleetMatchesGolden(rubisOffloadBug(), "concurrent_fault");
}

TEST(FleetIdentity, SystemSCpuHog) {
  expectFleetMatchesGolden(systemSCpuHog(), "fleet_systems_cpuhog");
}

TEST(FleetIdentity, HadoopInfiniteLoop) {
  expectFleetMatchesGolden(hadoopInfiniteLoop(), "fleet_hadoop_infloop");
}

/// Cross-shard fan-out on a worker pool plus batched per-shard masters:
/// still the same bytes (this is the configuration the TSan job runs).
TEST(FleetIdentity, ThreadedFanOutMatchesGolden) {
  const Incident incident = makeIncident(rubisCpuHog());
  FleetConfig config;
  config.shards = 4;
  config.fleet_threads = 4;
  config.shard_worker_threads = 2;
  EXPECT_EQ(fleetRender(incident, config), readGolden("single_fault"));
}

// --- Shard crash mid-localization + journal-driven recovery ---------------

TEST(FleetFailover, CrashMidLocalizationThenRerunMatchesGolden) {
  const Incident incident = makeIncident(rubisCpuHog());
  const std::string golden = readGolden("single_fault");

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "fleet_failover_journal")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FleetConfig config;
  config.shards = 4;
  config.journal_dir = dir;
  FleetMaster fleet(config);
  fleet.addSlave(incident.front.get());
  fleet.addSlave(incident.back.get());
  fleet.setDependencies(incident.deps);

  // Crash the shard owning the faulty db VM (component 3) with the incident
  // journaled as started but not completed — exactly the on-disk state a
  // real crash between fan-out and logDone leaves behind.
  const ShardId crashed = fleet.ownerOf(3);
  std::vector<ComponentId> slice;
  for (const ShardPartial& partial :
       partitionByOwner(fleet.ring(), incident.components)) {
    if (partial.shard == crashed) slice = partial.components;
  }
  ASSERT_FALSE(slice.empty());
  ASSERT_NE(fleet.shardJournal(crashed), nullptr);
  fleet.shardJournal(crashed)->logStart(slice, incident.tv);
  fleet.crashShard(crashed);
  EXPECT_FALSE(fleet.shardAlive(crashed));

  // Degraded mode while the shard is down: its whole slice is unanalyzed.
  const core::PinpointResult degraded =
      fleet.localize(incident.components, incident.tv);
  EXPECT_EQ(degraded.unanalyzed, slice);
  EXPECT_DOUBLE_EQ(
      degraded.coverage,
      static_cast<double>(incident.components.size() - slice.size()) /
          static_cast<double>(incident.components.size()));

  // Recovery re-runs the interrupted slice localization from the journal.
  const std::vector<core::RerunIncident> reruns = fleet.recoverShard(crashed);
  ASSERT_EQ(reruns.size(), 1u);
  EXPECT_EQ(reruns[0].components, slice);
  EXPECT_EQ(reruns[0].violation_time, incident.tv);
  EXPECT_TRUE(
      persist::IncidentJournal::pending(fleet.shardJournalPath(crashed))
          .empty());

  // The re-run partial hand-merged with the live shards' fresh partials
  // reproduces the golden — the recovered shard's answer is byte-equivalent
  // to one that never crashed.
  std::vector<ShardPartial> partials =
      partitionByOwner(fleet.ring(), incident.components);
  for (ShardPartial& partial : partials) {
    if (partial.shard == crashed) {
      partial.result = reruns[0].result;
    } else {
      partial.result =
          fleet.shardMaster(partial.shard)
              .localize(partial.components, incident.tv);
    }
  }
  const FleetAggregator aggregator{core::FChainConfig{}};
  EXPECT_EQ(core::renderPinpoint(
                aggregator.merge(partials, incident.components.size(),
                                 &incident.deps),
                incident.tv),
            golden);

  // And the fleet as a whole is healed: a full localization is golden again.
  EXPECT_EQ(core::renderPinpoint(
                fleet.localize(incident.components, incident.tv),
                incident.tv),
            golden);

  // Recovering a live shard is a no-op.
  EXPECT_TRUE(fleet.recoverShard(crashed).empty());
  std::filesystem::remove_all(dir);
}

// --- Online fan-in: FleetMonitor over a live stream -----------------------

TEST(FleetOnline, StreamedIncidentMatchesGolden) {
  // Offline pass for the dependency graph + expected tv (discovery is
  // deterministic on the record; see online_vs_offline_test.cpp).
  const sim::ScenarioConfig config = rubisCpuHog();
  sim::Simulation offline(config);
  while (!offline.violationTime().has_value() && offline.now() < 3600) {
    offline.step();
  }
  ASSERT_TRUE(offline.violationTime().has_value());
  const TimeSec tv = *offline.violationTime();
  const netdep::DependencyGraph deps =
      netdep::discoverDependencies(offline.record());

  core::FChainSlave front(0);
  core::FChainSlave back(1);
  front.addComponent(0, 0);
  front.addComponent(1, 0);
  back.addComponent(2, 0);
  back.addComponent(3, 0);

  FleetMonitorConfig monitor_config;
  monitor_config.shards = 4;
  FleetMonitor monitor(monitor_config);
  monitor.addSlave(&front);
  monitor.addSlave(&back);
  monitor.setDependencies(deps);

  online::AppSpec app;
  app.name = "rubis";
  app.components = {0, 1, 2, 3};
  app.slo.kind = online::SloSpec::Kind::Latency;
  app.slo.latency_threshold_sec = sim::sloLatencyThreshold(config.kind);
  app.slo.sustain_sec = config.slo_sustain_sec;
  const std::size_t app_index = monitor.addApplication(app);

  sim::StreamingSource source(config);
  while (monitor.incidents().empty() && source.now() < 3600) {
    const sim::StreamTick tick = source.step(
        [&](const sim::StreamSample& sample) { monitor.ingest(sample); });
    monitor.observe(app_index, tick);
    monitor.pump();
  }
  ASSERT_EQ(monitor.incidents().size(), 1u);
  const online::OnlineIncident& incident = monitor.incidents().front();
  EXPECT_EQ(incident.app, app_index);
  EXPECT_EQ(incident.violation_time, tv);
  EXPECT_EQ(core::renderPinpoint(incident.result, incident.violation_time),
            readGolden("single_fault"));
}

}  // namespace
}  // namespace fchain::fleet
