// Tests for the adaptive look-back window (the paper's §III-F ongoing work)
// and adaptive smoothing (§III-C).
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "fchain/adaptive.h"

namespace fchain::core {
namespace {

TEST(AdaptiveWindow, FastFaultStopsAtTheFirstRung) {
  // NetHog manifests within seconds: the 100 s rung already brackets it.
  eval::TrialOptions options;
  options.trials = 3;
  options.base_seed = 42;
  const auto set = eval::generateTrials(eval::rubisNetHog(), options);
  ASSERT_FALSE(set.trials.empty());
  for (const auto& trial : set.trials) {
    const auto adaptive =
        localizeRecordAdaptive(trial.record, &trial.discovered);
    EXPECT_EQ(adaptive.chosen_window, 100);
    EXPECT_EQ(adaptive.rungs_tried, 1u);
    EXPECT_EQ(adaptive.result.pinpointed, trial.record.ground_truth);
  }
}

TEST(AdaptiveWindow, SlowFaultClimbsTheLadder) {
  // The Hadoop DiskHog manifests over hundreds of seconds; W=100 misses the
  // onset (Table I) and the adaptive scheme must widen.
  eval::FaultCase fault_case = eval::hadoopConcDiskHog();
  fault_case.fchain_config.lookback_sec = 100;  // deliberately wrong default
  eval::TrialOptions options;
  options.trials = 3;
  options.base_seed = 42;
  const auto set = eval::generateTrials(fault_case, options);
  ASSERT_FALSE(set.trials.empty());

  eval::Counts fixed_counts, adaptive_counts;
  std::size_t widened = 0;
  for (const auto& trial : set.trials) {
    const auto fixed = localizeRecord(trial.record, &trial.discovered,
                                      fault_case.fchain_config);
    fixed_counts.accumulate(fixed.pinpointed, trial.record.ground_truth);

    const auto adaptive = localizeRecordAdaptive(
        trial.record, &trial.discovered, fault_case.fchain_config);
    adaptive_counts.accumulate(adaptive.result.pinpointed,
                               trial.record.ground_truth);
    if (adaptive.chosen_window > 100) ++widened;
  }
  // The ladder must widen whenever W=100 cannot see the manifestation, and
  // adaptive analysis must never be worse than the fixed wrong default.
  EXPECT_GE(widened, 1u);
  EXPECT_GE(adaptive_counts.f1(), fixed_counts.f1());
}

TEST(AdaptiveWindow, NoViolationYieldsEmptyResult) {
  sim::RunRecord record;
  const auto adaptive = localizeRecordAdaptive(record, nullptr);
  EXPECT_TRUE(adaptive.result.pinpointed.empty());
  EXPECT_EQ(adaptive.rungs_tried, 0u);
}

TEST(AdaptiveSmoothing, MatchesFixedAccuracyOnRubis) {
  // Adaptive smoothing must not hurt the standard cases.
  eval::TrialOptions options;
  options.trials = 4;
  options.base_seed = 42;
  const auto set = eval::generateTrials(eval::rubisCpuHog(), options);
  ASSERT_FALSE(set.trials.empty());

  FChainConfig adaptive_config;
  adaptive_config.adaptive_smoothing = true;
  eval::Counts fixed_counts, adaptive_counts;
  for (const auto& trial : set.trials) {
    fixed_counts.accumulate(
        localizeRecord(trial.record, &trial.discovered, {}).pinpointed,
        trial.record.ground_truth);
    adaptive_counts.accumulate(
        localizeRecord(trial.record, &trial.discovered, adaptive_config)
            .pinpointed,
        trial.record.ground_truth);
  }
  EXPECT_GE(adaptive_counts.f1() + 0.15, fixed_counts.f1());
}

}  // namespace
}  // namespace fchain::core
