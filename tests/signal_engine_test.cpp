// Serial ≡ optimized identity suite for the scratch-arena signal engine.
//
// The optimized engine must be provably equivalent to the frozen reference
// engine (signal/reference.h):
//   - ThreadedRng bootstrap mode: bit-identical change points, and every
//     other kernel (smoothing, burst, outlier, rollback) bit-identical
//     regardless of mode.
//   - PooledPermutations mode: deterministic (scratch reuse, fresh arenas
//     and thread count must not matter), and its early exit must make
//     exactly the accept/reject decisions a full-round run makes, with the
//     exact confidence on accepted segments.
//   - Steady state allocates nothing: after one warm-up pass, the whole
//     per-VM kernel chain runs without touching operator new.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "fchain/slave.h"
#include "signal/burst.h"
#include "signal/cusum.h"
#include "signal/outlier.h"
#include "signal/reference.h"
#include "signal/scratch.h"
#include "signal/smoothing.h"
#include "signal/tangent.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fchain::signal {
namespace {

/// Noisy random walk with two injected level shifts — enough structure for
/// every pipeline stage (CUSUM accepts, outliers exist, rollback walks).
std::vector<double> faultyStream(std::uint64_t seed, std::size_t n) {
  fchain::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  double level = 50.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == n / 3) level += 25.0;
    if (i == (2 * n) / 3) level += 40.0;
    level += rng.gaussian(0.0, 0.4);
    xs.push_back(level + rng.gaussian(0.0, 2.0));
  }
  return xs;
}

bool samePoints(const std::vector<ChangePoint>& a,
                const std::vector<ChangePoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].confidence != b[i].confidence ||
        a[i].shift != b[i].shift) {
      return false;
    }
  }
  return true;
}

TEST(EngineIdentity, ThreadedRngMatchesReferenceBitExact) {
  CusumConfig config;
  config.bootstrap = BootstrapMode::ThreadedRng;
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    for (std::size_t n : {20u, 101u, 150u, 500u}) {
      const auto xs = faultyStream(seed, n);
      const auto expected = reference::detectChangePoints(xs, config);
      const auto actual = detectChangePoints(xs, config);
      EXPECT_TRUE(samePoints(expected, actual))
          << "seed=" << seed << " n=" << n;
    }
  }
}

TEST(EngineIdentity, StatelessKernelsMatchReferenceBitExact) {
  for (std::uint64_t seed : {3ULL, 99ULL}) {
    const auto xs = faultyStream(seed, 200);
    for (std::size_t half : {0u, 1u, 2u, 3u}) {
      const auto ref = reference::movingAverage(xs, half);
      const auto opt = movingAverage(xs, half);
      ASSERT_EQ(ref.size(), opt.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(ref[i], opt[i]) << "half=" << half << " i=" << i;
      }
    }

    // Planned FFT path vs the reference's unplanned transform.
    const auto window = std::span<const double>(xs).subspan(0, 41);
    const auto ref_burst = reference::burstSignal(window);
    const auto opt_burst = burstSignal(window);
    ASSERT_EQ(ref_burst.size(), opt_burst.size());
    for (std::size_t i = 0; i < ref_burst.size(); ++i) {
      ASSERT_EQ(ref_burst[i], opt_burst[i]) << "i=" << i;
    }
    EXPECT_EQ(reference::expectedPredictionError(window),
              expectedPredictionError(window));

    CusumConfig config;
    config.bootstrap = BootstrapMode::ThreadedRng;
    const auto points = reference::detectChangePoints(xs, config);
    EXPECT_TRUE(samePoints(reference::outlierChangePoints(points),
                           outlierChangePoints(points)));
    for (std::size_t selected = 0; selected < points.size(); ++selected) {
      EXPECT_EQ(reference::rollbackOnset(xs, points, selected),
                rollbackOnset(xs, points, selected));
    }
  }
}

TEST(EngineIdentity, PooledModeIsDeterministicAcrossArenasAndReuse) {
  const CusumConfig config;  // PooledPermutations default
  // n = 500 exercises both pool paths: the top segments exceed
  // PermutationPool::kMaxPooledLength (regenerated into the overflow
  // buffer), deep recursion segments are cached.
  const auto xs = faultyStream(11, 500);

  SignalScratch fresh_a;
  std::vector<ChangePoint> out_a;
  detectChangePointsInto(xs, config, fresh_a, out_a);

  // Same arena again: warm pool, warm lanes.
  std::vector<ChangePoint> out_b;
  detectChangePointsInto(xs, config, fresh_a, out_b);
  EXPECT_TRUE(samePoints(out_a, out_b));

  // A different arena (cold pool), and the thread-local entry point.
  SignalScratch fresh_c;
  std::vector<ChangePoint> out_c;
  detectChangePointsInto(xs, config, fresh_c, out_c);
  EXPECT_TRUE(samePoints(out_a, out_c));
  EXPECT_TRUE(samePoints(out_a, detectChangePoints(xs, config)));
}

TEST(EngineIdentity, PooledEarlyExitMatchesFullRoundOracle) {
  // The early exit must be invisible: same accept/reject decision as
  // running every bootstrap round, and the exact full-round confidence on
  // accepted segments. Oracle: recompute the top-level segment's decision
  // from the same permutation pool with no early exit.
  CusumConfig config;
  config.max_change_points = 1;  // stop after the top-level decision
  SignalScratch scratch;
  std::size_t accepts = 0, rejects = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    // Mix faulty and fault-free streams so both decisions occur.
    std::vector<double> xs;
    if (seed % 2 == 0) {
      fchain::Rng rng(seed);
      for (std::size_t i = 0; i < 60; ++i) {
        xs.push_back(rng.gaussian(10.0, 3.0));
      }
    } else {
      xs = faultyStream(seed, 60);
    }

    // Full-round oracle over the whole series as one segment.
    const double m = fchain::mean(xs);
    double s = 0.0, lo = 0.0, hi = 0.0, best_abs = 0.0;
    std::size_t peak = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      s += xs[i] - m;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      if (std::fabs(s) > best_abs) {
        best_abs = std::fabs(s);
        peak = i;
      }
    }
    const double observed = hi - lo;
    const auto perms =
        scratch.permutations(config.seed, config.bootstrap_rounds, xs.size());
    std::size_t below = 0;
    for (std::size_t r = 0; r < config.bootstrap_rounds; ++r) {
      const std::uint32_t* perm = perms.data() + r * xs.size();
      double ps = 0.0, plo = 0.0, phi = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        ps += xs[perm[i]] - m;
        plo = std::min(plo, ps);
        phi = std::max(phi, ps);
      }
      if (phi - plo < observed) ++below;
    }
    const double full_confidence =
        static_cast<double>(below) /
        static_cast<double>(config.bootstrap_rounds);
    const std::size_t split = peak + 1;
    const bool split_legal = split >= config.min_segment &&
                             xs.size() - split >= config.min_segment;

    std::vector<ChangePoint> out;
    detectChangePointsInto(xs, config, scratch, out);
    if (full_confidence >= config.confidence && split_legal &&
        observed > 0.0) {
      ++accepts;
      ASSERT_EQ(out.size(), 1u) << "seed=" << seed;
      EXPECT_EQ(out[0].index, split);
      EXPECT_EQ(out[0].confidence, full_confidence) << "seed=" << seed;
    } else {
      ++rejects;
      EXPECT_TRUE(out.empty()) << "seed=" << seed;
    }
  }
  // The sweep must actually exercise both outcomes to prove anything.
  EXPECT_GE(accepts, 5u);
  EXPECT_GE(rejects, 5u);
}

TEST(EngineIdentity, SteadyStateKernelChainAllocatesNothing) {
  const auto xs = faultyStream(21, 300);
  SignalScratch scratch;

  const auto run_chain = [&] {
    std::vector<double>& smoothed =
        movingAverageInto(xs, 2, scratch.smoothed(xs.size()));
    std::vector<ChangePoint>& points = detectChangePointsInto(
        smoothed, CusumConfig{}, scratch, scratch.points());
    std::vector<ChangePoint>& outliers = outlierChangePointsInto(
        points, OutlierConfig{}, scratch, scratch.outliers());
    double acc = static_cast<double>(outliers.size());
    acc += expectedPredictionError(
        std::span<const double>(xs).subspan(0, 41), BurstConfig{}, scratch);
    if (!points.empty()) {
      acc += static_cast<double>(
          rollbackOnset(smoothed, points, points.size() - 1, RollbackConfig{},
                        scratch));
    }
    return acc;
  };

  const double warm = run_chain();  // sizes every lane, fills pool + plan
  scratch.accountGrowth();
  const std::uint64_t grow_before = scratch.stats().grow_events;

  // gtest assertions may themselves allocate, so collect inside the counted
  // window and assert outside it.
  std::array<double, 5> repeats{};
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (double& r : repeats) r = run_chain();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  for (double r : repeats) {
    EXPECT_EQ(r, warm);  // reuse must not change results either
  }

  EXPECT_EQ(after - before, 0u) << "steady-state kernel chain allocated";
  scratch.accountGrowth();
  EXPECT_EQ(scratch.stats().grow_events, grow_before);
}

// --- Slave-level identity: all six metric kinds, serial vs parallel -------

/// Builds a slave with four VMs whose six metric streams are random walks
/// with per-metric level shifts on two of the VMs.
core::FChainSlave buildSlave() {
  core::FChainSlave slave(0);
  for (ComponentId id = 0; id < 4; ++id) slave.addComponent(id, 0);
  fchain::Rng rng(2024);
  std::array<double, kMetricCount> level{};
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    level[m] = 40.0 + 10.0 * static_cast<double>(m);
  }
  for (TimeSec t = 0; t < 1400; ++t) {
    for (ComponentId id = 0; id < 4; ++id) {
      std::array<double, kMetricCount> sample{};
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        double v = level[m] + rng.gaussian(0.0, 2.0);
        // Fault signature: VM 1 ramps metric m after t=1200, VM 3 steps.
        if (id == 1 && t > 1200) {
          v += 0.15 * static_cast<double>(t - 1200);
        }
        if (id == 3 && t > 1250) v += 30.0;
        sample[m] = v;
      }
      slave.ingest(id, sample);
    }
  }
  return slave;
}

bool sameFinding(const core::ComponentFinding& a,
                 const core::ComponentFinding& b) {
  if (a.component != b.component || a.onset != b.onset ||
      a.trend != b.trend || a.metrics.size() != b.metrics.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const core::MetricFinding& ma = a.metrics[i];
    const core::MetricFinding& mb = b.metrics[i];
    if (ma.metric != mb.metric || ma.onset != mb.onset ||
        ma.change_point != mb.change_point || ma.trend != mb.trend ||
        ma.prediction_error != mb.prediction_error ||
        ma.expected_error != mb.expected_error) {
      return false;
    }
  }
  return true;
}

TEST(EngineIdentity, ParallelAnalysisMatchesSerialAcrossAllMetrics) {
  core::FChainSlave slave = buildSlave();
  const std::vector<ComponentId> ids{0, 1, 2, 3};
  const TimeSec tv = 1399;

  const auto serial = slave.analyzeBatch(ids, tv);
  // Every VM analysis covers all six metric kinds (analyzeComponent sweeps
  // kAllMetrics), and at least one fault signature must have been found for
  // the comparison to be meaningful.
  ASSERT_TRUE(serial[1].has_value() || serial[3].has_value());

  slave.setAnalysisThreads(4);
  for (int repeat = 0; repeat < 3; ++repeat) {
    // Repeats reuse each worker thread's scratch arena — results must not
    // depend on which worker (with whatever warm lane sizes) gets which VM.
    const auto parallel = slave.analyzeBatch(ids, tv);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].has_value(), parallel[i].has_value()) << i;
      if (serial[i].has_value()) {
        EXPECT_TRUE(sameFinding(*serial[i], *parallel[i])) << i;
      }
    }
  }
  slave.setAnalysisThreads(0);
  const auto serial_again = slave.analyzeBatch(ids, tv);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].has_value(), serial_again[i].has_value()) << i;
    if (serial[i].has_value()) {
      EXPECT_TRUE(sameFinding(*serial[i], *serial_again[i])) << i;
    }
  }
}

TEST(EngineIdentity, ColdStartBurstThresholdIsInfiniteNotZero) {
  BurstConfig config;
  SignalScratch scratch;
  const std::vector<double> short_window{1.0, 5.0, 2.0};
  EXPECT_EQ(expectedPredictionError(short_window, config, scratch),
            std::numeric_limits<double>::infinity());
  // Reference engine documents the old defect for contrast.
  EXPECT_EQ(reference::expectedPredictionError(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace fchain::signal
