// Tests for the evaluation harness: scoring math, ROC containers, trial
// generation determinism, and the paper fault-case definitions.
#include <gtest/gtest.h>

#include "eval/report.h"
#include "eval/runner.h"

#include <sstream>

namespace fchain::eval {
namespace {

TEST(Counts, AccumulateBasics) {
  Counts counts;
  counts.accumulate({1, 2, 3}, {2, 3, 4});
  EXPECT_EQ(counts.tp, 2u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
  EXPECT_NEAR(counts.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.recall(), 2.0 / 3.0, 1e-12);
}

TEST(Counts, EmptyAgainstEmptyIsPerfect) {
  Counts counts;
  counts.accumulate({}, {});
  EXPECT_DOUBLE_EQ(counts.precision(), 1.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 1.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 1.0);
}

TEST(Counts, MissEverything) {
  Counts counts;
  counts.accumulate({}, {1, 2});
  EXPECT_DOUBLE_EQ(counts.precision(), 1.0);  // vacuous: nothing claimed
  EXPECT_DOUBLE_EQ(counts.recall(), 0.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 0.0);
}

TEST(Counts, AccumulatesAcrossTrials) {
  Counts counts;
  counts.accumulate({1}, {1});
  counts.accumulate({2}, {3});
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(SchemeCurve, BestPicksHighestF1) {
  SchemeCurve curve;
  curve.scheme = "x";
  RocPoint weak;
  weak.threshold = 1;
  weak.counts.tp = 1;
  weak.counts.fp = 9;
  RocPoint strong;
  strong.threshold = 2;
  strong.counts.tp = 8;
  strong.counts.fp = 1;
  strong.counts.fn = 1;
  curve.points = {weak, strong};
  ASSERT_NE(curve.best(), nullptr);
  EXPECT_DOUBLE_EQ(curve.best()->threshold, 2.0);
  SchemeCurve empty;
  EXPECT_EQ(empty.best(), nullptr);
}

TEST(Cases, AllPaperCasesAreWellFormed) {
  const auto cases = allPaperCases();
  EXPECT_EQ(cases.size(), 13u);
  Rng rng(1);
  for (const auto& fault_case : cases) {
    EXPECT_FALSE(fault_case.label.empty());
    const auto spec = sim::makeAppSpec(fault_case.kind);
    const auto faults = fault_case.make_faults(rng, spec);
    ASSERT_FALSE(faults.empty());
    for (const auto& fault : faults) {
      EXPECT_GE(fault.start_time, 1000);
      EXPECT_LT(fault.start_time,
                static_cast<TimeSec>(fault_case.duration_sec));
      for (ComponentId target : fault.targets) {
        EXPECT_LT(target, spec.components.size());
      }
    }
  }
}

TEST(Cases, DiskHogUsesLongLookback) {
  EXPECT_EQ(hadoopConcDiskHog().fchain_config.lookback_sec, 500);
  EXPECT_EQ(rubisMemLeak().fchain_config.lookback_sec, 100);
}

TEST(Cases, ExternalFactorCasesHaveNoTargets) {
  Rng rng(2);
  for (const auto& fault_case :
       {rubisWorkloadSurge(), hadoopSharedSlowdown()}) {
    const auto spec = sim::makeAppSpec(fault_case.kind);
    for (const auto& fault : fault_case.make_faults(rng, spec)) {
      EXPECT_TRUE(fault.targets.empty());
    }
  }
}

TEST(Runner, TrialsAreDeterministicPerSeed) {
  TrialOptions options;
  options.trials = 2;
  options.base_seed = 99;
  const auto a = generateTrials(rubisCpuHog(), options);
  const auto b = generateTrials(rubisCpuHog(), options);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].record.violation_time,
              b.trials[i].record.violation_time);
    EXPECT_EQ(a.trials[i].record.faults.front().start_time,
              b.trials[i].record.faults.front().start_time);
  }
}

TEST(Runner, DifferentSeedsDiffer) {
  TrialOptions a_options;
  a_options.trials = 1;
  a_options.base_seed = 1;
  TrialOptions b_options = a_options;
  b_options.base_seed = 2;
  const auto a = generateTrials(rubisCpuHog(), a_options);
  const auto b = generateTrials(rubisCpuHog(), b_options);
  ASSERT_FALSE(a.trials.empty());
  ASSERT_FALSE(b.trials.empty());
  EXPECT_NE(a.trials[0].record.faults.front().start_time,
            b.trials[0].record.faults.front().start_time);
}

TEST(Runner, InputForWiresAllPointers) {
  TrialOptions options;
  options.trials = 1;
  options.base_seed = 5;
  const auto set = generateTrials(rubisCpuHog(), options);
  ASSERT_FALSE(set.trials.empty());
  const auto input = inputFor(set.trials.front());
  EXPECT_EQ(input.record, &set.trials.front().record);
  EXPECT_EQ(input.discovered, &set.trials.front().discovered);
  EXPECT_EQ(input.topology, &set.trials.front().topology);
}

TEST(Runner, SnapshotsOnlyWhenRequested) {
  TrialOptions options;
  options.trials = 1;
  options.base_seed = 5;
  const auto without = generateTrials(rubisCpuHog(), options);
  ASSERT_FALSE(without.trials.empty());
  EXPECT_FALSE(without.trials.front().snapshot.has_value());
  options.keep_snapshots = true;
  const auto with = generateTrials(rubisCpuHog(), options);
  ASSERT_FALSE(with.trials.empty());
  EXPECT_TRUE(with.trials.front().snapshot.has_value());
}

TEST(Report, PrintCurvesProducesAlignedTable) {
  SchemeCurve curve;
  curve.scheme = "TestScheme";
  RocPoint point;
  point.threshold = 1.5;
  point.counts.tp = 3;
  point.counts.fn = 1;
  point.precision = point.counts.precision();
  point.recall = point.counts.recall();
  curve.points = {point};
  std::ostringstream out;
  printCurves(out, "demo", {curve}, 4);
  const std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("TestScheme"), std::string::npos);
  EXPECT_NE(text.find("0.750"), std::string::npos);

  std::ostringstream summary;
  printBestSummary(summary, "demo", {curve});
  EXPECT_NE(summary.str().find("P=1.000"), std::string::npos);
}

}  // namespace
}  // namespace fchain::eval
