// Tests for the observability layer (src/obs): span tracer and metric
// registry. The tracer tests use injected logical clocks so every timestamp
// in the output is deterministic — including a byte-exact golden for the
// Chrome trace JSON exporter.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fchain::obs {
namespace {

// ---------------------------------------------------------------------------
// Logical clocks. Tracer::ClockFn is a plain function pointer, so each test
// clock is a function over file-scope atomic state, reset per test.

std::atomic<std::uint64_t> g_tick{0};

std::uint64_t tickClock() {
  return g_tick.fetch_add(100, std::memory_order_relaxed);
}

void resetTickClock(std::uint64_t start = 0) {
  g_tick.store(start, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Tracer basics

TEST(Tracer, DisabledSpanRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span span(tracer, "should.not.appear");
    span.arg("n", 42);
  }
  tracer.recordSpan("also.not", 0, 10);
  EXPECT_TRUE(tracer.records().empty());
}

TEST(Tracer, RecordsCloseOrderWithDurations) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  {
    Span outer(tracer, "outer");  // opens at t=0
    {
      Span inner(tracer, "inner");  // opens at t=100, closes at t=200
    }
  }  // outer closes at t=300
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  // Close order: inner first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].start_us, 100u);
  EXPECT_EQ(records[0].dur_us, 100u);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].start_us, 0u);
  EXPECT_EQ(records[1].dur_us, 300u);
}

TEST(Tracer, NestingDepthTracksOpenSpans) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  {
    Span a(tracer, "a");
    {
      Span b(tracer, "b");
      { Span c(tracer, "c"); }
    }
    { Span d(tracer, "d"); }  // sibling of b: back to depth 1
  }
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].name, "c");
  EXPECT_EQ(records[0].depth, 2u);
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_EQ(records[2].name, "d");
  EXPECT_EQ(records[2].depth, 1u);
  EXPECT_EQ(records[3].name, "a");
  EXPECT_EQ(records[3].depth, 0u);
}

TEST(Tracer, ThreadIdsAssignedInFirstSpanOrderAndDistinct) {
  Tracer tracer;
  tracer.setEnabled(true);
  { Span main_span(tracer, "on.main"); }  // main thread claims tid 0
  // Serialize the workers so first-span order (and thus tid assignment) is
  // deterministic: worker i opens its first span before worker i+1 starts.
  for (int i = 0; i < 3; ++i) {
    std::thread worker([&tracer] {
      Span span(tracer, "on.worker");
      Span probe(tracer, "probe");
      (void)span;
      (void)probe;
    });
    worker.join();
  }
  const std::vector<SpanRecord> records = tracer.records();
  // main span + 2 spans per worker.
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].name, "on.main");
  EXPECT_EQ(records[0].tid, 0u);
  // Workers were serialized, so tids are 1, 2, 3 in spawn order. Each
  // worker's two spans share one tid.
  for (int i = 0; i < 3; ++i) {
    const SpanRecord& probe = records[static_cast<std::size_t>(1 + 2 * i)];
    const SpanRecord& span = records[static_cast<std::size_t>(2 + 2 * i)];
    EXPECT_EQ(span.tid, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(probe.tid, span.tid);
    EXPECT_EQ(span.depth, 0u);
    EXPECT_EQ(probe.depth, 1u);
  }
}

TEST(Tracer, TwoTracersKeepIndependentThreadState) {
  // A thread's tid/depth is per tracer: nesting in one tracer must not leak
  // depth into the other, and each tracer numbers threads from 0.
  Tracer a;
  Tracer b;
  a.setEnabled(true);
  b.setEnabled(true);
  {
    Span outer_a(a, "a.outer");
    Span only_b(b, "b.only");  // depth 0 in b even though a is nested
    Span inner_a(a, "a.inner");
  }
  ASSERT_EQ(a.records().size(), 2u);
  ASSERT_EQ(b.records().size(), 1u);
  EXPECT_EQ(a.records()[0].depth, 1u);  // a.inner
  EXPECT_EQ(b.records()[0].depth, 0u);  // b.only
  EXPECT_EQ(b.records()[0].tid, 0u);
}

TEST(Tracer, RecordSpanAttachesToCallingThreadDepth) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  {
    Span outer(tracer, "outer");
    tracer.recordSpan("measured", 5, 25, "k", 7);
  }
  const std::vector<SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "measured");
  EXPECT_EQ(records[0].start_us, 5u);
  EXPECT_EQ(records[0].dur_us, 20u);
  EXPECT_EQ(records[0].depth, 1u);  // inside "outer"
  ASSERT_NE(records[0].arg_name, nullptr);
  EXPECT_STREQ(records[0].arg_name, "k");
  EXPECT_EQ(records[0].arg_value, 7);
}

TEST(Tracer, NonMonotonicClockClampsDurationToZero) {
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.recordSpan("backwards", 100, 40);
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].dur_us, 0u);
}

TEST(Tracer, ClearDropsRecordsButKeepsThreadIds) {
  Tracer tracer;
  tracer.setEnabled(true);
  { Span span(tracer, "first"); }
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  { Span span(tracer, "second"); }
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].tid, 0u);
}

TEST(Tracer, StatsAggregateByNameSortedByTotal) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  { Span span(tracer, "small"); }        // dur 100
  { Span span(tracer, "big"); }          // dur 100
  tracer.recordSpan("big", 0, 900);      // dur 900 -> big total 1000
  const std::vector<SpanStats> stats = tracer.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "big");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].total_us, 1000u);
  EXPECT_EQ(stats[0].min_us, 100u);
  EXPECT_EQ(stats[0].max_us, 900u);
  EXPECT_EQ(stats[1].name, "small");
  EXPECT_EQ(stats[1].count, 1u);
}

TEST(Tracer, ConcurrentSpansFromManyThreadsAllRecorded) {
  // TSan coverage: hammer one tracer from several threads. Every span must
  // land exactly once and carry a tid < thread count.
  Tracer tracer;
  tracer.setEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer(tracer, "outer");
        Span inner(tracer, "inner");
        (void)outer;
        (void)inner;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> records = tracer.records();
  EXPECT_EQ(records.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  for (const SpanRecord& r : records) {
    EXPECT_LT(r.tid, static_cast<std::uint32_t>(kThreads));
    EXPECT_LT(r.depth, 2u);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace JSON golden (byte-exact under the logical clock)

TEST(Tracer, ChromeTraceJsonGolden) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  {
    Span outer(tracer, "outer");  // t=0
    outer.arg("n", 4);
    {
      Span inner(tracer, "inner");  // t=100..200
    }
  }  // t=300
  std::ostringstream out;
  tracer.writeChromeTrace(out);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"inner\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":100,"
      "\"dur\":100,\"args\":{\"depth\":1}},\n"
      "{\"name\":\"outer\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,"
      "\"dur\":300,\"args\":{\"depth\":0,\"n\":4}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Tracer, ChromeTraceEscapesSpanNames) {
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.recordSpan("quote\"back\\slash\nline", 0, 1);
  std::ostringstream out;
  tracer.writeChromeTrace(out);
  EXPECT_NE(out.str().find("\"quote\\\"back\\\\slash\\nline\""),
            std::string::npos);
}

TEST(Tracer, EmptyTraceIsStillValidJson) {
  Tracer tracer;
  std::ostringstream out;
  tracer.writeChromeTrace(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Tracer, SummaryListsEveryName) {
  resetTickClock();
  Tracer tracer;
  tracer.setEnabled(true);
  tracer.setClock(&tickClock);
  { Span span(tracer, "alpha"); }
  { Span span(tracer, "beta"); }
  std::ostringstream out;
  tracer.writeSummary(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("span"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics: counters and gauges

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  MetricRegistry registry;
  Counter& c = registry.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("c"), &c);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge& g = registry.gauge("g");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(0.25);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
}

TEST(Metrics, CrossKindNameReuseThrows) {
  MetricRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", {1.0}), std::invalid_argument);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_THROW(registry.counter("h"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
  // Same bounds: fine, same instrument.
  EXPECT_EQ(&registry.histogram("h", {1.0, 2.0}),
            &registry.histogram("h", {1.0, 2.0}));
}

// ---------------------------------------------------------------------------
// Histogram bucket edges (Prometheus "le" semantics: value <= bound lands
// in that bucket; above the last bound lands in the +inf overflow bucket)

TEST(Metrics, HistogramBucketEdges) {
  MetricRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1        -> bucket 0
  h.observe(1.0);    // == 1 (le)   -> bucket 0
  h.observe(1.0001); // just above  -> bucket 1
  h.observe(10.0);   // == 10       -> bucket 1
  h.observe(99.9);   //             -> bucket 2
  h.observe(100.0);  // == 100      -> bucket 2
  h.observe(100.5);  // overflow    -> +inf bucket
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5);
}

TEST(Metrics, HistogramRejectsUnsortedBounds) {
  MetricRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {2.0, 1.0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Snapshot-vs-concurrent-increment safety (TSan coverage)

TEST(Metrics, SnapshotWhileConcurrentlyIncrementing) {
  MetricRegistry registry;
  Counter& c = registry.counter("hits");
  Gauge& g = registry.gauge("level");
  Histogram& h = registry.histogram("obs", {10.0, 100.0});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = registry.snapshot();
      // Counter is monotone, so any snapshot value is a valid partial sum.
      EXPECT_LE(snap.counters.at("hits"),
                static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
      std::ostringstream out;
      registry.writeJson(out);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, &g, &h] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.add();
        g.add(1.0);
        h.observe(static_cast<double>(i % 128));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("hits"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(snap.gauges.at("level"),
                   static_cast<double>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.histograms.at("obs").count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Metrics, WriteJsonShape) {
  MetricRegistry registry;
  registry.counter("a").add(3);
  registry.gauge("b").set(1.5);
  registry.histogram("c", {1.0}).observe(0.5);
  std::ostringstream out;
  registry.writeJson(out);
  EXPECT_EQ(out.str(),
            "{\"counters\":{\"a\":3},\"gauges\":{\"b\":1.5},"
            "\"histograms\":{\"c\":{\"bounds\":[1],\"buckets\":[1,0],"
            "\"count\":1,\"sum\":0.5}}}\n");
}

}  // namespace
}  // namespace fchain::obs
