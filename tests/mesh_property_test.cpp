// Property suite for the microservice-mesh generator (sim/mesh.h): across
// 500 seeds and sizes in [50, 200], every generated mesh must be a DAG,
// respect the fan-out and depth bounds, reach every service from the entry
// tier, and regenerate byte-identically from its config. The retry-storm
// amplifier carries a provable bound — 1 + max_retries per edge — which the
// dynamic cases pin under a deliberately saturated data store, along with
// the calibration contract (a healthy mesh never violates its SLO).
#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/mesh.h"
#include "sim/simulator.h"

namespace fchain::sim {
namespace {

constexpr std::size_t kSeeds = 500;

/// Deterministic (seed -> size) spread covering [50, 200].
std::size_t servicesFor(std::uint64_t seed) {
  return 50 + static_cast<std::size_t>((seed * 7919) % 151);
}

/// Exact textual serialization: %a renders doubles bit-exactly, so two
/// specs serialize equal iff they are bit-identical.
std::string serialize(const ApplicationSpec& spec) {
  std::string out = spec.name + "\n";
  char buf[512];
  for (const ComponentSpec& c : spec.components) {
    std::snprintf(buf, sizeof buf, "c %s %a %a %a %a %a %a %a %a %a %a %a\n",
                  c.name.c_str(), c.cpu_capacity, c.cpu_demand, c.mem_base,
                  c.mem_limit, c.mem_per_queued, c.buffer_limit,
                  c.noise_level, c.net_in_per_unit, c.net_out_per_unit,
                  c.disk_read_per_unit, c.disk_capacity);
    out += buf;
  }
  for (const EdgeSpec& e : spec.edges) {
    std::snprintf(buf, sizeof buf, "e %u %u %a %a %a %d %a %a\n", e.from,
                  e.to, e.weight, e.cache_hit_ratio, e.cache_knee,
                  e.max_retries, e.retry_threshold, e.retry_backoff_sec);
    out += buf;
  }
  for (ComponentId id : spec.reference_path) {
    out += std::to_string(id) + " ";
  }
  return out;
}

struct Degrees {
  std::vector<std::size_t> in, out;
};

Degrees degreesOf(const ApplicationSpec& spec) {
  Degrees d;
  d.in.assign(spec.components.size(), 0);
  d.out.assign(spec.components.size(), 0);
  for (const EdgeSpec& e : spec.edges) {
    ++d.out[e.from];
    ++d.in[e.to];
  }
  return d;
}

TEST(MeshProperty, StructuralInvariantsAcross500Seeds) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const MeshConfig config = meshConfigFor(servicesFor(seed), seed);
    const ApplicationSpec spec = makeMicroMeshSpec(config);
    SCOPED_TRACE("seed " + std::to_string(seed) + " services " +
                 std::to_string(config.services));

    ASSERT_EQ(spec.components.size(), config.services);

    // Byte-determinism: regenerating from the same config is bit-identical.
    ASSERT_EQ(serialize(spec), serialize(makeMicroMeshSpec(config)));

    // No self-loops or duplicate edges; every endpoint in range.
    std::vector<std::vector<bool>> seen(
        spec.components.size(),
        std::vector<bool>(spec.components.size(), false));
    for (const EdgeSpec& e : spec.edges) {
      ASSERT_LT(e.from, spec.components.size());
      ASSERT_LT(e.to, spec.components.size());
      ASSERT_NE(e.from, e.to);
      ASSERT_FALSE(seen[e.from][e.to]) << "duplicate edge " << e.from
                                       << " -> " << e.to;
      seen[e.from][e.to] = true;
    }

    const Degrees deg = degreesOf(spec);

    // Acyclic (Kahn), and the longest path obeys the tier depth bound.
    std::vector<std::size_t> in_left = deg.in;
    std::vector<std::size_t> depth(spec.components.size(), 0);
    std::deque<ComponentId> frontier;
    for (ComponentId id = 0; id < spec.components.size(); ++id) {
      if (in_left[id] == 0) frontier.push_back(id);
    }
    std::size_t processed = 0;
    std::size_t max_depth = 0;
    while (!frontier.empty()) {
      const ComponentId id = frontier.front();
      frontier.pop_front();
      ++processed;
      max_depth = std::max(max_depth, depth[id]);
      for (const EdgeSpec& e : spec.edges) {
        if (e.from != id) continue;
        depth[e.to] = std::max(depth[e.to], depth[id] + 1);
        if (--in_left[e.to] == 0) frontier.push_back(e.to);
      }
    }
    ASSERT_EQ(processed, spec.components.size()) << "cycle detected";
    ASSERT_LE(max_depth, config.tiers - 1);

    // Fan-out bounds: sinks (the data tier) make no calls; everything else
    // calls at least one and at most max_fanout distinct services.
    for (ComponentId id = 0; id < spec.components.size(); ++id) {
      ASSERT_LE(deg.out[id], config.max_fanout);
      if (deg.out[id] == 0) {
        ASSERT_EQ(spec.components[id].name.rfind("db", 0), 0u)
            << "non-data-tier sink " << spec.components[id].name;
      }
    }

    // Reachability: BFS from the entry tier (the in-degree-0 services, all
    // of which must be gateways) covers every service.
    std::vector<bool> reached(spec.components.size(), false);
    std::deque<ComponentId> queue;
    for (ComponentId id = 0; id < spec.components.size(); ++id) {
      if (deg.in[id] == 0) {
        ASSERT_EQ(spec.components[id].name.rfind("gw", 0), 0u)
            << "orphan non-gateway " << spec.components[id].name;
        reached[id] = true;
        queue.push_back(id);
      }
    }
    while (!queue.empty()) {
      const ComponentId id = queue.front();
      queue.pop_front();
      for (const EdgeSpec& e : spec.edges) {
        if (e.from == id && !reached[e.to]) {
          reached[e.to] = true;
          queue.push_back(e.to);
        }
      }
    }
    for (ComponentId id = 0; id < spec.components.size(); ++id) {
      ASSERT_TRUE(reached[id])
          << spec.components[id].name << " unreachable from the entry tier";
    }

    // The reference path runs entry tier -> data tier.
    ASSERT_FALSE(spec.reference_path.empty());
    ASSERT_EQ(deg.in[spec.reference_path.front()], 0u);
    ASSERT_EQ(deg.out[spec.reference_path.back()], 0u);
  }
}

TEST(MeshProperty, DistinctSeedsProduceDistinctTopologies) {
  const std::size_t services = 120;
  const std::string a = serialize(makeMicroMeshSpec(meshConfigFor(services, 1)));
  const std::string b = serialize(makeMicroMeshSpec(meshConfigFor(services, 2)));
  EXPECT_NE(a, b);
}

TEST(MeshProperty, InfeasibleConfigsThrow) {
  MeshConfig too_few = meshConfigFor(120, 1);
  too_few.tiers = 60;  // cannot keep >= 2 services per middle tier
  EXPECT_THROW(makeMicroMeshSpec(too_few), std::invalid_argument);

  MeshConfig narrow = meshConfigFor(120, 1);
  narrow.max_fanout = 1;  // one parent cannot cover a wider next tier
  narrow.min_fanout = 1;
  EXPECT_THROW(makeMicroMeshSpec(narrow), std::invalid_argument);

  MeshConfig inverted = meshConfigFor(120, 1);
  inverted.min_fanout = 5;
  inverted.max_fanout = 3;
  EXPECT_THROW(makeMicroMeshSpec(inverted), std::invalid_argument);
}

/// Calibration contract: a healthy mesh (no faults) never violates its SLO
/// across the diurnal cycle, at several sizes and seeds.
TEST(MeshProperty, HealthyMeshStaysWithinSlo) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    ScenarioConfig config;
    config.kind = AppKind::Mesh;
    config.mesh = meshConfigFor(servicesFor(seed), seed);
    config.seed = seed;
    config.duration_sec = 2400;
    Simulation sim(config);
    sim.runUntil(static_cast<TimeSec>(config.duration_sec));
    EXPECT_FALSE(sim.violationTime().has_value())
        << "healthy mesh" << config.mesh.services << " seed " << seed
        << " violated its SLO";
  }
}

/// The retry-storm amplifier is provably bounded: per-edge call volume is
/// multiplied by at most 1 + max_retries, even with the data store saturated
/// hard enough to trip the SLO. Traffic stays finite (no runaway feedback).
TEST(MeshProperty, RetryStormAmplificationIsBounded) {
  for (const std::uint64_t seed : {7ull, 101ull, 303ull}) {
    const std::size_t services = servicesFor(seed);
    ScenarioConfig config;
    config.kind = AppKind::Mesh;
    config.mesh = meshConfigFor(services, seed);
    config.seed = seed;
    config.duration_sec = 2200;
    const ApplicationSpec spec = makeMicroMeshSpec(config.mesh);
    faults::FaultSpec fault;
    fault.type = faults::FaultType::Bottleneck;
    fault.targets = {spec.reference_path.back()};
    fault.start_time = 1300;
    fault.intensity = 1.8;  // deliberately past the SLO calibration point
    config.faults = {fault};

    Simulation sim(config);
    const double bound =
        1.0 + static_cast<double>(config.mesh.max_retries) + 1e-12;
    double max_factor = 0.0;
    bool saw_amplification = false;
    for (TimeSec t = 0; t < static_cast<TimeSec>(config.duration_sec); ++t) {
      sim.step();
      for (const double factor : sim.app().edgeRetryFactors()) {
        ASSERT_TRUE(std::isfinite(factor));
        ASSERT_GE(factor, 1.0);
        ASSERT_LE(factor, bound);
        max_factor = std::max(max_factor, factor);
        if (factor > 1.0) saw_amplification = true;
      }
      for (const double units : sim.app().edgeTraffic()) {
        ASSERT_TRUE(std::isfinite(units));
      }
    }
    EXPECT_TRUE(saw_amplification)
        << "saturating the data store never engaged the retry amplifier "
        << "(seed " << seed << ")";
    EXPECT_LE(max_factor, bound);
  }
}

}  // namespace
}  // namespace fchain::sim
