// Online-vs-offline equivalence, pinned to the checked-in goldens.
//
// The OnlineMonitor's headline guarantee is that auto-triggered localization
// is *bit-identical* to the offline pipeline run over the equivalent
// recorded window: streaming one sample per component per second into the
// slaves and firing at the SLO latch must reproduce, byte for byte, what
// golden_localization_test.cpp produces by batch-ingesting the finished run
// and calling localize() by hand. These tests stream the exact scenarios
// behind tests/golden/single_fault.golden and concurrent_fault.golden and
// compare the auto-triggered PinpointResult against
//   (a) the golden bytes on disk (never regenerated here — regeneration
//       goes through test_golden_localization, the offline reference), and
//   (b) a fresh core::localizeRecord over the record the stream produced.
// A mismatch in (a) means online triggering changed behavior; a mismatch in
// (b) alone would mean the golden itself is stale.
#include <array>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "online/monitor.h"
#include "pinpoint_render.h"
#include "sim/apps.h"
#include "sim/stream.h"

namespace fchain::online {
namespace {

sim::ScenarioConfig rubisScenario(const std::vector<faults::FaultSpec>& faults,
                                  std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  config.faults = faults;
  return config;
}

faults::FaultSpec cpuHogOnDb() {
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  return fault;
}

faults::FaultSpec offloadBugOnAppTiers() {
  faults::FaultSpec fault;
  fault.type = faults::FaultType::OffloadBug;
  fault.targets = {1, 2};
  fault.start_time = 2000;
  return fault;
}

/// Pass 1: the dependency graph the online master must hold *before* the
/// incident. Discovery is deterministic on the record, so discovering from
/// an offline run of the same scenario equals discovering at the latch tick
/// of the stream (which is exactly what the offline golden flow does).
struct OfflineReference {
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

OfflineReference runOffline(const sim::ScenarioConfig& config) {
  OfflineReference ref;
  sim::Simulation sim(config);
  while (!sim.violationTime().has_value() && sim.now() < 3600) sim.step();
  EXPECT_TRUE(sim.violationTime().has_value());
  ref.tv = sim.violationTime().value_or(sim.now());
  ref.deps = netdep::discoverDependencies(sim.record());
  return ref;
}

std::string readGolden(const std::string& name) {
  const std::string path = std::string(FCHAIN_GOLDEN_DIR) + "/" + name +
                           ".golden";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden " << path
                         << " (generate via test_golden_localization with "
                            "FCHAIN_UPDATE_GOLDEN=1)";
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Pass 2: stream the same scenario into an OnlineMonitor and let the SLO
/// latch trigger localization; returns the rendered result plus the record
/// for the independent localizeRecord cross-check.
struct OnlineRun {
  OnlineIncident incident;
  sim::RunRecord record;
};

OnlineRun runOnline(const sim::ScenarioConfig& config,
                    const netdep::DependencyGraph& deps, int worker_threads) {
  core::FChainSlave front(0);
  core::FChainSlave back(1);
  front.addComponent(0, 0);
  front.addComponent(1, 0);
  back.addComponent(2, 0);
  back.addComponent(3, 0);

  OnlineMonitorConfig monitor_config;
  monitor_config.worker_threads = worker_threads;
  OnlineMonitor monitor(monitor_config);
  monitor.addSlave(&front);
  monitor.addSlave(&back);
  monitor.setDependencies(deps);
  if (worker_threads > 0) {
    // Exercise the PR-4 supervision path too: a generous watchdog must not
    // perturb the result (nothing trips, nothing is sacrificed).
    runtime::WatchdogConfig watchdog;
    watchdog.call_timeout_ms = 60'000;
    watchdog.localize_deadline_ms = 300'000;
    monitor.setWatchdog(watchdog);
  }

  AppSpec app;
  app.name = "rubis";
  app.components = {0, 1, 2, 3};
  app.slo.kind = SloSpec::Kind::Latency;
  app.slo.latency_threshold_sec = sim::sloLatencyThreshold(config.kind);
  app.slo.sustain_sec = config.slo_sustain_sec;
  const std::size_t app_index = monitor.addApplication(app);

  sim::StreamingSource source(config);
  while (monitor.incidents().empty() && source.now() < 3600) {
    const sim::StreamTick tick = source.step(
        [&](const sim::StreamSample& sample) { monitor.ingest(sample); });
    monitor.observe(app_index, tick);
    monitor.pump();
  }
  EXPECT_EQ(monitor.incidents().size(), 1u);
  OnlineRun run;
  if (!monitor.incidents().empty()) run.incident = monitor.incidents().front();
  run.record = source.record();
  return run;
}

void expectOnlineMatchesGolden(const sim::ScenarioConfig& config,
                               const std::string& golden_name,
                               int worker_threads = 0) {
  const OfflineReference ref = runOffline(config);
  const OnlineRun run = runOnline(config, ref.deps, worker_threads);

  // The latch the monitor saw is the violation the simulator recorded.
  EXPECT_EQ(run.incident.violation_time, ref.tv);
  EXPECT_EQ(run.incident.triggered_at, ref.tv);
  EXPECT_EQ(run.incident.queued_delay_sec, 0);
  ASSERT_TRUE(run.record.violation_time.has_value());
  EXPECT_EQ(*run.record.violation_time, ref.tv);

  const std::string online_text =
      core::renderPinpoint(run.incident.result, run.incident.violation_time);

  // (a) byte-for-byte against the checked-in offline golden;
  EXPECT_EQ(online_text, readGolden(golden_name))
      << "auto-triggered localization diverged from the offline golden "
      << golden_name;

  // (b) byte-for-byte against a fresh offline run over the streamed record.
  const core::PinpointResult offline =
      core::localizeRecord(run.record, &ref.deps);
  EXPECT_EQ(online_text, core::renderPinpoint(offline, ref.tv));
  EXPECT_DOUBLE_EQ(run.incident.result.coverage, offline.coverage);
}

TEST(OnlineVsOffline, SingleFaultMatchesGolden) {
  expectOnlineMatchesGolden(rubisScenario({cpuHogOnDb()}, /*seed=*/77),
                            "single_fault");
}

TEST(OnlineVsOffline, ConcurrentFaultMatchesGolden) {
  expectOnlineMatchesGolden(rubisScenario({offloadBugOnAppTiers()},
                                          /*seed=*/77),
                            "concurrent_fault");
}

TEST(OnlineVsOffline, ParallelFanOutUnderWatchdogMatchesGolden) {
  expectOnlineMatchesGolden(rubisScenario({cpuHogOnDb()}, /*seed=*/77),
                            "single_fault", /*worker_threads=*/4);
}

}  // namespace
}  // namespace fchain::online
