// Capstone integration test: every fault case of the paper's evaluation
// must stay above a per-case accuracy floor, and the external-factor cases
// must usually be classified as external. Uses fewer trials than the
// benches (this is a regression tripwire, not the measurement).
#include <gtest/gtest.h>

#include "baselines/fchain_scheme.h"
#include "eval/runner.h"
#include "fchain/fchain.h"

namespace fchain {
namespace {

struct CaseFloor {
  const char* label;
  double min_f1;
};

class PaperCase : public ::testing::TestWithParam<CaseFloor> {};

TEST_P(PaperCase, FChainF1StaysAboveFloor) {
  const auto [label, min_f1] = GetParam();
  eval::FaultCase chosen;
  bool found = false;
  for (const auto& fault_case : eval::allPaperCases()) {
    if (fault_case.label == label) {
      chosen = fault_case;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << label;

  eval::TrialOptions options;
  options.trials = 6;
  options.base_seed = 42;
  const auto set = eval::generateTrials(chosen, options);
  ASSERT_GE(set.trials.size(), 3u)
      << "too few SLO violations for " << label;

  baselines::FChainScheme scheme(chosen.fchain_config);
  eval::Counts counts;
  for (const auto& trial : set.trials) {
    counts.accumulate(
        scheme.localize(eval::inputFor(trial), scheme.defaultThreshold()),
        trial.record.ground_truth);
  }
  EXPECT_GE(counts.f1(), min_f1)
      << label << ": P=" << counts.precision() << " R=" << counts.recall();
}

// Floors are deliberately looser than the measured values (see
// EXPERIMENTS.md) so that benign seed-to-seed variation does not flake;
// Bottleneck's floor reflects its paper-documented concurrent-fault
// confusion (validation, tested elsewhere, cleans it up).
INSTANTIATE_TEST_SUITE_P(
    AllFaults, PaperCase,
    ::testing::Values(CaseFloor{"RUBiS/MemLeak", 0.8},
                      CaseFloor{"RUBiS/CpuHog", 0.7},
                      CaseFloor{"RUBiS/NetHog", 0.8},
                      CaseFloor{"RUBiS/OffloadBug", 0.8},
                      CaseFloor{"RUBiS/LBBug", 0.5},
                      CaseFloor{"SystemS/MemLeak", 0.8},
                      CaseFloor{"SystemS/CpuHog", 0.8},
                      CaseFloor{"SystemS/Bottleneck", 0.35},
                      CaseFloor{"SystemS/ConcMemLeak", 0.8},
                      CaseFloor{"SystemS/ConcCpuHog", 0.6},
                      CaseFloor{"Hadoop/ConcMemLeak", 0.85},
                      CaseFloor{"Hadoop/ConcCpuHog", 0.85},
                      CaseFloor{"Hadoop/ConcDiskHog", 0.7}),
    [](const ::testing::TestParamInfo<CaseFloor>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '/' ) c = '_';
      }
      return name;
    });

TEST(ExternalFactors, SurgeIsMostlyClassifiedExternal) {
  eval::TrialOptions options;
  options.trials = 5;
  options.base_seed = 42;
  const auto set = eval::generateTrials(eval::rubisWorkloadSurge(), options);
  ASSERT_GE(set.trials.size(), 3u);
  std::size_t external = 0;
  for (const auto& trial : set.trials) {
    const auto verdict =
        core::localizeRecord(trial.record, &trial.discovered, {});
    if (verdict.external_factor) {
      ++external;
      EXPECT_EQ(verdict.external_trend, Trend::Up);
    }
  }
  EXPECT_GE(external * 2, set.trials.size());  // majority of trials
}

TEST(Validation, BottleneckFalseAlarmsAreRemoved) {
  eval::TrialOptions options;
  options.trials = 5;
  options.base_seed = 42;
  options.keep_snapshots = true;
  const auto set = eval::generateTrials(eval::systemsBottleneck(), options);
  ASSERT_GE(set.trials.size(), 2u);

  core::OnlineValidator validator;
  eval::Counts raw, validated;
  for (const auto& trial : set.trials) {
    const auto result =
        core::localizeRecord(trial.record, &trial.discovered, {});
    raw.accumulate(result.pinpointed, trial.record.ground_truth);
    auto confirmed = result.pinpointed;
    if (!result.pinpointed.empty()) {
      confirmed = validator.validate(*trial.snapshot, result);
    }
    validated.accumulate(confirmed, trial.record.ground_truth);
  }
  EXPECT_GE(validated.precision(), raw.precision());
  EXPECT_GE(validated.precision(), 0.9);
  // Validation must not gut recall (paper: recall unchanged).
  EXPECT_GE(validated.recall() + 0.2, raw.recall());
}

}  // namespace
}  // namespace fchain
