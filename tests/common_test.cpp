// Unit tests for common/: time series, statistics, histograms, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time_series.h"
#include "common/types.h"

namespace fchain {
namespace {

// ---------------------------------------------------------------- types ---

TEST(Types, MetricNamesRoundTrip) {
  for (MetricKind kind : kAllMetrics) {
    EXPECT_EQ(metricFromName(metricName(kind)), kind);
  }
}

TEST(Types, UnknownMetricNameThrows) {
  EXPECT_THROW(metricFromName("bogus"), std::invalid_argument);
}

TEST(Types, MetricIndexIsDense) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    EXPECT_EQ(metricIndex(kAllMetrics[i]), i);
  }
}

// ----------------------------------------------------------- TimeSeries ---

TEST(TimeSeries, AppendAndAt) {
  TimeSeries ts(100);
  ts.append(1.0);
  ts.append(2.0);
  EXPECT_EQ(ts.startTime(), 100);
  EXPECT_EQ(ts.endTime(), 102);
  EXPECT_TRUE(ts.contains(101));
  EXPECT_FALSE(ts.contains(102));
  EXPECT_FALSE(ts.contains(99));
  EXPECT_DOUBLE_EQ(ts.at(100), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(101), 2.0);
}

TEST(TimeSeries, WindowClampsToAvailableRange) {
  TimeSeries ts(10);
  for (int i = 0; i < 5; ++i) ts.append(i);
  const auto full = ts.window(0, 100);
  ASSERT_EQ(full.size(), 5u);
  EXPECT_DOUBLE_EQ(full[0], 0.0);
  const auto mid = ts.window(11, 13);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_TRUE(ts.window(14, 12).empty());
  EXPECT_TRUE(ts.window(100, 200).empty());
}

TEST(TimeSeries, WindowCopyMatchesWindow) {
  TimeSeries ts(0);
  for (int i = 0; i < 10; ++i) ts.append(i * i);
  const auto copy = ts.windowCopy(3, 7);
  const auto view = ts.window(3, 7);
  ASSERT_EQ(copy.size(), view.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_DOUBLE_EQ(copy[i], view[i]);
  }
}

TEST(TimeSeries, TrimFrontAdvancesStart) {
  TimeSeries ts(0);
  for (int i = 0; i < 10; ++i) ts.append(i);
  ts.trimFront(4);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.startTime(), 6);
  EXPECT_DOUBLE_EQ(ts.at(6), 6.0);
  ts.trimFront(10);  // no-op when already smaller
  EXPECT_EQ(ts.size(), 4u);
}

TEST(MetricSeries, AppendsAllMetricsTogether) {
  MetricSeries ms(5);
  std::array<double, kMetricCount> sample{1, 2, 3, 4, 5, 6};
  ms.append(sample);
  EXPECT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms.endTime(), 6);
  EXPECT_DOUBLE_EQ(ms.of(MetricKind::CpuUsage).at(5), 1.0);
  EXPECT_DOUBLE_EQ(ms.of(MetricKind::DiskWrite).at(5), 6.0);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Stats, MedianAbsDeviationRobustToOutlier) {
  std::vector<double> xs{1, 1, 1, 1, 1, 1, 1, 1000};
  EXPECT_DOUBLE_EQ(medianAbsDeviation(xs), 0.0);
  xs = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_DOUBLE_EQ(medianAbsDeviation(xs), 2.0);
}

TEST(Stats, SlopeOfLinearSeriesIsExact) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(3.5 * i + 7.0);
  EXPECT_NEAR(slope(xs), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(slope(std::vector<double>{1.0}), 0.0);
  EXPECT_NEAR(slope(std::vector<double>(20, 4.2)), 0.0, 1e-12);
}

TEST(Stats, HistogramCountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);  // clamps into first bucket
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.totalCount(), 4u);
  double total = 0.0;
  for (std::size_t i = 0; i < h.binCount(); ++i) total += h.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Stats, KlDivergenceProperties) {
  Histogram p(0, 1, 10);
  Histogram q(0, 1, 10);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    p.add(x);
    q.add(x);
  }
  EXPECT_NEAR(klDivergence(p, q), 0.0, 1e-9);

  Histogram r(0, 1, 10);
  for (int i = 0; i < 1000; ++i) r.add(0.05);  // concentrated
  EXPECT_GT(klDivergence(r, q), 0.5);

  Histogram wrong(0, 1, 5);
  EXPECT_THROW(klDivergence(p, wrong), std::invalid_argument);
}

TEST(Stats, PearsonCorrelation) {
  std::vector<double> xs, ys, zs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0);
    zs.push_back(-3.0 * i);
  }
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(xs, std::vector<double>(100, 5.0)), 0.0);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_equal = all_equal && va == b.next();
    any_diff_seed_diff = any_diff_seed_diff || va != c.next();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(9);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) ++counts[rng.below(7)];
  for (int count : counts) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, IntInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.intIn(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, ExponentialAndParetoArePositive) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.exponential(2.0), 0.0);
    EXPECT_GE(rng.pareto(1.0, 1.5), 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng b(42);
  b.next();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, MixSeedIsStableAndSensitive) {
  EXPECT_EQ(mixSeed(1, 2, 3), mixSeed(1, 2, 3));
  EXPECT_NE(mixSeed(1, 2, 3), mixSeed(1, 2, 4));
  EXPECT_NE(mixSeed(1, 2, 3), mixSeed(2, 2, 3));
}

}  // namespace
}  // namespace fchain
