// Golden-trace regression tests for end-to-end localization: three
// canonical incidents (single fault, concurrent fault, degraded mode with
// one slave dark) are simulated, ingested, and localized, and the full
// PinpointResult — onset times, chain order, coverage, unanalyzed set — is
// rendered to text and compared byte-for-byte against checked-in golden
// files in tests/golden/.
//
// The rendering deliberately excludes raw prediction-error doubles: onsets,
// change points, trends, and the pinpointed/unanalyzed sets are integer
// results of the deterministic simulation + analysis pipeline and stable
// across platforms, while 17-digit doubles would make the golden brittle
// under legitimate FP-contraction differences.
//
// To regenerate after an intentional behavior change:
//   FCHAIN_UPDATE_GOLDEN=1 ./build/tests/test_golden_localization
// then review the diff like any other code change.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "pinpoint_render.h"
#include "runtime/flaky_endpoint.h"
#include "sim/simulator.h"

namespace fchain::core {
namespace {

// --- Incident construction ------------------------------------------------

/// Simulated four-tier RUBiS cluster ingested into two slaves (front hosts
/// {web=0, app1=1}, back hosts {app2=2, db=3}), mirroring the deployment
/// used across the master/slave tests.
struct Incident {
  std::unique_ptr<FChainSlave> front;
  std::unique_ptr<FChainSlave> back;
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
};

Incident makeIncident(const std::vector<faults::FaultSpec>& faults,
                      std::uint64_t seed) {
  Incident incident;
  incident.front = std::make_unique<FChainSlave>(0);
  incident.back = std::make_unique<FChainSlave>(1);
  incident.front->addComponent(0, 0);
  incident.front->addComponent(1, 0);
  incident.back->addComponent(2, 0);
  incident.back->addComponent(3, 0);

  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  config.faults = faults;
  sim::Simulation sim(config);
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < 4; ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      (id < 2 ? *incident.front : *incident.back).ingest(id, sample);
    }
  }
  EXPECT_TRUE(sim.violationTime().has_value());
  incident.tv = sim.violationTime().value_or(sim.now());
  incident.deps = netdep::discoverDependencies(sim.record());
  return incident;
}

faults::FaultSpec cpuHogOnDb() {
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  return fault;
}

// --- Golden comparison ----------------------------------------------------

std::string goldenPath(const std::string& name) {
  return std::string(FCHAIN_GOLDEN_DIR) + "/" + name + ".golden";
}

void expectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  const char* update = std::getenv("FCHAIN_UPDATE_GOLDEN");
  if (update != nullptr && update[0] != '\0' &&
      !(update[0] == '0' && update[1] == '\0')) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated golden " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with FCHAIN_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "localization output diverged from " << path
      << "; if the change is intentional, regenerate with "
         "FCHAIN_UPDATE_GOLDEN=1 and review the diff";
}

// --- Scenarios ------------------------------------------------------------

TEST(GoldenLocalization, SingleFault) {
  // The canonical RUBiS CpuHog incident: a multi-threaded hog on the db VM.
  Incident incident = makeIncident({cpuHogOnDb()}, /*seed=*/77);
  FChainMaster master;
  master.registerSlave(incident.front.get());
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  const PinpointResult result =
      master.localize({0, 1, 2, 3}, incident.tv);
  // Sanity before pinning: the hog's VM must be blamed with full coverage.
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{3}));
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  expectMatchesGolden("single_fault", renderPinpoint(result, incident.tv));
}

TEST(GoldenLocalization, ConcurrentFault) {
  // OffloadBug hits both app tiers at once (one FaultSpec, two targets) —
  // the integrated pinpointing must blame both via the concurrency window.
  faults::FaultSpec fault;
  fault.type = faults::FaultType::OffloadBug;
  fault.targets = {1, 2};
  fault.start_time = 2000;
  Incident incident = makeIncident({fault}, /*seed=*/77);
  FChainMaster master;
  master.registerSlave(incident.front.get());
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  const PinpointResult result =
      master.localize({0, 1, 2, 3}, incident.tv);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  expectMatchesGolden("concurrent_fault",
                      renderPinpoint(result, incident.tv));
}

TEST(GoldenLocalization, DegradedOneSlaveDown) {
  // Same CpuHog incident, but the front slave (web + app1) is dark for the
  // whole run: localization proceeds on half the cluster and must report
  // the reduced coverage and the unanalyzed components — and still blame
  // the db from what it can see.
  Incident incident = makeIncident({cpuHogOnDb()}, /*seed=*/77);
  FChainMaster master;
  runtime::FlakyConfig outage;
  outage.outage_windows = {{0, 1'000'000}};
  master.registerEndpoint(
      std::make_shared<runtime::FlakyEndpoint>(
          std::make_shared<runtime::LocalEndpoint>(incident.front.get()),
          outage),
      {0, 1});
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  const PinpointResult result =
      master.localize({0, 1, 2, 3}, incident.tv);
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{0, 1}));
  expectMatchesGolden("degraded_one_slave_down",
                      renderPinpoint(result, incident.tv));
}

/// The goldens pin the serial reference path; the determinism guarantee
/// (parallel == serial bit-identically) is tested exhaustively in
/// fchain_parallel_test.cpp. This spot-check ties the two suites together:
/// the parallel fan-out renders to the same golden bytes.
TEST(GoldenLocalization, ParallelFanOutMatchesSameGolden) {
  Incident incident = makeIncident({cpuHogOnDb()}, /*seed=*/77);
  FChainMaster master;
  master.setWorkerThreads(4);
  master.registerSlave(incident.front.get());
  master.registerSlave(incident.back.get());
  master.setDependencies(incident.deps);
  const PinpointResult result =
      master.localize({0, 1, 2, 3}, incident.tv);
  expectMatchesGolden("single_fault", renderPinpoint(result, incident.tv));
}

}  // namespace
}  // namespace fchain::core
