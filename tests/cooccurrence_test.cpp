// Tests for Sherlock-style co-occurrence dependency inference.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "netdep/cooccurrence.h"

namespace fchain::netdep {
namespace {

/// Synthesizes a request chain 0 -> 1 -> 2: each front-end flow triggers a
/// back-end flow `delay` seconds later. Component 3 emits independent flows.
std::vector<FlowEvent> chainTrace(std::size_t requests, double delay,
                                  std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<FlowEvent> trace;
  double t = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    t += rng.uniform(1.0, 2.0);  // well-separated requests
    trace.push_back({0, 1, t, 0.05});
    trace.push_back({1, 2, t + delay, 0.05});
    trace.push_back({3, 1, t + rng.uniform(0.0, 1.0), 0.05});  // unrelated
  }
  return trace;
}

TEST(CoOccurrence, DetectsTheCausalChain) {
  const auto trace = chainTrace(200, 0.1);
  const auto stats = coOccurrenceStatistics(4, trace);
  bool found = false;
  for (const auto& edge : stats) {
    if (edge.parent_from == 0 && edge.middle == 1 && edge.child_to == 2) {
      found = true;
      EXPECT_GT(edge.probability, 0.9);
      EXPECT_GE(edge.samples, 50u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CoOccurrence, SlowChildFallsOutOfTheWindow) {
  const auto trace = chainTrace(200, /*delay=*/0.9);  // > 0.5 s window
  const auto stats = coOccurrenceStatistics(4, trace);
  for (const auto& edge : stats) {
    if (edge.parent_from == 0 && edge.middle == 1 && edge.child_to == 2) {
      EXPECT_LT(edge.probability, 0.3);
    }
  }
}

TEST(CoOccurrence, GraphContainsDirectAndInferredEdges) {
  const auto trace = chainTrace(200, 0.1);
  const auto graph = inferCoOccurrence(4, trace);
  EXPECT_TRUE(graph.hasEdge(0, 1));  // directly observed
  EXPECT_TRUE(graph.hasEdge(1, 2));  // causally inferred
  EXPECT_TRUE(graph.reaches(0, 2));
}

TEST(CoOccurrence, ReplyPathIsNotADependency) {
  // 0 -> 1 flows followed by 1 -> 0 replies must not create a 1 -> 0
  // "dependency".
  Rng rng(2);
  std::vector<FlowEvent> trace;
  double t = 0.0;
  for (int i = 0; i < 150; ++i) {
    t += rng.uniform(1.0, 2.0);
    trace.push_back({0, 1, t, 0.05});
    trace.push_back({1, 0, t + 0.08, 0.05});
  }
  const auto stats = coOccurrenceStatistics(2, trace);
  for (const auto& edge : stats) {
    EXPECT_FALSE(edge.middle == 1 && edge.child_to == 0);
  }
}

TEST(CoOccurrence, TooFewSamplesYieldNoInference) {
  const auto trace = chainTrace(20, 0.1);  // below min_samples
  const auto graph = inferCoOccurrence(4, trace);
  EXPECT_FALSE(graph.hasEdge(1, 2));
}

TEST(CoOccurrence, StreamingTraceYieldsNothing) {
  // Gap-free coverage: one endless flow per edge, no start events to
  // correlate — the paper's System S negative result again.
  std::vector<FlowEvent> trace;
  for (int t = 0; t < 500; ++t) {
    trace.push_back({0, 1, static_cast<double>(t), 1.0});
    trace.push_back({1, 2, static_cast<double>(t), 1.0});
  }
  const auto stats = coOccurrenceStatistics(3, trace);
  for (const auto& edge : stats) {
    EXPECT_LT(edge.samples, 50u);
  }
  EXPECT_TRUE(inferCoOccurrence(3, trace).empty());
}

TEST(CoOccurrence, IndependentServicesStayIndependent) {
  // Two separate chains driven by uncorrelated arrival processes.
  Rng rng(3);
  std::vector<FlowEvent> trace;
  double t1 = 0.0, t2 = 0.5;
  for (int i = 0; i < 200; ++i) {
    t1 += rng.uniform(1.0, 3.0);
    t2 += rng.uniform(1.0, 3.0);
    trace.push_back({0, 1, t1, 0.05});
    trace.push_back({2, 3, t2, 0.05});
  }
  const auto stats = coOccurrenceStatistics(4, trace);
  // No pair shares a middle component, so no co-occurrence edge can form.
  EXPECT_TRUE(stats.empty());
}

}  // namespace
}  // namespace fchain::netdep
