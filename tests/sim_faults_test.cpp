// Tests for the fault injector: every fault type must flip exactly the
// knobs it models, at exactly its start time.
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "sim/apps.h"
#include "sim/injector.h"

namespace fchain::sim {
namespace {

Application rubis() {
  Rng rng(1);
  return makeApplication(AppKind::Rubis, 600, rng);
}

faults::FaultSpec spec(faults::FaultType type,
                       std::vector<ComponentId> targets, TimeSec start,
                       double intensity = 1.0) {
  faults::FaultSpec fault;
  fault.type = type;
  fault.targets = std::move(targets);
  fault.start_time = start;
  fault.intensity = intensity;
  return fault;
}

TEST(Injector, FiresExactlyAtStartTime) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {3}, 5)});
  injector.apply(app, 4);
  EXPECT_DOUBLE_EQ(app.faultStateOf(3).leak_rate_mb_s, 0.0);
  injector.apply(app, 5);
  EXPECT_GT(app.faultStateOf(3).leak_rate_mb_s, 0.0);
}

TEST(Injector, FiresOnlyOnce) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {3}, 5)});
  injector.apply(app, 5);
  const double rate = app.faultStateOf(3).leak_rate_mb_s;
  app.faultStateOf(3).leak_rate_mb_s = 0.0;  // operator "fixed" it
  injector.apply(app, 5);                    // same tick replayed
  EXPECT_DOUBLE_EQ(app.faultStateOf(3).leak_rate_mb_s, 0.0);
  EXPECT_GT(rate, 0.0);
}

TEST(Injector, CpuHogSetsFairShare) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::CpuHog, {3}, 0, 1.35)});
  injector.apply(app, 0);
  EXPECT_NEAR(app.faultStateOf(3).hog_share, 0.675, 1e-9);
}

TEST(Injector, CpuHogShareIsCapped) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::CpuHog, {3}, 0, 10.0)});
  injector.apply(app, 0);
  EXPECT_LE(app.faultStateOf(3).hog_share, 0.9);
}

TEST(Injector, InfiniteLoopFlagsTheTask) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::InfiniteLoop, {1}, 0)});
  injector.apply(app, 0);
  EXPECT_TRUE(app.faultStateOf(1).infinite_loop);
  EXPECT_FALSE(app.faultStateOf(2).infinite_loop);
}

TEST(Injector, NetHogRampsTowardTarget) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::NetHog, {0}, 0)});
  injector.apply(app, 0);
  const auto& fault = app.faultStateOf(0);
  EXPECT_GT(fault.extra_net_in_target, 0.0);
  EXPECT_GT(fault.extra_net_in_ramp, 0.0);
  EXPECT_DOUBLE_EQ(fault.extra_net_in_kbs, 0.0);  // ramps in step()
  app.step();
  EXPECT_GT(app.faultStateOf(0).extra_net_in_kbs, 0.0);
  EXPECT_LE(app.faultStateOf(0).extra_net_in_kbs,
            app.faultStateOf(0).extra_net_in_target);
}

TEST(Injector, DiskHogStartsWithADentAndRamps) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::DiskHog, {3}, 0)});
  injector.apply(app, 0);
  const double initial = app.faultStateOf(3).disk_contention;
  EXPECT_GT(initial, 0.3);
  app.step();
  app.step();
  EXPECT_GT(app.faultStateOf(3).disk_contention, initial);
  EXPECT_LE(app.faultStateOf(3).disk_contention,
            app.faultStateOf(3).disk_contention_target);
}

TEST(Injector, BottleneckCapsScaleWithIntensity) {
  Application weak = rubis();
  FaultInjector({spec(faults::FaultType::Bottleneck, {2}, 0, 1.0)})
      .apply(weak, 0);
  Application strong = rubis();
  FaultInjector({spec(faults::FaultType::Bottleneck, {2}, 0, 2.0)})
      .apply(strong, 0);
  EXPECT_LT(strong.faultStateOf(2).cpu_cap_factor,
            weak.faultStateOf(2).cpu_cap_factor);
  EXPECT_GE(strong.faultStateOf(2).cpu_cap_factor, 0.06);
}

TEST(Injector, OffloadBugRoutesEverythingToTargetA) {
  Application app = rubis();
  FaultInjector injector(
      {spec(faults::FaultType::OffloadBug, {1, 2}, 0)});
  injector.apply(app, 0);
  double to_app1 = 0.0, to_app2 = 0.0;
  for (const auto& edge : app.spec().edges) {
    if (edge.from == 0 && edge.to == 1) to_app1 = edge.weight;
    if (edge.from == 0 && edge.to == 2) to_app2 = edge.weight;
  }
  EXPECT_DOUBLE_EQ(to_app1, 1.0);
  EXPECT_DOUBLE_EQ(to_app2, 0.0);
}

TEST(Injector, LBBugSkewsTheSplit) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::LBBug, {1, 2}, 0)});
  injector.apply(app, 0);
  double to_app1 = 0.0, to_app2 = 0.0;
  for (const auto& edge : app.spec().edges) {
    if (edge.from == 0 && edge.to == 1) to_app1 = edge.weight;
    if (edge.from == 0 && edge.to == 2) to_app2 = edge.weight;
  }
  EXPECT_NEAR(to_app1 + to_app2, 1.0, 1e-9);  // total preserved
  EXPECT_GT(to_app1, 0.9);
  EXPECT_GT(to_app2, 0.0);
}

TEST(Injector, LoadBalanceBugNeedsTwoTargets) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::LBBug, {1}, 0)});
  EXPECT_THROW(injector.apply(app, 0), std::invalid_argument);
}

TEST(Injector, LoadBalanceBugNeedsACommonUpstream) {
  Application app = rubis();
  // web(0) and db(3) share no common upstream.
  FaultInjector injector({spec(faults::FaultType::OffloadBug, {0, 3}, 0)});
  EXPECT_THROW(injector.apply(app, 0), std::invalid_argument);
}

TEST(Injector, SharedSlowdownHitsEveryComponent) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::SharedSlowdown, {}, 0)});
  injector.apply(app, 0);
  for (ComponentId id = 0; id < app.componentCount(); ++id) {
    EXPECT_GT(app.faultStateOf(id).disk_contention, 0.5) << "component " << id;
  }
}

TEST(Injector, GroundTruthUnionsAndDeduplicates) {
  const std::vector<faults::FaultSpec> specs{
      spec(faults::FaultType::MemLeak, {2}, 0),
      spec(faults::FaultType::CpuHog, {1, 2}, 0),
      spec(faults::FaultType::WorkloadSurge, {}, 0),
  };
  EXPECT_EQ(groundTruth(specs), (std::vector<ComponentId>{1, 2}));
  EXPECT_TRUE(groundTruth({}).empty());
}

TEST(Injector, CallLatencySetsRpcKnobsOnTheCaller) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::CallLatency, {0}, 0, 2.0)});
  injector.apply(app, 0);
  const auto& fault = app.faultStateOf(0);
  EXPECT_NEAR(fault.call_latency_extra_sec, 0.3, 1e-9);
  EXPECT_GT(fault.call_slots, 0.0);
  EXPECT_DOUBLE_EQ(app.faultStateOf(1).call_latency_extra_sec, 0.0);
}

TEST(Injector, CallLatencyDelaysTheRequestPath) {
  Application healthy = rubis();
  Application faulty = rubis();
  FaultInjector injector({spec(faults::FaultType::CallLatency, {0}, 0)});
  injector.apply(faulty, 0);
  for (int t = 0; t < 60; ++t) {
    healthy.step();
    faulty.step();
  }
  // The injected RPC delay (0.15 s at intensity 1) sits directly on the
  // end-to-end path, far above the healthy sub-50ms baseline.
  EXPECT_GT(faulty.latencySeconds(), healthy.latencySeconds() + 0.1);
}

TEST(Injector, CallLatencyOnASinkHasNoThroughputEffect) {
  // db has no out-edges: nothing to call, so the slot cap must not bind.
  Application healthy = rubis();
  Application faulty = rubis();
  FaultInjector injector({spec(faults::FaultType::CallLatency, {3}, 0, 3.0)});
  injector.apply(faulty, 0);
  for (int t = 0; t < 60; ++t) {
    healthy.step();
    faulty.step();
  }
  EXPECT_NEAR(faulty.stateOf(3).processed, healthy.stateOf(3).processed,
              1e-9);
}

TEST(Injector, CallFailureRetriesGrowTheCallerQueue) {
  Application healthy = rubis();
  Application faulty = rubis();
  FaultInjector injector({spec(faults::FaultType::CallFailure, {1}, 0, 2.0)});
  injector.apply(faulty, 0);
  EXPECT_NEAR(faulty.faultStateOf(1).call_failure_rate, 0.7, 1e-9);
  for (int t = 0; t < 120; ++t) {
    healthy.step();
    faulty.step();
  }
  // Failed calls re-queue at the caller (service cost x1/(1-rate)), so its
  // backlog grows well past the healthy app's; the callee sees *less*
  // traffic, not more.
  EXPECT_GT(faulty.stateOf(1).totalQueue(),
            healthy.stateOf(1).totalQueue() + 50.0);
  EXPECT_LT(faulty.stateOf(1).emitted, healthy.stateOf(1).emitted);
}

TEST(TelemetryInjector, CoTimedWindowsOnTheSameVmUnion) {
  // Two drop bursts overlap on the same component: a sample is lost when
  // either window's coin comes up, and the pattern stays stateless — the
  // same (id, t) always answers the same regardless of query order.
  TelemetryFaultSpec a;
  a.type = TelemetryFaultType::SampleDropBurst;
  a.start_time = 100;
  a.duration_sec = 50;
  a.targets = {2};
  a.rate = 1.0;
  TelemetryFaultSpec b = a;
  b.start_time = 130;  // overlaps [130, 150)
  b.duration_sec = 50;
  TelemetryFaultInjector both({a, b});
  TelemetryFaultInjector only_a({a});
  TelemetryFaultInjector only_b({b});
  for (TimeSec t = 90; t < 200; ++t) {
    EXPECT_EQ(both.sampleDropped(2, t),
              only_a.sampleDropped(2, t) || only_b.sampleDropped(2, t))
        << "t=" << t;
    EXPECT_FALSE(both.sampleDropped(1, t)) << "untargeted VM, t=" << t;
  }
  // Inside the overlap both specs are active; with rate 1.0 the union drops
  // every sample there.
  EXPECT_TRUE(both.sampleDropped(2, 140));
  // Partial rates stay deterministic across repeated queries.
  a.rate = 0.5;
  b.rate = 0.5;
  TelemetryFaultInjector partial({a, b});
  for (TimeSec t = 130; t < 150; ++t) {
    EXPECT_EQ(partial.sampleDropped(2, t), partial.sampleDropped(2, t));
  }
}

TEST(TelemetryInjector, DropAndCorruptionWindowsCompose) {
  // A drop burst and a corruption window co-timed on the same VM: the two
  // fault types answer independently (a sample can be both dropped by the
  // transport model and — had it arrived — corrupt).
  TelemetryFaultSpec drop;
  drop.type = TelemetryFaultType::SampleDropBurst;
  drop.start_time = 100;
  drop.duration_sec = 100;
  drop.targets = {0};
  drop.rate = 1.0;
  TelemetryFaultSpec corrupt = drop;
  corrupt.type = TelemetryFaultType::ValueCorruption;
  TelemetryFaultInjector injector({drop, corrupt});
  EXPECT_TRUE(injector.sampleDropped(0, 150));
  std::array<double, kMetricCount> sample{};
  sample.fill(1.0);
  EXPECT_TRUE(injector.corruptSample(0, 150, sample));
  // Outside the windows neither fires.
  EXPECT_FALSE(injector.sampleDropped(0, 250));
  sample.fill(1.0);
  EXPECT_FALSE(injector.corruptSample(0, 250, sample));
  EXPECT_DOUBLE_EQ(sample[0], 1.0);
}

TEST(CrashInjector, CrashInsideATelemetryLossBurst) {
  // A slave crash landing inside a telemetry-loss burst: during the burst
  // the (live) slave merely sees gaps; once the crash hits, the host is
  // down until restart — and the restart can happen while the loss window
  // is still open.
  TelemetryFaultSpec burst;
  burst.type = TelemetryFaultType::SampleDropBurst;
  burst.start_time = 200;
  burst.duration_sec = 300;  // [200, 500)
  burst.rate = 1.0;
  TelemetryFaultInjector telemetry({burst});
  CrashInjector crashes({{/*host=*/0, /*crash=*/300, /*restart=*/400}});

  EXPECT_TRUE(telemetry.sampleDropped(0, 250));
  EXPECT_FALSE(crashes.down(0, 250));  // burst active, slave still alive
  EXPECT_TRUE(crashes.crashesAt(0, 300));
  EXPECT_TRUE(crashes.down(0, 350));
  EXPECT_TRUE(telemetry.sampleDropped(0, 350));  // both at once
  EXPECT_TRUE(crashes.restartsAt(0, 400));
  EXPECT_FALSE(crashes.down(0, 400));  // restarted inside the open burst
  EXPECT_TRUE(telemetry.sampleDropped(0, 450));
  EXPECT_FALSE(telemetry.sampleDropped(0, 500));  // burst closes
}

TEST(CrashInjector, OutageWindowAroundCrashStaysConsistent) {
  // A SlaveOutage window and a crash/restart cycle on the same host must be
  // queryable independently: outage = unreachable-but-alive, crash = dead.
  TelemetryFaultSpec outage;
  outage.type = TelemetryFaultType::SlaveOutage;
  outage.start_time = 100;
  outage.duration_sec = 100;  // [100, 200)
  outage.hosts = {0};
  TelemetryFaultInjector telemetry({outage});
  CrashInjector crashes({{/*host=*/0, /*crash=*/150, /*restart=*/0}});
  EXPECT_TRUE(telemetry.slaveDown(0, 120));
  EXPECT_FALSE(crashes.down(0, 120));
  EXPECT_TRUE(telemetry.slaveDown(0, 160));
  EXPECT_TRUE(crashes.down(0, 160));
  EXPECT_FALSE(telemetry.slaveDown(0, 220));
  EXPECT_TRUE(crashes.down(0, 220));  // restart_time 0: down for the run
  EXPECT_FALSE(telemetry.slaveDown(1, 120));  // other hosts unaffected
}

TEST(Injector, MultipleFaultsAtDifferentTimes) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {1}, 2),
                          spec(faults::FaultType::CpuHog, {2}, 4)});
  injector.apply(app, 2);
  EXPECT_GT(app.faultStateOf(1).leak_rate_mb_s, 0.0);
  EXPECT_DOUBLE_EQ(app.faultStateOf(2).hog_share, 0.0);
  injector.apply(app, 4);
  EXPECT_GT(app.faultStateOf(2).hog_share, 0.0);
}

}  // namespace
}  // namespace fchain::sim
