// Tests for the fault injector: every fault type must flip exactly the
// knobs it models, at exactly its start time.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/apps.h"
#include "sim/injector.h"

namespace fchain::sim {
namespace {

Application rubis() {
  Rng rng(1);
  return makeApplication(AppKind::Rubis, 600, rng);
}

faults::FaultSpec spec(faults::FaultType type,
                       std::vector<ComponentId> targets, TimeSec start,
                       double intensity = 1.0) {
  faults::FaultSpec fault;
  fault.type = type;
  fault.targets = std::move(targets);
  fault.start_time = start;
  fault.intensity = intensity;
  return fault;
}

TEST(Injector, FiresExactlyAtStartTime) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {3}, 5)});
  injector.apply(app, 4);
  EXPECT_DOUBLE_EQ(app.faultStateOf(3).leak_rate_mb_s, 0.0);
  injector.apply(app, 5);
  EXPECT_GT(app.faultStateOf(3).leak_rate_mb_s, 0.0);
}

TEST(Injector, FiresOnlyOnce) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {3}, 5)});
  injector.apply(app, 5);
  const double rate = app.faultStateOf(3).leak_rate_mb_s;
  app.faultStateOf(3).leak_rate_mb_s = 0.0;  // operator "fixed" it
  injector.apply(app, 5);                    // same tick replayed
  EXPECT_DOUBLE_EQ(app.faultStateOf(3).leak_rate_mb_s, 0.0);
  EXPECT_GT(rate, 0.0);
}

TEST(Injector, CpuHogSetsFairShare) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::CpuHog, {3}, 0, 1.35)});
  injector.apply(app, 0);
  EXPECT_NEAR(app.faultStateOf(3).hog_share, 0.675, 1e-9);
}

TEST(Injector, CpuHogShareIsCapped) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::CpuHog, {3}, 0, 10.0)});
  injector.apply(app, 0);
  EXPECT_LE(app.faultStateOf(3).hog_share, 0.9);
}

TEST(Injector, InfiniteLoopFlagsTheTask) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::InfiniteLoop, {1}, 0)});
  injector.apply(app, 0);
  EXPECT_TRUE(app.faultStateOf(1).infinite_loop);
  EXPECT_FALSE(app.faultStateOf(2).infinite_loop);
}

TEST(Injector, NetHogRampsTowardTarget) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::NetHog, {0}, 0)});
  injector.apply(app, 0);
  const auto& fault = app.faultStateOf(0);
  EXPECT_GT(fault.extra_net_in_target, 0.0);
  EXPECT_GT(fault.extra_net_in_ramp, 0.0);
  EXPECT_DOUBLE_EQ(fault.extra_net_in_kbs, 0.0);  // ramps in step()
  app.step();
  EXPECT_GT(app.faultStateOf(0).extra_net_in_kbs, 0.0);
  EXPECT_LE(app.faultStateOf(0).extra_net_in_kbs,
            app.faultStateOf(0).extra_net_in_target);
}

TEST(Injector, DiskHogStartsWithADentAndRamps) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::DiskHog, {3}, 0)});
  injector.apply(app, 0);
  const double initial = app.faultStateOf(3).disk_contention;
  EXPECT_GT(initial, 0.3);
  app.step();
  app.step();
  EXPECT_GT(app.faultStateOf(3).disk_contention, initial);
  EXPECT_LE(app.faultStateOf(3).disk_contention,
            app.faultStateOf(3).disk_contention_target);
}

TEST(Injector, BottleneckCapsScaleWithIntensity) {
  Application weak = rubis();
  FaultInjector({spec(faults::FaultType::Bottleneck, {2}, 0, 1.0)})
      .apply(weak, 0);
  Application strong = rubis();
  FaultInjector({spec(faults::FaultType::Bottleneck, {2}, 0, 2.0)})
      .apply(strong, 0);
  EXPECT_LT(strong.faultStateOf(2).cpu_cap_factor,
            weak.faultStateOf(2).cpu_cap_factor);
  EXPECT_GE(strong.faultStateOf(2).cpu_cap_factor, 0.06);
}

TEST(Injector, OffloadBugRoutesEverythingToTargetA) {
  Application app = rubis();
  FaultInjector injector(
      {spec(faults::FaultType::OffloadBug, {1, 2}, 0)});
  injector.apply(app, 0);
  double to_app1 = 0.0, to_app2 = 0.0;
  for (const auto& edge : app.spec().edges) {
    if (edge.from == 0 && edge.to == 1) to_app1 = edge.weight;
    if (edge.from == 0 && edge.to == 2) to_app2 = edge.weight;
  }
  EXPECT_DOUBLE_EQ(to_app1, 1.0);
  EXPECT_DOUBLE_EQ(to_app2, 0.0);
}

TEST(Injector, LBBugSkewsTheSplit) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::LBBug, {1, 2}, 0)});
  injector.apply(app, 0);
  double to_app1 = 0.0, to_app2 = 0.0;
  for (const auto& edge : app.spec().edges) {
    if (edge.from == 0 && edge.to == 1) to_app1 = edge.weight;
    if (edge.from == 0 && edge.to == 2) to_app2 = edge.weight;
  }
  EXPECT_NEAR(to_app1 + to_app2, 1.0, 1e-9);  // total preserved
  EXPECT_GT(to_app1, 0.9);
  EXPECT_GT(to_app2, 0.0);
}

TEST(Injector, LoadBalanceBugNeedsTwoTargets) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::LBBug, {1}, 0)});
  EXPECT_THROW(injector.apply(app, 0), std::invalid_argument);
}

TEST(Injector, LoadBalanceBugNeedsACommonUpstream) {
  Application app = rubis();
  // web(0) and db(3) share no common upstream.
  FaultInjector injector({spec(faults::FaultType::OffloadBug, {0, 3}, 0)});
  EXPECT_THROW(injector.apply(app, 0), std::invalid_argument);
}

TEST(Injector, SharedSlowdownHitsEveryComponent) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::SharedSlowdown, {}, 0)});
  injector.apply(app, 0);
  for (ComponentId id = 0; id < app.componentCount(); ++id) {
    EXPECT_GT(app.faultStateOf(id).disk_contention, 0.5) << "component " << id;
  }
}

TEST(Injector, GroundTruthUnionsAndDeduplicates) {
  const std::vector<faults::FaultSpec> specs{
      spec(faults::FaultType::MemLeak, {2}, 0),
      spec(faults::FaultType::CpuHog, {1, 2}, 0),
      spec(faults::FaultType::WorkloadSurge, {}, 0),
  };
  EXPECT_EQ(groundTruth(specs), (std::vector<ComponentId>{1, 2}));
  EXPECT_TRUE(groundTruth({}).empty());
}

TEST(Injector, MultipleFaultsAtDifferentTimes) {
  Application app = rubis();
  FaultInjector injector({spec(faults::FaultType::MemLeak, {1}, 2),
                          spec(faults::FaultType::CpuHog, {2}, 4)});
  injector.apply(app, 2);
  EXPECT_GT(app.faultStateOf(1).leak_rate_mb_s, 0.0);
  EXPECT_DOUBLE_EQ(app.faultStateOf(2).hog_share, 0.0);
  injector.apply(app, 4);
  EXPECT_GT(app.faultStateOf(2).hog_share, 0.0);
}

}  // namespace
}  // namespace fchain::sim
