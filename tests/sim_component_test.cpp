// Unit tests for sim/component: capacity, memory and metric models under
// fault and validation-scaling state.
#include <gtest/gtest.h>

#include "sim/component.h"

namespace fchain::sim {
namespace {

ComponentSpec basicSpec() {
  ComponentSpec spec;
  spec.cpu_capacity = 1.0;
  spec.cpu_demand = 0.005;
  spec.mem_base = 500.0;
  spec.mem_limit = 1000.0;
  spec.disk_capacity = 10000.0;
  return spec;
}

TEST(Component, NominalCpuCapacity) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 600.0), 1.0);
}

TEST(Component, HogShareScalesCapacity) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.hog_share = 0.5;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 600.0), 0.5);
}

TEST(Component, BottleneckCapMultiplies) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.cpu_cap_factor = 0.2;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 600.0), 0.2);
}

TEST(Component, ValidationScalingRestoresHeadroom) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.cpu_cap_factor = 0.2;
  fault.scale_cpu = 2.5;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 600.0), 0.5);
}

TEST(Component, NetHogCpuAbsorptionDrainsCapacity) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.extra_net_in_kbs = 20000.0;
  fault.net_hog_cpu_per_kb = 2.5e-5;
  EXPECT_NEAR(effectiveCpuCapacity(spec, fault, 600.0), 0.5, 1e-12);
}

TEST(Component, SwapThrashingCollapsesCapacity) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  const double healthy = effectiveCpuCapacity(spec, fault, 900.0);
  const double pressured = effectiveCpuCapacity(spec, fault, 1200.0);
  const double thrashing = effectiveCpuCapacity(spec, fault, 3000.0);
  EXPECT_DOUBLE_EQ(healthy, 1.0);
  EXPECT_LT(pressured, 0.5);
  EXPECT_NEAR(thrashing, 0.03, 1e-9);  // the floor
}

TEST(Component, MemoryScalingRaisesThrashPoint) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.scale_mem = 2.0;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 1500.0), 1.0);
}

TEST(Component, CapacityNeverNegative) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.extra_net_in_kbs = 1e9;
  fault.net_hog_cpu_per_kb = 1.0;
  EXPECT_DOUBLE_EQ(effectiveCpuCapacity(spec, fault, 600.0), 0.0);
}

TEST(Component, DiskContentionAndScaling) {
  const ComponentSpec spec = basicSpec();
  FaultState fault;
  fault.disk_contention = 0.75;
  EXPECT_DOUBLE_EQ(effectiveDiskCapacity(spec, fault), 2500.0);
  fault.scale_disk = 2.0;
  EXPECT_DOUBLE_EQ(effectiveDiskCapacity(spec, fault), 5000.0);
}

TEST(Component, MemoryUsageAccountsQueueAndLeak) {
  ComponentSpec spec = basicSpec();
  spec.mem_per_queued = 0.5;
  FaultState fault;
  fault.leaked_mb = 120.0;
  EXPECT_DOUBLE_EQ(memoryUsage(spec, fault, 40.0), 500.0 + 20.0 + 120.0);
}

TEST(Component, BaseMetricsMapActivityToSamples) {
  ComponentSpec spec = basicSpec();
  spec.net_in_per_unit = 2.0;
  spec.net_out_per_unit = 3.0;
  spec.disk_read_per_unit = 10.0;
  spec.disk_write_per_unit = 5.0;
  spec.background_cpu = 0.0;
  spec.background_disk_w = 0.0;

  ComponentState state;
  state.in_queues = {10.0};
  state.processed = 100.0;
  state.arrived = 120.0;
  state.emitted = 90.0;

  const auto sample = baseMetrics(spec, state);
  EXPECT_NEAR(sample[metricIndex(MetricKind::CpuUsage)], 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(sample[metricIndex(MetricKind::NetworkIn)], 240.0);
  EXPECT_DOUBLE_EQ(sample[metricIndex(MetricKind::NetworkOut)], 270.0);
  EXPECT_DOUBLE_EQ(sample[metricIndex(MetricKind::DiskRead)], 1000.0);
  EXPECT_DOUBLE_EQ(sample[metricIndex(MetricKind::DiskWrite)], 500.0);
}

TEST(Component, InfiniteLoopPegsCpuAtAllowedCapacity) {
  ComponentSpec spec = basicSpec();
  ComponentState state;
  state.in_queues = {0.0};
  state.fault.infinite_loop = true;
  const auto sample = baseMetrics(spec, state);
  EXPECT_NEAR(sample[metricIndex(MetricKind::CpuUsage)], 100.0, 1e-9);
}

TEST(Component, SwapTrafficAppearsPastMemoryLimit) {
  ComponentSpec spec = basicSpec();
  spec.background_disk_w = 0.0;
  ComponentState state;
  state.in_queues = {0.0};
  state.fault.leaked_mb = 900.0;  // 500 base + 900 leak > 1000 limit
  const auto sample = baseMetrics(spec, state);
  EXPECT_GT(sample[metricIndex(MetricKind::DiskWrite)], 100.0);
  EXPECT_GT(sample[metricIndex(MetricKind::DiskRead)], 50.0);
}

TEST(Component, NetHogTrafficShowsOnNetworkIn) {
  ComponentSpec spec = basicSpec();
  ComponentState state;
  state.in_queues = {0.0};
  state.fault.extra_net_in_kbs = 30000.0;
  const auto sample = baseMetrics(spec, state);
  EXPECT_GE(sample[metricIndex(MetricKind::NetworkIn)], 30000.0);
}

TEST(Component, TotalQueueSumsAllInputs) {
  ComponentState state;
  state.in_queues = {5.0, 7.5, 2.5};
  EXPECT_DOUBLE_EQ(state.totalQueue(), 15.0);
}

}  // namespace
}  // namespace fchain::sim
