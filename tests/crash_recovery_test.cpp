// Crash-tolerance tests: slave snapshot/restore bit-identity, journaled
// warm restart against the checked-in localization goldens, the
// deadline-bounded watchdog + circuit breaker, incident-journal replay
// after a master restart, and the checked-in corrupt-snapshot fixtures.
//
// The warm-restart tests are the tentpole guarantee: a slave that crashes
// mid-run and recovers from snapshot + journal must drive the *same golden
// bytes* as the uncrashed run pinned by golden_localization_test.cpp.
//
// To regenerate the corrupt-snapshot fixtures after a format change:
//   FCHAIN_UPDATE_FIXTURES=1 ./build/tests/test_crash_recovery
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/fchain.h"
#include "fchain/recovery.h"
#include "netdep/dependency.h"
#include "persist/codec.h"
#include "pinpoint_render.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "runtime/hung_endpoint.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace fchain::core {
namespace {

std::string tempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Reads a golden pinned by golden_localization_test.cpp (read-only here:
/// that suite owns regeneration).
std::string readGolden(const std::string& name) {
  const std::string path =
      std::string(FCHAIN_GOLDEN_DIR) + "/" + name + ".golden";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good())
      << "missing golden " << path
      << " (regenerate via FCHAIN_UPDATE_GOLDEN=1 test_golden_localization)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- Incident construction with crash/recover cycles ----------------------

/// The canonical two-slave RUBiS deployment from the golden tests, but every
/// sample flows through a SlaveCheckpointer (journal-then-ingest), and the
/// CrashInjector schedule kills/recovers slave processes mid-run. A crash
/// takes effect after its tick's ingest (the dying process had durably
/// journaled that sample); a restart recovers from disk before its tick's
/// ingest — so a crash at t with restart at t+1 loses nothing, which is
/// exactly the warm-restart guarantee under test.
struct CrashRun {
  std::unique_ptr<FChainSlave> front;
  std::unique_ptr<FChainSlave> back;
  TimeSec tv = 0;
  netdep::DependencyGraph deps;
  int recoveries = 0;
  std::size_t replayed = 0;  ///< journal records replayed across recoveries
};

CrashRun runIncidentWithCrashes(const std::vector<faults::FaultSpec>& faults,
                                std::uint64_t seed,
                                const sim::CrashInjector& injector,
                                const std::string& dir) {
  CrashRun run;
  run.front = std::make_unique<FChainSlave>(0);
  run.back = std::make_unique<FChainSlave>(1);
  run.front->addComponent(0, 0);
  run.front->addComponent(1, 0);
  run.back->addComponent(2, 0);
  run.back->addComponent(3, 0);

  std::array<std::unique_ptr<FChainSlave>*, 2> slaves = {&run.front,
                                                         &run.back};
  std::array<std::unique_ptr<SlaveCheckpointer>, 2> checkpointers;
  checkpointers[0] = std::make_unique<SlaveCheckpointer>(*run.front, dir);
  checkpointers[1] = std::make_unique<SlaveCheckpointer>(*run.back, dir);

  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  config.faults = faults;
  sim::Simulation sim(config);
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (HostId host = 0; host < 2; ++host) {
      if (injector.restartsAt(host, t)) {
        auto recovered = SlaveCheckpointer::recover(dir, host);
        run.replayed += recovered.replayed;
        *slaves[host] =
            std::make_unique<FChainSlave>(std::move(recovered.slave));
        checkpointers[host] =
            std::make_unique<SlaveCheckpointer>(**slaves[host], dir);
        ++run.recoveries;
      }
    }
    for (ComponentId id = 0; id < 4; ++id) {
      const HostId host = id < 2 ? 0 : 1;
      if (!checkpointers[host]) continue;  // no live slave process
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      checkpointers[host]->ingestAt(id, t, sample);
    }
    for (HostId host = 0; host < 2; ++host) {
      if (injector.crashesAt(host, t)) {
        // Process death: checkpointer and all in-memory state vanish.
        checkpointers[host].reset();
        slaves[host]->reset();
      }
    }
  }
  EXPECT_TRUE(sim.violationTime().has_value());
  run.tv = sim.violationTime().value_or(sim.now());
  run.deps = netdep::discoverDependencies(sim.record());
  return run;
}

faults::FaultSpec cpuHogOnDb() {
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  return fault;
}

faults::FaultSpec concurrentOffloadBug() {
  faults::FaultSpec fault;
  fault.type = faults::FaultType::OffloadBug;
  fault.targets = {1, 2};
  fault.start_time = 2000;
  return fault;
}

// --- Crash injector schedule ----------------------------------------------

TEST(CrashInjector, ScheduleQueries) {
  sim::CrashInjector injector;
  injector.add({/*host=*/1, /*crash_time=*/100, /*restart_time=*/150});
  injector.add({/*host=*/2, /*crash_time=*/200, /*restart_time=*/0});

  EXPECT_TRUE(injector.crashesAt(1, 100));
  EXPECT_FALSE(injector.crashesAt(1, 101));
  EXPECT_FALSE(injector.crashesAt(0, 100));
  EXPECT_TRUE(injector.restartsAt(1, 150));
  EXPECT_FALSE(injector.restartsAt(1, 149));
  EXPECT_FALSE(injector.restartsAt(2, 0));  // restart_time 0 = never

  EXPECT_FALSE(injector.down(1, 99));
  EXPECT_TRUE(injector.down(1, 100));
  EXPECT_TRUE(injector.down(1, 149));
  EXPECT_FALSE(injector.down(1, 150));
  EXPECT_TRUE(injector.down(2, 200));
  EXPECT_TRUE(injector.down(2, 100000));  // never restarted
}

// --- Slave snapshot bit-identity ------------------------------------------

TEST(SlaveSnapshot, RestoreIsBitIdentical) {
  FChainSlave original(3);
  original.addComponent(7, 0);
  original.addComponent(8, 0);
  // Drive the full ingest machinery: waves, a gap, and a NaN quarantine, so
  // the snapshot carries calibrated discretizers, Markov mass, error
  // history, and nonzero repair counters.
  for (TimeSec t = 0; t < 900; ++t) {
    if (t == 400) continue;  // gap, filled on the next ingest
    std::array<double, kMetricCount> sample{};
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      sample[m] = 0.5 + 0.3 * std::sin(0.05 * static_cast<double>(t) +
                                       static_cast<double>(m));
    }
    if (t == 500) sample[2] = std::numeric_limits<double>::quiet_NaN();
    original.ingestAt(7, t, sample);
    original.ingestAt(8, t, sample);
  }

  const persist::SlaveSnapshot snap = original.snapshot(/*epoch=*/4);
  FChainSlave restored = FChainSlave::fromSnapshot(snap);

  // Strongest check available: re-capturing the restored slave yields the
  // exact same bytes — every double bit, every counter.
  EXPECT_EQ(persist::encodeSlaveSnapshot(restored.snapshot(4)),
            persist::encodeSlaveSnapshot(snap));

  // And analysis agrees (same findings object by object).
  const auto a = original.analyzeBatch({7, 8}, 880);
  const auto b = restored.analyzeBatch({7, 8}, 880);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].has_value(), b[i].has_value());
    if (!a[i]) continue;
    EXPECT_EQ(a[i]->component, b[i]->component);
    EXPECT_EQ(a[i]->onset, b[i]->onset);
    EXPECT_EQ(a[i]->trend, b[i]->trend);
    ASSERT_EQ(a[i]->metrics.size(), b[i]->metrics.size());
  }

  // Further ingest continues deterministically on both.
  std::array<double, kMetricCount> next{};
  next.fill(0.9);
  original.ingestAt(7, 900, next);
  restored.ingestAt(7, 900, next);
  EXPECT_EQ(persist::encodeSlaveSnapshot(restored.snapshot(5)),
            persist::encodeSlaveSnapshot(original.snapshot(5)));
}

// --- Warm restart vs the checked-in goldens -------------------------------

TEST(WarmRestart, SingleFaultMatchesUncrashedGolden) {
  // The back slave (app2 + db — including the component the golden blames)
  // dies at t=1500 and a replacement recovers from disk one tick later.
  sim::CrashInjector injector;
  injector.add({/*host=*/1, /*crash_time=*/1500, /*restart_time=*/1501});
  CrashRun run = runIncidentWithCrashes({cpuHogOnDb()}, /*seed=*/77,
                                        injector, tempDir("warm_single"));
  EXPECT_EQ(run.recoveries, 1);
  EXPECT_GT(run.replayed, 0u);

  FChainMaster master;
  master.registerSlave(run.front.get());
  master.registerSlave(run.back.get());
  master.setDependencies(run.deps);
  const PinpointResult result = master.localize({0, 1, 2, 3}, run.tv);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{3}));
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_EQ(renderPinpoint(result, run.tv), readGolden("single_fault"))
      << "restarted slave diverged from the uncrashed golden";
}

TEST(WarmRestart, ConcurrentFaultWithBothSlavesCrashingMatchesGolden) {
  // Both slave processes die at different times — the front one twice.
  sim::CrashInjector injector;
  injector.add({/*host=*/0, /*crash_time=*/1200, /*restart_time=*/1201});
  injector.add({/*host=*/1, /*crash_time=*/1700, /*restart_time=*/1701});
  injector.add({/*host=*/0, /*crash_time=*/1950, /*restart_time=*/1951});
  CrashRun run =
      runIncidentWithCrashes({concurrentOffloadBug()}, /*seed=*/77, injector,
                             tempDir("warm_concurrent"));
  EXPECT_EQ(run.recoveries, 3);

  FChainMaster master;
  master.registerSlave(run.front.get());
  master.registerSlave(run.back.get());
  master.setDependencies(run.deps);
  const PinpointResult result = master.localize({0, 1, 2, 3}, run.tv);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_EQ(renderPinpoint(result, run.tv), readGolden("concurrent_fault"))
      << "restarted slaves diverged from the uncrashed golden";
}

// --- Checkpointer mechanics -----------------------------------------------

TEST(Checkpointer, TornJournalTailLosesOnlyTheTornRecord) {
  const std::string dir = tempDir("torn_tail");
  std::string journal_path;
  {
    FChainSlave slave(0);
    slave.addComponent(0, 0);
    SlaveCheckpointer checkpointer(slave, dir);
    journal_path = checkpointer.journalPath();
    std::array<double, kMetricCount> sample{};
    for (TimeSec t = 0; t < 10; ++t) {
      sample.fill(0.5 + 0.01 * static_cast<double>(t));
      checkpointer.ingestAt(0, t, sample);
    }
    EXPECT_EQ(checkpointer.journaledSinceSnapshot(), 10u);
  }
  // Crash mid-append: chop bytes off the journal's last record.
  {
    std::ifstream in(journal_path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 3));
  }
  ASSERT_TRUE(SlaveCheckpointer::hasState(dir, 0));
  const auto recovered = SlaveCheckpointer::recover(dir, 0);
  EXPECT_FALSE(recovered.journal_clean);
  EXPECT_EQ(recovered.replayed, 9u);  // valid prefix only
  const auto* series = recovered.slave.seriesOf(0);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->of(MetricKind::CpuUsage).size(), 9u);
}

TEST(Checkpointer, AutoCheckpointCollapsesJournalAndAdvancesEpoch) {
  const std::string dir = tempDir("auto_checkpoint");
  FChainSlave slave(0);
  slave.addComponent(0, 0);
  CheckpointPolicy policy;
  policy.snapshot_interval_sec = 100;
  SlaveCheckpointer checkpointer(slave, dir, policy);
  const std::uint64_t first_epoch = checkpointer.epoch();
  std::array<double, kMetricCount> sample{};
  for (TimeSec t = 0; t < 350; ++t) {
    sample.fill(0.5);
    checkpointer.ingestAt(0, t, sample);
  }
  EXPECT_GT(checkpointer.epoch(), first_epoch + 1);
  // The journal only holds samples since the last collapse, not all 350.
  EXPECT_LT(checkpointer.journaledSinceSnapshot(), 150u);
  // Epoch numbering continues when a checkpointer re-attaches through the
  // proper recover()-first workflow.
  const std::uint64_t before = checkpointer.epoch();
  auto recovered = SlaveCheckpointer::recover(dir, 0);
  SlaveCheckpointer reattached(recovered.slave, dir, policy);
  EXPECT_GT(reattached.epoch(), before);
}

TEST(Checkpointer, RefusesToOverwritePersistedStateWithFreshSlave) {
  const std::string dir = tempDir("refuse_overwrite");
  {
    FChainSlave slave(0);
    slave.addComponent(0, 0);
    SlaveCheckpointer checkpointer(slave, dir);
    std::array<double, kMetricCount> sample{};
    for (TimeSec t = 0; t < 20; ++t) {
      sample.fill(0.5);
      checkpointer.ingestAt(0, t, sample);
    }
  }  // "crash": the persisted snapshot + journal survive the process

  // Wrapping a fresh slave would overwrite hours of learned state with an
  // empty snapshot and truncate the journal — it must throw, not truncate.
  FChainSlave fresh(0);
  fresh.addComponent(0, 0);
  EXPECT_THROW(SlaveCheckpointer(fresh, dir), std::runtime_error);
  // The refusal left the persisted state untouched and recoverable.
  auto recovered = SlaveCheckpointer::recover(dir, 0);
  const auto* series = recovered.slave.seriesOf(0);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->of(MetricKind::CpuUsage).size(), 20u);

  // recover()-first re-attaches cleanly; explicit discard is the opt-out.
  SlaveCheckpointer reattached(recovered.slave, dir);
  CheckpointPolicy discard;
  discard.discard_unrecovered_state = true;
  FChainSlave fresh2(0);
  fresh2.addComponent(0, 0);
  SlaveCheckpointer discarded(fresh2, dir, discard);
  EXPECT_EQ(SlaveCheckpointer::recover(dir, 0).replayed, 0u);
}

// --- Watchdog, deadline, breaker ------------------------------------------

/// Two-slave deployment with shallow flat history; the back slave is wrapped
/// in a HungEndpoint so tests can wedge it on demand.
struct HungDeployment {
  std::unique_ptr<FChainSlave> front;
  std::unique_ptr<FChainSlave> back;
  std::shared_ptr<runtime::HungEndpoint> hung;
  std::unique_ptr<FChainMaster> master;
};

HungDeployment makeHungDeployment() {
  HungDeployment d;
  d.front = std::make_unique<FChainSlave>(0);
  d.back = std::make_unique<FChainSlave>(1);
  d.front->addComponent(0, 0);
  d.front->addComponent(1, 0);
  d.back->addComponent(2, 0);
  d.back->addComponent(3, 0);
  std::array<double, kMetricCount> sample{};
  for (TimeSec t = 0; t < 400; ++t) {
    sample.fill(0.4 + 0.2 * std::sin(0.1 * static_cast<double>(t)));
    for (ComponentId id = 0; id < 4; ++id) {
      (id < 2 ? *d.front : *d.back).ingestAt(id, t, sample);
    }
  }
  d.hung = std::make_shared<runtime::HungEndpoint>(
      std::make_shared<runtime::LocalEndpoint>(d.back.get()));
  d.master = std::make_unique<FChainMaster>();
  d.master->registerSlave(d.front.get());
  d.master->registerEndpoint(d.hung, {2, 3});
  return d;
}

void drainHung(runtime::HungEndpoint& hung) {
  hung.release();
  while (hung.inFlight() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Watchdog, HungEndpointIsBoundedIntoDegradedCoverage) {
  HungDeployment d = makeHungDeployment();
  runtime::WatchdogConfig config;
  config.call_timeout_ms = 100.0;
  config.breaker_trip_after = 1;
  config.breaker_probe_after = 1;  // every denial lets a probe through
  d.master->setWatchdog(config);

  d.hung->hang();
  const auto start = std::chrono::steady_clock::now();
  const PinpointResult result = d.master->localize({0, 1, 2, 3}, 380);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // The wedged slave cost at most ~2 call timeouts, not forever.
  EXPECT_LT(elapsed_ms, 5000.0);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{2, 3}));
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
  const auto stats = d.master->runtimeStats();
  EXPECT_GE(stats.watchdog_trips, 1u);
  EXPECT_EQ(stats.breaker_opens, 1u);

  // Un-wedge, drain the abandoned sacrificial calls, and the endpoint is
  // back in coverage on the very next localize (probe completes -> closed).
  drainHung(*d.hung);
  const PinpointResult healed = d.master->localize({0, 1, 2, 3}, 380);
  EXPECT_DOUBLE_EQ(healed.coverage, 1.0);
  EXPECT_TRUE(healed.unanalyzed.empty());
}

TEST(Watchdog, OpenBreakerShedsWithoutSpendingWallTime) {
  HungDeployment d = makeHungDeployment();
  runtime::WatchdogConfig config;
  config.call_timeout_ms = 50.0;
  config.breaker_trip_after = 1;
  config.breaker_probe_after = 100;  // effectively no probes in this test
  d.master->setWatchdog(config);

  d.hung->hang();
  (void)d.master->localize({0, 1, 2, 3}, 380);  // opens the breaker

  // With the breaker open, further localizations shed 2/3 instantly.
  const auto start = std::chrono::steady_clock::now();
  const PinpointResult result = d.master->localize({0, 1, 2, 3}, 380);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{2, 3}));
  EXPECT_LT(elapsed_ms, 50.0);  // no watchdog wait was spent at all
  drainHung(*d.hung);
}

TEST(Watchdog, LocalizeDeadlineShedsRemainingComponents) {
  HungDeployment d = makeHungDeployment();
  runtime::WatchdogConfig config;
  config.localize_deadline_ms = 1e-6;  // expires essentially immediately
  d.master->setWatchdog(config);
  const PinpointResult result = d.master->localize({0, 1, 2, 3}, 380);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(result.coverage, 0.0);
  EXPECT_EQ(d.master->runtimeStats().deadline_skips, 4u);
}

TEST(Watchdog, ParallelFanOutAlsoBoundsHungEndpoint) {
  HungDeployment d = makeHungDeployment();
  d.master->setWorkerThreads(2);
  runtime::WatchdogConfig config;
  config.call_timeout_ms = 100.0;
  config.breaker_trip_after = 1;
  d.master->setWatchdog(config);
  d.hung->hang();
  const PinpointResult result = d.master->localize({0, 1, 2, 3}, 380);
  EXPECT_EQ(result.unanalyzed, (std::vector<ComponentId>{2, 3}));
  EXPECT_DOUBLE_EQ(result.coverage, 0.5);
  EXPECT_GE(d.master->runtimeStats().watchdog_trips, 1u);
  drainHung(*d.hung);
}

TEST(Watchdog, ZeroConfigIsBitIdenticalToLegacyBehaviour) {
  // The watchdog must be a pure opt-in: with the zero config the result
  // renders to the same bytes as a master that never heard of it.
  sim::CrashInjector no_crashes;
  CrashRun run = runIncidentWithCrashes({cpuHogOnDb()}, /*seed=*/77,
                                        no_crashes, tempDir("wd_zero"));
  FChainMaster with;
  with.setWatchdog(runtime::WatchdogConfig{});
  with.registerSlave(run.front.get());
  with.registerSlave(run.back.get());
  with.setDependencies(run.deps);
  const auto result = with.localize({0, 1, 2, 3}, run.tv);
  EXPECT_EQ(renderPinpoint(result, run.tv), readGolden("single_fault"));
  EXPECT_EQ(with.runtimeStats().watchdog_trips, 0u);
}

TEST(CircuitBreaker, TripsProbesAndCloses) {
  runtime::CircuitBreaker breaker(/*trip_after=*/2, /*probe_after=*/3);
  EXPECT_TRUE(breaker.allowRequest());
  EXPECT_FALSE(breaker.recordTrip());  // 1 of 2
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.recordTrip());  // opens
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.totalOpens(), 1u);
  EXPECT_EQ(breaker.totalTrips(), 2u);
  // While open: two denials, then the third request probes.
  EXPECT_FALSE(breaker.allowRequest());
  EXPECT_FALSE(breaker.allowRequest());
  EXPECT_TRUE(breaker.allowRequest());
  // The probe completed -> closed, and a completion resets the trip run.
  breaker.recordCompletion();
  EXPECT_FALSE(breaker.open());
  EXPECT_FALSE(breaker.recordTrip());  // run restarts at 1 of 2
  EXPECT_FALSE(breaker.open());
}

// --- Incident journal: master restart -------------------------------------

TEST(IncidentRecovery, PendingIncidentIsRerunAfterMasterRestart) {
  const std::string dir = tempDir("incident_rerun");
  const std::string path = dir + "/incidents.journal";
  sim::CrashInjector no_crashes;
  CrashRun run = runIncidentWithCrashes({cpuHogOnDb()}, /*seed=*/77,
                                        no_crashes, dir);

  std::string expected_render;
  {
    persist::IncidentJournal journal(path);
    FChainMaster master;
    master.setIncidentJournal(&journal);
    master.registerSlave(run.front.get());
    master.registerSlave(run.back.get());
    master.setDependencies(run.deps);
    // A completed localization leaves no pending entry behind.
    const auto result = master.localize({0, 1, 2, 3}, run.tv);
    expected_render = renderPinpoint(result, run.tv);
    // Crash mid-incident: the start record lands, the done never does.
    journal.logStart({0, 1, 2, 3}, run.tv);
  }
  ASSERT_EQ(persist::IncidentJournal::pending(path).size(), 1u);

  // Master restart: fresh process, same journal, recovered slaves.
  persist::IncidentJournal journal(path);
  FChainMaster master;
  master.setIncidentJournal(&journal);
  master.registerSlave(run.front.get());
  master.registerSlave(run.back.get());
  master.setDependencies(run.deps);
  const auto reruns = rerunPendingIncidents(master, journal);
  ASSERT_EQ(reruns.size(), 1u);
  EXPECT_EQ(reruns[0].components, (std::vector<ComponentId>{0, 1, 2, 3}));
  EXPECT_EQ(reruns[0].violation_time, run.tv);
  EXPECT_EQ(renderPinpoint(reruns[0].result, run.tv), expected_render);
  EXPECT_TRUE(persist::IncidentJournal::pending(path).empty());
}

// --- Checked-in corrupt-snapshot fixtures ---------------------------------

std::string fixturePath(const std::string& name) {
  return std::string(FCHAIN_FIXTURE_DIR) + "/" + name;
}

persist::SlaveSnapshot fixtureSnapshot() {
  // Deterministic content: byte-stable across regenerations.
  persist::SlaveSnapshot snapshot;
  snapshot.host = 7;
  snapshot.epoch = 2;
  persist::VmSnapshotState vm;
  vm.component = 0;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    vm.series[m].start = 50;
    vm.series[m].values = {0.125, 0.25, 0.5};
    auto& p = vm.predictors[m];
    p.bins = 2;
    p.calibration_samples = 4;
    p.padding = 0.05;
    p.calibrated = true;
    p.lo = 0.0;
    p.hi = 1.0;
    p.width = 0.5;
    p.decay = 0.98;
    p.laplace = 1.0;
    p.counts = {1.0, 0.0, 0.5, 2.0};
    p.row_mass = {1.0, 2.5};
    p.errors.start = 50;
    p.errors.values = {0.01, 0.02, 0.03};  // aligned with the metric series
  }
  snapshot.vms.push_back(vm);
  return snapshot;
}

void writeFixture(const std::string& name,
                  const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(fixturePath(name), std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write fixture " << fixturePath(name);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void maybeRegenerateFixtures() {
  const char* update = std::getenv("FCHAIN_UPDATE_FIXTURES");
  if (update == nullptr || update[0] == '\0' ||
      (update[0] == '0' && update[1] == '\0')) {
    return;
  }
  std::filesystem::create_directories(FCHAIN_FIXTURE_DIR);
  const auto valid = persist::encodeSlaveSnapshot(fixtureSnapshot());
  writeFixture("valid.bin", valid);
  auto bad_magic = valid;
  bad_magic[0] ^= 0xFF;
  writeFixture("bad_magic.bin", bad_magic);
  auto bad_version = valid;
  bad_version[4] += 1;  // little-endian version field
  writeFixture("bad_version.bin", bad_version);
  writeFixture("truncated.bin",
               {valid.begin(), valid.begin() + valid.size() / 2});
  auto bad_checksum = valid;
  bad_checksum[persist::kFrameHeaderSize + 9] ^= 0x20;
  writeFixture("bad_checksum.bin", bad_checksum);
  // Frames cleanly but violates the model-shape invariants.
  auto malformed = fixtureSnapshot();
  malformed.vms[0].predictors[1].row_mass.push_back(9.0);
  writeFixture("bad_shape.bin", persist::encodeSlaveSnapshot(malformed));
}

TEST(SnapshotFixtures, ValidFixtureLoads) {
  maybeRegenerateFixtures();
  ASSERT_TRUE(persist::fileExists(fixturePath("valid.bin")))
      << "missing fixtures; regenerate with FCHAIN_UPDATE_FIXTURES=1";
  const auto snapshot = persist::loadSlaveSnapshot(fixturePath("valid.bin"));
  EXPECT_EQ(snapshot.host, 7);
  EXPECT_EQ(snapshot.epoch, 2u);
  ASSERT_EQ(snapshot.vms.size(), 1u);
  EXPECT_EQ(snapshot.vms[0].predictors[0].row_mass,
            (std::vector<double>{1.0, 2.5}));
}

TEST(SnapshotFixtures, EveryCorruptFixtureIsRejectedWithOffset) {
  maybeRegenerateFixtures();
  for (const char* name : {"bad_magic.bin", "bad_version.bin",
                           "truncated.bin", "bad_checksum.bin",
                           "bad_shape.bin"}) {
    ASSERT_TRUE(persist::fileExists(fixturePath(name)))
        << "missing fixture " << name
        << "; regenerate with FCHAIN_UPDATE_FIXTURES=1";
    try {
      persist::loadSlaveSnapshot(fixturePath(name));
      FAIL() << "corrupt fixture " << name << " was accepted";
    } catch (const persist::CorruptDataError& e) {
      EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
          << name << ": " << e.what();
    }
  }
}

}  // namespace
}  // namespace fchain::core
