// Tests for the application engine: queueing, back-pressure, joins,
// delivery delay, latency, progress, and fault hooks.
#include <gtest/gtest.h>

#include "sim/application.h"

namespace fchain::sim {
namespace {

/// A minimal noiseless two-stage pipeline: src -> sink.
ApplicationSpec pipelineSpec(double src_capacity = 1.0,
                             double sink_capacity = 1.0,
                             double sink_buffer = 1000.0,
                             std::size_t delay = 1) {
  ApplicationSpec spec;
  spec.name = "pipeline";
  ComponentSpec src;
  src.name = "src";
  src.cpu_capacity = src_capacity;
  src.cpu_demand = 0.01;  // 100 units/s at capacity 1
  src.noise_level = 0.0;
  src.background_cpu = 0.0;
  ComponentSpec sink = src;
  sink.name = "sink";
  sink.cpu_capacity = sink_capacity;
  sink.buffer_limit = sink_buffer;
  spec.components = {src, sink};
  spec.edges = {{0, 1, 1.0, delay}};
  spec.reference_path = {0, 1};
  return spec;
}

TEST(Application, WorkFlowsThroughThePipeline) {
  Application app(pipelineSpec(), 1);
  app.setWorkload(std::vector<double>(100, 50.0));
  for (int i = 0; i < 20; ++i) app.step();
  // Steady state: the sink processes what the source emits.
  EXPECT_NEAR(app.stateOf(1).processed, 50.0, 1.0);
  EXPECT_NEAR(app.stateOf(0).processed, 50.0, 1.0);
}

TEST(Application, DeliveryDelayHoldsWorkInFlight) {
  Application app(pipelineSpec(1.0, 1.0, 1000.0, /*delay=*/5), 1);
  app.setWorkload(std::vector<double>(100, 40.0));
  // After 3 ticks the sink cannot have received anything yet (the first
  // emission needs 5 ticks of transfer).
  for (int i = 0; i < 3; ++i) app.step();
  EXPECT_DOUBLE_EQ(app.stateOf(1).processed, 0.0);
  for (int i = 0; i < 10; ++i) app.step();
  EXPECT_NEAR(app.stateOf(1).processed, 40.0, 1.0);
}

TEST(Application, BackPressureThrottlesUpstream) {
  // The sink can only do 20 units/s and its buffer is small: the source
  // must slow to the sink's pace even though demand is 80/s.
  Application app(pipelineSpec(1.0, 0.2, 30.0), 1);
  app.setWorkload(std::vector<double>(200, 80.0));
  for (int i = 0; i < 40; ++i) app.step();
  // With a tight buffer the source alternates between bursts and stalls;
  // its *average* pace must match the sink's 20 units/s.
  double processed = 0.0;
  for (int i = 0; i < 20; ++i) {
    app.step();
    processed += app.stateOf(0).processed;
  }
  EXPECT_NEAR(processed / 20.0, 20.0, 3.0);
  // The source's own queue backs up toward its buffer limit.
  EXPECT_GT(app.stateOf(0).totalQueue(), 100.0);
}

TEST(Application, JoinConsumesInputsInLockstep) {
  // src1 and src2 feed a join; src2's stream is starved, so the join can
  // only match what src2 delivers and src1's branch backs up.
  ApplicationSpec spec;
  ComponentSpec src;
  src.name = "src1";
  src.cpu_demand = 0.01;
  src.noise_level = 0.0;
  src.buffer_limit = 500.0;
  ComponentSpec src2 = src;
  src2.name = "src2";
  src2.cpu_capacity = 0.1;  // only 10 units/s
  ComponentSpec join = src;
  join.name = "join";
  join.join_inputs = true;
  spec.components = {src, src2, join};
  spec.edges = {{0, 2, 1.0}, {1, 2, 1.0}};
  spec.reference_path = {0, 2};
  Application app(spec, 1);
  app.setWorkload(std::vector<double>(200, 80.0));  // 40 per source
  for (int i = 0; i < 30; ++i) app.step();
  // Join throughput is capped by the starved branch.
  EXPECT_NEAR(app.stateOf(2).processed, 10.0, 2.0);
  // The healthy branch's queue at the join grows (back-pressure source).
  EXPECT_GT(app.stateOf(2).in_queues[0], 100.0);
}

TEST(Application, LatencyRisesWhenSaturated) {
  Application app(pipelineSpec(1.0, 0.2, 500.0), 1);
  app.setWorkload(std::vector<double>(200, 80.0));
  for (int i = 0; i < 5; ++i) app.step();
  const double early = app.latencySeconds();
  for (int i = 0; i < 40; ++i) app.step();
  EXPECT_GT(app.latencySeconds(), early * 5.0);
}

TEST(Application, CriticalPathSeesOffPathBottleneck) {
  // Diamond: src -> {a, b} -> (no sink merge; a and b are sinks). A
  // bottleneck on b must raise the app latency even though a is fine.
  ApplicationSpec spec;
  ComponentSpec src;
  src.name = "src";
  src.cpu_demand = 0.005;
  src.noise_level = 0.0;
  ComponentSpec a = src;
  a.name = "a";
  ComponentSpec b = src;
  b.name = "b";
  spec.components = {src, a, b};
  spec.edges = {{0, 1, 0.5}, {0, 2, 0.5}};
  spec.reference_path = {0, 1};
  Application app(spec, 1);
  app.setWorkload(std::vector<double>(200, 100.0));
  for (int i = 0; i < 10; ++i) app.step();
  const double before = app.latencySeconds();
  app.faultStateOf(2).cpu_cap_factor = 0.05;  // bottleneck the off-path b
  for (int i = 0; i < 40; ++i) app.step();
  EXPECT_GT(app.latencySeconds(), before * 10.0);
}

TEST(Application, SelfWorkReservoirDrivesBatchProgress) {
  ApplicationSpec spec;
  ComponentSpec map;
  map.name = "map";
  map.cpu_demand = 0.01;
  map.self_work_total = 500.0;
  map.self_work_rate = 50.0;
  map.noise_level = 0.0;
  ComponentSpec red = map;
  red.name = "red";
  red.self_work_total = 0.0;
  red.self_work_rate = 0.0;
  spec.components = {map, red};
  spec.edges = {{0, 1, 1.0}};
  spec.reference_path = {0, 1};
  spec.batch = true;
  Application app(spec, 1);
  double last = 0.0;
  for (int i = 0; i < 30; ++i) {
    app.step();
    EXPECT_GE(app.progress(), last);  // monotone
    last = app.progress();
  }
  EXPECT_GT(last, 0.9);  // 500 units at ~50/s: done within ~12 s
}

TEST(Application, WorkloadMultiplierScalesArrivals) {
  Application app(pipelineSpec(), 1);
  app.setWorkload(std::vector<double>(100, 30.0));
  for (int i = 0; i < 10; ++i) app.step();
  const double base = app.stateOf(0).arrived;
  app.setWorkloadMultiplier(2.0);
  app.step();
  EXPECT_NEAR(app.stateOf(0).arrived, base * 2.0, 1e-6);
}

TEST(Application, SourceDropsWhenBufferFull) {
  ApplicationSpec spec = pipelineSpec(0.1, 0.1, 1000.0);  // 10 units/s
  spec.components[0].buffer_limit = 50.0;
  Application app(spec, 1);
  app.setWorkload(std::vector<double>(100, 100.0));
  for (int i = 0; i < 20; ++i) app.step();
  EXPECT_GT(app.stateOf(0).dropped, 0.0);
  // The NIC still sees the offered load.
  EXPECT_NEAR(app.stateOf(0).arrived, 100.0, 1e-6);
}

TEST(Application, EdgeWeightRerouting) {
  ApplicationSpec spec;
  ComponentSpec src;
  src.name = "src";
  src.cpu_demand = 0.005;
  src.noise_level = 0.0;
  ComponentSpec a = src, b = src;
  a.name = "a";
  b.name = "b";
  spec.components = {src, a, b};
  spec.edges = {{0, 1, 0.5}, {0, 2, 0.5}};
  spec.reference_path = {0, 1};
  Application app(spec, 1);
  app.setWorkload(std::vector<double>(100, 60.0));
  for (int i = 0; i < 10; ++i) app.step();
  EXPECT_NEAR(app.stateOf(1).processed, 30.0, 2.0);
  app.setEdgeWeight(0, 1, 1.0);
  app.setEdgeWeight(0, 2, 0.0);
  for (int i = 0; i < 10; ++i) app.step();
  EXPECT_NEAR(app.stateOf(1).processed, 60.0, 3.0);
  EXPECT_NEAR(app.stateOf(2).processed, 0.0, 1e-6);
}

TEST(Application, BatchBurstComponentIdlesBetweenBursts) {
  ApplicationSpec spec = pipelineSpec();
  spec.components[1].burst_period_sec = 10;
  spec.components[1].burst_len_sec = 3;
  spec.components[1].cpu_capacity = 4.0;  // enough to drain in bursts
  Application app(spec, 1);
  app.setWorkload(std::vector<double>(200, 50.0));
  std::size_t idle_ticks = 0, busy_ticks = 0;
  for (int i = 0; i < 100; ++i) {
    app.step();
    if (i < 20) continue;  // warm-up
    if (app.stateOf(1).processed > 1.0) {
      ++busy_ticks;
    } else {
      ++idle_ticks;
    }
  }
  EXPECT_GT(idle_ticks, 40u);
  EXPECT_GT(busy_ticks, 15u);
}

TEST(Application, CycleInTopologyThrows) {
  ApplicationSpec spec = pipelineSpec();
  spec.edges.push_back({1, 0, 1.0});
  EXPECT_THROW(Application(spec, 1), std::invalid_argument);
}

TEST(Application, OutOfRangeEdgeThrows) {
  ApplicationSpec spec = pipelineSpec();
  spec.edges.push_back({0, 9, 1.0});
  EXPECT_THROW(Application(spec, 1), std::invalid_argument);
}

TEST(Application, MetricsRecordedEverySecond) {
  Application app(pipelineSpec(), 1);
  app.setWorkload(std::vector<double>(100, 10.0));
  for (int i = 0; i < 25; ++i) app.step();
  EXPECT_EQ(app.metricsOf(0).size(), 25u);
  EXPECT_EQ(app.metricsOf(1).endTime(), 25);
}

TEST(Application, FindComponentByName) {
  Application app(pipelineSpec(), 1);
  EXPECT_EQ(app.findComponent("sink"), 1u);
  EXPECT_EQ(app.findComponent("nope"), kNoComponent);
}

}  // namespace
}  // namespace fchain::sim
