// Socket transport tests: SocketEndpoint <-> SlaveService over real
// sockets, in one process.
//
// The multiprocess identity suite proves the end-to-end story across real
// process boundaries; this suite pins the transport *taxonomy* — which
// EndpointStatus each failure maps to — with surgical fault injection that
// needs server-side control a separate process can't give:
//   - round-trips (handshake, analyze, ingest, discovery) over unix + tcp;
//   - a raw fake server delivering torn frames, corrupt frames, and
//     future-version frames;
//   - reconnect-with-identity-pinning and the split-brain guard over the
//     wire (two live services claiming one slave id);
//   - the runtime.socket.* metrics the identity suite asserts on;
//   - the FlakyEndpoint/HungEndpoint torn-reply modeling that lets the
//     in-process robustness suites rehearse the same failure mode.
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fchain/slave.h"
#include "fchain/slave_service.h"
#include "obs/metrics.h"
#include "persist/codec.h"
#include "runtime/flaky_endpoint.h"
#include "runtime/hung_endpoint.h"
#include "runtime/slave_registry.h"
#include "runtime/socket.h"
#include "runtime/socket_endpoint.h"
#include "runtime/wire.h"

namespace fchain::runtime {
namespace {

core::FChainSlave makeSlave(HostId host, std::vector<ComponentId> ids) {
  core::FChainSlave slave(host);
  for (ComponentId id : ids) slave.addComponent(id, 0);
  for (TimeSec t = 0; t < 120; ++t) {
    for (ComponentId id : ids) {
      std::array<double, kMetricCount> sample{};
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        sample[m] = 10.0 * static_cast<double>(m + 1) +
                    ((t * 7 + m * 13 + id * 29) % 17) * 0.25;
      }
      slave.ingestAt(id, t, sample);
    }
  }
  return slave;
}

std::string unixSpec(const std::string& name) {
  return ::testing::TempDir() + "/" + name + ".sock";
}

SocketEndpointConfig endpointConfig(const SocketAddress& address,
                                    obs::MetricRegistry* registry = nullptr) {
  SocketEndpointConfig config;
  config.address = address;
  config.connect_timeout_ms = 2000.0;
  config.io_timeout_ms = 5000.0;
  config.registry = registry;
  return config;
}

// --- Round trips over both address families --------------------------------

TEST(SocketTransport, RoundTripsOverUnixSocket) {
  core::FChainSlave slave = makeSlave(0, {0, 1});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(unixSpec("rt_unix"));
  core::SlaveService service(slave, service_config);
  service.start();

  SocketEndpoint endpoint(endpointConfig(service.address()));
  const ComponentListReply listed = endpoint.listComponents();
  ASSERT_EQ(listed.status, EndpointStatus::Ok);
  EXPECT_EQ(listed.components, (std::vector<ComponentId>{0, 1}));
  EXPECT_EQ(endpoint.host(), 0u);
  EXPECT_EQ(endpoint.identity(), wire::slaveIdentityHash(0, {0, 1}));
  EXPECT_TRUE(endpoint.connected());

  // Streaming ingest lands in the live slave.
  IngestRequest ingest;
  ingest.component = 0;
  ingest.t = 120;
  ingest.sample.fill(42.0);
  EXPECT_EQ(endpoint.ingest(ingest).status, EndpointStatus::Ok);
  EXPECT_EQ(slave.seriesOf(0)->endTime(), 121);  // one past the new sample

  // Batched analysis round-trips, nullopt slots included, and matches the
  // local call bit-for-bit.
  AnalyzeBatchRequest batch;
  batch.components = {0, 1, 9};
  batch.violation_time = 110;
  const AnalyzeBatchReply reply = endpoint.analyzeBatch(batch);
  ASSERT_EQ(reply.status, EndpointStatus::Ok);
  ASSERT_EQ(reply.findings.size(), 3u);
  EXPECT_FALSE(reply.findings[2].has_value());  // unknown component
  const auto local = slave.analyzeBatch({0, 1, 9}, 110);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(reply.findings[i].has_value(), local[i].has_value());
    if (!local[i].has_value()) continue;
    EXPECT_EQ(reply.findings[i]->onset, local[i]->onset);
    ASSERT_EQ(reply.findings[i]->metrics.size(), local[i]->metrics.size());
    for (std::size_t m = 0; m < local[i]->metrics.size(); ++m) {
      EXPECT_EQ(reply.findings[i]->metrics[m].prediction_error,
                local[i]->metrics[m].prediction_error);  // bit-exact f64
    }
  }

  // The single-component adapter goes through the same batch RPC.
  AnalyzeRequest single;
  single.component = 0;
  single.violation_time = 110;
  const AnalyzeReply one = endpoint.analyze(single);
  EXPECT_EQ(one.status, EndpointStatus::Ok);
  EXPECT_EQ(one.finding.has_value(), local[0].has_value());

  service.stop();
}

TEST(SocketTransport, RoundTripsOverTcpLoopback) {
  core::FChainSlave slave = makeSlave(3, {7});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::tcp("127.0.0.1", 0);
  core::SlaveService service(slave, service_config);
  service.start();
  // Port 0 resolved to the kernel-assigned port.
  ASSERT_NE(service.address().port, 0);

  SocketEndpoint endpoint(endpointConfig(service.address()));
  const ComponentListReply listed = endpoint.listComponents();
  ASSERT_EQ(listed.status, EndpointStatus::Ok);
  EXPECT_EQ(listed.components, (std::vector<ComponentId>{7}));
  EXPECT_EQ(endpoint.host(), 3u);
  service.stop();
}

// --- Connection failures ----------------------------------------------------

TEST(SocketTransport, UnreachableServerIsUnavailableAfterBoundedRetries) {
  SocketEndpointConfig config =
      endpointConfig(SocketAddress::unixPath(unixSpec("nobody_home")));
  config.reconnect.max_attempts = 2;
  config.reconnect.base_backoff_ms = 1.0;
  config.reconnect.max_backoff_ms = 2.0;
  SocketEndpoint endpoint(config);
  EXPECT_EQ(endpoint.listComponents().status, EndpointStatus::Unavailable);
  EXPECT_FALSE(endpoint.connected());
}

TEST(SocketTransport, ReconnectsAfterServerRestartWithSameIdentity) {
  const std::string path = unixSpec("restart_same");
  core::FChainSlave slave = makeSlave(0, {0, 1});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(path);

  SocketEndpoint endpoint(endpointConfig(service_config.listen));
  {
    core::SlaveService service(slave, service_config);
    service.start();
    ASSERT_EQ(endpoint.listComponents().status, EndpointStatus::Ok);
    service.stop();
  }
  // Server gone: the next call fails through the retry budget...
  EXPECT_NE(endpoint.listComponents().status, EndpointStatus::Ok);
  // ...and a restarted slave with the same manifest re-registers
  // idempotently (same identity hash, pinned connection heals).
  core::SlaveService service(slave, service_config);
  service.start();
  const ComponentListReply listed = endpoint.listComponents();
  ASSERT_EQ(listed.status, EndpointStatus::Ok);
  EXPECT_EQ(endpoint.identity(), wire::slaveIdentityHash(0, {0, 1}));
  service.stop();
}

TEST(SocketTransport, ReconnectToAStrangerIsRefused) {
  const std::string path = unixSpec("stranger");
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(path);

  SocketEndpoint endpoint(endpointConfig(service_config.listen));
  {
    core::FChainSlave slave = makeSlave(0, {0, 1});
    core::SlaveService service(slave, service_config);
    service.start();
    ASSERT_EQ(endpoint.listComponents().status, EndpointStatus::Ok);
    service.stop();
  }
  // A *different* slave (other component claims) now squats on the address:
  // the pinned identity refuses to migrate.
  core::FChainSlave imposter = makeSlave(0, {5, 6});
  core::SlaveService service(imposter, service_config);
  service.start();
  // The first call still holds the dead server's stream and consumes the
  // teardown (Dropped); the reconnect that follows reaches the imposter and
  // is refused by the identity pin — sticky for every later call.
  EXPECT_EQ(endpoint.listComponents().status, EndpointStatus::Dropped);
  EXPECT_EQ(endpoint.listComponents().status, EndpointStatus::Unavailable);
  EXPECT_EQ(endpoint.listComponents().status, EndpointStatus::Unavailable);
  service.stop();
}

// --- Raw fake servers: torn / corrupt / version-mismatch frames -------------

/// Accepts one connection, performs a valid handshake, then answers the
/// next frame with `reply_bytes` sent verbatim (possibly truncated) and
/// closes. Lets the client-side taxonomy be tested byte-by-byte.
class FakeServer {
 public:
  explicit FakeServer(std::vector<std::uint8_t> reply_bytes,
                      bool close_mid_handshake = false)
      : reply_bytes_(std::move(reply_bytes)) {
    listener_ = Listener::listenOn(
        SocketAddress::unixPath(unixSpec("fake_" + std::to_string(next_++))));
    thread_ = std::thread([this, close_mid_handshake] {
      Socket conn = listener_.accept(5000.0);
      if (!conn.valid()) return;
      std::vector<std::uint8_t> frame;
      if (conn.recvFrame(frame, 5000.0) != RecvStatus::Ok) return;  // Hello
      if (close_mid_handshake) {
        // Send half the HelloReply, then die: torn handshake.
        wire::HelloReply hello;
        hello.host = 0;
        hello.components = {0};
        hello.identity_hash = wire::slaveIdentityHash(0, {0});
        const std::vector<std::uint8_t> full = encodeHelloReply(hello);
        const std::vector<std::uint8_t> half(full.begin(),
                                             full.begin() + full.size() / 2);
        conn.sendAll(half, 5000.0);
        return;
      }
      wire::HelloReply hello;
      hello.host = 0;
      hello.components = {0};
      hello.identity_hash = wire::slaveIdentityHash(0, {0});
      if (!conn.sendAll(encodeHelloReply(hello), 5000.0)) return;
      if (conn.recvFrame(frame, 5000.0) != RecvStatus::Ok) return;
      conn.sendAll(reply_bytes_, 5000.0);
      // Closing here turns a truncated reply into a torn frame client-side.
    });
  }
  ~FakeServer() {
    if (thread_.joinable()) thread_.join();
  }
  const SocketAddress& address() const { return listener_.address(); }

 private:
  static inline int next_ = 0;
  std::vector<std::uint8_t> reply_bytes_;
  Listener listener_;
  std::thread thread_;
};

TEST(SocketTransport, TornReplyFrameIsDropped) {
  // A valid IngestReply cut in half: the peer died mid-send.
  const std::vector<std::uint8_t> full =
      wire::encodeIngestReply({EndpointStatus::Ok, 0.0});
  obs::MetricRegistry registry;
  FakeServer server({full.begin(), full.begin() + full.size() / 2});
  SocketEndpointConfig config = endpointConfig(server.address(), &registry);
  config.reconnect.max_attempts = 1;  // no second server to reconnect to
  SocketEndpoint endpoint(config);
  IngestRequest request;
  request.component = 0;
  request.t = 0;
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Dropped);
  EXPECT_FALSE(endpoint.connected());  // torn stream cannot resync
  EXPECT_EQ(registry.counter("runtime.socket.torn_frames").value(), 1u);
}

TEST(SocketTransport, TornHandshakeIsRetriedThenUnavailable) {
  obs::MetricRegistry registry;
  FakeServer server({}, /*close_mid_handshake=*/true);
  SocketEndpointConfig config = endpointConfig(server.address(), &registry);
  config.reconnect.max_attempts = 1;
  SocketEndpoint endpoint(config);
  EXPECT_EQ(endpoint.listComponents().status, EndpointStatus::Unavailable);
  EXPECT_EQ(registry.counter("runtime.socket.torn_frames").value(), 1u);
}

TEST(SocketTransport, CorruptReplyFrameIsDroppedAndCounted) {
  std::vector<std::uint8_t> damaged =
      wire::encodeIngestReply({EndpointStatus::Ok, 0.0});
  damaged[damaged.size() - 1] ^= 0x40;  // payload bit flip: CRC mismatch
  obs::MetricRegistry registry;
  FakeServer server(damaged);
  SocketEndpointConfig config = endpointConfig(server.address(), &registry);
  config.reconnect.max_attempts = 1;
  SocketEndpoint endpoint(config);
  IngestRequest request;
  request.component = 0;
  request.t = 0;
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Dropped);
  EXPECT_EQ(registry.counter("runtime.socket.crc_errors").value(), 1u);
}

TEST(SocketTransport, FutureVersionReplyFailsFastAndSticks) {
  // A frame stamped with a future protocol version: Unavailable, and the
  // endpoint must not reconnect-storm a peer that will never speak v1.
  persist::Encoder payload;
  payload.u8(static_cast<std::uint8_t>(wire::MsgType::IngestReply));
  payload.u8(0);
  payload.f64(0.0);
  const std::vector<std::uint8_t> future =
      persist::frame(wire::kWireMagic, wire::kWireVersion + 1,
                     payload.buffer());
  obs::MetricRegistry registry;
  FakeServer server(future);
  SocketEndpoint endpoint(endpointConfig(server.address(), &registry));
  IngestRequest request;
  request.component = 0;
  request.t = 0;
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Unavailable);
  // Sticky: the next call fails fast without a fresh connect attempt.
  const std::uint64_t connects_before =
      registry.counter("runtime.socket.connects").value();
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Unavailable);
  EXPECT_EQ(registry.counter("runtime.socket.connects").value(),
            connects_before);
}

TEST(SocketTransport, OversizedFrameHeaderIsRejectedBeforeAllocation) {
  // Header declares a payload far past kMaxFramePayload; the reader must
  // refuse at the header, never allocate, never hang waiting for 2^40 bytes.
  persist::Encoder e;
  e.u32(wire::kWireMagic);
  e.u32(wire::kWireVersion);
  e.u64(1ull << 40);
  e.u32(0);  // crc (never reached)
  obs::MetricRegistry registry;
  FakeServer server(e.buffer());
  SocketEndpointConfig config = endpointConfig(server.address(), &registry);
  config.reconnect.max_attempts = 1;
  SocketEndpoint endpoint(config);
  IngestRequest request;
  request.component = 0;
  request.t = 0;
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Dropped);
  EXPECT_EQ(registry.counter("runtime.socket.crc_errors").value(), 1u);
}

// --- Server-side damage handling -------------------------------------------

TEST(SocketTransport, ServerRejectsCorruptFrameWithErrorAndCloses) {
  core::FChainSlave slave = makeSlave(0, {0});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(unixSpec("srv_corrupt"));
  obs::MetricRegistry registry;
  service_config.registry = &registry;
  core::SlaveService service(slave, service_config);
  service.start();

  Socket conn = Socket::connectTo(service.address(), 2000.0);
  ASSERT_TRUE(conn.valid());
  std::vector<std::uint8_t> damaged = wire::encodeHello(wire::Hello{});
  damaged.back() ^= 0x01;
  ASSERT_TRUE(conn.sendAll(damaged, 2000.0));
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(conn.recvFrame(frame, 5000.0), RecvStatus::Ok);
  const wire::Message message = wire::decodeMessage(frame);
  const auto& error = std::get<wire::WireError>(message);
  EXPECT_EQ(error.code, wire::ErrorCode::BadRequest);
  EXPECT_NE(error.message.find("byte offset"), std::string::npos);
  // Connection is closed after damage: the next read sees EOF.
  EXPECT_EQ(conn.recvFrame(frame, 2000.0), RecvStatus::Closed);
  EXPECT_GE(registry.counter("runtime.socket.crc_errors").value(), 1u);
  service.stop();
}

TEST(SocketTransport, ServerRejectsFutureVersionHello) {
  core::FChainSlave slave = makeSlave(0, {0});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(unixSpec("srv_version"));
  core::SlaveService service(slave, service_config);
  service.start();

  Socket conn = Socket::connectTo(service.address(), 2000.0);
  ASSERT_TRUE(conn.valid());
  // A Hello *frame* stamped v1 but whose body claims a future client.
  wire::Hello hello;
  hello.protocol_version = wire::kWireVersion + 7;
  ASSERT_TRUE(conn.sendAll(wire::encodeHello(hello), 2000.0));
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(conn.recvFrame(frame, 5000.0), RecvStatus::Ok);
  const wire::Message message = wire::decodeMessage(frame);
  const auto& error = std::get<wire::WireError>(message);
  EXPECT_EQ(error.code, wire::ErrorCode::VersionMismatch);
  service.stop();
}

// --- Split-brain guard over the wire ----------------------------------------

TEST(SocketTransport, SplitBrainSecondClaimantIsRejected) {
  // Two live processes both claim slave id 0 — with different component
  // sets, so different identity hashes. The second registration must throw,
  // and the registry must keep the first claim.
  core::FChainSlave real = makeSlave(0, {0, 1});
  core::FChainSlave rogue = makeSlave(0, {0, 1, 2});
  core::SlaveServiceConfig real_config;
  real_config.listen = SocketAddress::unixPath(unixSpec("split_real"));
  core::SlaveServiceConfig rogue_config;
  rogue_config.listen = SocketAddress::unixPath(unixSpec("split_rogue"));
  core::SlaveService real_service(real, real_config);
  core::SlaveService rogue_service(rogue, rogue_config);
  real_service.start();
  rogue_service.start();

  core::FChainMaster master;
  SlaveRegistry registry;
  const std::uint64_t identity = core::connectSlave(
      master, registry,
      std::make_shared<SocketEndpoint>(endpointConfig(real_service.address())));
  EXPECT_EQ(identity, wire::slaveIdentityHash(0, {0, 1}));
  EXPECT_THROW(
      core::connectSlave(master, registry,
                         std::make_shared<SocketEndpoint>(
                             endpointConfig(rogue_service.address()))),
      std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);

  // A *restarted* copy of the real slave (same claim, new process) is not
  // split-brain: the identical identity hash re-registers idempotently.
  core::FChainSlave restarted = makeSlave(0, {0, 1});
  core::SlaveServiceConfig restarted_config;
  restarted_config.listen = SocketAddress::unixPath(unixSpec("split_restart"));
  core::SlaveService restarted_service(restarted, restarted_config);
  restarted_service.start();
  core::FChainMaster master2;
  EXPECT_EQ(core::connectSlave(master2, registry,
                               std::make_shared<SocketEndpoint>(endpointConfig(
                                   restarted_service.address()))),
            identity);
  EXPECT_EQ(registry.size(), 1u);

  real_service.stop();
  rogue_service.stop();
  restarted_service.stop();
}

TEST(SocketTransport, RegistryClaimTaxonomy) {
  SlaveRegistry registry;
  EXPECT_EQ(registry.claim(0, 111), SlaveRegistry::Claim::Registered);
  EXPECT_EQ(registry.claim(0, 111), SlaveRegistry::Claim::Reregistered);
  EXPECT_EQ(registry.claim(0, 222), SlaveRegistry::Claim::Rejected);
  EXPECT_EQ(registry.claim(1, 222), SlaveRegistry::Claim::Registered);
  EXPECT_EQ(registry.size(), 2u);
  registry.release(0);
  EXPECT_EQ(registry.claim(0, 222), SlaveRegistry::Claim::Registered);
}

// --- Torn-reply modeling in the in-process chaos decorators ------------------

TEST(SocketTransport, FlakyEndpointModelsTornReplies) {
  core::FChainSlave slave = makeSlave(0, {0});
  FlakyConfig config;
  config.torn_reply_probability = 1.0;
  config.seed = 7;
  FlakyEndpoint endpoint(std::make_shared<LocalEndpoint>(&slave), config);
  IngestRequest request;
  request.component = 0;
  request.t = 500;
  // Torn delivery is Dropped — the retryable taxonomy, same as a real
  // socket's torn frame — and separately countable.
  EXPECT_EQ(endpoint.ingest(request).status, EndpointStatus::Dropped);
  AnalyzeBatchRequest batch;
  batch.components = {0};
  batch.violation_time = 100;
  EXPECT_EQ(endpoint.analyzeBatch(batch).status, EndpointStatus::Dropped);
  EXPECT_EQ(endpoint.tornReplies(), 2u);
}

TEST(SocketTransport, FlakyTornKnobOffPreservesSeededStreams) {
  // The torn-reply roll must not consume an RNG draw when disabled, or
  // every seeded FlakyEndpoint test in the repo would shift behavior.
  core::FChainSlave slave = makeSlave(0, {0});
  FlakyConfig with_knob;
  with_knob.drop_probability = 0.3;
  with_knob.latency_jitter_ms = 2.0;
  with_knob.seed = 99;
  FlakyConfig no_knob = with_knob;
  no_knob.torn_reply_probability = 0.0;  // explicit default
  FlakyEndpoint a(std::make_shared<LocalEndpoint>(&slave), with_knob);
  FlakyEndpoint b(std::make_shared<LocalEndpoint>(&slave), no_knob);
  for (int i = 0; i < 64; ++i) {
    IngestRequest request;
    request.component = 0;
    request.t = 200 + i;
    const IngestReply ra = a.ingest(request);
    const IngestReply rb = b.ingest(request);
    EXPECT_EQ(ra.status, rb.status);
    EXPECT_EQ(ra.latency_ms, rb.latency_ms);
  }
  EXPECT_EQ(a.tornReplies(), 0u);
}

TEST(SocketTransport, HungEndpointTornReleaseAbandonsParkedCalls) {
  core::FChainSlave slave = makeSlave(0, {0});
  auto endpoint = std::make_shared<HungEndpoint>(
      std::make_shared<LocalEndpoint>(&slave), /*start_hung=*/true);
  EndpointStatus parked_status = EndpointStatus::Ok;
  std::thread caller([&] {
    AnalyzeBatchRequest batch;
    batch.components = {0};
    batch.violation_time = 100;
    parked_status = endpoint->analyzeBatch(batch).status;
  });
  while (endpoint->inFlight() == 0) std::this_thread::yield();
  // The peer dies mid-send: the parked call comes back Dropped, having
  // never reached the slave.
  endpoint->releaseWithTornReply();
  caller.join();
  EXPECT_EQ(parked_status, EndpointStatus::Dropped);
  EXPECT_EQ(endpoint->tornReplies(), 1u);
  // Calls after the torn release pass straight through.
  AnalyzeBatchRequest batch;
  batch.components = {0};
  batch.violation_time = 100;
  EXPECT_EQ(endpoint->analyzeBatch(batch).status, EndpointStatus::Ok);
  EXPECT_EQ(endpoint->tornReplies(), 1u);
}

// --- Metrics ----------------------------------------------------------------

TEST(SocketTransport, MetricsCountConnectsAndFrames) {
  core::FChainSlave slave = makeSlave(0, {0});
  core::SlaveServiceConfig service_config;
  service_config.listen = SocketAddress::unixPath(unixSpec("metrics"));
  core::SlaveService service(slave, service_config);
  service.start();

  obs::MetricRegistry registry;
  SocketEndpoint endpoint(endpointConfig(service.address(), &registry));
  ASSERT_EQ(endpoint.listComponents().status, EndpointStatus::Ok);
  EXPECT_EQ(registry.counter("runtime.socket.connects").value(), 1u);
  EXPECT_EQ(registry.counter("runtime.socket.reconnects").value(), 0u);
  // Handshake (Hello + ListComponents) = 2 frames each way.
  EXPECT_EQ(registry.counter("runtime.socket.frames_tx").value(), 2u);
  EXPECT_EQ(registry.counter("runtime.socket.frames_rx").value(), 2u);

  // Force a reconnect: disconnect client-side, call again.
  endpoint.disconnect();
  ASSERT_EQ(endpoint.listComponents().status, EndpointStatus::Ok);
  EXPECT_EQ(registry.counter("runtime.socket.connects").value(), 2u);
  EXPECT_EQ(registry.counter("runtime.socket.reconnects").value(), 1u);
  EXPECT_EQ(registry.counter("runtime.socket.crc_errors").value(), 0u);
  EXPECT_EQ(registry.counter("runtime.socket.torn_frames").value(), 0u);
  service.stop();
}

// --- Address parsing ---------------------------------------------------------

TEST(SocketTransport, AddressSpecsParseAndRoundTrip) {
  const SocketAddress tcp = SocketAddress::parse("tcp:127.0.0.1:8431");
  EXPECT_EQ(tcp.kind, SocketAddress::Kind::Tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 8431);
  EXPECT_EQ(tcp.str(), "tcp:127.0.0.1:8431");
  const SocketAddress unix_addr = SocketAddress::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, SocketAddress::Kind::Unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  EXPECT_EQ(unix_addr.str(), "unix:/tmp/x.sock");
  EXPECT_THROW(SocketAddress::parse("smoke:signals"), std::invalid_argument);
  EXPECT_THROW(SocketAddress::parse("tcp:localhost:notaport"),
               std::invalid_argument);
}

}  // namespace
}  // namespace fchain::runtime
