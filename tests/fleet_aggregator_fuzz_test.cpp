// Seeded fuzz for FleetAggregator::merge: for random incidents and random
// shard partitions, per-shard pinpointing (exactly what a shard master
// computes over its slice) re-merged through the aggregator must reproduce
// the unpartitioned IntegratedPinpointer result byte-for-byte — onset
// ordering, concurrency-window pinning, external-factor classification,
// dependency refinement, and coverage/unanalyzed accounting all compose.
#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fleet/aggregator.h"
#include "netdep/dependency.h"
#include "pinpoint_render.h"

namespace fchain::fleet {
namespace {

constexpr TimeSec kTv = 1000;

struct FuzzIncident {
  core::FChainConfig config;
  std::size_t total = 0;
  /// Aligned with component id: nullopt = analyzed + normal.
  std::vector<std::optional<core::ComponentFinding>> findings;
  std::vector<bool> unanalyzed;
  netdep::DependencyGraph deps{0};
  bool use_deps = false;
};

core::ComponentFinding makeFinding(ComponentId id, TimeSec onset, Trend trend,
                                   Rng& rng) {
  core::ComponentFinding finding;
  finding.component = id;
  finding.onset = onset;
  finding.trend = trend;
  const std::size_t metric_count = 1 + rng.below(3);
  for (std::size_t m = 0; m < metric_count; ++m) {
    core::MetricFinding metric;
    metric.metric = kAllMetrics[rng.below(kMetricCount)];
    metric.onset = onset + static_cast<TimeSec>(rng.below(3));
    metric.change_point = metric.onset - static_cast<TimeSec>(rng.below(5));
    metric.trend = trend;
    metric.prediction_error = rng.uniform(1.0, 9.0);
    metric.expected_error = rng.uniform(0.1, 1.0);
    finding.metrics.push_back(metric);
  }
  return finding;
}

FuzzIncident makeIncident(std::uint64_t seed) {
  Rng rng(mixSeed(0xF1EE7A66, seed));
  FuzzIncident incident;
  incident.total = 1 + rng.below(12);
  incident.config.concurrency_threshold_sec =
      static_cast<TimeSec>(rng.below(3) * 2);  // 0, 2, 4

  // Occasionally shape an external-factor incident (every component
  // abnormal, uniform trend, tight onsets) so that branch composes too.
  const bool external_shape = rng.chance(0.2);
  const Trend uniform_trend = rng.chance(0.5) ? Trend::Up : Trend::Down;

  incident.findings.resize(incident.total);
  incident.unanalyzed.assign(incident.total, false);
  for (ComponentId id = 0; id < incident.total; ++id) {
    if (external_shape) {
      incident.findings[id] = makeFinding(
          id, kTv - 5 - static_cast<TimeSec>(rng.below(10)), uniform_trend,
          rng);
      continue;
    }
    if (rng.chance(0.2)) {
      incident.unanalyzed[id] = true;  // this component's slave was dark
      continue;
    }
    if (rng.chance(0.6)) {
      const Trend trend =
          rng.chance(0.7) ? Trend::Up
                          : (rng.chance(0.5) ? Trend::Down : Trend::Flat);
      incident.findings[id] = makeFinding(
          id, kTv - 1 - static_cast<TimeSec>(rng.below(40)), trend, rng);
    }
  }

  incident.use_deps = rng.chance(0.7);
  incident.deps = netdep::DependencyGraph(incident.total);
  if (incident.use_deps) {
    for (ComponentId a = 0; a < incident.total; ++a) {
      for (ComponentId b = a + 1; b < incident.total; ++b) {
        if (rng.chance(0.3)) incident.deps.addEdge(a, b);
      }
    }
  }
  return incident;
}

/// What a shard master reports for its slice: pinpoint over the slice's
/// findings with slice-local totals, unanalyzed = the slice's dark
/// components (sorted), exactly as FChainMaster::localize builds it.
ShardPartial shardLocalize(const FuzzIncident& incident, ShardId shard,
                           std::vector<ComponentId> slice) {
  const core::IntegratedPinpointer pinpointer(incident.config);
  std::vector<core::ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  for (const ComponentId id : slice) {
    if (incident.unanalyzed[id]) {
      unanalyzed.push_back(id);
    } else if (incident.findings[id].has_value()) {
      findings.push_back(*incident.findings[id]);
    }
  }
  ShardPartial partial;
  partial.shard = shard;
  partial.result = pinpointer.pinpoint(
      std::move(findings), slice.size(),
      incident.use_deps ? &incident.deps : nullptr,
      slice.size() - unanalyzed.size());
  std::sort(unanalyzed.begin(), unanalyzed.end());
  partial.result.unanalyzed = std::move(unanalyzed);
  partial.components = std::move(slice);
  return partial;
}

core::PinpointResult directLocalize(const FuzzIncident& incident) {
  const core::IntegratedPinpointer pinpointer(incident.config);
  std::vector<core::ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  for (ComponentId id = 0; id < incident.total; ++id) {
    if (incident.unanalyzed[id]) {
      unanalyzed.push_back(id);
    } else if (incident.findings[id].has_value()) {
      findings.push_back(*incident.findings[id]);
    }
  }
  core::PinpointResult result = pinpointer.pinpoint(
      std::move(findings), incident.total,
      incident.use_deps ? &incident.deps : nullptr,
      incident.total - unanalyzed.size());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

TEST(FleetAggregatorFuzz, RandomSplitsRemergeToTheUnpartitionedResult) {
  std::size_t external_cases = 0;
  std::size_t multi_shard_cases = 0;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const FuzzIncident incident = makeIncident(seed);
    const core::PinpointResult direct = directLocalize(incident);
    if (direct.external_factor) ++external_cases;

    Rng rng(mixSeed(0x5A117, seed));
    const std::size_t shard_count = 1 + rng.below(5);
    std::vector<std::vector<ComponentId>> slices(shard_count);
    for (ComponentId id = 0; id < incident.total; ++id) {
      slices[rng.below(shard_count)].push_back(id);
    }
    std::vector<ShardPartial> partials;
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (slices[s].empty()) continue;
      partials.push_back(shardLocalize(incident, static_cast<ShardId>(s),
                                       std::move(slices[s])));
    }
    if (partials.size() > 1) ++multi_shard_cases;

    const FleetAggregator aggregator(incident.config);
    const core::PinpointResult merged = aggregator.merge(
        partials, incident.total,
        incident.use_deps ? &incident.deps : nullptr);

    ASSERT_EQ(core::renderPinpoint(merged, kTv),
              core::renderPinpoint(direct, kTv))
        << "seed " << seed << " diverged across " << partials.size()
        << " shards";
    ASSERT_DOUBLE_EQ(merged.coverage, direct.coverage) << "seed " << seed;
    ASSERT_EQ(merged.pinpointed, direct.pinpointed) << "seed " << seed;
  }
  // The corpus must actually exercise the interesting branches.
  EXPECT_GT(external_cases, 20u);
  EXPECT_GT(multi_shard_cases, 600u);
}

TEST(FleetAggregatorFuzz, DarkShardAccountsItsWholeSlice) {
  const FuzzIncident incident = makeIncident(7);
  std::vector<ComponentId> all;
  for (ComponentId id = 0; id < incident.total; ++id) all.push_back(id);

  // Shard 0 dark with the whole incident on it: nothing analyzed.
  const ShardPartial dark = FleetAggregator::darkShard(0, all);
  const FleetAggregator aggregator(incident.config);
  const core::PinpointResult merged = aggregator.merge(
      {dark}, incident.total, incident.use_deps ? &incident.deps : nullptr);
  EXPECT_DOUBLE_EQ(merged.coverage, 0.0);
  EXPECT_EQ(merged.unanalyzed, all);
  EXPECT_TRUE(merged.pinpointed.empty());
}

}  // namespace
}  // namespace fchain::fleet
