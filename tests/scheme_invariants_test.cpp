// Cross-scheme interface invariants: properties every localizer must keep
// regardless of the incident it faces.
#include <gtest/gtest.h>

#include "baselines/fchain_scheme.h"
#include "baselines/graph_schemes.h"
#include "baselines/histogram_scheme.h"
#include "baselines/netmedic.h"
#include "eval/runner.h"

namespace fchain::baselines {
namespace {

const eval::TrialSet& trials() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 2;
    options.base_seed = 19;
    return eval::generateTrials(eval::rubisMemLeak(), options);
  }();
  return set;
}

TEST(SchemeInvariants, OutputsAreSortedAndDuplicateFree) {
  ASSERT_FALSE(trials().trials.empty());
  FChainScheme fchain_scheme;
  HistogramScheme histogram;
  NetMedicScheme netmedic;
  TopologyScheme topology;
  DependencyScheme dependency;
  PalScheme pal;
  const std::vector<const FaultLocalizer*> schemes{
      &fchain_scheme, &histogram, &netmedic, &topology, &dependency, &pal};
  for (const auto& trial : trials().trials) {
    const auto input = eval::inputFor(trial);
    for (const auto* scheme : schemes) {
      for (double threshold : scheme->thresholdSweep()) {
        const auto pinpointed = scheme->localize(input, threshold);
        EXPECT_TRUE(std::is_sorted(pinpointed.begin(), pinpointed.end()))
            << scheme->name();
        EXPECT_EQ(std::adjacent_find(pinpointed.begin(), pinpointed.end()),
                  pinpointed.end())
            << scheme->name() << " produced duplicates";
        for (ComponentId id : pinpointed) {
          EXPECT_LT(id, trial.record.metrics.size()) << scheme->name();
        }
      }
    }
  }
}

TEST(SchemeInvariants, DefaultThresholdIsInTheSweep) {
  FChainScheme fchain_scheme;
  HistogramScheme histogram;
  NetMedicScheme netmedic;
  TopologyScheme topology;
  DependencyScheme dependency;
  PalScheme pal;
  FixedFilteringScheme fixed;
  for (const FaultLocalizer* scheme :
       std::vector<const FaultLocalizer*>{&fchain_scheme, &histogram,
                                          &netmedic, &topology, &dependency,
                                          &pal, &fixed}) {
    const auto sweep = scheme->thresholdSweep();
    EXPECT_FALSE(sweep.empty()) << scheme->name();
    EXPECT_NE(std::find(sweep.begin(), sweep.end(),
                        scheme->defaultThreshold()),
              sweep.end())
        << scheme->name() << ": default threshold not in its own sweep";
  }
}

TEST(SchemeInvariants, LocalizersAreDeterministic) {
  ASSERT_FALSE(trials().trials.empty());
  const auto input = eval::inputFor(trials().trials.front());
  FChainScheme fchain_scheme;
  NetMedicScheme netmedic;
  EXPECT_EQ(fchain_scheme.localize(input, 1.0),
            fchain_scheme.localize(input, 1.0));
  EXPECT_EQ(netmedic.localize(input, 0.1), netmedic.localize(input, 0.1));
}

TEST(SchemeInvariants, TopologySchemeIgnoresDiscoveredGraph) {
  ASSERT_FALSE(trials().trials.empty());
  const auto& trial = trials().trials.front();
  TopologyScheme topology;
  auto input = eval::inputFor(trial);
  const auto with_discovery = topology.localize(input, 2.0);
  netdep::DependencyGraph empty(trial.record.metrics.size());
  input.discovered = &empty;
  EXPECT_EQ(topology.localize(input, 2.0), with_discovery);
}

TEST(SchemeInvariants, PalIgnoresBothGraphs) {
  ASSERT_FALSE(trials().trials.empty());
  const auto& trial = trials().trials.front();
  PalScheme pal;
  auto input = eval::inputFor(trial);
  const auto baseline = pal.localize(input, 2.0);
  netdep::DependencyGraph empty(trial.record.metrics.size());
  input.discovered = &empty;
  input.topology = &empty;
  EXPECT_EQ(pal.localize(input, 2.0), baseline);
}

TEST(SchemeInvariants, NoViolationMeansNoPinpoints) {
  // A record without a violation time: every record-driven scheme must
  // return nothing rather than crash.
  sim::RunRecord record;
  record.app_spec = sim::makeRubisSpec();
  record.metrics.assign(4, MetricSeries(0));
  netdep::DependencyGraph empty(4);
  const auto topology_graph = netdep::fromTopology(record.app_spec);
  LocalizeInput input;
  input.record = &record;
  input.discovered = &empty;
  input.topology = &topology_graph;

  FChainScheme fchain_scheme;
  HistogramScheme histogram;
  EXPECT_TRUE(fchain_scheme.localize(input, 1.0).empty());
  EXPECT_TRUE(histogram.localize(input, 0.4).empty());
}

}  // namespace
}  // namespace fchain::baselines
