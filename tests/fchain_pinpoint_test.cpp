// Tests for the integrated pinpointer: chronological chaining, the
// concurrency threshold, external-factor classification, and dependency
// refinement — including permutation-invariance properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "fchain/pinpoint.h"

namespace fchain::core {
namespace {

ComponentFinding finding(ComponentId id, TimeSec onset,
                         Trend trend = Trend::Up) {
  ComponentFinding f;
  f.component = id;
  f.onset = onset;
  f.trend = trend;
  MetricFinding m;
  m.metric = MetricKind::CpuUsage;
  m.onset = onset;
  m.trend = trend;
  f.metrics.push_back(m);
  return f;
}

/// web(0) -> {app1(1), app2(2)} -> db(3), as in RUBiS.
netdep::DependencyGraph rubisGraph() {
  netdep::DependencyGraph graph(4);
  graph.addEdge(0, 1);
  graph.addEdge(0, 2);
  graph.addEdge(1, 3);
  graph.addEdge(2, 3);
  return graph;
}

TEST(Pinpoint, EmptyFindingsPinpointNothing) {
  IntegratedPinpointer pinpointer;
  const auto result = pinpointer.pinpoint({}, 4, nullptr);
  EXPECT_TRUE(result.pinpointed.empty());
  EXPECT_FALSE(result.external_factor);
}

TEST(Pinpoint, EarliestOnsetWins) {
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(3, 100), finding(1, 110), finding(0, 120)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{3}));
  ASSERT_EQ(result.chain.size(), 3u);
  EXPECT_EQ(result.chain.front().component, 3u);
}

TEST(Pinpoint, ConcurrentOnsetsWithinThresholdAreAllPinpointed) {
  IntegratedPinpointer pinpointer;  // threshold 2 s
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(1, 100), finding(2, 101), finding(3, 108)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1, 2}));
}

TEST(Pinpoint, ConcurrencyThresholdIsConfigurable) {
  FChainConfig config;
  config.concurrency_threshold_sec = 10;
  IntegratedPinpointer pinpointer(config);
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(1, 100), finding(3, 108)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1, 3}));
}

TEST(Pinpoint, IndependentSiblingIsItsOwnFault) {
  // app1 leads; app2 is abnormal later but no dependency path connects the
  // two application servers -> app2 carries an independent fault (the
  // Fig. 5 spurious-propagation case).
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(1, 100), finding(2, 110)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1, 2}));
}

TEST(Pinpoint, ConnectedLaterOnsetIsExplainedAway) {
  // db leads; app1 and web follow. Both are dependency-connected to db
  // (propagation is feasible), so only db is pinpointed.
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(3, 100), finding(1, 106), finding(0, 113)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{3}));
}

TEST(Pinpoint, WithoutDependencyInfoChronologyAlone) {
  // Same sibling case but no dependency graph: FChain falls back to pure
  // chronology (the System S situation) and app2 is NOT pinpointed.
  IntegratedPinpointer pinpointer;
  const auto result = pinpointer.pinpoint(
      {finding(1, 100), finding(2, 110)}, 4, nullptr);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1}));

  netdep::DependencyGraph empty(4);
  const auto result2 = pinpointer.pinpoint(
      {finding(1, 100), finding(2, 110)}, 4, &empty);
  EXPECT_EQ(result2.pinpointed, (std::vector<ComponentId>{1}));
}

TEST(Pinpoint, DependencyAblationFlagDisablesRefinement) {
  FChainConfig config;
  config.use_dependency = false;
  IntegratedPinpointer pinpointer(config);
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(1, 100), finding(2, 110)}, 4, &graph);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1}));
}

TEST(Pinpoint, ExternalFactorWhenAllComponentsTrendTogether) {
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(0, 100), finding(1, 101), finding(2, 102), finding(3, 103)},
      4, &graph);
  EXPECT_TRUE(result.external_factor);
  EXPECT_EQ(result.external_trend, Trend::Up);
  EXPECT_TRUE(result.pinpointed.empty());
}

TEST(Pinpoint, CounterTrendingMetricVetoesExternalVerdict) {
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  auto culprit = finding(3, 100, Trend::Up);
  MetricFinding down;
  down.metric = MetricKind::NetworkOut;
  down.onset = 101;
  down.trend = Trend::Down;
  culprit.metrics.push_back(down);
  const auto result = pinpointer.pinpoint(
      {finding(0, 100), finding(1, 101), finding(2, 102), culprit}, 4,
      &graph);
  EXPECT_FALSE(result.external_factor);
}

TEST(Pinpoint, WideOnsetSpreadVetoesExternalVerdict) {
  IntegratedPinpointer pinpointer;  // default spread limit 20 s
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(0, 100), finding(1, 101), finding(2, 102), finding(3, 190)},
      4, &graph);
  EXPECT_FALSE(result.external_factor);
}

TEST(Pinpoint, PartialCoverageIsNeverExternal) {
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto result = pinpointer.pinpoint(
      {finding(0, 100), finding(1, 101), finding(2, 102)}, 4, &graph);
  EXPECT_FALSE(result.external_factor);
}

class PinpointPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PinpointPermutation, ResultIsOrderInvariant) {
  // Property: the pinpointing verdict must not depend on the order in which
  // the slaves' findings arrive at the master.
  std::vector<ComponentFinding> findings{
      finding(3, 100), finding(1, 104), finding(2, 101), finding(0, 113)};
  IntegratedPinpointer pinpointer;
  const auto graph = rubisGraph();
  const auto reference =
      pinpointer.pinpoint(findings, 5, &graph).pinpointed;

  Rng rng(GetParam());
  for (std::size_t i = findings.size() - 1; i > 0; --i) {
    std::swap(findings[i], findings[rng.below(i + 1)]);
  }
  EXPECT_EQ(pinpointer.pinpoint(findings, 5, &graph).pinpointed, reference);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, PinpointPermutation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Pinpoint, ChainIsSortedByOnset) {
  IntegratedPinpointer pinpointer;
  const auto result = pinpointer.pinpoint(
      {finding(2, 300), finding(0, 100), finding(1, 200)}, 5, nullptr);
  ASSERT_EQ(result.chain.size(), 3u);
  EXPECT_TRUE(std::is_sorted(result.chain.begin(), result.chain.end(),
                             [](const auto& a, const auto& b) {
                               return a.onset < b.onset;
                             }));
}

TEST(Pinpoint, TieBreakOnEqualOnsetIsById) {
  IntegratedPinpointer pinpointer;
  const auto result = pinpointer.pinpoint(
      {finding(2, 100), finding(1, 100)}, 5, nullptr);
  EXPECT_EQ(result.pinpointed, (std::vector<ComponentId>{1, 2}));
}

}  // namespace
}  // namespace fchain::core
