// Unit & property tests for markov/: discretizer, Markov transition model,
// and the online predictor (PRESS-style normal fluctuation model).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "common/stats.h"
#include "markov/discretizer.h"
#include "markov/markov_model.h"
#include "markov/predictor.h"

namespace fchain::markov {
namespace {

// ---------------------------------------------------------- discretizer ---

TEST(Discretizer, CalibratesAfterEnoughSamples) {
  Discretizer d(10, 5, 0.0);
  EXPECT_FALSE(d.calibrated());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.observe(i));
  EXPECT_TRUE(d.observe(4.0));
  EXPECT_TRUE(d.calibrated());
  EXPECT_LE(d.rangeLo(), 0.0);
  EXPECT_GE(d.rangeHi(), 4.0);
}

TEST(Discretizer, StateAndCenterAreConsistent) {
  Discretizer d(8, 4, 0.0);
  for (double x : {0.0, 2.0, 6.0, 8.0}) d.observe(x);
  for (std::size_t s = 0; s < d.bins(); ++s) {
    EXPECT_EQ(d.stateOf(d.centerOf(s)), s);
  }
}

TEST(Discretizer, OutOfRangeValuesClampToEdges) {
  Discretizer d(10, 3, 0.0);
  for (double x : {0.0, 5.0, 10.0}) d.observe(x);
  EXPECT_EQ(d.stateOf(-1000.0), 0u);
  EXPECT_EQ(d.stateOf(1000.0), d.bins() - 1);
}

TEST(Discretizer, UncalibratedAccessThrows) {
  Discretizer d(10, 5, 0.0);
  EXPECT_THROW(d.stateOf(1.0), std::logic_error);
  EXPECT_THROW(d.centerOf(1), std::logic_error);
}

TEST(Discretizer, ConstantInputStillGetsValidRange) {
  Discretizer d(10, 5, 0.25);
  for (int i = 0; i < 5; ++i) d.observe(7.0);
  EXPECT_TRUE(d.calibrated());
  EXPECT_LT(d.rangeLo(), 7.0);
  EXPECT_GT(d.rangeHi(), 7.0);
  EXPECT_EQ(d.stateOf(d.centerOf(3)), 3u);
}

// ----------------------------------------------------------------- model ---

TEST(MarkovModel, LearnsDeterministicCycle) {
  MarkovModel model(3, 1.0, 0.01);
  // 0 -> 1 -> 2 -> 0 -> ...
  for (int round = 0; round < 50; ++round) {
    model.recordTransition(0, 1);
    model.recordTransition(1, 2);
    model.recordTransition(2, 0);
  }
  EXPECT_EQ(model.likeliestNextState(0), 1u);
  EXPECT_EQ(model.likeliestNextState(1), 2u);
  EXPECT_EQ(model.likeliestNextState(2), 0u);
  EXPECT_GT(model.transitionProbability(0, 1), 0.95);
  EXPECT_NEAR(model.expectedNextState(0), 1.0, 1e-9);
}

TEST(MarkovModel, UnseenStatePredictsItself) {
  MarkovModel model(5);
  EXPECT_FALSE(model.seenState(3));
  EXPECT_DOUBLE_EQ(model.expectedNextState(3), 3.0);
  EXPECT_EQ(model.likeliestNextState(3), 3u);
}

TEST(MarkovModel, DecayForgetsOldBehaviour) {
  MarkovModel model(2, 0.9, 0.0);
  for (int i = 0; i < 100; ++i) model.recordTransition(0, 0);
  for (int i = 0; i < 60; ++i) model.recordTransition(0, 1);
  // With decay 0.9, the recent 0->1 transitions dominate.
  EXPECT_EQ(model.likeliestNextState(0), 1u);
}

TEST(MarkovModel, ProbabilitiesSumToOne) {
  MarkovModel model(4, 1.0, 0.1);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    model.recordTransition(rng.below(4), rng.below(4));
  }
  for (std::size_t from = 0; from < 4; ++from) {
    double total = 0.0;
    for (std::size_t to = 0; to < 4; ++to) {
      total += model.transitionProbability(from, to);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovModel, InvalidArgumentsThrow) {
  EXPECT_THROW(MarkovModel(0), std::invalid_argument);
  EXPECT_THROW(MarkovModel(4, 0.0), std::invalid_argument);
  EXPECT_THROW(MarkovModel(4, 1.5), std::invalid_argument);
  MarkovModel model(3);
  EXPECT_THROW(model.recordTransition(0, 7), std::out_of_range);
}

// ------------------------------------------------------------- predictor ---

TEST(OnlinePredictor, ErrorsAreZeroDuringCalibration) {
  PredictorConfig config;
  config.calibration_samples = 20;
  OnlinePredictor predictor(0, config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(predictor.observe(10.0 + i % 3), 0.0);
  }
  EXPECT_TRUE(predictor.ready());
  EXPECT_EQ(predictor.errors().size(), 20u);
}

TEST(OnlinePredictor, ConstantSeriesBecomesPerfectlyPredictable) {
  OnlinePredictor predictor(0);
  double last_error = 0.0;
  for (int i = 0; i < 300; ++i) last_error = predictor.observe(50.0);
  EXPECT_LT(last_error, 1.0);  // within one bin width
}

TEST(OnlinePredictor, LearnedOscillationHasLowError) {
  // A deterministic square wave: after enough cycles, the transition
  // pattern is fully learned and errors collapse.
  OnlinePredictor predictor(0);
  std::vector<double> tail_errors;
  for (int i = 0; i < 600; ++i) {
    const double value = (i / 10) % 2 == 0 ? 20.0 : 80.0;
    const double error = predictor.observe(value);
    if (i >= 500) tail_errors.push_back(error);
  }
  // Most ticks are mid-plateau and nearly predictable (the expectation
  // prediction keeps a small bias toward the other plateau); only the 2
  // flips per 20 ticks carry the full 60-unit swing as error.
  EXPECT_LT(fchain::median(tail_errors), 10.0);
}

TEST(OnlinePredictor, NovelJumpProducesLargeErrorSpike) {
  PredictorConfig config;
  OnlinePredictor predictor(0, config);
  Rng rng(12);
  for (int i = 0; i < 400; ++i) predictor.observe(rng.gaussian(100.0, 2.0));
  // A fault-like excursion far outside the learned range: the first novel
  // sample mispredicts by roughly the whole excursion.
  const double spike = predictor.observe(400.0);
  const auto errors = predictor.errors().values();
  std::vector<double> normal(errors.begin() + 100, errors.end() - 1);
  EXPECT_GT(spike, 10.0 * fchain::percentile(normal, 90.0));
  // Once inside the excursion, persistence prediction takes over and the
  // error collapses again (the novel state has no learned transitions).
  EXPECT_LT(predictor.observe(400.0), spike * 0.1);
}

TEST(OnlinePredictor, ErrorSeriesAlignsWithSamples) {
  OnlinePredictor predictor(1000);
  for (int i = 0; i < 50; ++i) predictor.observe(1.0);
  EXPECT_EQ(predictor.errors().startTime(), 1000);
  EXPECT_EQ(predictor.errors().endTime(), 1050);
}

}  // namespace
}  // namespace fchain::markov
