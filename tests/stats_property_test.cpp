// Property-style sweeps over the statistics helpers: invariances that must
// hold for arbitrary inputs (TEST_P over seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace fchain {
namespace {

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> randomData(std::size_t n) {
    Rng rng(GetParam());
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(-100.0, 100.0);
    return xs;
  }
};

TEST_P(StatsProperty, PercentileIsMonotoneInP) {
  const auto xs = randomData(73);
  double previous = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double current = percentile(xs, p);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST_P(StatsProperty, PercentileIsPermutationInvariant) {
  auto xs = randomData(50);
  const double p90 = percentile(xs, 90.0);
  Rng rng(GetParam() ^ 0xabc);
  for (std::size_t i = xs.size() - 1; i > 0; --i) {
    std::swap(xs[i], xs[rng.below(i + 1)]);
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 90.0), p90);
}

TEST_P(StatsProperty, MeanAndMedianAreTranslationEquivariant) {
  const auto xs = randomData(41);
  std::vector<double> shifted(xs);
  for (double& x : shifted) x += 1234.5;
  EXPECT_NEAR(mean(shifted), mean(xs) + 1234.5, 1e-9);
  EXPECT_NEAR(median(shifted), median(xs) + 1234.5, 1e-9);
  // MAD is translation invariant.
  EXPECT_NEAR(medianAbsDeviation(shifted), medianAbsDeviation(xs), 1e-9);
}

TEST_P(StatsProperty, ScaleEquivariance) {
  const auto xs = randomData(41);
  std::vector<double> scaled(xs);
  for (double& x : scaled) x *= 3.0;
  EXPECT_NEAR(stddev(scaled), 3.0 * stddev(xs), 1e-9);
  EXPECT_NEAR(medianAbsDeviation(scaled), 3.0 * medianAbsDeviation(xs), 1e-9);
  EXPECT_NEAR(slope(scaled), 3.0 * slope(xs), 1e-9);
}

TEST_P(StatsProperty, VarianceMatchesDefinition) {
  const auto xs = randomData(29);
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  EXPECT_NEAR(variance(xs), sum / static_cast<double>(xs.size() - 1), 1e-9);
}

TEST_P(StatsProperty, KlDivergenceIsNonNegativeAndZeroOnSelf) {
  Rng rng(GetParam());
  Histogram p(0, 1, 12);
  Histogram q(0, 1, 12);
  for (int i = 0; i < 500; ++i) {
    p.add(rng.uniform());
    q.add(std::pow(rng.uniform(), 2.0));  // different shape
  }
  EXPECT_GE(klDivergence(p, q), 0.0);
  EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-12);
}

TEST_P(StatsProperty, HistogramProbabilitiesFormADistribution) {
  Rng rng(GetParam());
  Histogram h(-5, 5, 17);
  for (int i = 0; i < 200; ++i) h.add(rng.gaussian());
  double total = 0.0;
  for (std::size_t i = 0; i < h.binCount(); ++i) {
    const double pi = h.probability(i);
    EXPECT_GT(pi, 0.0);  // Laplace smoothing keeps every bin positive
    total += pi;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(StatsProperty, PearsonIsBoundedAndSymmetric) {
  Rng rng(GetParam());
  std::vector<double> xs(60), ys(60);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.gaussian();
    ys[i] = 0.4 * xs[i] + rng.gaussian();
  }
  const double r = pearson(xs, ys);
  EXPECT_GE(r, -1.0 - 1e-12);
  EXPECT_LE(r, 1.0 + 1e-12);
  EXPECT_NEAR(pearson(ys, xs), r, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fchain
