// Property-style sweeps over the statistics helpers: invariances that must
// hold for arbitrary inputs (TEST_P over seeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"

namespace fchain {
namespace {

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> randomData(std::size_t n) {
    Rng rng(GetParam());
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(-100.0, 100.0);
    return xs;
  }
};

// --- Percentile boundary contract (exhaustive edge cases) ------------------

TEST(PercentileBoundary, EmptyInputThrows) {
  EXPECT_THROW(percentile(std::span<const double>{}, 50.0),
               std::invalid_argument);
  EXPECT_THROW(percentileInPlace(std::span<double>{}, 50.0),
               std::invalid_argument);
  EXPECT_THROW(median(std::span<const double>{}), std::invalid_argument);
}

TEST(PercentileBoundary, NanRankThrowsInsteadOfUndefinedCast) {
  // A NaN p used to be cast straight to size_t (undefined behaviour and a
  // garbage rank). It must throw for every input size.
  const std::vector<double> one{3.0};
  const std::vector<double> many{1.0, 2.0, 3.0, 4.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(percentile(many, nan), std::invalid_argument);
  EXPECT_THROW(percentile(one, nan), std::invalid_argument);
  std::vector<double> buf = many;
  EXPECT_THROW(percentileInPlace(buf, nan), std::invalid_argument);
}

TEST(PercentileBoundary, SingleElementReturnsItForEveryRank) {
  const std::vector<double> xs{42.5};
  for (double p : {0.0, 0.001, 50.0, 99.999, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(xs, p), 42.5) << "p=" << p;
  }
}

TEST(PercentileBoundary, EndpointsAreExactMinAndMax) {
  const std::vector<double> xs{7.0, -3.0, 5.0, 11.0, 0.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 11.0);
  // Out-of-range ranks clamp to the endpoints.
  EXPECT_DOUBLE_EQ(percentile(xs, -10.0), -3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 11.0);
}

TEST(PercentileBoundary, InfiniteExtremesDoNotPoisonExactRanks) {
  // With interpolation arithmetic at exact ranks, an infinite neighbour
  // produced inf * 0 = NaN. Exact ranks must return the element directly.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs{1.0, 2.0, inf};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
  EXPECT_EQ(percentile(xs, 100.0), inf);
  const std::vector<double> neg{-inf, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(neg, 50.0), 5.0);
  EXPECT_EQ(percentile(neg, 0.0), -inf);
}

TEST(PercentileBoundary, TwoElementInterpolation) {
  const std::vector<double> xs{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 12.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 20.0);
}

TEST(PercentileBoundary, InPlaceVariantMatchesAllocatingVariant) {
  Rng rng(5);
  std::vector<double> xs(37);
  for (double& x : xs) x = rng.uniform(-50.0, 50.0);
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    std::vector<double> buf = xs;
    EXPECT_EQ(percentileInPlace(buf, p), percentile(xs, p)) << "p=" << p;
  }
  std::vector<double> buf = xs;
  EXPECT_EQ(medianInPlace(buf), median(xs));
}

TEST(PercentileBoundary, BufferedMadMatchesAllocatingMad) {
  Rng rng(6);
  std::vector<double> xs(41);
  for (double& x : xs) x = rng.uniform(-50.0, 50.0);
  std::vector<double> work, deviations;
  EXPECT_EQ(medianAbsDeviation(xs, work, deviations), medianAbsDeviation(xs));
  // And with warm (over-sized) buffers, which must be resized down.
  work.assign(500, 0.0);
  deviations.assign(500, 0.0);
  EXPECT_EQ(medianAbsDeviation(xs, work, deviations), medianAbsDeviation(xs));
}

TEST_P(StatsProperty, PercentileIsMonotoneInP) {
  const auto xs = randomData(73);
  double previous = percentile(xs, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double current = percentile(xs, p);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST_P(StatsProperty, PercentileIsPermutationInvariant) {
  auto xs = randomData(50);
  const double p90 = percentile(xs, 90.0);
  Rng rng(GetParam() ^ 0xabc);
  for (std::size_t i = xs.size() - 1; i > 0; --i) {
    std::swap(xs[i], xs[rng.below(i + 1)]);
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 90.0), p90);
}

TEST_P(StatsProperty, MeanAndMedianAreTranslationEquivariant) {
  const auto xs = randomData(41);
  std::vector<double> shifted(xs);
  for (double& x : shifted) x += 1234.5;
  EXPECT_NEAR(mean(shifted), mean(xs) + 1234.5, 1e-9);
  EXPECT_NEAR(median(shifted), median(xs) + 1234.5, 1e-9);
  // MAD is translation invariant.
  EXPECT_NEAR(medianAbsDeviation(shifted), medianAbsDeviation(xs), 1e-9);
}

TEST_P(StatsProperty, ScaleEquivariance) {
  const auto xs = randomData(41);
  std::vector<double> scaled(xs);
  for (double& x : scaled) x *= 3.0;
  EXPECT_NEAR(stddev(scaled), 3.0 * stddev(xs), 1e-9);
  EXPECT_NEAR(medianAbsDeviation(scaled), 3.0 * medianAbsDeviation(xs), 1e-9);
  EXPECT_NEAR(slope(scaled), 3.0 * slope(xs), 1e-9);
}

TEST_P(StatsProperty, VarianceMatchesDefinition) {
  const auto xs = randomData(29);
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  EXPECT_NEAR(variance(xs), sum / static_cast<double>(xs.size() - 1), 1e-9);
}

TEST_P(StatsProperty, KlDivergenceIsNonNegativeAndZeroOnSelf) {
  Rng rng(GetParam());
  Histogram p(0, 1, 12);
  Histogram q(0, 1, 12);
  for (int i = 0; i < 500; ++i) {
    p.add(rng.uniform());
    q.add(std::pow(rng.uniform(), 2.0));  // different shape
  }
  EXPECT_GE(klDivergence(p, q), 0.0);
  EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-12);
}

TEST_P(StatsProperty, HistogramProbabilitiesFormADistribution) {
  Rng rng(GetParam());
  Histogram h(-5, 5, 17);
  for (int i = 0; i < 200; ++i) h.add(rng.gaussian());
  double total = 0.0;
  for (std::size_t i = 0; i < h.binCount(); ++i) {
    const double pi = h.probability(i);
    EXPECT_GT(pi, 0.0);  // Laplace smoothing keeps every bin positive
    total += pi;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(StatsProperty, PearsonIsBoundedAndSymmetric) {
  Rng rng(GetParam());
  std::vector<double> xs(60), ys(60);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.gaussian();
    ys[i] = 0.4 * xs[i] + rng.gaussian();
  }
  const double r = pearson(xs, ys);
  EXPECT_GE(r, -1.0 - 1e-12);
  EXPECT_LE(r, 1.0 + 1e-12);
  EXPECT_NEAR(pearson(ys, xs), r, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace fchain
