// Scenario-level regression tests for the *qualitative claims* of the paper
// that the reproduction must keep true — onset orderings, back-pressure
// directions, discovery behaviour — independent of the aggregate accuracy
// numbers the benches measure.
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "fchain/fchain.h"

namespace fchain {
namespace {

std::vector<core::ComponentFinding> findingsFor(
    const sim::RunRecord& record, const core::FChainConfig& config) {
  const TimeSec tv = *record.violation_time;
  core::AbnormalChangeSelector selector(config);
  std::vector<core::ComponentFinding> findings;
  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    const auto model =
        core::replayModel(record.metrics[id], tv + 1, config.predictor);
    if (auto finding =
            selector.analyzeComponent(id, record.metrics[id], model, tv)) {
      findings.push_back(std::move(*finding));
    }
  }
  return findings;
}

std::optional<TimeSec> onsetOf(
    const std::vector<core::ComponentFinding>& findings, ComponentId id) {
  for (const auto& finding : findings) {
    if (finding.component == id) return finding.onset;
  }
  return std::nullopt;
}

TEST(PaperClaims, FaultyComponentManifestsFirst) {
  // §II-A observation 2: "abnormal system metric changes often start from
  // the faulty components and then propagate". The culprit's onset must be
  // the earliest whenever both culprit and neighbours are flagged.
  for (std::uint64_t seed : {42, 43, 44}) {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = seed;
    const auto set = eval::generateTrials(eval::rubisCpuHog(), options);
    if (set.trials.empty()) continue;
    const auto& record = set.trials.front().record;
    const auto findings = findingsFor(record, {});
    const auto culprit_onset = onsetOf(findings, 3);
    if (!culprit_onset.has_value()) continue;
    for (const auto& finding : findings) {
      EXPECT_GE(finding.onset, *culprit_onset)
          << "component " << finding.component << " manifested before the "
          << "faulty db (seed " << seed << ")";
    }
  }
}

TEST(PaperClaims, BackPressureReachesUpstreamTiers) {
  // §II-C: a faulty last tier drives its *upstream* tiers abnormal. Over a
  // few MemLeak-at-db incidents, at least one of app1/app2/web must appear
  // in the abnormal chain after the db.
  std::size_t upstream_affected = 0, incidents = 0;
  for (std::uint64_t seed : {42, 43, 44, 45}) {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = seed;
    const auto set = eval::generateTrials(eval::rubisMemLeak(), options);
    if (set.trials.empty()) continue;
    ++incidents;
    const auto findings = findingsFor(set.trials.front().record, {});
    for (const auto& finding : findings) {
      if (finding.component != 3) {
        ++upstream_affected;
        break;
      }
    }
  }
  ASSERT_GE(incidents, 2u);
  EXPECT_GE(upstream_affected, incidents / 2);
}

TEST(PaperClaims, PropagationDelaysExceedClockSkew) {
  // Footnote 2: anomaly propagation delays between dependent components are
  // "at least several seconds", so NTP-level skew (< 5 ms) cannot flip the
  // onset order. Verify the margin on real incidents.
  for (std::uint64_t seed : {42, 45}) {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = seed;
    const auto set = eval::generateTrials(eval::rubisNetHog(), options);
    if (set.trials.empty()) continue;
    const auto findings = findingsFor(set.trials.front().record, {});
    const auto web = onsetOf(findings, 0);
    if (!web.has_value()) continue;
    for (const auto& finding : findings) {
      if (finding.component == 0) continue;
      // Downstream onsets trail the culprit by >= 1 s (our sampling grid),
      // three orders of magnitude above the 5 ms skew bound.
      EXPECT_GE(finding.onset - *web, 1);
    }
  }
}

TEST(PaperClaims, StreamingDefeatsDiscoveryButNotFChain) {
  // §II-C + §III-B: System S yields no discovered dependencies, yet FChain
  // still localizes via chronology.
  eval::TrialOptions options;
  options.trials = 3;
  options.base_seed = 42;
  const auto set = eval::generateTrials(eval::systemsMemLeak(), options);
  ASSERT_FALSE(set.trials.empty());
  eval::Counts counts;
  for (const auto& trial : set.trials) {
    EXPECT_TRUE(trial.discovered.empty());
    counts.accumulate(
        core::localizeRecord(trial.record, &trial.discovered, {}).pinpointed,
        trial.record.ground_truth);
  }
  EXPECT_GE(counts.f1(), 0.6);
}

TEST(PaperClaims, HadoopMapsLeadReducesByShuffleLag) {
  // The Hadoop InfiniteLoop stall: map onsets must lead any reduce onsets
  // by more than the 2 s concurrency threshold (the shuffle batching lag),
  // which is what keeps the reduces out of the pinpointed set.
  eval::TrialOptions options;
  options.trials = 2;
  options.base_seed = 42;
  const auto set = eval::generateTrials(eval::hadoopConcCpuHog(), options);
  ASSERT_FALSE(set.trials.empty());
  for (const auto& trial : set.trials) {
    const auto findings =
        findingsFor(trial.record, eval::hadoopConcCpuHog().fchain_config);
    TimeSec latest_map = -1, earliest_reduce = 1 << 30;
    for (const auto& finding : findings) {
      if (finding.component < 3) {
        latest_map = std::max(latest_map, finding.onset);
      } else {
        earliest_reduce = std::min(earliest_reduce, finding.onset);
      }
    }
    ASSERT_GE(latest_map, 0);
    if (earliest_reduce != (1 << 30)) {
      EXPECT_GT(earliest_reduce - latest_map, 2);
    }
  }
}

TEST(PaperClaims, ValidationTakesAboutThirtySimulatedSeconds) {
  // Table II: online validation is ~30 s per component because the scaling
  // impact needs observation time. Our validator replays exactly that.
  core::ValidationConfig config;
  EXPECT_EQ(config.observe_sec, 30u);
}

}  // namespace
}  // namespace fchain
