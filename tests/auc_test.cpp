// Tests for curve summary statistics.
#include <gtest/gtest.h>

#include "eval/auc.h"

namespace fchain::eval {
namespace {

RocPoint point(double precision, double recall, double threshold = 1.0) {
  RocPoint p;
  p.threshold = threshold;
  p.precision = precision;
  p.recall = recall;
  // Back-fill counts consistent with 100 ground-truth positives.
  p.counts.tp = static_cast<std::size_t>(recall * 100);
  p.counts.fn = 100 - p.counts.tp;
  if (precision > 0) {
    p.counts.fp = static_cast<std::size_t>(
        static_cast<double>(p.counts.tp) * (1.0 - precision) / precision);
  }
  return p;
}

TEST(Auc, PerfectSchemeHasUnitArea) {
  SchemeCurve curve;
  curve.points = {point(1.0, 1.0)};
  EXPECT_NEAR(prAuc(curve), 1.0, 1e-9);
}

TEST(Auc, EmptyCurveIsZero) {
  EXPECT_DOUBLE_EQ(prAuc(SchemeCurve{}), 0.0);
  EXPECT_DOUBLE_EQ(bestF1(SchemeCurve{}), 0.0);
}

TEST(Auc, TrapezoidOverTwoPoints) {
  SchemeCurve curve;
  curve.points = {point(1.0, 0.5), point(0.5, 1.0)};
  // Anchored at (0, 1.0): area = 0.5*1.0 (flat to recall .5)
  //                            + 0.5*(1.0+0.5)/2 = 0.875.
  EXPECT_NEAR(prAuc(curve), 0.875, 1e-9);
}

TEST(Auc, DuplicateRecallKeepsBestPrecision) {
  SchemeCurve curve;
  curve.points = {point(0.2, 0.8), point(0.9, 0.8)};
  SchemeCurve clean;
  clean.points = {point(0.9, 0.8)};
  EXPECT_NEAR(prAuc(curve), prAuc(clean), 1e-9);
}

TEST(Auc, MoreAccurateCurveScoresHigher) {
  SchemeCurve strong;
  strong.points = {point(0.95, 0.9), point(0.8, 0.95)};
  SchemeCurve weak;
  weak.points = {point(0.5, 0.4), point(0.3, 0.6)};
  EXPECT_GT(prAuc(strong), prAuc(weak));
  EXPECT_GT(bestF1(strong), bestF1(weak));
}

TEST(Auc, DominanceCount) {
  SchemeCurve strong;
  strong.points = {point(0.9, 0.9)};
  SchemeCurve weak;
  weak.points = {point(0.5, 0.5), point(0.95, 0.2), point(0.2, 0.95)};
  // Only (0.5, 0.5) is strictly dominated by (0.9, 0.9).
  EXPECT_EQ(dominatedPoints(strong, weak), 1u);
  EXPECT_EQ(dominatedPoints(weak, strong), 0u);
}

}  // namespace
}  // namespace fchain::eval
