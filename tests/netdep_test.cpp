// Tests for netdep/: packet trace synthesis, gap-based flow extraction,
// dependency discovery (including the documented System S failure), and the
// dependency graph utilities.
#include <gtest/gtest.h>

#include "eval/runner.h"
#include "netdep/dependency.h"

namespace fchain::netdep {
namespace {

// --------------------------------------------------------------- graph ---

TEST(DependencyGraph, EdgesAndReachability) {
  DependencyGraph graph(4);
  graph.addEdge(0, 1);
  graph.addEdge(1, 2);
  EXPECT_TRUE(graph.hasEdge(0, 1));
  EXPECT_FALSE(graph.hasEdge(1, 0));
  EXPECT_TRUE(graph.reaches(0, 2));
  EXPECT_FALSE(graph.reaches(2, 0));
  EXPECT_TRUE(graph.connectedEitherWay(2, 0));
  EXPECT_FALSE(graph.connectedEitherWay(1, 3));
  EXPECT_EQ(graph.edgeCount(), 2u);
}

TEST(DependencyGraph, DuplicateAndSelfEdgesIgnored) {
  DependencyGraph graph(3);
  graph.addEdge(0, 1);
  graph.addEdge(0, 1);
  graph.addEdge(1, 1);
  graph.addEdge(7, 0);  // out of range
  EXPECT_EQ(graph.edgeCount(), 1u);
}

TEST(DependencyGraph, ReachesSelf) {
  DependencyGraph graph(2);
  EXPECT_TRUE(graph.reaches(0, 0));
}

TEST(DependencyGraph, EmptyGraphIsEmpty) {
  DependencyGraph graph(5);
  EXPECT_TRUE(graph.empty());
  graph.addEdge(1, 2);
  EXPECT_FALSE(graph.empty());
}

// ----------------------------------------------------- flow extraction ---

TEST(Discovery, GapSeparatedFlowsAreCounted) {
  // 60 well-separated sessions on one edge: discovered with min_flows=50.
  std::vector<FlowEvent> trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back({0, 1, static_cast<double>(i), 0.05});
  }
  DiscoveryConfig config;
  config.min_flows = 50;
  const auto graph = discoverDependencies(2, trace, config);
  EXPECT_TRUE(graph.hasEdge(0, 1));
}

TEST(Discovery, ContinuousStreamIsOneFlow) {
  // Abutting activity (gap-free tuple stream): a single endless flow, far
  // below the min_flows requirement.
  std::vector<FlowEvent> trace;
  for (int i = 0; i < 500; ++i) {
    trace.push_back({0, 1, static_cast<double>(i), 1.0});
  }
  const auto graph = discoverDependencies(2, trace, {});
  EXPECT_FALSE(graph.hasEdge(0, 1));
  EXPECT_TRUE(graph.empty());
}

TEST(Discovery, TooFewFlowsNotDiscovered) {
  std::vector<FlowEvent> trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back({0, 1, static_cast<double>(i), 0.05});
  }
  const auto graph = discoverDependencies(2, trace, {});
  EXPECT_TRUE(graph.empty());
}

TEST(Discovery, MixedEdgesAreIndependent) {
  std::vector<FlowEvent> trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back({0, 1, static_cast<double>(i), 0.05});  // sessions
    trace.push_back({1, 2, static_cast<double>(i), 1.0});   // stream
  }
  const auto graph = discoverDependencies(3, trace, {});
  EXPECT_TRUE(graph.hasEdge(0, 1));
  EXPECT_FALSE(graph.hasEdge(1, 2));
}

// --------------------------------------------- end-to-end on real runs ---

class DiscoveryOnRuns : public ::testing::Test {
 protected:
  static sim::RunRecord makeRecord(const eval::FaultCase& fault_case) {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = 5;
    auto set = eval::generateTrials(fault_case, options);
    EXPECT_FALSE(set.trials.empty());
    return std::move(set.trials.front().record);
  }
};

TEST_F(DiscoveryOnRuns, RubisRecoversExactTopology) {
  const auto record = makeRecord(eval::rubisCpuHog());
  const auto graph = discoverDependencies(record);
  const auto truth = fromTopology(record.app_spec);
  EXPECT_EQ(graph.edgeCount(), truth.edgeCount());
  for (const auto& edge : record.app_spec.edges) {
    EXPECT_TRUE(graph.hasEdge(edge.from, edge.to))
        << edge.from << "->" << edge.to;
  }
}

TEST_F(DiscoveryOnRuns, SystemSStreamsDefeatDiscovery) {
  const auto record = makeRecord(eval::systemsCpuHog());
  const auto graph = discoverDependencies(record);
  // The paper's §II-C finding: no gaps between packets, no flows, no
  // dependencies discovered at all.
  EXPECT_TRUE(graph.empty());
}

TEST_F(DiscoveryOnRuns, SynthesizedTraceShapeMatchesWireStyle) {
  const auto rubis = makeRecord(eval::rubisCpuHog());
  const auto rubis_trace = synthesizePacketTrace(rubis);
  double max_duration = 0.0;
  for (const auto& event : rubis_trace) {
    max_duration = std::max(max_duration, event.duration_sec);
  }
  EXPECT_LT(max_duration, 0.2);  // request/reply sessions are short

  const auto streams = makeRecord(eval::systemsCpuHog());
  const auto stream_trace = synthesizePacketTrace(streams);
  // Streaming events cover whole seconds.
  EXPECT_DOUBLE_EQ(stream_trace.front().duration_sec, 1.0);
}

TEST(Discovery, FromTopologySkipsZeroWeightEdges) {
  sim::ApplicationSpec spec;
  sim::ComponentSpec c;
  c.name = "a";
  spec.components = {c, c, c};
  spec.edges = {{0, 1, 1.0}, {1, 2, 0.0}};
  spec.reference_path = {0};
  const auto graph = fromTopology(spec);
  EXPECT_TRUE(graph.hasEdge(0, 1));
  EXPECT_FALSE(graph.hasEdge(1, 2));
}

}  // namespace
}  // namespace fchain::netdep
