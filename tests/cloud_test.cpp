// Tests for the multi-tenant cloud layer.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/apps.h"
#include "sim/cloud.h"
#include "sim/slo.h"

namespace fchain::sim {
namespace {

TEST(Cloud, RoundRobinPlacementInterleavesTenants) {
  Cloud cloud(CloudConfig{.host_count = 3}, 1);
  Rng rng(2);
  const auto a = cloud.deploy(makeApplication(AppKind::Rubis, 100, rng));
  const auto b = cloud.deploy(makeApplication(AppKind::SystemS, 100, rng));
  // RUBiS has 4 components on 3 hosts: 0,1,2,0.
  EXPECT_EQ(cloud.hostOf(a, 0), 0u);
  EXPECT_EQ(cloud.hostOf(a, 3), 0u);
  // System S continues where RUBiS stopped (host 1).
  EXPECT_EQ(cloud.hostOf(b, 0), 1u);
  // Hosts carry components of both tenants.
  EXPECT_EQ(cloud.componentsOn(a, 0), (std::vector<ComponentId>{0, 3}));
  EXPECT_FALSE(cloud.componentsOn(b, 0).empty());
}

TEST(Cloud, ClockSkewStaysWithinNtpBound) {
  CloudConfig config;
  config.max_clock_skew_ms = 5.0;
  Cloud cloud(config, 3);
  for (HostId h = 0; h < cloud.hostCount(); ++h) {
    EXPECT_LE(std::fabs(cloud.clockSkewMs(h)), 5.0);
  }
}

TEST(Cloud, StepAdvancesEveryTenant) {
  Cloud cloud(CloudConfig{}, 4);
  Rng rng(5);
  cloud.deploy(makeApplication(AppKind::Rubis, 200, rng));
  cloud.deploy(makeApplication(AppKind::SystemS, 200, rng));
  for (int i = 0; i < 50; ++i) cloud.step();
  EXPECT_EQ(cloud.app(0).now(), 50);
  EXPECT_EQ(cloud.app(1).now(), 50);
  EXPECT_EQ(cloud.now(), 50);
}

TEST(Cloud, InterferenceIsBoundedAndCorrelatedPerHost) {
  CloudConfig config;
  config.host_count = 2;
  config.interference_level = 0.1;
  Cloud cloud(config, 6);
  Rng rng(7);
  const auto a = cloud.deploy(makeApplication(AppKind::Rubis, 300, rng));
  const auto b = cloud.deploy(makeApplication(AppKind::Rubis, 300, rng));
  for (int i = 0; i < 100; ++i) {
    cloud.step();
    for (std::size_t app_idx : {a, b}) {
      for (ComponentId id = 0; id < cloud.app(app_idx).componentCount();
           ++id) {
        const double steal =
            cloud.app(app_idx).faultStateOf(id).interference_cpu;
        EXPECT_GE(steal, 0.0);
        EXPECT_LE(steal, 0.1);
      }
    }
    // Co-located VMs (same host, different tenants) see the same steal.
    const double steal_a0 = cloud.app(a).faultStateOf(0).interference_cpu;
    const double steal_b0 = cloud.app(b).faultStateOf(0).interference_cpu;
    EXPECT_EQ(cloud.hostOf(a, 0), cloud.hostOf(b, 0));
    EXPECT_DOUBLE_EQ(steal_a0, steal_b0);
  }
}

TEST(Cloud, MultiTenantRunStaysHealthyWithoutFaults) {
  // All three benchmarks side by side (the paper's setup): interference
  // alone must not violate anyone's SLO.
  Cloud cloud(CloudConfig{}, 8);
  Rng rng(9);
  const auto rubis = cloud.deploy(makeApplication(AppKind::Rubis, 1200, rng));
  const auto streams =
      cloud.deploy(makeApplication(AppKind::SystemS, 1200, rng));
  const auto hadoop =
      cloud.deploy(makeApplication(AppKind::Hadoop, 1200, rng));
  LatencySloMonitor rubis_slo(sloLatencyThreshold(AppKind::Rubis), 30);
  LatencySloMonitor streams_slo(sloLatencyThreshold(AppKind::SystemS), 30);
  ProgressSloMonitor hadoop_slo;
  for (int i = 0; i < 1200; ++i) {
    cloud.step();
    const TimeSec t = cloud.now() - 1;
    rubis_slo.observe(t, cloud.app(rubis).latencySeconds());
    streams_slo.observe(t, cloud.app(streams).latencySeconds());
    hadoop_slo.observe(t, cloud.app(hadoop).progress());
  }
  EXPECT_FALSE(rubis_slo.violationTime().has_value());
  EXPECT_FALSE(streams_slo.violationTime().has_value());
  EXPECT_FALSE(hadoop_slo.violationTime().has_value());
}

}  // namespace
}  // namespace fchain::sim
