// Experiment runner: generates trials for a fault case (each trial = one
// one-hour application run with one injected fault drawn at a random time),
// then scores every scheme x threshold over the shared trial data. Sharing
// the simulated runs across schemes mirrors the paper's methodology (all
// schemes diagnose the same incidents) and keeps the benches fast.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/localizer.h"
#include "eval/cases.h"
#include "eval/metrics.h"

namespace fchain::eval {

struct TrialData {
  sim::RunRecord record;
  netdep::DependencyGraph discovered;
  netdep::DependencyGraph topology;
  /// Simulation snapshot at violation time (for online validation).
  std::optional<sim::Simulation> snapshot;
};

struct TrialOptions {
  std::size_t trials = 30;
  std::uint64_t base_seed = 42;
  /// Skip trials whose run never violated the SLO (counted separately).
  bool keep_snapshots = false;
};

struct TrialSet {
  std::vector<TrialData> trials;
  std::size_t attempted = 0;  ///< includes runs with no SLO violation
};

/// Runs `options.trials` independent scenarios for the case. Trials whose
/// fault never triggered the SLO are dropped (attempted still counts them).
TrialSet generateTrials(const FaultCase& fault_case,
                        const TrialOptions& options = {});

/// Sweeps one scheme's thresholds over the trial set.
SchemeCurve evaluateScheme(const baselines::FaultLocalizer& scheme,
                           const TrialSet& trials);

/// Evaluates many schemes over the same trial set.
std::vector<SchemeCurve> evaluateSchemes(
    const std::vector<const baselines::FaultLocalizer*>& schemes,
    const TrialSet& trials);

/// One trial's localizer input view.
baselines::LocalizeInput inputFor(const TrialData& trial);

}  // namespace fchain::eval
