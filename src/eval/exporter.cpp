#include "eval/exporter.h"

#include <fstream>
#include <stdexcept>

namespace fchain::eval {

void writeCurvesCsv(std::ostream& out,
                    const std::vector<SchemeCurve>& curves) {
  out << "scheme,threshold,precision,recall,tp,fp,fn\n";
  for (const SchemeCurve& curve : curves) {
    for (const RocPoint& point : curve.points) {
      out << curve.scheme << "," << point.threshold << "," << point.precision
          << "," << point.recall << "," << point.counts.tp << ","
          << point.counts.fp << "," << point.counts.fn << "\n";
    }
  }
}

void writeCurvesCsv(const std::string& path,
                    const std::vector<SchemeCurve>& curves) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create csv file: " + path);
  writeCurvesCsv(out, curves);
}

void writeMetricsCsv(std::ostream& out, const sim::RunRecord& record) {
  out << "time";
  for (std::size_t c = 0; c < record.metrics.size(); ++c) {
    for (MetricKind kind : kAllMetrics) {
      out << "," << record.app_spec.components[c].name << "."
          << metricName(kind);
    }
  }
  out << "\n";

  TimeSec from = 0, to = 0;
  for (const auto& series : record.metrics) {
    const auto& cpu = series.of(MetricKind::CpuUsage);
    from = std::min(from, cpu.startTime());
    to = std::max(to, cpu.endTime());
  }
  for (TimeSec t = from; t < to; ++t) {
    out << t;
    for (const auto& series : record.metrics) {
      for (MetricKind kind : kAllMetrics) {
        out << ",";
        if (series.of(kind).contains(t)) out << series.of(kind).at(t);
      }
    }
    out << "\n";
  }
}

void writeMetricsCsv(const std::string& path, const sim::RunRecord& record) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create csv file: " + path);
  writeMetricsCsv(out, record);
}

}  // namespace fchain::eval
