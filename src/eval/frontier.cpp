#include "eval/frontier.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fchain::eval {

namespace {

/// Shortest round-trippable decimal rendering, locale-independent. %g keeps
/// intensity knobs like 0.6 / 1.0 / 1.6 readable and stable.
std::string num(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void writeCounts(std::ostream& out, const OutcomeCounts& counts) {
  out << '{';
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    if (i > 0) out << ',';
    out << '"' << outcomeName(static_cast<Outcome>(i))
        << "\":" << counts.counts[i];
  }
  out << '}';
}

}  // namespace

std::string_view outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::Localized: return "localized";
    case Outcome::Mislocalized: return "mislocalized";
    case Outcome::ExternalCauseCorrect: return "external_cause_correct";
    case Outcome::FalseAlarm: return "false_alarm";
    case Outcome::Missed: return "missed";
    case Outcome::TimedOut: return "timed_out";
  }
  return "unknown";
}

void writeFrontierJson(std::ostream& out, const FrontierReport& report) {
  out << "{\n";
  out << "  \"seed\": " << report.seed << ",\n";
  out << "  \"episodes\": " << report.episode_count << ",\n";
  out << "  \"totals\": ";
  writeCounts(out, report.totals);
  out << ",\n";
  out << "  \"single_fault_resource_localized_rate\": "
      << num(report.single_fault_resource_localized_rate) << ",\n";
  if (report.mesh_episode_count > 0) {
    out << "  \"mesh_episodes\": " << report.mesh_episode_count << ",\n";
    out << "  \"mesh_localized_rate\": " << num(report.mesh_localized_rate)
        << ",\n";
  }
  out << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const FrontierCell& cell = report.cells[i];
    out << "    {\"fault\": \"" << jsonEscape(cell.fault)
        << "\", \"intensity\": " << num(cell.intensity)
        << ", \"correct_rate\": " << num(cell.outcomes.correctRate())
        << ", \"outcomes\": ";
    writeCounts(out, cell.outcomes);
    out << '}' << (i + 1 < report.cells.size() ? "," : "") << '\n';
  }
  out << "  ],\n";
  out << "  \"failure_clusters\": [\n";
  for (std::size_t i = 0; i < report.clusters.size(); ++i) {
    const FailureCluster& cluster = report.clusters[i];
    out << "    {\"signature\": \"" << jsonEscape(cluster.signature)
        << "\", \"count\": " << cluster.count << ", \"example\": \""
        << jsonEscape(cluster.example) << "\"}"
        << (i + 1 < report.clusters.size() ? "," : "") << '\n';
  }
  out << "  ]\n";
  out << "}\n";
}

void writeFrontierMarkdown(std::ostream& out, const FrontierReport& report) {
  out << "# Fault-campaign accuracy frontier\n\n";
  out << "Seed " << report.seed << ", " << report.episode_count
      << " episodes.\n\n";

  out << "## Outcome totals\n\n";
  out << "| outcome | episodes |\n|---|---|\n";
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    out << "| " << outcomeName(static_cast<Outcome>(i)) << " | "
        << report.totals.counts[i] << " |\n";
  }
  out << "\nSingle-fault resource-episode localized rate: "
      << num(report.single_fault_resource_localized_rate) << "\n\n";
  if (report.mesh_episode_count > 0) {
    out << "Mesh-episode correct rate: " << num(report.mesh_localized_rate)
        << " (" << report.mesh_episode_count << " episodes)\n\n";
  }

  out << "## Accuracy vs. intensity (per fault type)\n\n";
  out << "| fault | intensity | correct | localized | mislocalized | "
         "external-correct | false-alarm | missed | timed-out |\n";
  out << "|---|---|---|---|---|---|---|---|---|\n";
  for (const FrontierCell& cell : report.cells) {
    out << "| " << cell.fault << " | " << num(cell.intensity) << " | "
        << num(cell.outcomes.correctRate());
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
      out << " | " << cell.outcomes.counts[i];
    }
    out << " |\n";
  }

  out << "\n## Failure-mode clusters\n\n";
  if (report.clusters.empty()) {
    out << "(none — every episode was classified correct)\n";
  } else {
    out << "| count | signature | example |\n|---|---|---|\n";
    for (const FailureCluster& cluster : report.clusters) {
      out << "| " << cluster.count << " | " << cluster.signature << " | "
          << cluster.example << " |\n";
    }
  }
}

namespace {

void writeFile(const std::string& path,
               void (*writer)(std::ostream&, const FrontierReport&),
               const FrontierReport& report) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  writer(out, report);
}

}  // namespace

void writeFrontierJson(const std::string& path, const FrontierReport& report) {
  writeFile(path, &writeFrontierJson, report);
}

void writeFrontierMarkdown(const std::string& path,
                           const FrontierReport& report) {
  writeFile(path, &writeFrontierMarkdown, report);
}

std::string frontierJson(const FrontierReport& report) {
  std::ostringstream out;
  writeFrontierJson(out, report);
  return out.str();
}

std::string frontierMarkdown(const FrontierReport& report) {
  std::ostringstream out;
  writeFrontierMarkdown(out, report);
  return out.str();
}

}  // namespace fchain::eval
