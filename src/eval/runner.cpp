#include "eval/runner.h"

#include <functional>
#include <string>

namespace fchain::eval {

TrialSet generateTrials(const FaultCase& fault_case,
                        const TrialOptions& options) {
  TrialSet set;
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    ++set.attempted;
    const std::uint64_t seed = mixSeed(options.base_seed,
                                       std::hash<std::string>{}(fault_case.label),
                                       trial);
    Rng fault_rng(mixSeed(seed, 0xfa17));

    sim::ScenarioConfig config;
    config.kind = fault_case.kind;
    config.seed = seed;
    config.duration_sec = fault_case.duration_sec;
    config.faults = fault_case.make_faults(
        fault_rng, sim::makeAppSpec(fault_case.kind));

    auto result = sim::runScenario(config);
    if (!result.record.violation_time.has_value()) continue;

    TrialData data;
    data.topology = netdep::fromTopology(result.record.app_spec);
    data.discovered = netdep::discoverDependencies(result.record);
    if (options.keep_snapshots) {
      data.snapshot = std::move(result.snapshot_at_violation);
    }
    data.record = std::move(result.record);
    set.trials.push_back(std::move(data));
  }
  return set;
}

baselines::LocalizeInput inputFor(const TrialData& trial) {
  baselines::LocalizeInput input;
  input.record = &trial.record;
  input.discovered = &trial.discovered;
  input.topology = &trial.topology;
  return input;
}

SchemeCurve evaluateScheme(const baselines::FaultLocalizer& scheme,
                           const TrialSet& trials) {
  SchemeCurve curve;
  curve.scheme = scheme.name();
  for (double threshold : scheme.thresholdSweep()) {
    RocPoint point;
    point.threshold = threshold;
    for (const TrialData& trial : trials.trials) {
      const auto pinpointed = scheme.localize(inputFor(trial), threshold);
      point.counts.accumulate(pinpointed, trial.record.ground_truth);
    }
    point.precision = point.counts.precision();
    point.recall = point.counts.recall();
    curve.points.push_back(point);
  }
  return curve;
}

std::vector<SchemeCurve> evaluateSchemes(
    const std::vector<const baselines::FaultLocalizer*>& schemes,
    const TrialSet& trials) {
  std::vector<SchemeCurve> curves;
  curves.reserve(schemes.size());
  for (const auto* scheme : schemes) {
    curves.push_back(evaluateScheme(*scheme, trials));
  }
  return curves;
}

}  // namespace fchain::eval
