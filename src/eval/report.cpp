#include "eval/report.h"

#include <iomanip>
#include <ostream>

namespace fchain::eval {

void printCurves(std::ostream& out, const std::string& title,
                 const std::vector<SchemeCurve>& curves,
                 std::size_t trial_count) {
  out << "== " << title << " (" << trial_count << " trials) ==\n";
  out << std::left << std::setw(17) << "scheme" << std::right << std::setw(10)
      << "threshold" << std::setw(11) << "precision" << std::setw(8)
      << "recall" << std::setw(6) << "tp" << std::setw(6) << "fp"
      << std::setw(6) << "fn" << "\n";
  for (const SchemeCurve& curve : curves) {
    for (const RocPoint& point : curve.points) {
      out << std::left << std::setw(17) << curve.scheme << std::right
          << std::setw(10) << std::fixed << std::setprecision(2)
          << point.threshold << std::setw(11) << std::setprecision(3)
          << point.precision << std::setw(8) << point.recall << std::setw(6)
          << point.counts.tp << std::setw(6) << point.counts.fp
          << std::setw(6) << point.counts.fn << "\n";
    }
  }
  out << "\n";
}

void printBestSummary(std::ostream& out, const std::string& title,
                      const std::vector<SchemeCurve>& curves) {
  out << "-- " << title << ": best operating point per scheme --\n";
  for (const SchemeCurve& curve : curves) {
    const RocPoint* best = curve.best();
    if (best == nullptr) continue;
    out << std::left << std::setw(17) << curve.scheme << std::right
        << "  P=" << std::fixed << std::setprecision(3) << best->precision
        << "  R=" << best->recall << "  F1=" << best->counts.f1()
        << "  (threshold " << std::setprecision(2) << best->threshold
        << ")\n";
  }
  out << "\n";
}

}  // namespace fchain::eval
