#include "eval/auc.h"

#include <algorithm>
#include <map>

namespace fchain::eval {

double prAuc(const SchemeCurve& curve) {
  if (curve.points.empty()) return 0.0;

  // Max precision at each distinct recall.
  std::map<double, double> best;
  for (const RocPoint& point : curve.points) {
    auto [it, inserted] = best.emplace(point.recall, point.precision);
    if (!inserted) it->second = std::max(it->second, point.precision);
  }

  // Anchor at recall 0 with the highest precision seen (flat-left
  // extension), then trapezoid over recall.
  double max_precision = 0.0;
  for (const auto& [recall, precision] : best) {
    max_precision = std::max(max_precision, precision);
  }
  double area = 0.0;
  double prev_recall = 0.0;
  double prev_precision = max_precision;
  for (const auto& [recall, precision] : best) {
    area += (recall - prev_recall) * 0.5 * (precision + prev_precision);
    prev_recall = recall;
    prev_precision = precision;
  }
  return area;
}

double bestF1(const SchemeCurve& curve) {
  const RocPoint* best = curve.best();
  return best == nullptr ? 0.0 : best->counts.f1();
}

std::size_t dominatedPoints(const SchemeCurve& curve,
                            const SchemeCurve& other) {
  std::size_t dominated = 0;
  for (const RocPoint& theirs : other.points) {
    for (const RocPoint& ours : curve.points) {
      if (ours.precision > theirs.precision && ours.recall > theirs.recall) {
        ++dominated;
        break;
      }
    }
  }
  return dominated;
}

}  // namespace fchain::eval
