// The paper's fault-injection matrix (§III-A) as reusable experiment cases.
// Every case knows which benchmark it runs on, how to draw a concrete fault
// spec for one trial (random injection time, random target PEs, ...) and any
// per-case FChain configuration (only the Hadoop DiskHog needs one: the
// longer 500 s look-back window).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fchain/config.h"
#include "sim/simulator.h"

namespace fchain::eval {

struct FaultCase {
  std::string label;
  sim::AppKind kind = sim::AppKind::Rubis;
  /// Draws the trial's fault spec(s).
  std::function<std::vector<faults::FaultSpec>(
      Rng&, const sim::ApplicationSpec&)>
      make_faults;
  /// FChain configuration for this case (paper defaults unless noted).
  core::FChainConfig fchain_config;
  /// Run length; the default one-hour run of the paper.
  std::size_t duration_sec = 3600;
};

// --- RUBiS single-component faults (Fig. 6). ---
FaultCase rubisMemLeak();
FaultCase rubisCpuHog();
FaultCase rubisNetHog();

// --- RUBiS multi-component faults (Fig. 8). ---
FaultCase rubisOffloadBug();
FaultCase rubisLBBug();

// --- System S single-component faults (Fig. 7). ---
FaultCase systemsMemLeak();
FaultCase systemsCpuHog();
FaultCase systemsBottleneck();

// --- System S multi-component faults (Figs. 9, 11). ---
FaultCase systemsConcMemLeak();
FaultCase systemsConcCpuHog();

// --- Hadoop multi-component faults (Fig. 10). ---
FaultCase hadoopConcMemLeak();
FaultCase hadoopConcCpuHog();  // infinite-loop bug in all map tasks
FaultCase hadoopConcDiskHog(); // W = 500 s per the paper

// --- External factors (workload-change detection, §II-C). ---
FaultCase rubisWorkloadSurge();
FaultCase hadoopSharedSlowdown();

/// All thirteen paper cases, in figure order.
std::vector<FaultCase> allPaperCases();

/// Extension cases beyond the paper's figures (external factors).
std::vector<FaultCase> extensionCases();

}  // namespace fchain::eval
