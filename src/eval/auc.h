// Curve summary statistics: area under the precision/recall tradeoff and
// related single-number summaries, so scheme comparisons can be automated
// (the paper eyeballs its ROC plots; CI needs a scalar).
#pragma once

#include <vector>

#include "eval/metrics.h"

namespace fchain::eval {

/// Area under the precision-over-recall curve, integrating precision with
/// the trapezoid rule over the recall axis after sorting points by recall
/// and collapsing duplicates (max precision per recall). Points span less
/// than the full [0,1] recall range; the curve is conservatively anchored
/// at (0, max precision) and extends flat-left from the lowest recall.
/// Returns 0 for an empty curve.
double prAuc(const SchemeCurve& curve);

/// Best F1 across the sweep (0 for an empty curve).
double bestF1(const SchemeCurve& curve);

/// The point dominance count: how many of `other`'s points are strictly
/// dominated (lower precision AND lower recall) by some point of `curve`.
std::size_t dominatedPoints(const SchemeCurve& curve,
                            const SchemeCurve& other);

}  // namespace fchain::eval
