// Accuracy-frontier report for fault-injection campaigns.
//
// A campaign (src/campaign) sweeps the fault space and classifies every
// episode against its injected ground truth; this module holds the resulting
// report shape — per-fault-type accuracy-vs-intensity cells plus clustered
// failure modes — and renders it as JSON and markdown. The writers are
// deliberately free of wall-clock, locale, and pointer-derived content:
// byte-identical input data produces byte-identical files, which is what the
// campaign's same-seed determinism test pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fchain::eval {

/// How one campaign episode's localization compares to its ground truth.
/// The taxonomy (docs/ARCHITECTURE.md has the full table):
///   Localized            pinpointed set == injected faulty set
///   Mislocalized         an incident fired but blamed the wrong set (or
///                        called a genuine component fault external)
///   ExternalCauseCorrect an injected external factor was diagnosed as such
///   FalseAlarm           an incident fired before any fault was active, or
///                        components were blamed for an external factor
///   Missed               the fault was active but no incident fired, or
///                        analysis produced an empty verdict
///   TimedOut             supervision (watchdog trip / localize deadline)
///                        curtailed the analysis
enum class Outcome : std::uint8_t {
  Localized,
  Mislocalized,
  ExternalCauseCorrect,
  FalseAlarm,
  Missed,
  TimedOut,
};

inline constexpr std::size_t kOutcomeCount = 6;

std::string_view outcomeName(Outcome outcome);

/// Episode tallies by outcome.
struct OutcomeCounts {
  std::size_t counts[kOutcomeCount] = {};

  void add(Outcome outcome) { ++counts[static_cast<std::size_t>(outcome)]; }
  std::size_t of(Outcome outcome) const {
    return counts[static_cast<std::size_t>(outcome)];
  }
  std::size_t total() const {
    std::size_t sum = 0;
    for (std::size_t c : counts) sum += c;
    return sum;
  }
  /// Fraction of episodes with the *correct* verdict (Localized for
  /// component faults, ExternalCauseCorrect for external factors).
  double correctRate() const {
    const std::size_t n = total();
    if (n == 0) return 0.0;
    return static_cast<double>(of(Outcome::Localized) +
                               of(Outcome::ExternalCauseCorrect)) /
           static_cast<double>(n);
  }
};

/// One point on a fault type's accuracy-vs-intensity curve.
struct FrontierCell {
  std::string fault;        ///< faults::faultTypeName
  double intensity = 1.0;   ///< the sweep's intensity knob
  OutcomeCounts outcomes;
};

/// One clustered failure mode: every episode sharing a deterministic
/// signature (app | fault | overlay | outcome | truth-vs-pinpointed set
/// relation), with one concrete episode kept as the exemplar.
struct FailureCluster {
  std::string signature;
  std::size_t count = 0;
  std::string example;  ///< human-readable description of one member
};

struct FrontierReport {
  std::uint64_t seed = 0;
  std::size_t episode_count = 0;
  OutcomeCounts totals;
  /// Localized rate over single-fault, resource-metric, overlay-free
  /// episodes — the CI smoke gate's guarded scalar. Mesh episodes are
  /// excluded (they have their own rate below) so enabling the mesh sweep
  /// never moves this gate.
  double single_fault_resource_localized_rate = 0.0;
  /// Mesh-sweep attribution. Zero when the campaign has no mesh episodes,
  /// in which case the renderings omit both fields — legacy report bytes
  /// are unchanged.
  std::size_t mesh_episode_count = 0;
  /// Correct-verdict rate (Localized + ExternalCauseCorrect) over mesh
  /// episodes — the mesh smoke job's guarded scalar.
  double mesh_localized_rate = 0.0;
  /// Sorted by fault name, then ascending intensity.
  std::vector<FrontierCell> cells;
  /// Non-Localized/-ExternalCauseCorrect modes, by count desc then signature.
  std::vector<FailureCluster> clusters;
};

/// JSON rendering (stable field order, no wall-clock content).
void writeFrontierJson(std::ostream& out, const FrontierReport& report);
void writeFrontierJson(const std::string& path, const FrontierReport& report);

/// Markdown rendering: outcome totals, per-fault-type accuracy-vs-intensity
/// table, and the failure-mode clusters ("known blind spots" feedstock).
void writeFrontierMarkdown(std::ostream& out, const FrontierReport& report);
void writeFrontierMarkdown(const std::string& path,
                           const FrontierReport& report);

/// Both renderings as strings (determinism tests compare these bytes).
std::string frontierJson(const FrontierReport& report);
std::string frontierMarkdown(const FrontierReport& report);

}  // namespace fchain::eval
