// Plain-text reporting of ROC curves and summary tables, in the shape of
// the paper's figures (precision/recall per scheme per fault).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace fchain::eval {

/// Prints one experiment's curves:
///   == <title> (N trials) ==
///   scheme        threshold  precision  recall   tp  fp  fn
void printCurves(std::ostream& out, const std::string& title,
                 const std::vector<SchemeCurve>& curves,
                 std::size_t trial_count);

/// Prints a one-line-per-scheme summary using each scheme's best-F1 point.
void printBestSummary(std::ostream& out, const std::string& title,
                      const std::vector<SchemeCurve>& curves);

}  // namespace fchain::eval
