// CSV export of evaluation artifacts, for plotting with any external tool:
// ROC curves (one row per scheme x threshold) and raw metric series (one
// row per second, one column per component x metric).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "sim/simulator.h"

namespace fchain::eval {

/// Header: scheme,threshold,precision,recall,tp,fp,fn
void writeCurvesCsv(std::ostream& out, const std::vector<SchemeCurve>& curves);
void writeCurvesCsv(const std::string& path,
                    const std::vector<SchemeCurve>& curves);

/// Header: time,<component>.<metric>,... — one row per second covering the
/// union of all components' sample ranges.
void writeMetricsCsv(std::ostream& out, const sim::RunRecord& record);
void writeMetricsCsv(const std::string& path, const sim::RunRecord& record);

}  // namespace fchain::eval
