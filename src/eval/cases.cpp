#include "eval/cases.h"

#include <algorithm>
#include <array>

namespace fchain::eval {

namespace {

using faults::FaultSpec;
using faults::FaultType;

/// Random injection instant: late enough that the fluctuation models have
/// learned the workload, early enough that manifestation + detection fit
/// inside the run.
TimeSec drawStart(Rng& rng, TimeSec lo = 1800, TimeSec hi = 2600) {
  return rng.intIn(lo, hi);
}

FaultSpec single(FaultType type, ComponentId target, TimeSec start,
                 double intensity = 1.0) {
  FaultSpec spec;
  spec.type = type;
  spec.targets = {target};
  spec.start_time = start;
  spec.intensity = intensity;
  return spec;
}

/// Two distinct random PEs among the System S middle stages (PE2..PE6).
std::pair<ComponentId, ComponentId> twoRandomPes(Rng& rng) {
  const ComponentId a = static_cast<ComponentId>(1 + rng.below(5));
  ComponentId b = a;
  while (b == a) b = static_cast<ComponentId>(1 + rng.below(5));
  return {a, b};
}

/// A random PE on the main (high-rate) processing branch: PE2, PE3 or PE6.
/// CPU-contention faults are injected here — on the light PE4->PE5 side
/// branch their latency contribution is diluted below the per-tuple SLO and
/// no detectable anomaly occurs (a scoping choice documented in DESIGN.md).
ComponentId randomMainBranchPe(Rng& rng) {
  constexpr std::array<ComponentId, 3> kMain{1, 2, 5};
  return kMain[rng.below(kMain.size())];
}

}  // namespace

FaultCase rubisMemLeak() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/MemLeak";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    return std::vector<FaultSpec>{
        single(FaultType::MemLeak, /*db=*/3, drawStart(rng))};
  };
  return fault_case;
}

FaultCase rubisCpuHog() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/CpuHog";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    // A multi-threaded hog: the db keeps only ~1/3 of its CPU, so its
    // throughput drops below the request rate and back-pressure builds.
    return std::vector<FaultSpec>{
        single(FaultType::CpuHog, /*db=*/3, drawStart(rng), /*intensity=*/1.35)};
  };
  return fault_case;
}

FaultCase rubisNetHog() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/NetHog";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    return std::vector<FaultSpec>{
        single(FaultType::NetHog, /*web=*/0, drawStart(rng))};
  };
  return fault_case;
}

FaultCase rubisOffloadBug() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/OffloadBug";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    FaultSpec spec;
    spec.type = FaultType::OffloadBug;
    spec.targets = {/*app1=*/1, /*app2=*/2};
    spec.start_time = drawStart(rng);
    return std::vector<FaultSpec>{spec};
  };
  return fault_case;
}

FaultCase rubisLBBug() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/LBBug";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    FaultSpec spec;
    spec.type = FaultType::LBBug;
    spec.targets = {/*app1=*/1, /*app2=*/2};
    spec.start_time = drawStart(rng);
    return std::vector<FaultSpec>{spec};
  };
  return fault_case;
}

FaultCase systemsMemLeak() {
  FaultCase fault_case;
  fault_case.label = "SystemS/MemLeak";
  fault_case.kind = sim::AppKind::SystemS;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const ComponentId pe = static_cast<ComponentId>(1 + rng.below(5));
    return std::vector<FaultSpec>{
        single(FaultType::MemLeak, pe, drawStart(rng))};
  };
  return fault_case;
}

FaultCase systemsCpuHog() {
  FaultCase fault_case;
  fault_case.label = "SystemS/CpuHog";
  fault_case.kind = sim::AppKind::SystemS;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    // The hog's fair share more than triples the PE's per-tuple service
    // time: the tuple SLO trips from latency alone, mostly without
    // throughput collapse, so the fault stays localized to the hogged PE.
    return std::vector<FaultSpec>{single(FaultType::CpuHog,
                                         randomMainBranchPe(rng),
                                         drawStart(rng), /*intensity=*/1.4)};
  };
  return fault_case;
}

FaultCase systemsBottleneck() {
  FaultCase fault_case;
  fault_case.label = "SystemS/Bottleneck";
  fault_case.kind = sim::AppKind::SystemS;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    return std::vector<FaultSpec>{single(
        FaultType::Bottleneck, randomMainBranchPe(rng), drawStart(rng))};
  };
  return fault_case;
}

FaultCase systemsConcMemLeak() {
  FaultCase fault_case;
  fault_case.label = "SystemS/ConcMemLeak";
  fault_case.kind = sim::AppKind::SystemS;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const auto [a, b] = twoRandomPes(rng);
    const TimeSec start = drawStart(rng);
    return std::vector<FaultSpec>{single(FaultType::MemLeak, a, start),
                                  single(FaultType::MemLeak, b, start)};
  };
  return fault_case;
}

FaultCase systemsConcCpuHog() {
  FaultCase fault_case;
  fault_case.label = "SystemS/ConcCpuHog";
  fault_case.kind = sim::AppKind::SystemS;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const ComponentId a = randomMainBranchPe(rng);
    ComponentId b = a;
    while (b == a) b = randomMainBranchPe(rng);
    const TimeSec start = drawStart(rng);
    return std::vector<FaultSpec>{
        single(FaultType::CpuHog, a, start, /*intensity=*/1.4),
        single(FaultType::CpuHog, b, start, /*intensity=*/1.4)};
  };
  return fault_case;
}

FaultCase hadoopConcMemLeak() {
  FaultCase fault_case;
  fault_case.label = "Hadoop/ConcMemLeak";
  fault_case.kind = sim::AppKind::Hadoop;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const TimeSec start = drawStart(rng);
    std::vector<FaultSpec> specs;
    for (ComponentId map = 0; map < 3; ++map) {
      specs.push_back(single(FaultType::MemLeak, map, start));
    }
    return specs;
  };
  return fault_case;
}

FaultCase hadoopConcCpuHog() {
  FaultCase fault_case;
  fault_case.label = "Hadoop/ConcCpuHog";
  fault_case.kind = sim::AppKind::Hadoop;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const TimeSec start = drawStart(rng);
    std::vector<FaultSpec> specs;
    for (ComponentId map = 0; map < 3; ++map) {
      // The paper's Hadoop "CpuHog" is an infinite-loop bug in the map task.
      specs.push_back(single(FaultType::InfiniteLoop, map, start));
    }
    return specs;
  };
  return fault_case;
}

FaultCase hadoopConcDiskHog() {
  FaultCase fault_case;
  fault_case.label = "Hadoop/ConcDiskHog";
  fault_case.kind = sim::AppKind::Hadoop;
  // DiskHog manifests slowly; the paper uses a 500 s look-back window and
  // injects early enough for the stall to emerge within the run.
  fault_case.fchain_config.lookback_sec = 500;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    const TimeSec start = drawStart(rng, 1200, 1800);
    std::vector<FaultSpec> specs;
    for (ComponentId map = 0; map < 3; ++map) {
      specs.push_back(single(FaultType::DiskHog, map, start));
    }
    return specs;
  };
  return fault_case;
}

FaultCase rubisWorkloadSurge() {
  FaultCase fault_case;
  fault_case.label = "RUBiS/WorkloadSurge";
  fault_case.kind = sim::AppKind::Rubis;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    FaultSpec spec;
    spec.type = FaultType::WorkloadSurge;
    spec.start_time = drawStart(rng);
    return std::vector<FaultSpec>{spec};  // no faulty component
  };
  return fault_case;
}

FaultCase hadoopSharedSlowdown() {
  FaultCase fault_case;
  fault_case.label = "Hadoop/SharedSlowdown";
  fault_case.kind = sim::AppKind::Hadoop;
  fault_case.make_faults = [](Rng& rng, const sim::ApplicationSpec&) {
    FaultSpec spec;
    spec.type = FaultType::SharedSlowdown;
    spec.start_time = drawStart(rng);
    return std::vector<FaultSpec>{spec};
  };
  return fault_case;
}

std::vector<FaultCase> allPaperCases() {
  return {rubisMemLeak(),       rubisCpuHog(),      rubisNetHog(),
          systemsMemLeak(),     systemsCpuHog(),    systemsBottleneck(),
          rubisOffloadBug(),    rubisLBBug(),       systemsConcMemLeak(),
          systemsConcCpuHog(),  hadoopConcMemLeak(), hadoopConcCpuHog(),
          hadoopConcDiskHog()};
}

std::vector<FaultCase> extensionCases() {
  return {rubisWorkloadSurge(), hadoopSharedSlowdown()};
}

}  // namespace fchain::eval
