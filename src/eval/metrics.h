// Precision / recall scoring (paper Eq. 1) and ROC curve containers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace fchain::eval {

/// Running true/false positive & false negative tallies across trials.
struct Counts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  /// Scores one trial: `pinpointed` vs ground-truth `truth` (both sorted
  /// ascending, duplicate-free).
  void accumulate(const std::vector<ComponentId>& pinpointed,
                  const std::vector<ComponentId>& truth);

  double precision() const {
    return tp + fp == 0 ? 1.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 1.0
                        : static_cast<double>(tp) /
                              static_cast<double>(tp + fn);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

struct RocPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  Counts counts;
};

struct SchemeCurve {
  std::string scheme;
  std::vector<RocPoint> points;

  /// The point with the best F1 (the scheme's best achievable tradeoff).
  const RocPoint* best() const;
};

}  // namespace fchain::eval
