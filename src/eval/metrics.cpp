#include "eval/metrics.h"

#include <algorithm>

namespace fchain::eval {

void Counts::accumulate(const std::vector<ComponentId>& pinpointed,
                        const std::vector<ComponentId>& truth) {
  for (ComponentId id : pinpointed) {
    if (std::binary_search(truth.begin(), truth.end(), id)) {
      ++tp;
    } else {
      ++fp;
    }
  }
  for (ComponentId id : truth) {
    if (!std::binary_search(pinpointed.begin(), pinpointed.end(), id)) {
      ++fn;
    }
  }
}

const RocPoint* SchemeCurve::best() const {
  const RocPoint* best_point = nullptr;
  double best_f1 = -1.0;
  for (const RocPoint& point : points) {
    const double f1 = point.counts.f1();
    if (f1 > best_f1) {
      best_f1 = f1;
      best_point = &point;
    }
  }
  return best_point;
}

}  // namespace fchain::eval
