#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fchain {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double d = x - m;
    sum += d * d;
  }
  return sum / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

namespace {

/// Shared rank/interpolation logic over an already-sorted buffer.
double percentileSorted(std::span<const double> sorted, double p) {
  if (sorted.size() == 1) return sorted[0];
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // frac == 0 covers both exact ranks and the p = 100 endpoint (rank lands
  // on the last element). Returning sorted[lo] directly keeps the result
  // exact and avoids `inf * 0 = NaN` when an extreme element is infinite.
  if (frac == 0.0) return sorted[lo];
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void checkPercentileArgs(bool empty, double p) {
  if (empty) throw std::invalid_argument("percentile of empty span");
  if (std::isnan(p)) throw std::invalid_argument("percentile rank is NaN");
}

}  // namespace

double percentile(std::span<const double> xs, double p) {
  checkPercentileArgs(xs.empty(), p);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentileSorted(sorted, p);
}

double percentileInPlace(std::span<double> xs, double p) {
  checkPercentileArgs(xs.empty(), p);
  std::sort(xs.begin(), xs.end());
  return percentileSorted(xs, p);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double medianInPlace(std::span<double> xs) {
  return percentileInPlace(xs, 50.0);
}

double medianAbsDeviation(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = median(xs);
  std::vector<double> deviations;
  deviations.reserve(xs.size());
  for (double x : xs) deviations.push_back(std::fabs(x - m));
  return median(deviations);
}

double medianAbsDeviation(std::span<const double> xs,
                          std::vector<double>& work,
                          std::vector<double>& deviations) {
  if (xs.empty()) return 0.0;
  work.assign(xs.begin(), xs.end());
  const double m = medianInPlace(work);
  deviations.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    deviations[i] = std::fabs(xs[i] - m);
  }
  return medianInPlace(deviations);
}

double minValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double maxValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double slope(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  // OLS against index: slope = cov(i, x) / var(i).
  const double nf = static_cast<double>(n);
  const double mean_i = (nf - 1.0) / 2.0;
  const double mean_x = mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(i) - mean_i;
    num += di * (xs[i] - mean_x);
    den += di * di;
  }
  return den == 0.0 ? 0.0 : num / den;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::addAll(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::probability(std::size_t i) const {
  // Laplace smoothing keeps KL finite when a bucket is empty on one side.
  return (static_cast<double>(counts_[i]) + 1.0) /
         (static_cast<double>(total_) + static_cast<double>(counts_.size()));
}

double klDivergence(const Histogram& p, const Histogram& q) {
  if (p.binCount() != q.binCount()) {
    throw std::invalid_argument("klDivergence: histogram bin mismatch");
  }
  double kl = 0.0;
  for (std::size_t i = 0; i < p.binCount(); ++i) {
    const double pi = p.probability(i);
    kl += pi * std::log(pi / q.probability(i));
  }
  return kl;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double num = 0.0, dx = 0.0, dy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = xs[i] - mx;
    const double b = ys[i] - my;
    num += a * b;
    dx += a * a;
    dy += b * b;
  }
  if (dx == 0.0 || dy == 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

}  // namespace fchain
