// Small numerically careful statistics helpers used across FChain: moments,
// order statistics, robust scale (MAD), histograms and Kullback-Leibler
// divergence (the Histogram baseline's anomaly score).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fchain {

double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100] (out-of-range p is clamped;
/// a NaN p throws std::invalid_argument — there is no meaningful rank for
/// it). Boundary semantics: p = 0 returns the minimum and p = 100 the
/// maximum exactly, with no interpolation arithmetic that could overflow or
/// produce NaN on infinite extremes. Precondition: !xs.empty() (throws
/// std::invalid_argument otherwise — an empty window has no order
/// statistics, and silently returning 0 would hand callers a fake
/// threshold).
double percentile(std::span<const double> xs, double p);

/// percentile() over a caller-owned buffer that is sorted in place — the
/// zero-allocation variant the signal hot path uses. The span's element
/// order is clobbered.
double percentileInPlace(std::span<double> xs, double p);

double median(std::span<const double> xs);

/// median() over a caller-owned buffer, sorted in place (zero-allocation).
double medianInPlace(std::span<double> xs);

/// Median absolute deviation (robust scale estimate).
double medianAbsDeviation(std::span<const double> xs);

/// medianAbsDeviation() using caller-provided work buffers so the hot path
/// never allocates once the buffers reach steady-state capacity. `work` and
/// `deviations` must be distinct vectors, and distinct from the storage
/// backing `xs`; their contents are clobbered.
double medianAbsDeviation(std::span<const double> xs,
                          std::vector<double>& work,
                          std::vector<double>& deviations);

double minValue(std::span<const double> xs);
double maxValue(std::span<const double> xs);

/// Ordinary least squares slope of xs against sample index 0..n-1.
/// Used as the "tangent" in FChain's tangent-based rollback and as the trend
/// direction estimator. Returns 0 for n < 2.
double slope(std::span<const double> xs);

/// An equi-width histogram over a fixed [lo, hi] range with `bins` buckets.
/// Out-of-range samples are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void addAll(std::span<const double> xs);

  std::size_t binCount() const { return counts_.size(); }
  std::size_t totalCount() const { return total_; }

  /// Probability mass of bucket i with add-one (Laplace) smoothing so KL
  /// divergence is always finite.
  double probability(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// KL(p || q) over two histograms with identical binning (checked).
double klDivergence(const Histogram& p, const Histogram& q);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace fchain
