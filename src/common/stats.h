// Small numerically careful statistics helpers used across FChain: moments,
// order statistics, robust scale (MAD), histograms and Kullback-Leibler
// divergence (the Histogram baseline's anomaly score).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fchain {

double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Precondition: !xs.empty().
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Median absolute deviation (robust scale estimate).
double medianAbsDeviation(std::span<const double> xs);

double minValue(std::span<const double> xs);
double maxValue(std::span<const double> xs);

/// Ordinary least squares slope of xs against sample index 0..n-1.
/// Used as the "tangent" in FChain's tangent-based rollback and as the trend
/// direction estimator. Returns 0 for n < 2.
double slope(std::span<const double> xs);

/// An equi-width histogram over a fixed [lo, hi] range with `bins` buckets.
/// Out-of-range samples are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void addAll(std::span<const double> xs);

  std::size_t binCount() const { return counts_.size(); }
  std::size_t totalCount() const { return total_; }

  /// Probability mass of bucket i with add-one (Laplace) smoothing so KL
  /// divergence is always finite.
  double probability(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// KL(p || q) over two histograms with identical binning (checked).
double klDivergence(const Histogram& p, const Histogram& q);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace fchain
