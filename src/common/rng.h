// Deterministic random number generation.
//
// Every experiment owns one Rng seeded from a (seed, fault, trial) triple so
// a run is exactly reproducible. We implement SplitMix64 (for seeding) and
// xoshiro256** 1.0 (as the main generator) rather than depending on the
// platform-varying std::default_random_engine. Distribution helpers are
// implemented here as well because libstdc++/libc++ distributions are not
// guaranteed to produce identical streams.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace fchain {

/// SplitMix64: used to expand one 64-bit seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high-quality mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation, simplified with a
    // rejection loop; bias is unmeasurable for our n (< 2^32).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t intIn(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    // Avoid log(0).
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given rate (lambda).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Pareto (heavy-tailed) sample with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator; used to give each component /
  /// module its own stream so adding a consumer never perturbs the others.
  Rng fork() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Mixes experiment coordinates into a single 64-bit seed.
constexpr std::uint64_t mixSeed(std::uint64_t base, std::uint64_t a,
                                std::uint64_t b = 0, std::uint64_t c = 0) {
  SplitMix64 sm(base);
  std::uint64_t s = sm.next();
  s ^= a * 0x9e3779b97f4a7c15ULL;
  s = SplitMix64(s).next();
  s ^= b * 0xc2b2ae3d27d4eb4fULL;
  s = SplitMix64(s).next();
  s ^= c * 0x165667b19e3779f9ULL;
  return SplitMix64(s).next();
}

}  // namespace fchain
