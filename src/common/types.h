// Core identifiers and enumerations shared by every FChain module.
//
// FChain treats each guest VM as one opaque "component" and observes only
// six system-level metrics per component, sampled at 1 Hz (paper §III-A).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fchain {

/// Opaque identifier of one component (one guest VM) inside an application.
using ComponentId = std::uint32_t;

/// Invalid / "no component" sentinel.
inline constexpr ComponentId kNoComponent = static_cast<ComponentId>(-1);

/// Identifier of a physical host (a cloud node running several VMs).
using HostId = std::uint32_t;

/// Simulation time in whole seconds. The paper samples metrics at 1 Hz, so
/// one tick == one second == one sample.
using TimeSec = std::int64_t;

/// The six black-box system-level metrics FChain monitors from Domain 0
/// (paper §III-A: cpu usage, memory usage, network in/out, disk read/write).
enum class MetricKind : std::uint8_t {
  CpuUsage = 0,   ///< percent of VM CPU allocation in use [0, 100+]
  MemoryUsage,    ///< resident memory in MB
  NetworkIn,      ///< inbound KB/s
  NetworkOut,     ///< outbound KB/s
  DiskRead,       ///< read KB/s
  DiskWrite,      ///< write KB/s
};

inline constexpr std::size_t kMetricCount = 6;

/// All metric kinds, for range-for iteration.
inline constexpr std::array<MetricKind, kMetricCount> kAllMetrics = {
    MetricKind::CpuUsage,   MetricKind::MemoryUsage, MetricKind::NetworkIn,
    MetricKind::NetworkOut, MetricKind::DiskRead,    MetricKind::DiskWrite,
};

/// Human-readable metric name ("cpu_usage", ...).
std::string_view metricName(MetricKind kind);

/// Parses a metric name produced by metricName(). Throws std::invalid_argument
/// on unknown names.
MetricKind metricFromName(std::string_view name);

/// Index of a metric kind into dense per-metric arrays.
constexpr std::size_t metricIndex(MetricKind kind) {
  return static_cast<std::size_t>(kind);
}

/// Trend direction of an abnormal change, used by the external-factor
/// (workload change vs fault) classifier in the integrated pinpointer.
enum class Trend : std::uint8_t {
  Up,
  Down,
  Flat,
};

std::string_view trendName(Trend trend);

}  // namespace fchain
