#include "common/time_series.h"

#include <algorithm>

namespace fchain {

std::span<const double> TimeSeries::window(TimeSec from, TimeSec to) const {
  from = std::max(from, start_);
  to = std::min(to, endTime());
  if (from >= to) return {};
  const auto offset = static_cast<std::size_t>(from - start_);
  const auto count = static_cast<std::size_t>(to - from);
  return std::span<const double>(values_).subspan(offset, count);
}

std::vector<double> TimeSeries::windowCopy(TimeSec from, TimeSec to) const {
  const auto view = window(from, to);
  return {view.begin(), view.end()};
}

void TimeSeries::trimFront(std::size_t keep) {
  if (values_.size() <= keep) return;
  const std::size_t drop = values_.size() - keep;
  values_.erase(values_.begin(),
                values_.begin() + static_cast<std::ptrdiff_t>(drop));
  start_ += static_cast<TimeSec>(drop);
}

}  // namespace fchain
