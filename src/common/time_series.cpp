#include "common/time_series.h"

#include <algorithm>

namespace fchain {

AppendAtResult TimeSeries::appendAt(TimeSec t, double value, GapFill fill) {
  AppendAtResult result;
  if (t < start_) {
    result.dropped = true;
    return result;
  }
  if (contains(t)) {
    values_[static_cast<std::size_t>(t - start_)] = value;
    result.overwrote = true;
    return result;
  }
  const TimeSec end = endTime();
  if (t > end) {
    const auto gap = static_cast<std::size_t>(t - end);
    // Before the first real sample there is nothing to interpolate from, so
    // the new value itself back-fills the gap under either policy.
    const double last = values_.empty() ? value : values_.back();
    values_.reserve(values_.size() + gap + 1);
    for (std::size_t g = 1; g <= gap; ++g) {
      const double frac =
          static_cast<double>(g) / static_cast<double>(gap + 1);
      values_.push_back(fill == GapFill::Linear
                            ? last + (value - last) * frac
                            : last);
    }
    result.gap_filled = gap;
  }
  values_.push_back(value);
  return result;
}

std::span<const double> TimeSeries::window(TimeSec from, TimeSec to) const {
  from = std::max(from, start_);
  to = std::min(to, endTime());
  if (from >= to) return {};
  const auto offset = static_cast<std::size_t>(from - start_);
  const auto count = static_cast<std::size_t>(to - from);
  return std::span<const double>(values_).subspan(offset, count);
}

std::vector<double> TimeSeries::windowCopy(TimeSec from, TimeSec to) const {
  const auto view = window(from, to);
  return {view.begin(), view.end()};
}

void TimeSeries::trimFront(std::size_t keep) {
  if (values_.size() <= keep) return;
  const std::size_t drop = values_.size() - keep;
  values_.erase(values_.begin(),
                values_.begin() + static_cast<std::ptrdiff_t>(drop));
  start_ += static_cast<TimeSec>(drop);
}

}  // namespace fchain
