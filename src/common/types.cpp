#include "common/types.h"

#include <stdexcept>

namespace fchain {

std::string_view metricName(MetricKind kind) {
  switch (kind) {
    case MetricKind::CpuUsage:
      return "cpu_usage";
    case MetricKind::MemoryUsage:
      return "memory_usage";
    case MetricKind::NetworkIn:
      return "network_in";
    case MetricKind::NetworkOut:
      return "network_out";
    case MetricKind::DiskRead:
      return "disk_read";
    case MetricKind::DiskWrite:
      return "disk_write";
  }
  return "unknown";
}

MetricKind metricFromName(std::string_view name) {
  for (MetricKind kind : kAllMetrics) {
    if (metricName(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown metric name: " + std::string(name));
}

std::string_view trendName(Trend trend) {
  switch (trend) {
    case Trend::Up:
      return "up";
    case Trend::Down:
      return "down";
    case Trend::Flat:
      return "flat";
  }
  return "unknown";
}

}  // namespace fchain
