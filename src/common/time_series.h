// A 1 Hz time series of metric samples.
//
// The series starts at startTime() and holds one sample per second. All of
// FChain's analysis (change point detection, burst extraction, prediction
// error bookkeeping) operates on windows of such series.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"

namespace fchain {

/// How missing seconds are reconstructed when a sample arrives after a gap
/// in the 1 Hz stream (lost UDP datagrams, a paused monitoring agent, ...).
enum class GapFill : std::uint8_t {
  LastValue,  ///< hold the last observed value flat across the gap
  Linear,     ///< interpolate between the last value and the new sample
};

/// Outcome of a timestamped append (TimeSeries::appendAt).
struct AppendAtResult {
  std::size_t gap_filled = 0;  ///< synthesized samples inserted before t
  bool overwrote = false;      ///< duplicate / out-of-order timestamp
  bool dropped = false;        ///< stale sample before startTime(), ignored
};

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(TimeSec start_time) : start_(start_time) {}
  TimeSeries(TimeSec start_time, std::vector<double> values)
      : start_(start_time), values_(std::move(values)) {}

  /// Timestamp of the first sample.
  TimeSec startTime() const { return start_; }

  /// Timestamp one past the last sample (== startTime() when empty).
  TimeSec endTime() const {
    return start_ + static_cast<TimeSec>(values_.size());
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Appends the sample for time endTime().
  void append(double value) { values_.push_back(value); }

  /// Timestamped append tolerant of an unreliable 1 Hz stream:
  ///   - t == endTime(): plain append;
  ///   - t >  endTime(): the missing seconds are synthesized per `fill`
  ///     (the count is returned so callers can keep gap statistics);
  ///   - contains(t):    duplicate or out-of-order sample — latest wins;
  ///   - t <  startTime(): stale sample, dropped.
  /// The caller is responsible for rejecting non-finite values first (see
  /// FChainSlave::ingestAt's quarantine).
  AppendAtResult appendAt(TimeSec t, double value,
                          GapFill fill = GapFill::LastValue);

  /// True when the series has a sample for time t.
  bool contains(TimeSec t) const { return t >= start_ && t < endTime(); }

  /// Value at absolute time t. Precondition: contains(t).
  double at(TimeSec t) const {
    return values_[static_cast<std::size_t>(t - start_)];
  }

  /// Mutable value at absolute time t. Precondition: contains(t).
  double& at(TimeSec t) {
    return values_[static_cast<std::size_t>(t - start_)];
  }

  /// All values, oldest first.
  std::span<const double> values() const { return values_; }

  /// Values in the absolute-time window [from, to); both ends are clamped to
  /// the available range, so the result may be shorter than requested.
  std::span<const double> window(TimeSec from, TimeSec to) const;

  /// Copy of window() as an owning vector (convenience for FFT input etc.).
  std::vector<double> windowCopy(TimeSec from, TimeSec to) const;

  /// Drops samples older than `keep` seconds before endTime(); startTime()
  /// advances accordingly. Used by slaves to bound memory.
  void trimFront(std::size_t keep);

 private:
  TimeSec start_ = 0;
  std::vector<double> values_;
};

/// Dense per-metric bundle of series for one component.
class MetricSeries {
 public:
  MetricSeries() = default;
  explicit MetricSeries(TimeSec start_time) {
    for (auto& series : series_) series = TimeSeries(start_time);
  }

  TimeSeries& of(MetricKind kind) { return series_[metricIndex(kind)]; }
  const TimeSeries& of(MetricKind kind) const {
    return series_[metricIndex(kind)];
  }

  /// Appends one sample per metric; `sample` is indexed by metricIndex().
  void append(const std::array<double, kMetricCount>& sample) {
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      series_[i].append(sample[i]);
    }
  }

  TimeSec endTime() const { return series_[0].endTime(); }
  std::size_t size() const { return series_[0].size(); }

 private:
  std::array<TimeSeries, kMetricCount> series_{};
};

}  // namespace fchain
