#include "persist/snapshot.h"

namespace fchain::persist {

namespace {

void encodeSeries(Encoder& out, const SeriesState& series) {
  out.i64(series.start);
  out.doubles(series.values);
}

SeriesState decodeSeries(Decoder& in) {
  SeriesState series;
  series.start = in.i64();
  series.values = in.doubles();
  return series;
}

void encodePredictor(Encoder& out, const PredictorState& p) {
  out.u64(p.bins);
  out.u64(p.calibration_samples);
  out.f64(p.padding);
  out.doubles(p.calibration_buffer);
  out.u8(p.calibrated ? 1 : 0);
  out.f64(p.lo);
  out.f64(p.hi);
  out.f64(p.width);
  out.f64(p.decay);
  out.f64(p.laplace);
  out.doubles(p.counts);
  out.doubles(p.row_mass);
  encodeSeries(out, p.errors);
  out.u8(p.has_last_state ? 1 : 0);
  out.u64(p.last_state);
  out.u8(p.has_predicted_next ? 1 : 0);
  out.f64(p.predicted_next);
}

PredictorState decodePredictor(Decoder& in) {
  PredictorState p;
  p.bins = in.u64();
  p.calibration_samples = in.u64();
  p.padding = in.f64();
  p.calibration_buffer = in.doubles();
  p.calibrated = in.u8() != 0;
  p.lo = in.f64();
  p.hi = in.f64();
  p.width = in.f64();
  p.decay = in.f64();
  p.laplace = in.f64();
  p.counts = in.doubles();
  p.row_mass = in.doubles();
  p.errors = decodeSeries(in);
  p.has_last_state = in.u8() != 0;
  p.last_state = in.u64();
  p.has_predicted_next = in.u8() != 0;
  p.predicted_next = in.f64();

  // Structural validation: reject inconsistent state before it can reach a
  // MarkovModel (whose indexing trusts counts.size() == bins^2).
  if (p.bins == 0) in.fail("predictor state: zero bins");
  if (p.counts.size() != static_cast<std::size_t>(p.bins) * p.bins) {
    in.fail("predictor state: transition matrix size " +
            std::to_string(p.counts.size()) + " != bins^2");
  }
  if (p.row_mass.size() != p.bins) {
    in.fail("predictor state: row-mass size " +
            std::to_string(p.row_mass.size()) + " != bins");
  }
  if (p.calibrated && p.has_last_state && p.last_state >= p.bins) {
    in.fail("predictor state: last state out of range");
  }
  return p;
}

}  // namespace

std::vector<std::uint8_t> encodeSlaveSnapshot(const SlaveSnapshot& snapshot) {
  Encoder payload;
  payload.u32(snapshot.host);
  payload.u64(snapshot.epoch);
  payload.u64(snapshot.vms.size());
  for (const VmSnapshotState& vm : snapshot.vms) {
    payload.u32(vm.component);
    for (const SeriesState& series : vm.series) encodeSeries(payload, series);
    for (const PredictorState& p : vm.predictors) encodePredictor(payload, p);
    payload.u64(vm.gaps_filled);
    payload.u64(vm.quarantined);
    payload.u64(vm.duplicates);
    payload.u64(vm.stale_dropped);
    payload.u64(vm.future_dropped);
  }
  return frame(kSnapshotMagic, kSnapshotVersion, payload.buffer());
}

SlaveSnapshot decodeSlaveSnapshot(std::span<const std::uint8_t> bytes) {
  const FrameView view = unframe(bytes, kSnapshotMagic, kSnapshotVersion);
  Decoder in(view.payload);
  SlaveSnapshot snapshot;
  snapshot.host = in.u32();
  snapshot.epoch = in.u64();
  const std::uint64_t vm_count = in.u64();
  // A VM entry costs well over 100 bytes; a count past remaining/8 is a
  // corrupt field, not a big cluster.
  if (vm_count > in.remaining() / 8) {
    in.fail("vm count " + std::to_string(vm_count) +
            " exceeds remaining bytes");
  }
  snapshot.vms.reserve(static_cast<std::size_t>(vm_count));
  for (std::uint64_t v = 0; v < vm_count; ++v) {
    VmSnapshotState vm;
    vm.component = in.u32();
    for (SeriesState& series : vm.series) series = decodeSeries(in);
    for (PredictorState& p : vm.predictors) p = decodePredictor(in);
    vm.gaps_filled = in.u64();
    vm.quarantined = in.u64();
    vm.duplicates = in.u64();
    vm.stale_dropped = in.u64();
    vm.future_dropped = in.u64();

    // All six metric series of one VM advance in lockstep, and the error
    // series stays time-aligned with the metric series.
    for (std::size_t m = 1; m < kMetricCount; ++m) {
      if (vm.series[m].start != vm.series[0].start ||
          vm.series[m].values.size() != vm.series[0].values.size()) {
        in.fail("vm state: metric series misaligned");
      }
    }
    for (const PredictorState& p : vm.predictors) {
      if (p.errors.start != vm.series[0].start ||
          p.errors.values.size() != vm.series[0].values.size()) {
        in.fail("vm state: error series misaligned with metrics");
      }
    }
    snapshot.vms.push_back(std::move(vm));
  }
  if (!in.done()) in.fail("trailing bytes after snapshot payload");
  return snapshot;
}

void saveSlaveSnapshot(const std::string& path,
                       const SlaveSnapshot& snapshot) {
  writeFileAtomic(path, encodeSlaveSnapshot(snapshot));
}

SlaveSnapshot loadSlaveSnapshot(const std::string& path) {
  return decodeSlaveSnapshot(readFileBytes(path));
}

}  // namespace fchain::persist
