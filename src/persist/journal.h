// Append-only journals: per-slave sample journal + master incident journal.
//
// Both use the same record framing — u32 payload length, u32 CRC-32, payload
// — so a crash mid-append leaves at worst one torn record at the tail, which
// replay detects by checksum and drops cleanly (`clean = false`). Reopening
// a journal for append first *truncates* any torn tail (appending behind a
// corrupt frame would hide every later record from all future scans); a file
// cut short inside the header (a crash during creation) is recreated from
// scratch. A damaged *header* on a full-length file is a different story:
// the whole file is untrustworthy and both read and reopen throw
// CorruptDataError with the byte offset.
//
// Durability scope: append() flushes each record to the OS, so a record
// survives the *process* dying; fsync-per-record would dominate ingest cost,
// so power loss or a kernel crash may still drop the tail — which replay
// then treats exactly like a torn record. Snapshots (see codec.h
// writeFileAtomic) are fsync'd and survive power loss once written.
//
// The sample journal records the raw samples a slave ingested since its last
// snapshot. Recovery = restore the snapshot, then replay the journal through
// the same ingestAt path — deterministic, so the rebuilt slave is
// bit-identical to one that never crashed (see core::SlaveCheckpointer).
//
// The incident journal records each localization's *input* (the SLO
// violation's component set and time) before the master starts working and
// marks it done afterwards; after a master restart, `pending()` returns the
// incidents that were in flight so they can be re-run from the recorded
// input instead of silently lost.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "persist/codec.h"

namespace fchain::persist {

// --- Sample journal -------------------------------------------------------

/// One ingested sample exactly as it arrived (pre-repair: gaps, duplicates,
/// and non-finite values are re-handled identically on replay).
struct SampleRecord {
  ComponentId component = kNoComponent;
  TimeSec t = 0;
  std::array<double, kMetricCount> sample{};
};

/// Frame magics ("FCJL" / "FCIJ") and versions.
inline constexpr std::uint32_t kSampleJournalMagic = 0x4c4a4346u;
inline constexpr std::uint32_t kIncidentJournalMagic = 0x4a494346u;
inline constexpr std::uint32_t kJournalVersion = 1;

class SampleJournalWriter {
 public:
  /// Opens the journal. `truncate` starts a fresh journal (after a snapshot);
  /// otherwise appends to an existing one, first truncating any torn tail
  /// record left by a crash mid-append (see the header comment). A
  /// fresh/empty file gets a header carrying `epoch` — the snapshot
  /// generation this journal follows.
  SampleJournalWriter(std::string path, std::uint64_t epoch, bool truncate);

  /// Appends one record and flushes (the journal is the crash-safety net;
  /// an unflushed record is a lost record).
  void append(const SampleRecord& record);

  std::size_t recordsWritten() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t records_ = 0;
};

struct SampleJournalReplay {
  std::uint64_t epoch = 0;
  std::vector<SampleRecord> records;
  /// False when a torn/truncated tail record was detected and dropped — the
  /// expected signature of a crash mid-append.
  bool clean = true;
  std::size_t bytes_consumed = 0;
};

/// Reads a sample journal. Tolerates a torn tail (valid prefix is returned,
/// clean = false); throws CorruptDataError on a damaged header and
/// std::runtime_error when the file cannot be opened.
SampleJournalReplay readSampleJournal(const std::string& path);

// --- Incident journal -----------------------------------------------------

/// logStart/logDone are internally synchronized: FChainMaster::localize is
/// documented as safe for concurrent calls, and an attached journal must not
/// weaken that (unsynchronized appends would interleave record bytes and a
/// racy id counter would hand out duplicate incident ids).
class IncidentJournal {
 public:
  /// Opens (appending) or creates the journal. A torn tail record left by a
  /// crash mid-append is truncated away first (see the header comment).
  /// Incident ids continue from the highest id already recorded in the file.
  explicit IncidentJournal(std::string path);

  /// Records a localization's input before work starts; returns its id.
  std::uint64_t logStart(const std::vector<ComponentId>& components,
                         TimeSec violation_time);

  /// Marks the incident completed.
  void logDone(std::uint64_t id);

  struct Pending {
    std::uint64_t id = 0;
    std::vector<ComponentId> components;
    TimeSec violation_time = 0;
  };

  /// Incidents recorded as started but never completed, in start order.
  /// Tolerates a torn tail; throws CorruptDataError on a damaged header.
  static std::vector<Pending> pending(const std::string& path);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::mutex mu_;  ///< guards out_ and next_id_ (see class comment)
  std::ofstream out_;
  std::uint64_t next_id_ = 1;
};

}  // namespace fchain::persist
