// Capture/restore bridge between the markov layer's private state and the
// persist layer's PredictorState value type.
//
// The predictor classes deliberately expose no mutable state — their
// invariants (counts.size() == bins^2, incrementally maintained row mass)
// are what make online prediction correct. Persistence needs the raw fields
// anyway, so instead of widening the public API, this single friend struct
// is the only door. It is header-only: fchain_persist itself still links
// only fchain_common; the code here is compiled into whatever higher layer
// (fchain_core) includes it.
//
// Restore constructs a predictor through its real constructor first (so all
// derived invariants are established the normal way) and then overwrites the
// learned state field by field with the exact persisted bits.
#pragma once

#include "fchain/fluctuation_model.h"
#include "markov/predictor.h"
#include "persist/snapshot.h"

namespace fchain::persist {

struct StateAccess {
  /// Reads every private field of one predictor into the snapshot value.
  static PredictorState capture(const markov::OnlinePredictor& p) {
    PredictorState s;
    const markov::Discretizer& d = p.discretizer_;
    s.bins = d.bins_;
    s.calibration_samples = d.calibration_samples_;
    s.padding = d.padding_;
    s.calibration_buffer = d.buffer_;
    s.calibrated = d.calibrated_;
    s.lo = d.lo_;
    s.hi = d.hi_;
    s.width = d.width_;

    const markov::MarkovModel& m = p.model_;
    s.decay = m.decay_;
    s.laplace = m.laplace_;
    s.counts = m.counts_;
    s.row_mass = m.row_mass_;

    s.errors.start = p.errors_.startTime();
    s.errors.values.assign(p.errors_.values().begin(),
                           p.errors_.values().end());
    s.has_last_state = p.last_state_.has_value();
    s.last_state = p.last_state_.value_or(0);
    s.has_predicted_next = p.predicted_next_.has_value();
    s.predicted_next = p.predicted_next_.value_or(0.0);
    return s;
  }

  /// Rebuilds a predictor whose observable behaviour is bit-identical to the
  /// captured one. Precondition: `s` passed decodeSlaveSnapshot's structural
  /// validation (bins > 0, counts.size() == bins^2, row_mass.size() == bins).
  static markov::OnlinePredictor restore(const PredictorState& s) {
    markov::PredictorConfig config;
    config.bins = static_cast<std::size_t>(s.bins);
    config.calibration_samples =
        static_cast<std::size_t>(s.calibration_samples);
    config.range_padding = s.padding;
    config.decay = s.decay;
    config.laplace = s.laplace;
    markov::OnlinePredictor p(s.errors.start, config);

    markov::Discretizer& d = p.discretizer_;
    d.buffer_ = s.calibration_buffer;
    d.calibrated_ = s.calibrated;
    d.lo_ = s.lo;
    d.hi_ = s.hi;
    d.width_ = s.width;

    markov::MarkovModel& m = p.model_;
    m.counts_ = s.counts;
    m.row_mass_ = s.row_mass;

    p.errors_ = TimeSeries(s.errors.start, s.errors.values);
    p.last_state_ = s.has_last_state
                        ? std::optional<std::size_t>(
                              static_cast<std::size_t>(s.last_state))
                        : std::nullopt;
    p.predicted_next_ = s.has_predicted_next
                            ? std::optional<double>(s.predicted_next)
                            : std::nullopt;
    return p;
  }

  static std::array<markov::OnlinePredictor, kMetricCount>& predictors(
      core::NormalFluctuationModel& model) {
    return model.predictors_;
  }
  static const std::array<markov::OnlinePredictor, kMetricCount>& predictors(
      const core::NormalFluctuationModel& model) {
    return model.predictors_;
  }
};

}  // namespace fchain::persist
