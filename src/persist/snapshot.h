// Versioned, checksummed binary snapshots of a slave's learned state.
//
// A FChain slave's value is its *online* state: hours of per-VM Markov
// transition mass, calibrated discretizer ranges, prediction-error history,
// and telemetry-repair counters. This module defines the snapshot as a plain
// value type (`SlaveSnapshot`, built from fchain_common types only — the
// capture/restore logic lives with core::FChainSlave, which owns the
// invariants) plus its framed binary codec and rename-on-write file I/O.
//
// Doubles round-trip bit-exactly (std::bit_cast), which is what makes a
// restored slave's analysis results bit-identical to an uncrashed one; any
// torn or bit-rotted file is rejected by decode with a CorruptDataError
// carrying the byte offset, never read as garbage state.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "persist/codec.h"

namespace fchain::persist {

/// One 1 Hz series: start timestamp + samples (oldest first).
struct SeriesState {
  TimeSec start = 0;
  std::vector<double> values;
};

/// Full state of one markov::OnlinePredictor (discretizer + Markov model +
/// error series + prediction carry-over).
struct PredictorState {
  // Discretizer.
  std::uint64_t bins = 0;
  std::uint64_t calibration_samples = 0;
  double padding = 0.0;
  std::vector<double> calibration_buffer;  ///< pre-calibration samples
  bool calibrated = false;
  double lo = 0.0;
  double hi = 1.0;
  double width = 1.0;
  // Markov model. `row_mass` is persisted (not recomputed) because it is
  // maintained incrementally under decay — a recomputed sum would differ in
  // the last bits and break warm-restart equivalence.
  double decay = 0.0;
  double laplace = 0.0;
  std::vector<double> counts;    ///< row-major bins x bins
  std::vector<double> row_mass;  ///< per-row totals, size bins
  // Predictor.
  SeriesState errors;
  bool has_last_state = false;
  std::uint64_t last_state = 0;
  bool has_predicted_next = false;
  double predicted_next = 0.0;
};

/// Everything FChainSlave holds for one monitored VM.
struct VmSnapshotState {
  ComponentId component = kNoComponent;
  std::array<SeriesState, kMetricCount> series;
  std::array<PredictorState, kMetricCount> predictors;
  // IngestStats counters.
  std::uint64_t gaps_filled = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t future_dropped = 0;
};

struct SlaveSnapshot {
  HostId host = 0;
  /// Checkpoint counter; a sample journal carrying a different epoch was
  /// written against a different snapshot (see core::SlaveCheckpointer).
  std::uint64_t epoch = 0;
  std::vector<VmSnapshotState> vms;
};

/// Frame magic "FCSN" and current format version.
inline constexpr std::uint32_t kSnapshotMagic = 0x4e534346u;
inline constexpr std::uint32_t kSnapshotVersion = 1;

std::vector<std::uint8_t> encodeSlaveSnapshot(const SlaveSnapshot& snapshot);

/// Decodes and structurally validates a snapshot (per-predictor matrix and
/// row-mass sizes must agree with the bin count; series must be aligned).
/// Throws CorruptDataError on any damage.
SlaveSnapshot decodeSlaveSnapshot(std::span<const std::uint8_t> bytes);

/// encode + writeFileAtomic: a crash mid-save leaves the previous snapshot
/// intact under `path`.
void saveSlaveSnapshot(const std::string& path, const SlaveSnapshot& snapshot);

/// readFileBytes + decode.
SlaveSnapshot loadSlaveSnapshot(const std::string& path);

}  // namespace fchain::persist
