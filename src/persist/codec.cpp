#include "persist/codec.h"

#include <array>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fchain::persist {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

#if defined(__unix__) || defined(__APPLE__)
/// fsyncs a file or directory by path (POSIX allows fsync on a read-only
/// descriptor). Returns false when the path cannot be opened or synced.
bool syncPath(const char* path) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void Encoder::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Encoder::doubles(std::span<const double> values) {
  u64(values.size());
  for (double v : values) f64(v);
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) {
    throw CorruptDataError("truncated data: need " + std::to_string(n) +
                               " bytes, have " + std::to_string(remaining()),
                           offset_);
  }
}

std::uint8_t Decoder::u8() {
  need(1);
  return bytes_[offset_++];
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::vector<double> Decoder::doubles() {
  const std::uint64_t count = u64();
  if (count > remaining() / 8) {
    fail("double-vector count " + std::to_string(count) +
         " exceeds remaining bytes");
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) v = f64();
  return values;
}

std::vector<std::uint8_t> frame(std::uint32_t magic, std::uint32_t version,
                                std::span<const std::uint8_t> payload) {
  Encoder out;
  out.u32(magic);
  out.u32(version);
  out.u64(payload.size());
  out.u32(crc32(payload));
  out.bytes(payload);
  return out.take();
}

FrameView unframe(std::span<const std::uint8_t> bytes, std::uint32_t magic,
                  std::uint32_t max_version) {
  Decoder in(bytes);
  const std::uint32_t got_magic = in.u32();
  if (got_magic != magic) {
    throw CorruptDataError("bad magic: expected 0x" /* hex omitted */ +
                               std::to_string(magic) + ", got " +
                               std::to_string(got_magic),
                           0);
  }
  const std::uint32_t version = in.u32();
  if (version == 0 || version > max_version) {
    throw CorruptDataError("unsupported version " + std::to_string(version),
                           4);
  }
  const std::uint64_t length = in.u64();
  const std::uint32_t checksum = in.u32();
  // Only payload bytes remain past the header now.
  if (length != in.remaining()) {
    throw CorruptDataError("payload length mismatch: header says " +
                               std::to_string(length) + ", file carries " +
                               std::to_string(in.remaining()),
                           8);
  }
  const std::span<const std::uint8_t> payload =
      bytes.subspan(kFrameHeaderSize);
  const std::uint32_t actual = crc32(payload);
  if (actual != checksum) {
    throw CorruptDataError("payload checksum mismatch", kFrameHeaderSize);
  }
  return {version, payload};
}

void writeFileAtomic(const std::string& path,
                     std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot create file: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write failure on file: " + tmp);
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // Durability, not just atomicity: the data must reach the device before
  // the rename can publish it, or a power loss could reorder the rename
  // ahead of the writes and leave a torn file under the real name.
  if (!syncPath(tmp.c_str())) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot fsync file: " + tmp);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
#if defined(__unix__) || defined(__APPLE__)
  // Persist the rename itself. Best-effort: some filesystems refuse
  // directory fsync, and at worst the *old* complete file reappears after
  // power loss — atomicity is never at risk.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  (void)syncPath(dir.empty() ? "." : dir.c_str());
#endif
}

std::vector<std::uint8_t> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file: " + path);
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw std::runtime_error("read failure on file: " + path);
  return bytes;
}

bool fileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

}  // namespace fchain::persist
