// Binary persistence primitives for crash-tolerant state.
//
// Everything FChain persists across a process death — slave model snapshots,
// sample journals, the master's incident journal — goes through this codec:
// little-endian fixed-width fields (doubles bit-cast, so a decode restores
// the *exact* bits the encoder saw — the warm-restart equivalence guarantee
// depends on that), a framed container with magic + version + payload length
// + CRC-32 so a torn or bit-rotted file is rejected with the byte offset of
// the damage instead of being read as garbage, and rename-on-write file I/O
// so a crash mid-write can never leave a corrupt file under the real name.
//
// Layering: fchain_persist links only fchain_common. Higher layers own the
// shape of what they persist (core::FChainSlave::snapshot() produces the
// persist::SlaveSnapshot value; sim::record_io shares crc32 for its text
// trailer); this module owns the bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fchain::persist {

/// Thrown when decode rejects malformed bytes. `offset()` is the byte
/// position (within the buffer or file) where the corruption was detected.
class CorruptDataError : public std::runtime_error {
 public:
  CorruptDataError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte offset " +
                           std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// CRC-32 (IEEE 802.3, the zlib polynomial). Pass the previous return value
/// as `seed` to checksum data in chunks.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                           std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// Little-endian append-only byte writer.
class Encoder {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Exact bit pattern: the decoder restores the identical double.
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// u64 count followed by the raw doubles.
  void doubles(std::span<const double> values);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reader over an Encoder-produced buffer. Every read that
/// would run past the end throws CorruptDataError carrying the offset.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// Reads a u64 count + that many doubles. The count is validated against
  /// the remaining bytes first, so a corrupt length field fails here instead
  /// of triggering a multi-gigabyte allocation.
  std::vector<double> doubles();

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }
  bool done() const { return offset_ == bytes_.size(); }

  [[noreturn]] void fail(const std::string& why) const {
    throw CorruptDataError(why, offset_);
  }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Framed container: magic u32 | version u32 | payload length u64 |
/// payload crc32 u32 | payload bytes.
inline constexpr std::size_t kFrameHeaderSize = 4 + 4 + 8 + 4;

std::vector<std::uint8_t> frame(std::uint32_t magic, std::uint32_t version,
                                std::span<const std::uint8_t> payload);

struct FrameView {
  std::uint32_t version = 0;
  std::span<const std::uint8_t> payload;
};

/// Validates magic, version range, payload length, and checksum; throws
/// CorruptDataError (with the offending byte offset) on any mismatch.
FrameView unframe(std::span<const std::uint8_t> bytes, std::uint32_t magic,
                  std::uint32_t max_version);

// --- File I/O -------------------------------------------------------------

/// Writes `path` atomically and durably: the bytes land in `path + ".tmp"`,
/// are fsync'd to the device, and only then renamed over the target (with a
/// best-effort directory fsync after), so a crash — process death, kernel
/// panic, or power loss — leaves either the old file or the new one, never
/// a torn hybrid. On non-POSIX platforms the fsyncs are skipped and the
/// guarantee is scoped to process-level crashes.
void writeFileAtomic(const std::string& path,
                     std::span<const std::uint8_t> bytes);

/// Whole-file read; throws std::runtime_error when the file cannot be read.
std::vector<std::uint8_t> readFileBytes(const std::string& path);

bool fileExists(const std::string& path);

}  // namespace fchain::persist
