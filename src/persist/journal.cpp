#include "persist/journal.h"

#include <algorithm>
#include <filesystem>

namespace fchain::persist {

namespace {

/// Journal file header: magic u32 | version u32 | epoch u64.
constexpr std::size_t kJournalHeaderSize = 4 + 4 + 8;

void writeHeader(std::ofstream& out, std::uint32_t magic,
                 std::uint64_t epoch) {
  Encoder header;
  header.u32(magic);
  header.u32(kJournalVersion);
  header.u64(epoch);
  out.write(reinterpret_cast<const char*>(header.buffer().data()),
            static_cast<std::streamsize>(header.size()));
}

/// Frames one record: u32 payload length | u32 payload crc | payload.
void writeRecord(std::ofstream& out, const Encoder& payload) {
  Encoder framed;
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u32(crc32(payload.buffer()));
  framed.bytes(payload.buffer());
  out.write(reinterpret_cast<const char*>(framed.buffer().data()),
            static_cast<std::streamsize>(framed.size()));
  out.flush();
}

std::uint64_t checkHeader(Decoder& in, std::uint32_t magic) {
  const std::uint32_t got = in.u32();
  if (got != magic) {
    throw CorruptDataError("journal header: bad magic", 0);
  }
  const std::uint32_t version = in.u32();
  if (version == 0 || version > kJournalVersion) {
    throw CorruptDataError(
        "journal header: unsupported version " + std::to_string(version), 4);
  }
  return in.u64();  // epoch
}

/// Walks the framed records, handing each valid payload to `visit`.
/// Returns false when a torn tail was detected (and stops there).
template <typename Visit>
bool walkRecords(Decoder& in, std::size_t base_offset, Visit visit,
                 std::size_t* bytes_consumed) {
  while (!in.done()) {
    *bytes_consumed = base_offset + in.offset();
    if (in.remaining() < 8) return false;  // torn frame header
    const std::uint32_t length = in.u32();
    const std::uint32_t checksum = in.u32();
    if (in.remaining() < length) return false;  // torn payload
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(length));
    for (auto& byte : payload) byte = in.u8();
    if (crc32(payload) != checksum) return false;  // torn / corrupt tail
    visit(payload);
  }
  *bytes_consumed = base_offset + in.offset();
  return true;
}

/// Repairs a journal about to be reopened for append: drops a torn tail
/// record (the crash-mid-append signature) by truncating the file to its
/// clean prefix. Appending *behind* a torn frame would hide every later
/// record from all future scans. Returns false when the file is shorter
/// than a full header (a crash during creation) and must be recreated;
/// throws CorruptDataError when the header itself is damaged.
bool repairTailForAppend(const std::string& path, std::uint32_t magic) {
  const std::vector<std::uint8_t> bytes = readFileBytes(path);
  if (bytes.size() < kJournalHeaderSize) return false;
  Decoder in(bytes);
  checkHeader(in, magic);
  Decoder body(std::span<const std::uint8_t>(bytes).subspan(in.offset()));
  std::size_t consumed = 0;
  const bool clean = walkRecords(
      body, kJournalHeaderSize, [](std::span<const std::uint8_t>) {},
      &consumed);
  if (!clean) std::filesystem::resize_file(path, consumed);
  return true;
}

}  // namespace

// --- Sample journal -------------------------------------------------------

SampleJournalWriter::SampleJournalWriter(std::string path, std::uint64_t epoch,
                                         bool truncate)
    : path_(std::move(path)) {
  bool fresh = true;
  if (!truncate && fileExists(path_) &&
      repairTailForAppend(path_, kSampleJournalMagic)) {
    fresh = false;
  }
  auto mode = std::ios::binary | (fresh ? std::ios::trunc : std::ios::app);
  out_.open(path_, mode);
  if (!out_) {
    throw std::runtime_error("cannot open sample journal: " + path_);
  }
  if (fresh) {
    writeHeader(out_, kSampleJournalMagic, epoch);
    out_.flush();
  }
  if (!out_) {
    throw std::runtime_error("write failure on sample journal: " + path_);
  }
}

void SampleJournalWriter::append(const SampleRecord& record) {
  Encoder payload;
  payload.u32(record.component);
  payload.i64(record.t);
  for (double v : record.sample) payload.f64(v);
  writeRecord(out_, payload);
  if (!out_) {
    throw std::runtime_error("write failure on sample journal: " + path_);
  }
  ++records_;
}

SampleJournalReplay readSampleJournal(const std::string& path) {
  const std::vector<std::uint8_t> bytes = readFileBytes(path);
  Decoder in(bytes);
  SampleJournalReplay replay;
  replay.epoch = checkHeader(in, kSampleJournalMagic);

  Decoder body(std::span<const std::uint8_t>(bytes).subspan(in.offset()));
  replay.clean = walkRecords(
      body, kJournalHeaderSize,
      [&](std::span<const std::uint8_t> payload) {
        Decoder rec(payload);
        SampleRecord record;
        record.component = rec.u32();
        record.t = rec.i64();
        for (double& v : record.sample) v = rec.f64();
        if (!rec.done()) rec.fail("sample record: trailing bytes");
        replay.records.push_back(record);
      },
      &replay.bytes_consumed);
  return replay;
}

// --- Incident journal -----------------------------------------------------

namespace {

constexpr std::uint8_t kIncidentStart = 0;
constexpr std::uint8_t kIncidentDone = 1;

struct IncidentScan {
  std::vector<IncidentJournal::Pending> pending;
  std::uint64_t max_id = 0;
};

IncidentScan scanIncidents(const std::string& path) {
  const std::vector<std::uint8_t> bytes = readFileBytes(path);
  Decoder in(bytes);
  checkHeader(in, kIncidentJournalMagic);

  IncidentScan scan;
  Decoder body(std::span<const std::uint8_t>(bytes).subspan(in.offset()));
  std::size_t consumed = 0;
  walkRecords(
      body, kJournalHeaderSize,
      [&](std::span<const std::uint8_t> payload) {
        Decoder rec(payload);
        const std::uint8_t kind = rec.u8();
        const std::uint64_t id = rec.u64();
        scan.max_id = std::max(scan.max_id, id);
        if (kind == kIncidentStart) {
          IncidentJournal::Pending incident;
          incident.id = id;
          incident.violation_time = rec.i64();
          const std::uint64_t count = rec.u64();
          if (count > rec.remaining() / 4) {
            rec.fail("incident record: component count exceeds payload");
          }
          incident.components.reserve(static_cast<std::size_t>(count));
          for (std::uint64_t i = 0; i < count; ++i) {
            incident.components.push_back(rec.u32());
          }
          scan.pending.push_back(std::move(incident));
        } else if (kind == kIncidentDone) {
          std::erase_if(scan.pending, [id](const auto& p) {
            return p.id == id;
          });
        } else {
          rec.fail("incident record: unknown kind");
        }
      },
      &consumed);
  return scan;
}

}  // namespace

IncidentJournal::IncidentJournal(std::string path) : path_(std::move(path)) {
  bool fresh = true;
  if (fileExists(path_) &&
      repairTailForAppend(path_, kIncidentJournalMagic)) {
    // Continue the id sequence across restarts (the torn tail, if any, was
    // just truncated away, so the scan sees the whole surviving journal).
    next_id_ = scanIncidents(path_).max_id + 1;
    fresh = false;
  }
  auto mode = std::ios::binary | (fresh ? std::ios::trunc : std::ios::app);
  out_.open(path_, mode);
  if (!out_) {
    throw std::runtime_error("cannot open incident journal: " + path_);
  }
  if (fresh) {
    writeHeader(out_, kIncidentJournalMagic, 0);
    out_.flush();
  }
  if (!out_) {
    throw std::runtime_error("write failure on incident journal: " + path_);
  }
}

std::uint64_t IncidentJournal::logStart(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  Encoder payload;
  payload.u8(kIncidentStart);
  payload.u64(id);
  payload.i64(violation_time);
  payload.u64(components.size());
  for (ComponentId component : components) payload.u32(component);
  writeRecord(out_, payload);
  if (!out_) {
    throw std::runtime_error("write failure on incident journal: " + path_);
  }
  return id;
}

void IncidentJournal::logDone(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  Encoder payload;
  payload.u8(kIncidentDone);
  payload.u64(id);
  writeRecord(out_, payload);
  if (!out_) {
    throw std::runtime_error("write failure on incident journal: " + path_);
  }
}

std::vector<IncidentJournal::Pending> IncidentJournal::pending(
    const std::string& path) {
  // No journal yet (fresh deployment) means nothing was in flight.
  if (!fileExists(path)) return {};
  return scanIncidents(path).pending;
}

}  // namespace fchain::persist
