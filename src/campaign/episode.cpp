#include "campaign/episode.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "online/monitor.h"
#include "sim/injector.h"
#include "sim/simulator.h"
#include "sim/stream.h"

namespace fchain::campaign {

namespace {

/// The episode's single slave, replaceable mid-run: a crash overlay destroys
/// the FChainSlave (all learned models gone) and a later restart installs a
/// fresh one whose components re-register at the restart tick.
struct SlaveCell {
  std::unique_ptr<core::FChainSlave> slave;
  bool down = false;  ///< SlaveOutage window: alive but unreachable
};

/// Endpoint over a SlaveCell. Unlike runtime::LocalEndpoint the slave
/// pointer is *indirect*, so the master keeps a stable endpoint while the
/// process behind it dies, stays down, or comes back.
class RestartableEndpoint final : public runtime::SlaveEndpoint {
 public:
  RestartableEndpoint(SlaveCell* cell, HostId host)
      : cell_(cell), host_(host) {}

  HostId host() const override { return host_; }

  runtime::ComponentListReply listComponents() override {
    if (!alive()) return {runtime::EndpointStatus::Unavailable, {}};
    return {runtime::EndpointStatus::Ok, cell_->slave->components()};
  }

  runtime::AnalyzeReply analyze(const runtime::AnalyzeRequest& req) override {
    runtime::AnalyzeReply reply;
    if (!alive()) return reply;  // Unavailable
    reply.status = runtime::EndpointStatus::Ok;
    reply.finding = cell_->slave->analyze(req.component, req.violation_time);
    return reply;
  }

  runtime::AnalyzeBatchReply analyzeBatch(
      const runtime::AnalyzeBatchRequest& req) override {
    runtime::AnalyzeBatchReply reply;
    if (!alive()) return reply;  // Unavailable
    reply.status = runtime::EndpointStatus::Ok;
    reply.findings =
        cell_->slave->analyzeBatch(req.components, req.violation_time);
    return reply;
  }

  runtime::IngestReply ingest(const runtime::IngestRequest& req) override {
    if (!alive()) return {runtime::EndpointStatus::Unavailable, 0.0};
    cell_->slave->ingestAt(req.component, req.t, req.sample);
    return {runtime::EndpointStatus::Ok, 0.0};
  }

 private:
  bool alive() const { return cell_->slave != nullptr && !cell_->down; }

  SlaveCell* cell_;
  HostId host_;
};

/// Overlay schedule geometry, all relative to the fault start: telemetry
/// noise brackets the fault (so the analysis look-back is degraded), the
/// outage spans the expected trigger, and the crash/restart cycle lands just
/// after injection so the replacement slave faces the incident with only
/// seconds of history.
sim::TelemetryFaultInjector makeTelemetryOverlay(const EpisodeSpec& spec,
                                                 TimeSec fault_start) {
  sim::TelemetryFaultInjector injector;
  sim::TelemetryFaultSpec overlay;
  overlay.start_time = fault_start > 100 ? fault_start - 100 : 0;
  overlay.duration_sec = 400;
  switch (spec.overlay) {
    case OverlayKind::TelemetryDrop:
      overlay.type = sim::TelemetryFaultType::SampleDropBurst;
      overlay.rate = 0.35;
      overlay.seed = mixSeed(spec.seed, 0xd20bull);
      injector.add(overlay);
      break;
    case OverlayKind::TelemetryCorrupt:
      overlay.type = sim::TelemetryFaultType::ValueCorruption;
      overlay.rate = 0.08;
      overlay.seed = mixSeed(spec.seed, 0xc02ull);
      injector.add(overlay);
      break;
    case OverlayKind::SlaveOutage:
      overlay.type = sim::TelemetryFaultType::SlaveOutage;
      overlay.start_time = fault_start + 30;
      overlay.duration_sec = 120;
      overlay.hosts = {0};
      injector.add(overlay);
      break;
    default:
      break;
  }
  return injector;
}

sim::CrashInjector makeCrashOverlay(const EpisodeSpec& spec,
                                    TimeSec fault_start) {
  sim::CrashInjector injector;
  if (spec.overlay == OverlayKind::SlaveCrash) {
    injector.add({/*host=*/0, /*crash_time=*/fault_start + 40,
                  /*restart_time=*/fault_start + 100});
  }
  return injector;
}

}  // namespace

eval::Outcome classify(const std::vector<ComponentId>& truth,
                       bool external_fault, TimeSec fault_start,
                       const IncidentFacts& incident) {
  if (!incident.fired) return eval::Outcome::Missed;
  if (incident.violation_time < fault_start) return eval::Outcome::FalseAlarm;
  if (incident.watchdog_trips + incident.deadline_skips > 0) {
    return eval::Outcome::TimedOut;
  }
  if (external_fault) {
    // No component is at fault; the correct verdict is "external cause".
    // Blaming components for an external factor is the classic false alarm
    // FChain's workload-change detection exists to shed.
    return incident.external_verdict ? eval::Outcome::ExternalCauseCorrect
                                     : eval::Outcome::FalseAlarm;
  }
  if (incident.external_verdict) return eval::Outcome::Mislocalized;
  if (incident.pinpointed.empty()) return eval::Outcome::Missed;
  return incident.pinpointed == truth ? eval::Outcome::Localized
                                      : eval::Outcome::Mislocalized;
}

std::string setRelation(const std::vector<ComponentId>& truth,
                        const std::vector<ComponentId>& pinpointed) {
  if (truth.empty()) return "no-truth";
  if (pinpointed.empty()) return "empty";
  if (pinpointed == truth) return "exact";
  std::vector<ComponentId> common;
  std::set_intersection(truth.begin(), truth.end(), pinpointed.begin(),
                        pinpointed.end(), std::back_inserter(common));
  if (common.empty()) return "disjoint";
  if (common.size() == pinpointed.size()) return "subset";
  if (common.size() == truth.size()) return "superset";
  return "overlap";
}

netdep::DependencyGraph discoverAppDependencies(sim::AppKind kind,
                                                std::uint64_t campaign_seed,
                                                const sim::MeshConfig& mesh) {
  sim::ScenarioConfig config;
  config.kind = kind;
  config.mesh = mesh;
  config.seed = mixSeed(campaign_seed, 0xdeb5ull,
                        static_cast<std::uint64_t>(kind));
  config.duration_sec = 1200;  // healthy run; discovery converges well before
  sim::Simulation sim(config);
  sim.runUntil(static_cast<TimeSec>(config.duration_sec));
  return netdep::discoverDependencies(sim.record());
}

EpisodeRecord runEpisode(const EpisodeSpec& spec,
                         const netdep::DependencyGraph& deps) {
  EpisodeRecord record;
  record.spec = spec;
  record.truth = sim::groundTruth(spec.faults);
  const TimeSec fault_start =
      spec.faults.empty() ? 0 : spec.faults.front().start_time;

  sim::ScenarioConfig scenario;
  scenario.kind = spec.app;
  scenario.mesh = spec.mesh;
  scenario.faults = spec.faults;
  scenario.seed = spec.seed;
  scenario.duration_sec = spec.duration_sec;
  sim::StreamingSource source(scenario);

  online::OnlineMonitorConfig config;
  // Hadoop's DiskHog is the paper's slow-manifestation fault: it needs the
  // longer 500 s look-back window (mirrors eval/cases.cpp).
  if (spec.app == sim::AppKind::Hadoop) {
    for (const faults::FaultSpec& f : spec.faults) {
      if (f.type == faults::FaultType::DiskHog) {
        config.fchain.lookback_sec = 500;
      }
    }
  }

  SlaveCell cell;
  cell.slave = std::make_unique<core::FChainSlave>(/*host=*/0, config.fchain);
  const std::vector<ComponentId> ids = source.componentIds();
  for (ComponentId id : ids) cell.slave->addComponent(id, /*start_time=*/0);

  online::OnlineMonitor monitor(config);
  monitor.addEndpoint(std::make_shared<RestartableEndpoint>(&cell, 0), ids);

  online::AppSpec app;
  app.name = std::string(sim::appKindName(spec.app));
  app.components = ids;
  if (spec.app == sim::AppKind::Hadoop) {
    app.slo.kind = online::SloSpec::Kind::Progress;
  } else {
    app.slo.latency_threshold_sec =
        spec.app == sim::AppKind::Mesh
            ? sim::meshSloLatencyThreshold(spec.mesh)
            : sim::sloLatencyThreshold(spec.app);
    app.slo.sustain_sec = scenario.slo_sustain_sec;
  }
  const std::size_t app_index = monitor.addApplication(app);
  monitor.setDependencies(app_index, deps);

  const sim::TelemetryFaultInjector telemetry =
      makeTelemetryOverlay(spec, fault_start);
  const sim::CrashInjector crashes = makeCrashOverlay(spec, fault_start);

  for (TimeSec t = 0; t < static_cast<TimeSec>(spec.duration_sec); ++t) {
    // Crash/restart cycle first: a slave that dies at t sees none of t's
    // samples, and a replacement registers its components *at* t.
    if (crashes.crashesAt(0, t)) cell.slave.reset();
    if (crashes.restartsAt(0, t)) {
      cell.slave = std::make_unique<core::FChainSlave>(0, config.fchain);
      for (ComponentId id : ids) cell.slave->addComponent(id, t);
    }
    cell.down = telemetry.slaveDown(0, t);

    const sim::StreamTick tick =
        source.step([&](const sim::StreamSample& sample) {
          if (telemetry.sampleDropped(sample.component, sample.t)) return;
          std::array<double, kMetricCount> values = sample.values;
          telemetry.corruptSample(sample.component, sample.t, values);
          monitor.ingest(sample.component, sample.t, values);
        });
    monitor.observe(app_index, tick);
    monitor.pump();
    // First incident decides the episode; later re-triggers of the same
    // persistent fault add nothing to classification.
    if (!monitor.incidents().empty()) break;
  }

  if (!monitor.incidents().empty()) {
    const online::OnlineIncident& incident = monitor.incidents().front();
    record.incident.fired = true;
    record.incident.violation_time = incident.violation_time;
    record.incident.external_verdict = incident.result.external_factor;
    record.incident.pinpointed = incident.result.pinpointed;
    record.incident.coverage = incident.result.coverage;
    record.incident.watchdog_trips = incident.watchdog_trips_delta;
    record.incident.deadline_skips = incident.deadline_skips_delta;
  }

  record.outcome = classify(record.truth, spec.externalFault(), fault_start,
                            record.incident);
  record.relation = setRelation(record.truth, record.incident.pinpointed);
  return record;
}

}  // namespace fchain::campaign
