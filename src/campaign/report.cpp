#include "campaign/report.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "runtime/worker_pool.h"

namespace fchain::campaign {

namespace {

bool isSingleResourceEpisode(const EpisodeRecord& record) {
  const EpisodeSpec& spec = record.spec;
  // Mesh episodes are tracked by their own rate; keeping them out of this
  // one preserves the CI smoke gate's baseline when the mesh sweep is on.
  if (spec.app == sim::AppKind::Mesh) return false;
  if (spec.faults.size() != 1 || spec.overlay != OverlayKind::None) {
    return false;
  }
  const faults::FaultType type = spec.faults.front().type;
  return !faults::isExternalFactor(type) && !faults::isCallLevel(type);
}

/// Frontier-cell label: the fault label, app-kind-qualified for mesh
/// episodes so a mesh regression is attributable to the mesh sweep rather
/// than diluting the benchmark cells. (Benchmark kinds keep the bare label —
/// existing report bytes depend on it; their attribution lives in the
/// cluster signatures, which always carried the app kind.)
std::string cellLabel(const EpisodeRecord& record) {
  std::string label = record.spec.faultLabel();
  if (record.spec.app == sim::AppKind::Mesh) label.insert(0, "Mesh/");
  return label;
}

std::string describe(const EpisodeRecord& record) {
  std::ostringstream out;
  out << "ep#" << record.spec.id << ' '
      << sim::appKindName(record.spec.app) << ' ' << record.spec.faultLabel()
      << " i=" << record.spec.intensity << " truth=[";
  for (std::size_t i = 0; i < record.truth.size(); ++i) {
    out << (i ? " " : "") << record.truth[i];
  }
  out << "] pinpointed=[";
  for (std::size_t i = 0; i < record.incident.pinpointed.size(); ++i) {
    out << (i ? " " : "") << record.incident.pinpointed[i];
  }
  out << ']';
  return out.str();
}

std::string signatureOf(const EpisodeRecord& record) {
  std::string sig(sim::appKindName(record.spec.app));
  sig += '|';
  sig += record.spec.faultLabel();
  sig += '|';
  sig += overlayKindName(record.spec.overlay);
  sig += '|';
  sig += eval::outcomeName(record.outcome);
  sig += '|';
  sig += record.relation;
  return sig;
}

}  // namespace

eval::FrontierReport buildFrontierReport(
    const CampaignConfig& config,
    const std::vector<EpisodeRecord>& episodes) {
  eval::FrontierReport report;
  report.seed = config.seed;
  report.episode_count = episodes.size();

  // Cells keyed by (fault label, intensity); std::map gives the sorted
  // order the report contract promises.
  std::map<std::pair<std::string, double>, eval::OutcomeCounts> cells;
  struct Cluster {
    std::size_t count = 0;
    std::size_t example_id = 0;
    std::string example;
  };
  std::map<std::string, Cluster> clusters;

  std::size_t single_resource = 0, single_resource_localized = 0;
  eval::OutcomeCounts mesh_counts;
  for (const EpisodeRecord& record : episodes) {
    report.totals.add(record.outcome);
    cells[{cellLabel(record), record.spec.intensity}].add(record.outcome);
    if (record.spec.app == sim::AppKind::Mesh) {
      mesh_counts.add(record.outcome);
    }
    if (isSingleResourceEpisode(record)) {
      ++single_resource;
      if (record.outcome == eval::Outcome::Localized) {
        ++single_resource_localized;
      }
    }
    if (record.outcome != eval::Outcome::Localized &&
        record.outcome != eval::Outcome::ExternalCauseCorrect) {
      Cluster& cluster = clusters[signatureOf(record)];
      // Exemplar = lowest enumeration id, independent of run order.
      if (cluster.count == 0 || record.spec.id < cluster.example_id) {
        cluster.example_id = record.spec.id;
        cluster.example = describe(record);
      }
      ++cluster.count;
    }
  }

  report.single_fault_resource_localized_rate =
      single_resource == 0
          ? 0.0
          : static_cast<double>(single_resource_localized) /
                static_cast<double>(single_resource);
  report.mesh_episode_count = mesh_counts.total();
  report.mesh_localized_rate =
      mesh_counts.total() == 0 ? 0.0 : mesh_counts.correctRate();

  for (auto& [key, counts] : cells) {
    report.cells.push_back({key.first, key.second, counts});
  }
  for (auto& [signature, cluster] : clusters) {
    report.clusters.push_back(
        {signature, cluster.count, std::move(cluster.example)});
  }
  std::stable_sort(report.clusters.begin(), report.clusters.end(),
                   [](const eval::FailureCluster& a,
                      const eval::FailureCluster& b) {
                     if (a.count != b.count) return a.count > b.count;
                     return a.signature < b.signature;
                   });
  return report;
}

CampaignResult runCampaign(const CampaignConfig& config,
                           const ProgressFn& progress) {
  CampaignResult result;
  const std::vector<EpisodeSpec> episodes = enumerateEpisodes(config);

  // One discovery run per application kind present in the sweep.
  std::map<sim::AppKind, netdep::DependencyGraph> deps;
  for (const EpisodeSpec& spec : episodes) {
    if (!deps.contains(spec.app)) {
      deps.emplace(spec.app,
                   discoverAppDependencies(spec.app, config.seed, spec.mesh));
    }
  }

  // Episodes are independent; parallel runs write pre-allocated, disjoint
  // run-order slots (the WorkerPool determinism contract), so the record
  // vector — and therefore the report bytes — match the serial path exactly.
  result.episodes.resize(episodes.size());
  if (config.worker_threads > 1 && episodes.size() > 1) {
    runtime::WorkerPool pool(config.worker_threads);
    std::mutex progress_mutex;
    std::size_t done = 0;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(episodes.size());
    for (std::size_t i = 0; i < episodes.size(); ++i) {
      tasks.push_back([&, i] {
        result.episodes[i] = runEpisode(episodes[i], deps.at(episodes[i].app));
        if (progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          progress(++done, episodes.size(), result.episodes[i]);
        }
      });
    }
    pool.run(std::move(tasks));
  } else {
    for (std::size_t i = 0; i < episodes.size(); ++i) {
      result.episodes[i] = runEpisode(episodes[i], deps.at(episodes[i].app));
      if (progress) progress(i + 1, episodes.size(), result.episodes[i]);
    }
  }
  result.report = buildFrontierReport(config, result.episodes);
  return result;
}

}  // namespace fchain::campaign
