// Campaign episode runner: one fully-determined EpisodeSpec through the
// real online pipeline, classified against the injected ground truth.
//
// The runner is a faithful miniature of a production deployment: a
// sim::StreamingSource emits 1 Hz telemetry, an online::OnlineMonitor
// ingests it and watches the SLO, and the first auto-triggered incident's
// FChainMaster::localize verdict is compared to the episode's injected
// fault set. Monitoring-plane overlays reuse the chaos injectors
// (sim::TelemetryFaultInjector / sim::CrashInjector); a crash overlay
// really destroys the slave's in-memory models and re-registers its
// components at the restart tick, exactly like the crash-recovery tier.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "eval/frontier.h"
#include "netdep/dependency.h"

namespace fchain::campaign {

/// What the first incident (if any) of an episode looked like — the inputs
/// to classification, separated out so classify() is a pure function the
/// unit tests can drive directly.
struct IncidentFacts {
  bool fired = false;
  TimeSec violation_time = 0;
  bool external_verdict = false;
  std::vector<ComponentId> pinpointed;  ///< sorted ascending
  double coverage = 1.0;
  /// Deterministic supervision deltas for this localization (see
  /// online::OnlineIncident) — nonzero means the analysis was curtailed.
  std::size_t watchdog_trips = 0;
  std::size_t deadline_skips = 0;
};

/// Classifies one episode outcome against ground truth. `truth` is the
/// sorted union of injected faulty components (empty for external factors,
/// which `external_fault` flags); `fault_start` is the injection instant.
eval::Outcome classify(const std::vector<ComponentId>& truth,
                       bool external_fault, TimeSec fault_start,
                       const IncidentFacts& incident);

/// Set relation between the pinpointed set and ground truth, as a stable
/// token for failure-mode clustering: "exact", "subset" (pinpointed is a
/// strict subset of truth), "superset", "overlap", "disjoint", "empty"
/// (nothing pinpointed), or "no-truth" (external-factor episode).
std::string setRelation(const std::vector<ComponentId>& truth,
                        const std::vector<ComponentId>& pinpointed);

/// One classified episode.
struct EpisodeRecord {
  EpisodeSpec spec;
  eval::Outcome outcome = eval::Outcome::Missed;
  std::vector<ComponentId> truth;
  IncidentFacts incident;
  std::string relation;  ///< setRelation(truth, incident.pinpointed)
};

/// Offline dependency discovery for one application kind: a healthy seeded
/// run of the benchmark, long enough for the traffic-based discovery to
/// converge. System S discovers nothing (the paper's streaming negative
/// finding) and correctly falls back to chronology-only pinpointing.
/// `mesh` configures the topology when kind == AppKind::Mesh (ignored for
/// the fixed benchmarks).
netdep::DependencyGraph discoverAppDependencies(sim::AppKind kind,
                                                std::uint64_t campaign_seed,
                                                const sim::MeshConfig& mesh = {});

/// Runs one episode end to end. `deps` is the kind's discovered graph
/// (cached per campaign — discovery is per application, not per episode).
EpisodeRecord runEpisode(const EpisodeSpec& spec,
                         const netdep::DependencyGraph& deps);

}  // namespace fchain::campaign
