#include "campaign/campaign.h"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "common/rng.h"

namespace fchain::campaign {

namespace {

using faults::FaultSpec;
using faults::FaultType;

/// The resource-metric fault types every component can host.
constexpr FaultType kResourceFaults[] = {
    FaultType::MemLeak,      FaultType::CpuHog,  FaultType::InfiniteLoop,
    FaultType::NetHog,       FaultType::DiskHog, FaultType::Bottleneck,
};

constexpr sim::AppKind kApps[] = {sim::AppKind::Rubis, sim::AppKind::SystemS,
                                  sim::AppKind::Hadoop};

constexpr OverlayKind kOverlays[] = {
    OverlayKind::TelemetryDrop, OverlayKind::TelemetryCorrupt,
    OverlayKind::SlaveOutage, OverlayKind::SlaveCrash};

/// Components with at least one out-edge — the only valid call-level fault
/// targets (a sink makes no outbound calls).
std::vector<ComponentId> callers(const sim::ApplicationSpec& spec) {
  std::vector<bool> has_out(spec.components.size(), false);
  for (const sim::EdgeSpec& e : spec.edges) has_out[e.from] = true;
  std::vector<ComponentId> out;
  for (ComponentId id = 0; id < has_out.size(); ++id) {
    if (has_out[id]) out.push_back(id);
  }
  return out;
}

/// Injection instant: late enough for >= 1150 s of healthy model learning,
/// jittered per episode so the whole sweep never shares one diurnal phase.
TimeSec drawStart(std::uint64_t episode_seed) {
  Rng rng(mixSeed(episode_seed, 0x57a7ull));
  return static_cast<TimeSec>(rng.intIn(1150, 1450));
}

FaultSpec fault(FaultType type, std::vector<ComponentId> targets,
                TimeSec start, double intensity) {
  FaultSpec spec;
  spec.type = type;
  spec.targets = std::move(targets);
  spec.start_time = start;
  spec.intensity = intensity;
  return spec;
}

/// Co-timed fault-pair templates per application (type + single target
/// each). Mirrors the paper's concurrent-fault cases plus call-level mixes.
struct PairTemplate {
  FaultType first_type;
  ComponentId first_target;
  FaultType second_type;
  ComponentId second_target;
};

std::vector<PairTemplate> pairTemplates(sim::AppKind kind) {
  switch (kind) {
    case sim::AppKind::Rubis:
      return {{FaultType::MemLeak, 3, FaultType::CpuHog, 0},
              {FaultType::CpuHog, 1, FaultType::CpuHog, 2},
              {FaultType::CallLatency, 0, FaultType::MemLeak, 3}};
    case sim::AppKind::SystemS:
      return {{FaultType::MemLeak, 1, FaultType::MemLeak, 2},
              {FaultType::CpuHog, 1, FaultType::CpuHog, 4},
              {FaultType::CallFailure, 0, FaultType::CpuHog, 5}};
    case sim::AppKind::Hadoop:
      return {{FaultType::MemLeak, 0, FaultType::MemLeak, 1},
              {FaultType::InfiniteLoop, 0, FaultType::CpuHog, 1},
              {FaultType::CallLatency, 0, FaultType::DiskHog, 1}};
    case sim::AppKind::Mesh:
      break;  // mesh pairs are built from the generated topology below
  }
  return {};
}

/// Representative single fault per application for the overlay sweep (the
/// best-understood resource episodes: RUBiS CpuHog@db, System S CpuHog@PE3,
/// Hadoop InfiniteLoop@map1).
FaultSpec overlayBaseFault(sim::AppKind kind, TimeSec start,
                           double intensity) {
  switch (kind) {
    case sim::AppKind::Rubis:
      return fault(FaultType::CpuHog, {3}, start, intensity);
    case sim::AppKind::SystemS:
      return fault(FaultType::CpuHog, {2}, start, intensity);
    case sim::AppKind::Hadoop:
      return fault(FaultType::InfiniteLoop, {0}, start, intensity);
    case sim::AppKind::Mesh:
      break;  // mesh overlays target the generated data store instead
  }
  return {};
}

}  // namespace

std::string_view overlayKindName(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::None: return "none";
    case OverlayKind::TelemetryDrop: return "telemetry_drop";
    case OverlayKind::TelemetryCorrupt: return "telemetry_corrupt";
    case OverlayKind::SlaveOutage: return "slave_outage";
    case OverlayKind::SlaveCrash: return "slave_crash";
  }
  return "unknown";
}

bool EpisodeSpec::externalFault() const {
  for (const faults::FaultSpec& f : faults) {
    if (faults::isExternalFactor(f.type)) return true;
  }
  return false;
}

std::string EpisodeSpec::faultLabel() const {
  std::string label;
  for (const faults::FaultSpec& f : faults) {
    if (!label.empty()) label += '+';
    label += faults::faultTypeName(f.type);
  }
  return label;
}

std::vector<EpisodeSpec> enumerateEpisodes(const CampaignConfig& config) {
  std::vector<EpisodeSpec> episodes;
  std::size_t next_id = 0;

  // Appends one episode with its id/seed/start already resolved. The seed
  // derives from (campaign seed, enumeration id), so it is stable under the
  // shuffle and under max_episodes truncation.
  auto push = [&](sim::AppKind app, std::vector<FaultSpec> fault_list,
                  OverlayKind overlay, double intensity,
                  std::size_t duration) {
    EpisodeSpec spec;
    spec.id = next_id++;
    spec.app = app;
    spec.overlay = overlay;
    spec.intensity = intensity;
    spec.duration_sec = duration;
    spec.seed = mixSeed(config.seed, 0xe91ull, spec.id);
    const TimeSec start = drawStart(spec.seed);
    for (FaultSpec& f : fault_list) f.start_time = start;  // co-timed
    spec.faults = std::move(fault_list);
    episodes.push_back(std::move(spec));
  };

  for (sim::AppKind app : config.mesh_only
                              ? std::span<const sim::AppKind>{}
                              : std::span<const sim::AppKind>(kApps)) {
    const sim::ApplicationSpec app_spec = sim::makeAppSpec(app);
    const std::size_t n = app_spec.components.size();
    const std::vector<ComponentId> call_targets = callers(app_spec);

    for (double intensity : config.intensities) {
      for (std::size_t duration : config.durations) {
        // Single resource faults: every fault type on every component.
        for (FaultType type : kResourceFaults) {
          for (ComponentId id = 0; id < n; ++id) {
            push(app, {fault(type, {id}, 0, intensity)}, OverlayKind::None,
                 intensity, duration);
          }
        }
        // Call-level faults: every component that makes outbound calls.
        for (FaultType type :
             {FaultType::CallLatency, FaultType::CallFailure}) {
          for (ComponentId id : call_targets) {
            push(app, {fault(type, {id}, 0, intensity)}, OverlayKind::None,
                 intensity, duration);
          }
        }
        // Load-balance software bugs: RUBiS-only (JBAS-1442 / mod_jk are
        // RUBiS bugs; other topologies have no calibrated equivalent).
        if (app == sim::AppKind::Rubis) {
          for (FaultType type : {FaultType::OffloadBug, FaultType::LBBug}) {
            push(app, {fault(type, {1, 2}, 0, intensity)}, OverlayKind::None,
                 intensity, duration);
          }
        }
        // External factors: surge needs an external workload (not Hadoop).
        if (app != sim::AppKind::Hadoop) {
          push(app, {fault(FaultType::WorkloadSurge, {}, 0, intensity)},
               OverlayKind::None, intensity, duration);
        }
        push(app, {fault(FaultType::SharedSlowdown, {}, 0, intensity)},
             OverlayKind::None, intensity, duration);

        // Co-timed fault pairs (anomaly-propagation coverage).
        if (config.include_pairs) {
          for (const PairTemplate& pair : pairTemplates(app)) {
            push(app,
                 {fault(pair.first_type, {pair.first_target}, 0, intensity),
                  fault(pair.second_type, {pair.second_target}, 0,
                        intensity)},
                 OverlayKind::None, intensity, duration);
          }
        }
        // Monitoring-plane overlays on the representative resource fault.
        if (config.include_overlays) {
          for (OverlayKind overlay : kOverlays) {
            push(app, {overlayBaseFault(app, 0, intensity)}, overlay,
                 intensity, duration);
          }
        }
      }
    }
  }

  // Opt-in microservice-mesh sweep, appended after the legacy fault space so
  // legacy ids (and, with mesh_services == 0, the shuffle input) are
  // untouched. The mesh is too large for the exhaustive every-component
  // sweep; instead the fault space is sampled at four representative
  // services — the busiest gateway, the widest fan-out mid-tier service, a
  // cache-fronted data-tier caller, and the hottest data store — which
  // covers every tier role the localizer must distinguish.
  if (config.mesh_services > 0 && !config.durations.empty()) {
    const sim::MeshConfig mesh =
        sim::meshConfigFor(config.mesh_services, mixSeed(config.seed, 0x3e57ull));
    const sim::ApplicationSpec mesh_spec = sim::makeMicroMeshSpec(mesh);
    const ComponentId gateway = mesh_spec.reference_path.front();
    const ComponentId store = mesh_spec.reference_path.back();
    const ComponentId cache_caller =
        mesh_spec.reference_path[mesh_spec.reference_path.size() - 2];
    std::vector<std::size_t> out_degree(mesh_spec.components.size(), 0);
    for (const sim::EdgeSpec& e : mesh_spec.edges) ++out_degree[e.from];
    ComponentId widest = 0;
    for (ComponentId id = 0; id < mesh_spec.components.size(); ++id) {
      if (id != gateway && out_degree[id] > out_degree[widest]) widest = id;
    }
    std::vector<ComponentId> targets;
    for (ComponentId id : {gateway, widest, cache_caller, store}) {
      if (std::find(targets.begin(), targets.end(), id) == targets.end()) {
        targets.push_back(id);
      }
    }
    auto pushMesh = [&](std::vector<FaultSpec> fault_list, OverlayKind overlay,
                        double intensity, std::size_t duration) {
      push(sim::AppKind::Mesh, std::move(fault_list), overlay, intensity,
           duration);
      episodes.back().mesh = mesh;
    };
    // One duration: the mesh sweep probes topology roles, not run-length
    // sensitivity (the legacy sweep already covers that axis).
    const std::size_t duration = config.durations.front();
    for (double intensity : config.intensities) {
      for (FaultType type : kResourceFaults) {
        for (ComponentId id : targets) {
          pushMesh({fault(type, {id}, 0, intensity)}, OverlayKind::None,
                   intensity, duration);
        }
      }
      for (FaultType type : {FaultType::CallLatency, FaultType::CallFailure}) {
        for (ComponentId id : {gateway, cache_caller}) {
          pushMesh({fault(type, {id}, 0, intensity)}, OverlayKind::None,
                   intensity, duration);
        }
      }
      pushMesh({fault(FaultType::WorkloadSurge, {}, 0, intensity)},
               OverlayKind::None, intensity, duration);
      pushMesh({fault(FaultType::SharedSlowdown, {}, 0, intensity)},
               OverlayKind::None, intensity, duration);
      if (config.include_pairs) {
        // Retry-storm pair: a slow data store plus a hot mid-tier service —
        // the amplification path the mesh generator exists to model.
        pushMesh({fault(FaultType::Bottleneck, {store}, 0, intensity),
                  fault(FaultType::CpuHog, {widest}, 0, intensity)},
                 OverlayKind::None, intensity, duration);
        pushMesh({fault(FaultType::MemLeak, {widest}, 0, intensity),
                  fault(FaultType::MemLeak, {cache_caller}, 0, intensity)},
                 OverlayKind::None, intensity, duration);
      }
      if (config.include_overlays) {
        for (OverlayKind overlay : kOverlays) {
          pushMesh({fault(FaultType::Bottleneck, {store}, 0, intensity)},
                   overlay, intensity, duration);
        }
      }
    }
  }

  // Seed-determined run order (Fisher-Yates); different seeds give
  // different orders, same seed always the same one.
  Rng shuffle_rng(mixSeed(config.seed, 0x5affe11ull));
  for (std::size_t i = episodes.size(); i > 1; --i) {
    std::swap(episodes[i - 1],
              episodes[shuffle_rng.below(static_cast<std::uint64_t>(i))]);
  }
  if (config.max_episodes > 0 && episodes.size() > config.max_episodes) {
    episodes.resize(config.max_episodes);
  }
  return episodes;
}

}  // namespace fchain::campaign
