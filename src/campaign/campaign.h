// Fault-injection campaign: deterministic enumeration of the fault space.
//
// FChain's evaluation so far samples the fault space by hand (the paper's
// thirteen cases). The campaign layer instead *sweeps* it — FaultType x
// component x intensity x duration, plus co-timed fault pairs and
// telemetry-loss / slave-crash overlays — and runs every episode through the
// real online pipeline (sim::StreamingSource -> online::OnlineMonitor ->
// FChainMaster::localize), classifying each outcome against the injected
// ground truth. This is the "fault injection analytics" methodology
// (Cotroneo et al.): systematic sweeps + outcome clustering is how real
// failure modes and localizer blind spots are discovered, not hand-picked
// episodes.
//
// Determinism contract: everything — episode enumeration, the shuffled run
// order, per-episode simulator noise, fault start instants, overlay loss
// patterns — derives from CampaignConfig::seed. Two runs with the same seed
// produce byte-identical reports; a different seed yields a different
// episode order (tests/campaign_test.cpp pins both).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "faults/fault.h"
#include "sim/apps.h"
#include "sim/mesh.h"

namespace fchain::campaign {

/// Monitoring-plane disturbance layered on top of an episode's application
/// fault (sim::TelemetryFaultInjector / sim::CrashInjector schedules derived
/// from the episode seed; see episode.cpp for the window geometry).
enum class OverlayKind : std::uint8_t {
  None,
  TelemetryDrop,     ///< sample-drop burst around the fault window
  TelemetryCorrupt,  ///< NaN/inf/garbage readings around the fault window
  SlaveOutage,       ///< slave unreachable (state intact) across the trigger
  SlaveCrash,        ///< slave process killed + restarted from nothing
};

std::string_view overlayKindName(OverlayKind kind);

/// One fully-determined campaign episode. Everything the runner needs is in
/// here; no further random draws happen at run time.
struct EpisodeSpec {
  /// Stable enumeration id (pre-shuffle); seeds and cluster exemplars key
  /// on it so the shuffled run order never changes per-episode behaviour.
  std::size_t id = 0;
  sim::AppKind app = sim::AppKind::Rubis;
  /// One fault, or two co-timed faults (the pair sweep). Start times are
  /// already drawn (from the episode seed) at enumeration time.
  std::vector<faults::FaultSpec> faults;
  OverlayKind overlay = OverlayKind::None;
  /// The sweep's severity knob (mirrors faults[*].intensity); the frontier
  /// report buckets accuracy by (fault label, intensity).
  double intensity = 1.0;
  std::size_t duration_sec = 2400;
  /// Drives simulator noise and any overlay loss pattern.
  std::uint64_t seed = 0;
  /// Topology knobs for AppKind::Mesh episodes (ignored otherwise). Filled
  /// at enumeration time so the runner needs no campaign-level state.
  sim::MeshConfig mesh{};

  /// True when any injected fault is an external factor (empty truth set).
  bool externalFault() const;
  /// "MemLeak" for singles, "MemLeak+CpuHog" for co-timed pairs — the
  /// frontier's fault label.
  std::string faultLabel() const;
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  /// Severity sweep; 1.0 is each fault's calibrated default.
  std::vector<double> intensities = {0.5, 1.0, 1.7};
  /// Run lengths (fault start is drawn in [1150, 1450], so every duration
  /// leaves the models >= 1150 s of healthy learning).
  std::vector<std::size_t> durations = {2400, 3000};
  bool include_pairs = true;
  bool include_overlays = true;
  /// Truncate the shuffled episode list (0 = run everything). The CI smoke
  /// sweep uses a small cap; truncation happens *after* the shuffle so a
  /// capped sweep still samples the whole space uniformly.
  std::size_t max_episodes = 0;
  /// Opt-in microservice-mesh sweep: 0 disables it (the default — legacy
  /// enumeration, ids, shuffle, and report bytes are untouched). A nonzero
  /// value adds episodes over a makeMicroMesh of that many services,
  /// appended *after* the legacy fault space so legacy episode ids stay
  /// stable when the mesh sweep is toggled on.
  std::size_t mesh_services = 0;
  /// Restrict enumeration to the mesh sweep (mesh_services must be set) —
  /// the mesh smoke job's cheap slice. Default off.
  bool mesh_only = false;
  /// Per-episode parallelism for runCampaign (<= 1 = serial). Episodes are
  /// fully independent — each owns its simulator, monitor, and slaves — so
  /// they run on a runtime::WorkerPool writing pre-allocated run-order
  /// slots. The report is byte-identical to a serial run; only the progress
  /// callback's arrival order changes (`done` still counts completions).
  int worker_threads = 0;
};

/// Enumerates the full fault space for `config`, already shuffled into the
/// seed-determined run order and truncated to max_episodes. Episode ids and
/// seeds are assigned in enumeration order, so they are invariant under the
/// shuffle and under max_episodes.
std::vector<EpisodeSpec> enumerateEpisodes(const CampaignConfig& config);

}  // namespace fchain::campaign
