// Campaign aggregation: classified episodes -> accuracy-frontier report.
//
// Clustering is deterministic: every non-correct episode gets a signature
// `app|fault-label|overlay|outcome|set-relation`, clusters count members and
// keep the lowest-id episode as the exemplar, and ordering is by count
// descending then signature — so the report bytes depend only on the
// episode data, never on run order or wall clock.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "campaign/episode.h"
#include "eval/frontier.h"

namespace fchain::campaign {

/// Builds the frontier report (cells keyed by fault label x intensity,
/// failure-mode clusters, smoke-gate scalar) from classified episodes.
eval::FrontierReport buildFrontierReport(
    const CampaignConfig& config, const std::vector<EpisodeRecord>& episodes);

struct CampaignResult {
  /// In run (shuffled) order.
  std::vector<EpisodeRecord> episodes;
  eval::FrontierReport report;
};

/// Progress hook, invoked after each episode (done counts from 1).
using ProgressFn = std::function<void(std::size_t done, std::size_t total,
                                      const EpisodeRecord& record)>;

/// Enumerates, runs, classifies, and aggregates the whole campaign.
/// Dependency graphs are discovered once per application kind (from a
/// healthy seeded run) and shared across that kind's episodes, mirroring
/// production's offline discovery.
CampaignResult runCampaign(const CampaignConfig& config,
                           const ProgressFn& progress = {});

}  // namespace fchain::campaign
