// Online discrete-time Markov-chain transition model (the PRESS [12] core).
//
// The model counts observed state-to-state transitions and predicts the next
// value as the expectation over the next-state distribution. Counts decay
// with a configurable factor so the model tracks slowly evolving workloads
// ("the prediction model must have seen and learned the change before",
// paper §II-A) without being dominated by stale history.
#pragma once

#include <cstddef>
#include <vector>

namespace fchain::persist {
struct StateAccess;
}

namespace fchain::markov {

class MarkovModel {
 public:
  /// `states`: number of discrete states.
  /// `decay`: multiplicative decay applied to a row's counts on update
  ///          (1.0 = never forget).
  /// `laplace`: add-k smoothing mass per cell when forming probabilities.
  explicit MarkovModel(std::size_t states, double decay = 0.999,
                       double laplace = 0.05);

  std::size_t states() const { return states_; }

  /// Records the transition from -> to.
  void recordTransition(std::size_t from, std::size_t to);

  /// P(next == to | current == from), Laplace-smoothed.
  double transitionProbability(std::size_t from, std::size_t to) const;

  /// True when state `from` has enough observed mass for a real prediction.
  bool seenState(std::size_t from) const;

  /// Expected next state (fractional) given the current state; when the
  /// current state was never seen, returns the current state itself
  /// (persistence prediction).
  double expectedNextState(std::size_t from) const;

  /// Most probable next state.
  std::size_t likeliestNextState(std::size_t from) const;

  /// Total (decayed) transition mass observed out of `from`.
  double rowMass(std::size_t from) const;

 private:
  /// Snapshot/restore bridge (persist/state_access.h). row_mass_ must be
  /// persisted, not recomputed: it is maintained incrementally under decay,
  /// so a recomputed sum can differ in the last bits.
  friend struct ::fchain::persist::StateAccess;

  double cell(std::size_t from, std::size_t to) const {
    return counts_[from * states_ + to];
  }

  std::size_t states_;
  double decay_;
  double laplace_;
  std::vector<double> counts_;    // row-major [from][to]
  std::vector<double> row_mass_;  // cached per-row totals
};

}  // namespace fchain::markov
