#include "markov/signature.h"

#include <cmath>
#include <vector>

namespace fchain::markov {

void SignaturePredictor::observe(double value) {
  history_.push_back(value);
  while (history_.size() > config_.history) history_.pop_front();

  if (++since_refresh_ < config_.refresh &&
      (period_.has_value() || history_.size() % config_.refresh != 0)) {
    return;
  }
  since_refresh_ = 0;

  const std::vector<double> window(history_.begin(), history_.end());
  const auto dominant = signal::dominantPeriod(window, config_.min_period,
                                               config_.max_period);
  if (dominant.has_value() &&
      dominant->power_fraction >= config_.min_power_fraction &&
      history_.size() >= 2 * dominant->period) {
    period_ = dominant->period;
  } else {
    period_ = std::nullopt;
  }
}

std::optional<double> SignaturePredictor::predictNext() const {
  if (!period_.has_value()) return std::nullopt;
  const std::size_t period = *period_;
  double sum = 0.0;
  std::size_t count = 0;
  // The next sample sits at offset history_.size(); its pattern siblings
  // are one period (minus one step) back, two periods back, ...
  for (std::size_t k = 1; k <= config_.pattern_depth; ++k) {
    const std::size_t back = k * period;
    if (back > history_.size()) break;
    sum += history_[history_.size() - back];
    ++count;
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

HybridPredictor::HybridPredictor(TimeSec start_time,
                                 const PredictorConfig& markov_config,
                                 const SignatureConfig& signature_config)
    : markov_(start_time, markov_config), signature_(signature_config),
      errors_(start_time) {}

double HybridPredictor::observe(double value) {
  double error = 0.0;
  if (last_prediction_.has_value()) {
    error = std::fabs(value - *last_prediction_);
  }
  errors_.append(error);

  // Both models stay warm; the active one serves the next prediction.
  markov_.observe(value);
  signature_.observe(value);
  if (auto from_signature = signature_.predictNext()) {
    last_prediction_ = from_signature;
  } else {
    last_prediction_ = markov_.predictNext();
  }
  return error;
}

std::optional<double> HybridPredictor::predictNext() const {
  return last_prediction_;
}

}  // namespace fchain::markov
