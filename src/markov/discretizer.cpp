#include "markov/discretizer.h"

#include <algorithm>
#include <stdexcept>

namespace fchain::markov {

Discretizer::Discretizer(std::size_t bins, std::size_t calibration_samples,
                         double padding)
    : bins_(bins), calibration_samples_(calibration_samples),
      padding_(padding) {
  if (bins_ == 0) throw std::invalid_argument("Discretizer needs >= 1 bin");
  buffer_.reserve(calibration_samples_);
}

bool Discretizer::observe(double value) {
  if (calibrated_) return true;
  buffer_.push_back(value);
  if (buffer_.size() >= calibration_samples_) finalizeRange();
  return calibrated_;
}

void Discretizer::finalizeRange() {
  const auto [lo_it, hi_it] = std::minmax_element(buffer_.begin(), buffer_.end());
  double lo = *lo_it;
  double hi = *hi_it;
  double span = hi - lo;
  if (span <= 0.0) span = std::max(1.0, std::abs(hi) * 0.1);
  lo_ = lo - padding_ * span;
  hi_ = hi + padding_ * span;
  width_ = (hi_ - lo_) / static_cast<double>(bins_);
  calibrated_ = true;
  buffer_.clear();
  buffer_.shrink_to_fit();
}

std::size_t Discretizer::stateOf(double value) const {
  if (!calibrated_) throw std::logic_error("Discretizer not calibrated");
  const auto raw = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
      raw, 0, static_cast<std::ptrdiff_t>(bins_) - 1));
}

double Discretizer::centerOf(std::size_t state) const {
  if (!calibrated_) throw std::logic_error("Discretizer not calibrated");
  return lo_ + (static_cast<double>(state) + 0.5) * width_;
}

}  // namespace fchain::markov
