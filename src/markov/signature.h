// Signature-driven prediction (the other half of PRESS [12]).
//
// PRESS first checks whether a metric carries a *repeating pattern*
// (periodogram: one period concentrating a large share of the signal
// energy). If so, it predicts from the pattern — the average of the values
// one period, two periods, ... back — which beats a state-based model on
// strongly periodic metrics (batch jobs, periodic merges, cron-like load).
// Otherwise it falls back to the state-driven Markov predictor.
//
// The HybridPredictor packages the PRESS decision: it maintains both
// predictors, re-evaluates the periodicity verdict on a fixed cadence, and
// serves predictions (and error bookkeeping) from the active mode.
#pragma once

#include <deque>
#include <optional>

#include "common/time_series.h"
#include "markov/predictor.h"
#include "signal/spectrum.h"

namespace fchain::markov {

struct SignatureConfig {
  /// History kept for pattern extraction (samples).
  std::size_t history = 1800;
  /// Periodicity is re-evaluated every `refresh` samples.
  std::size_t refresh = 300;
  /// Minimum share of non-DC energy the dominant period must hold.
  double min_power_fraction = 0.35;
  /// Period search band (samples).
  std::size_t min_period = 4;
  std::size_t max_period = 600;
  /// Periods averaged for the signature prediction.
  std::size_t pattern_depth = 4;
};

/// Pure signature predictor: predicts x[t] as the mean of
/// x[t - P], x[t - 2P], ..., once a dominant period P is locked in.
class SignaturePredictor {
 public:
  explicit SignaturePredictor(const SignatureConfig& config = {})
      : config_(config) {}

  /// Feeds one sample; re-detects the period on the refresh cadence.
  void observe(double value);

  /// Prediction for the next sample; nullopt until a period is locked.
  std::optional<double> predictNext() const;

  std::optional<std::size_t> period() const { return period_; }

 private:
  SignatureConfig config_;
  std::deque<double> history_;
  std::size_t since_refresh_ = 0;
  std::optional<std::size_t> period_;
};

/// PRESS-style hybrid: signature mode when the metric is strongly periodic,
/// state-driven Markov otherwise. Interface mirrors OnlinePredictor.
class HybridPredictor {
 public:
  HybridPredictor(TimeSec start_time, const PredictorConfig& markov_config = {},
                  const SignatureConfig& signature_config = {});

  /// Feeds one sample; returns the absolute error of the previous
  /// prediction (whichever mode made it).
  double observe(double value);

  std::optional<double> predictNext() const;

  /// True while the signature mode is active.
  bool signatureMode() const { return signature_.period().has_value(); }

  const TimeSeries& errors() const { return errors_; }

 private:
  OnlinePredictor markov_;
  SignaturePredictor signature_;
  TimeSeries errors_;
  std::optional<double> last_prediction_;
};

}  // namespace fchain::markov
