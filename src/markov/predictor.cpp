#include "markov/predictor.h"

#include <cmath>

namespace fchain::markov {

OnlinePredictor::OnlinePredictor(TimeSec start_time,
                                 const PredictorConfig& config)
    : discretizer_(config.bins, config.calibration_samples,
                   config.range_padding),
      model_(config.bins, config.decay, config.laplace),
      errors_(start_time) {}

double OnlinePredictor::observe(double value) {
  double error = 0.0;
  if (!discretizer_.calibrated()) {
    discretizer_.observe(value);
    errors_.append(0.0);
    return 0.0;
  }

  if (predicted_next_.has_value()) {
    error = std::fabs(value - *predicted_next_);
  }
  errors_.append(error);

  const std::size_t state = discretizer_.stateOf(value);
  if (last_state_.has_value()) {
    model_.recordTransition(*last_state_, state);
  }
  last_state_ = state;

  // Predict the next sample as the expectation over next states; fall back
  // to persistence (the raw value) for never-seen states so that the first
  // excursion into new territory scores by how far it keeps moving.
  if (model_.seenState(state)) {
    predicted_next_ = discretizer_.centerOf(0) +
                      (discretizer_.centerOf(1) - discretizer_.centerOf(0)) *
                          model_.expectedNextState(state);
  } else {
    predicted_next_ = value;
  }
  return error;
}

std::optional<double> OnlinePredictor::predictNext() const {
  return predicted_next_;
}

}  // namespace fchain::markov
