// Online value predictor with per-sample error tracking.
//
// This is the slave-side "normal fluctuation modeling" building block: for
// every new sample it (1) scores how well the previous prediction matched,
// (2) updates the Markov model, and (3) predicts the next value. The per-
// sample absolute prediction error series is what the abnormal change point
// selector compares against the burstiness-derived expected error.
#pragma once

#include <optional>

#include "common/time_series.h"
#include "markov/discretizer.h"
#include "markov/markov_model.h"

namespace fchain::persist {
struct StateAccess;
}

namespace fchain::markov {

struct PredictorConfig {
  std::size_t bins = 40;
  std::size_t calibration_samples = 60;
  double range_padding = 0.25;
  double decay = 0.999;
  double laplace = 0.05;
};

class OnlinePredictor {
 public:
  explicit OnlinePredictor(TimeSec start_time,
                           const PredictorConfig& config = {});

  /// Feeds the sample for the next second. Returns the absolute prediction
  /// error for this sample (0 while the discretizer is still calibrating —
  /// the model has no opinion yet).
  double observe(double value);

  /// Prediction for the next (not yet observed) sample, when available.
  std::optional<double> predictNext() const;

  /// Absolute prediction error per second, aligned with the sample times.
  const TimeSeries& errors() const { return errors_; }

  bool ready() const { return discretizer_.calibrated(); }

  const MarkovModel& model() const { return model_; }
  const Discretizer& discretizer() const { return discretizer_; }

 private:
  /// Snapshot/restore bridge (persist/state_access.h).
  friend struct ::fchain::persist::StateAccess;

  Discretizer discretizer_;
  MarkovModel model_;
  TimeSeries errors_;
  std::optional<std::size_t> last_state_;
  std::optional<double> predicted_next_;
};

}  // namespace fchain::markov
