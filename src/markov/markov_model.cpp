#include "markov/markov_model.h"

#include <algorithm>
#include <stdexcept>

namespace fchain::markov {

MarkovModel::MarkovModel(std::size_t states, double decay, double laplace)
    : states_(states), decay_(decay), laplace_(laplace),
      counts_(states * states, 0.0), row_mass_(states, 0.0) {
  if (states_ == 0) throw std::invalid_argument("MarkovModel needs >= 1 state");
  if (decay_ <= 0.0 || decay_ > 1.0) {
    throw std::invalid_argument("MarkovModel decay must be in (0, 1]");
  }
}

void MarkovModel::recordTransition(std::size_t from, std::size_t to) {
  if (from >= states_ || to >= states_) {
    throw std::out_of_range("MarkovModel::recordTransition state");
  }
  if (decay_ < 1.0) {
    double mass = 0.0;
    for (std::size_t j = 0; j < states_; ++j) {
      counts_[from * states_ + j] *= decay_;
      mass += counts_[from * states_ + j];
    }
    row_mass_[from] = mass;
  }
  counts_[from * states_ + to] += 1.0;
  row_mass_[from] += 1.0;
}

double MarkovModel::transitionProbability(std::size_t from,
                                          std::size_t to) const {
  const double denom =
      row_mass_[from] + laplace_ * static_cast<double>(states_);
  return (cell(from, to) + laplace_) / denom;
}

bool MarkovModel::seenState(std::size_t from) const {
  return row_mass_[from] >= 1.0;
}

double MarkovModel::expectedNextState(std::size_t from) const {
  if (!seenState(from)) return static_cast<double>(from);
  // Expectation over the *observed* (unsmoothed) distribution: smoothing
  // toward uniform would bias every prediction toward mid-range.
  double expectation = 0.0;
  for (std::size_t to = 0; to < states_; ++to) {
    expectation += static_cast<double>(to) * cell(from, to);
  }
  return expectation / row_mass_[from];
}

std::size_t MarkovModel::likeliestNextState(std::size_t from) const {
  if (!seenState(from)) return from;
  const auto row = counts_.begin() + static_cast<std::ptrdiff_t>(from * states_);
  return static_cast<std::size_t>(
      std::distance(row, std::max_element(row, row + static_cast<std::ptrdiff_t>(states_))));
}

double MarkovModel::rowMass(std::size_t from) const { return row_mass_[from]; }

}  // namespace fchain::markov
