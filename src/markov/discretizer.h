// Value discretization for the discrete-time Markov-chain predictor.
//
// PRESS [12] discretizes each metric's value range into equal-width states.
// Our discretizer calibrates its range from the first samples it sees and
// then keeps the binning stable (Markov transition counts stay meaningful);
// values outside the calibrated range clamp into the edge states. A faulty
// metric that leaves the calibrated range therefore predicts poorly — which
// is exactly the signal FChain's predictability test relies on.
#pragma once

#include <cstddef>
#include <vector>

namespace fchain::persist {
struct StateAccess;
}

namespace fchain::markov {

class Discretizer {
 public:
  /// `bins`: number of states. `calibration_samples`: how many samples are
  /// buffered to fix the range. `padding`: fraction of the observed range
  /// added on both sides so mild drift does not clamp immediately.
  explicit Discretizer(std::size_t bins = 40,
                       std::size_t calibration_samples = 60,
                       double padding = 0.25);

  /// Feeds a sample. Returns true once the range is calibrated.
  bool observe(double value);

  bool calibrated() const { return calibrated_; }
  std::size_t bins() const { return bins_; }

  /// State index for a value. Requires calibrated().
  std::size_t stateOf(double value) const;

  /// Center value of a state. Requires calibrated().
  double centerOf(std::size_t state) const;

  double rangeLo() const { return lo_; }
  double rangeHi() const { return hi_; }

 private:
  /// Snapshot/restore bridge (persist/state_access.h) — the one non-public
  /// door into the calibrated range.
  friend struct ::fchain::persist::StateAccess;

  void finalizeRange();

  std::size_t bins_;
  std::size_t calibration_samples_;
  double padding_;
  std::vector<double> buffer_;
  bool calibrated_ = false;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
};

}  // namespace fchain::markov
