// In-process endpoint whose ingest path is crash-durable.
//
// LocalEndpoint (runtime/endpoint.h) feeds samples straight into the slave;
// this variant routes them through a core::SlaveCheckpointer first, so every
// streamed second is journaled before it mutates the slave's models
// (journal-then-ingest, see fchain/recovery.h) and the slave auto-checkpoints
// on the checkpointer's sample-time cadence. Analysis RPCs go straight to
// the slave — they read state, so they need no durability hop. Plugging this
// into OnlineMonitor::addEndpoint gives an online deployment whose slaves
// survive a crash with zero learned-history loss: recover() rebuilds them
// bit-identically and streaming resumes where it stopped.
//
// Header-only for the same layering reason as LocalEndpoint: it touches
// fchain_core types, and the link-level dependency points the other way.
#pragma once

#include "fchain/recovery.h"
#include "runtime/endpoint.h"

namespace fchain::online {

class CheckpointedEndpoint final : public runtime::SlaveEndpoint {
 public:
  /// Both the slave and its checkpointer must outlive the endpoint, and the
  /// checkpointer must wrap this same slave.
  CheckpointedEndpoint(core::FChainSlave* slave,
                       core::SlaveCheckpointer* checkpointer)
      : slave_(slave), checkpointer_(checkpointer) {}

  HostId host() const override { return slave_->host(); }

  runtime::ComponentListReply listComponents() override {
    return {runtime::EndpointStatus::Ok, slave_->components()};
  }

  runtime::AnalyzeReply analyze(
      const runtime::AnalyzeRequest& request) override {
    runtime::AnalyzeReply reply;
    reply.status = runtime::EndpointStatus::Ok;
    reply.finding = slave_->analyze(request.component, request.violation_time);
    return reply;
  }

  runtime::AnalyzeBatchReply analyzeBatch(
      const runtime::AnalyzeBatchRequest& request) override {
    runtime::AnalyzeBatchReply reply;
    reply.status = runtime::EndpointStatus::Ok;
    reply.findings =
        slave_->analyzeBatch(request.components, request.violation_time);
    return reply;
  }

  runtime::IngestReply ingest(const runtime::IngestRequest& request) override {
    checkpointer_->ingestAt(request.component, request.t, request.sample);
    return {runtime::EndpointStatus::Ok, 0.0};
  }

 private:
  core::FChainSlave* slave_;
  core::SlaveCheckpointer* checkpointer_;
};

}  // namespace fchain::online
