#include "online/ring.h"

namespace fchain::online {

void TelemetryRing::addComponent(ComponentId id) { rings_.try_emplace(id); }

void TelemetryRing::setCapacityPerComponent(std::size_t capacity) {
  capacity_ = capacity;
  for (auto& [id, window] : rings_) trim(window);
}

void TelemetryRing::trim(Window& w) {
  while (w.samples.size() > capacity_) {
    w.samples.pop_front();
    ++w.start;
    --occupancy_;
    ++evictions_;
  }
}

bool TelemetryRing::push(ComponentId id, TimeSec t,
                         const std::array<double, kMetricCount>& sample) {
  const auto it = rings_.find(id);
  if (it == rings_.end()) return false;
  Window& w = it->second;
  if (capacity_ == 0) return true;  // zero budget: accept and retain nothing

  if (w.samples.empty()) {
    w.start = t;
    w.samples.push_back(sample);
    ++occupancy_;
    return true;
  }

  const TimeSec end = w.start + static_cast<TimeSec>(w.samples.size());
  if (t < w.start) return true;  // older than the window: already shed
  if (t < end) {                 // duplicate: latest value wins, in place
    w.samples[static_cast<std::size_t>(t - w.start)] = sample;
    return true;
  }
  const TimeSec gap = t - end;
  if (gap >= static_cast<TimeSec>(capacity_)) {
    // The fill alone would flush the whole window; restart at t instead of
    // synthesizing capacity_ throwaway samples.
    evictions_ += w.samples.size();
    occupancy_ -= w.samples.size();
    w.samples.clear();
    w.start = t;
    w.samples.push_back(sample);
    ++occupancy_;
    return true;
  }
  const std::array<double, kMetricCount>& last = w.samples.back();
  for (TimeSec g = 0; g < gap; ++g) {
    w.samples.push_back(last);
    ++occupancy_;
  }
  w.samples.push_back(sample);
  ++occupancy_;
  trim(w);
  return true;
}

std::optional<TimeSec> TelemetryRing::startTime(ComponentId id) const {
  const auto it = rings_.find(id);
  if (it == rings_.end() || it->second.samples.empty()) return std::nullopt;
  return it->second.start;
}

std::optional<TimeSec> TelemetryRing::endTime(ComponentId id) const {
  const auto it = rings_.find(id);
  if (it == rings_.end() || it->second.samples.empty()) return std::nullopt;
  return it->second.start + static_cast<TimeSec>(it->second.samples.size());
}

std::optional<std::array<double, kMetricCount>> TelemetryRing::at(
    ComponentId id, TimeSec t) const {
  const auto it = rings_.find(id);
  if (it == rings_.end() || it->second.samples.empty()) return std::nullopt;
  const Window& w = it->second;
  const TimeSec end = w.start + static_cast<TimeSec>(w.samples.size());
  if (t < w.start || t >= end) return std::nullopt;
  return w.samples[static_cast<std::size_t>(t - w.start)];
}

}  // namespace fchain::online
