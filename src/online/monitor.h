// Online monitoring runtime: streaming ingest + auto-triggered localization.
//
// Everything built so far diagnoses *after the fact*: a finished RunRecord
// (or a set of fully-ingested slaves) and an externally supplied violation
// time go in, a PinpointResult comes out. The paper's FChain is an always-on
// system — slaves learn continuously from live 1 Hz telemetry, an SLO
// monitor watches the application signal, and the master's localization is
// *triggered by* the violation, not requested by an operator. OnlineMonitor
// closes that loop:
//
//   StreamingSource ──samples──▶ ingest() ──▶ TelemetryRing (bounded)
//                                      └────▶ SlaveEndpoint::ingest RPC
//                  ──SLO signal─▶ observe*() ──latch──▶ FChainMaster::localize
//
// Triggering semantics (all in deterministic *sample* time, never wall
// time, so a replayed stream reproduces the same incidents bit-for-bit):
//   - an SLO latch triggers localization immediately when no cooldown is
//     active; during a cooldown the incident is queued (bounded) and fires
//     from pump() once the cooldown expires — overlapping incidents from
//     several applications serialize instead of storming the slaves;
//   - the latched violation time tv is preserved across queueing: the
//     analysis window is anchored at the violation, however late the
//     fan-out runs;
//   - a handled application re-arms only after `rearm_good_sec` of
//     recovered signal — faults that persist (every injected fault does)
//     do not re-trigger once per sustain window.
//
// Equivalence contract (tested in online_vs_offline_test / the soak tier):
// an incident triggered at its latch tick is bit-identical to offline
// `localizeRecord` on the record as of that tick — the slaves have consumed
// exactly the recorded samples, and replayModel(series, tv + 1) is exactly
// the slave's continuously learned model because the series *ends* at tv.
// For a queued incident the slaves have kept learning past tv; the offline
// equivalent replays the model to the trigger-time series end instead.
//
// The monitor owns its FChainMaster; transports registered through
// addSlave()/addEndpoint() serve both the analysis RPCs and the streaming
// ingest RPC (runtime::IngestRequest). Ingest is fire-and-forget: a lost
// sample is repaired by the slave's gap-fill on the next arrival, so there
// is no retry path to storm a degraded slave with.
//
// The driver loop contract, per simulated second:
//   1. ingest() every component's sample for tick t;
//   2. observe*() each application's SLO signal at t (may fire);
//   3. pump() once, so queued incidents fire on tick boundaries only —
//      every registered slave then holds *complete* data through t when a
//      late incident fans out.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fchain/master.h"
#include "online/ring.h"
#include "sim/slo.h"
#include "sim/stream.h"

namespace fchain::online {

/// Which SLO guards an application, with the paper's defaults (§III-A).
struct SloSpec {
  enum class Kind : std::uint8_t {
    Latency,   ///< sustained `latency > threshold` (RUBiS, System S)
    Progress,  ///< no progress over a trailing window (Hadoop)
  };
  Kind kind = Kind::Latency;
  double latency_threshold_sec = 0.1;
  std::size_t sustain_sec = 30;
  std::size_t progress_window_sec = 30;
  double progress_min_delta = 5e-4;
};

/// One monitored application: a name, the (global) components it runs on,
/// and its SLO.
struct AppSpec {
  std::string name;
  std::vector<ComponentId> components;
  SloSpec slo;
};

struct OnlineMonitorConfig {
  core::FChainConfig fchain;
  runtime::RetryPolicy retry;

  /// Seconds of telemetry retained per component in the master-side ring.
  /// 0 derives the window every analysis path can reach backward into:
  /// look-back W + predictor error history + 2Q burst margin + concurrency
  /// window + a small slack.
  TimeSec retention_sec = 0;

  /// Hard cap on the ring's total sample footprint in (approximate) bytes;
  /// when the derived retention would exceed it, the per-component window
  /// shrinks to fit. 0 = no byte cap beyond retention_sec.
  std::size_t max_ring_bytes = 0;

  /// Seconds of sample time after a trigger during which further latches
  /// queue instead of firing (localization storm control).
  TimeSec cooldown_sec = 60;

  /// Queued-incident bound; latches past it are counted dropped.
  std::size_t max_pending_incidents = 8;

  /// Consecutive seconds of recovered SLO signal before a handled
  /// application's monitor re-arms. For progress SLOs the equivalent
  /// criterion is cumulative progress of rearm_good_sec x min_delta since
  /// the trigger.
  TimeSec rearm_good_sec = 30;

  /// Worker threads for the master's localization fan-out (0 = serial).
  int worker_threads = 0;

  /// Deadline stamped on every ingest RPC (0 disables).
  double ingest_deadline_ms = 0.0;
};

/// One auto-triggered localization.
struct OnlineIncident {
  std::size_t app = 0;  ///< index returned by addApplication()
  std::string app_name;
  TimeSec violation_time = 0;  ///< the SLO latch (analysis anchor tv)
  TimeSec triggered_at = 0;    ///< sample clock when localize actually ran
  TimeSec queued_delay_sec = 0;  ///< triggered_at - violation_time
  double localize_wall_ms = 0.0;
  /// Supervision deltas across *this* localization (0 when the watchdog is
  /// off): endpoint calls abandoned on timeout and components shed by the
  /// localize deadline. Unlike localize_wall_ms these are deterministic
  /// under a deterministic transport, so offline analytics (the fault
  /// campaign's timed-out classification) can key on them without
  /// reintroducing wall-clock noise into reports.
  std::size_t watchdog_trips_delta = 0;
  std::size_t deadline_skips_delta = 0;
  core::PinpointResult result;
};

class OnlineMonitor {
 public:
  using IncidentCallback = std::function<void(const OnlineIncident&)>;
  /// Replacement fan-out for a latched incident: (app index, the app's
  /// components, violation time) -> PinpointResult. See setLocalizer().
  using Localizer = std::function<core::PinpointResult(
      std::size_t, const std::vector<ComponentId>&, TimeSec)>;

  explicit OnlineMonitor(OnlineMonitorConfig config = {});

  // --- Registration (before streaming starts) ----------------------------

  /// Registers an in-process slave (ingest + analysis via LocalEndpoint).
  /// The slave must outlive the monitor; its components must already be
  /// registered.
  void addSlave(core::FChainSlave* slave);

  /// Registers a slave behind an arbitrary transport. The endpoint must
  /// implement the ingest RPC (LocalEndpoint, CheckpointedEndpoint, and the
  /// chaos decorators all do).
  void addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                   const std::vector<ComponentId>& components);

  /// Registers an application; returns its index (used by observe*() and
  /// OnlineIncident::app).
  std::size_t addApplication(AppSpec spec);

  /// Cluster-wide dependency graph (global id space): the default for every
  /// application without a graph of its own.
  void setDependencies(netdep::DependencyGraph graph);

  /// Per-application dependency graph (global id space), installed on the
  /// master for this application's localizations only. Localization
  /// semantics are per-application: an app whose discovery found *nothing*
  /// (the paper's data-stream negative finding) must fall back to
  /// chronology-only pinpointing even when other apps on the same monitor
  /// have rich graphs — a merged cluster graph would silently defeat that
  /// fallback and mark every unconnected component an independent fault.
  void setDependencies(std::size_t app, netdep::DependencyGraph graph);
  void setWatchdog(runtime::WatchdogConfig config);
  /// Incident journal for crash recovery (not owned; see fchain/recovery.h).
  void setIncidentJournal(persist::IncidentJournal* journal);

  /// Routes fired incidents through an external localizer instead of the
  /// monitor's own master (the fleet tier's fan-in seam: the owning-shard
  /// monitor keeps all latch/cooldown/re-arm semantics and hands only the
  /// fan-out to the fleet). Everything else about an incident — tv
  /// anchoring, queueing, callbacks, metrics — is unchanged; the master's
  /// per-app dependency install is skipped, since the external localizer
  /// owns dependency knowledge. Pass {} to restore the built-in path.
  void setLocalizer(Localizer localizer) {
    localizer_ = std::move(localizer);
  }

  // --- Streaming ---------------------------------------------------------

  /// Feeds one component-second: retains it in the ring and pushes it to
  /// the owning slave. Advances the monitor's sample clock.
  void ingest(ComponentId id, TimeSec t,
              const std::array<double, kMetricCount>& sample);
  void ingest(const sim::StreamSample& sample) {
    ingest(sample.component, sample.t, sample.values);
  }

  /// Feeds one application's SLO signal for one tick; returns true when an
  /// incident fired synchronously (latch with no active cooldown).
  bool observeLatency(std::size_t app, TimeSec t, double latency_sec);
  bool observeProgress(std::size_t app, TimeSec t, double progress);
  /// Dispatches on the app's SloSpec::Kind from a StreamTick.
  bool observe(std::size_t app, const sim::StreamTick& tick);

  /// Fires queued incidents whose cooldown has expired (call once per tick,
  /// after every ingest/observe of that tick). Returns the number fired.
  std::size_t pump();

  /// Flushes the queue regardless of cooldown (end-of-stream drain).
  std::size_t drain();

  // --- Results / introspection -------------------------------------------

  /// Callback invoked synchronously as each incident completes — the hook
  /// where an equivalence harness captures the comparator state at the
  /// exact trigger moment.
  void onIncident(IncidentCallback callback) {
    callback_ = std::move(callback);
  }

  const std::vector<OnlineIncident>& incidents() const { return incidents_; }
  std::size_t pendingTriggers() const { return pending_.size(); }
  TimeSec clock() const { return clock_; }
  TimeSec retentionSec() const { return retention_sec_; }

  const TelemetryRing& ring() const { return ring_; }
  std::size_t ringOccupancy() const { return ring_.occupancy(); }
  std::size_t ringCapacity() const { return ring_.capacity(); }

  core::FChainMaster& master() { return master_; }
  const core::FChainMaster& master() const { return master_; }

  /// The master's registry, extended with the monitor's own instruments:
  ///   online.ingest_samples    (counter: samples accepted into the ring)
  ///   online.ingest_failures   (counter: ingest RPCs lost / unroutable)
  ///   online.ring_evictions    (counter: samples scrolled out of the ring)
  ///   online.slo_latches       (counter: SLO violations latched)
  ///   online.triggers          (counter: localizations auto-triggered)
  ///   online.incidents_queued  (counter: latches deferred by a cooldown)
  ///   online.incidents_dropped (counter: latches shed by the queue bound)
  ///   online.ring_occupancy    (gauge: retained samples, current)
  ///   online.ring_peak         (gauge: retained samples, high-water)
  ///   online.trigger_latency_ms (histogram: latch-to-pinpoint wall time of
  ///                              synchronously fired incidents; queued
  ///                              incidents additionally report their
  ///                              sample-time delay in queued_delay_sec)
  obs::MetricRegistry& metrics() { return master_.metrics(); }
  const obs::MetricRegistry& metrics() const { return master_.metrics(); }

 private:
  struct AppState {
    AppSpec spec;
    sim::LatencySloMonitor latency;
    sim::ProgressSloMonitor progress;
    /// True from latch until re-arm: the incident is fired/queued and the
    /// stale latch must not re-trigger.
    bool handled = false;
    TimeSec good_streak = 0;       ///< latency re-arm progress
    double progress_anchor = 0.0;  ///< progress at latch (progress re-arm)
    netdep::DependencyGraph deps;  ///< per-app graph (when has_deps)
    bool has_deps = false;
  };
  struct PendingTrigger {
    std::size_t app = 0;
    TimeSec tv = 0;
  };

  /// Routes a latch: fire now, queue, or drop.
  bool latch(std::size_t app, TimeSec tv);
  void fire(std::size_t app, TimeSec tv);
  bool cooldownExpired() const;
  void recomputeRingBudget();
  /// Advances the re-arm state machine; returns true while handled (the
  /// caller must then skip the latched monitor).
  bool updateRearm(AppState& state, double signal_good);

  OnlineMonitorConfig config_;
  TimeSec retention_sec_ = 0;
  core::FChainMaster master_;
  TelemetryRing ring_;

  struct Transport {
    std::shared_ptr<runtime::SlaveEndpoint> endpoint;
  };
  std::vector<Transport> transports_;
  std::map<ComponentId, std::size_t> ingest_routes_;

  std::vector<AppState> apps_;
  netdep::DependencyGraph default_deps_;
  std::deque<PendingTrigger> pending_;
  std::vector<OnlineIncident> incidents_;
  IncidentCallback callback_;
  Localizer localizer_;  ///< empty = use the monitor's own master

  TimeSec clock_ = 0;
  bool fired_once_ = false;
  TimeSec last_fire_clock_ = 0;

  obs::Counter& metric_ingest_samples_ =
      master_.metrics().counter("online.ingest_samples");
  obs::Counter& metric_ingest_failures_ =
      master_.metrics().counter("online.ingest_failures");
  obs::Counter& metric_ring_evictions_ =
      master_.metrics().counter("online.ring_evictions");
  obs::Counter& metric_slo_latches_ =
      master_.metrics().counter("online.slo_latches");
  obs::Counter& metric_triggers_ = master_.metrics().counter("online.triggers");
  obs::Counter& metric_incidents_queued_ =
      master_.metrics().counter("online.incidents_queued");
  obs::Counter& metric_incidents_dropped_ =
      master_.metrics().counter("online.incidents_dropped");
  obs::Gauge& metric_ring_occupancy_ =
      master_.metrics().gauge("online.ring_occupancy");
  obs::Gauge& metric_ring_peak_ = master_.metrics().gauge("online.ring_peak");
  obs::Histogram& metric_trigger_latency_ms_ = master_.metrics().histogram(
      "online.trigger_latency_ms",
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
       5000.0, 10000.0});
};

}  // namespace fchain::online
