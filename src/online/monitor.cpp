#include "online/monitor.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/trace.h"

namespace fchain::online {

namespace {

TimeSec deriveRetention(const OnlineMonitorConfig& config) {
  if (config.retention_sec > 0) return config.retention_sec;
  const core::FChainConfig& f = config.fchain;
  // Everything an incident analysis can reach backward into: the look-back
  // window itself, the predictor's error-history floor before it, the burst
  // half-window on both sides of a change point, the concurrency window,
  // plus a little slack for the selector's +1 clamps.
  return f.lookback_sec + f.history_error_window_sec +
         2 * f.burst_half_window_sec + f.concurrency_threshold_sec + 8;
}

}  // namespace

OnlineMonitor::OnlineMonitor(OnlineMonitorConfig config)
    : config_(std::move(config)),
      retention_sec_(deriveRetention(config_)),
      master_(config_.fchain, config_.retry),
      ring_(static_cast<std::size_t>(retention_sec_)) {
  master_.setWorkerThreads(config_.worker_threads);
}

void OnlineMonitor::recomputeRingBudget() {
  std::size_t per_component = static_cast<std::size_t>(retention_sec_);
  const std::size_t n = ring_.componentCount();
  if (config_.max_ring_bytes > 0 && n > 0) {
    const std::size_t budget =
        config_.max_ring_bytes / (TelemetryRing::kBytesPerSample * n);
    per_component = std::max<std::size_t>(1, std::min(per_component, budget));
  }
  ring_.setCapacityPerComponent(per_component);
}

void OnlineMonitor::addSlave(core::FChainSlave* slave) {
  addEndpoint(std::make_shared<runtime::LocalEndpoint>(slave),
              slave->components());
}

void OnlineMonitor::addEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  master_.registerEndpoint(endpoint, components);  // throws on dup claims
  const std::size_t index = transports_.size();
  transports_.push_back({std::move(endpoint)});
  for (ComponentId id : components) {
    ingest_routes_[id] = index;
    ring_.addComponent(id);
  }
  recomputeRingBudget();
}

std::size_t OnlineMonitor::addApplication(AppSpec spec) {
  if (spec.components.empty()) {
    throw std::invalid_argument("OnlineMonitor: application with no components");
  }
  AppState state{
      std::move(spec),
      sim::LatencySloMonitor(0.0, 0),  // placeholder, rebuilt below
      sim::ProgressSloMonitor(),
      false,
      0,
      0.0,
  };
  state.latency = sim::LatencySloMonitor(state.spec.slo.latency_threshold_sec,
                                         state.spec.slo.sustain_sec);
  state.progress = sim::ProgressSloMonitor(state.spec.slo.progress_window_sec,
                                           state.spec.slo.progress_min_delta);
  apps_.push_back(std::move(state));
  return apps_.size() - 1;
}

void OnlineMonitor::setDependencies(netdep::DependencyGraph graph) {
  default_deps_ = graph;
  master_.setDependencies(std::move(graph));
}

void OnlineMonitor::setDependencies(std::size_t app,
                                    netdep::DependencyGraph graph) {
  AppState& state = apps_.at(app);
  state.deps = std::move(graph);
  state.has_deps = true;
}

void OnlineMonitor::setWatchdog(runtime::WatchdogConfig config) {
  master_.setWatchdog(config);
}

void OnlineMonitor::setIncidentJournal(persist::IncidentJournal* journal) {
  master_.setIncidentJournal(journal);
}

void OnlineMonitor::ingest(ComponentId id, TimeSec t,
                           const std::array<double, kMetricCount>& sample) {
  clock_ = std::max(clock_, t);
  const std::size_t evictions_before = ring_.evictions();
  if (!ring_.push(id, t, sample)) {
    // Unroutable component: nothing owns it, nothing retains it.
    metric_ingest_failures_.add();
    return;
  }
  metric_ingest_samples_.add();
  metric_ring_evictions_.add(ring_.evictions() - evictions_before);
  metric_ring_occupancy_.set(static_cast<double>(ring_.occupancy()));
  if (static_cast<double>(ring_.occupancy()) > metric_ring_peak_.value()) {
    metric_ring_peak_.set(static_cast<double>(ring_.occupancy()));
  }

  runtime::IngestRequest request;
  request.component = id;
  request.t = t;
  request.sample = sample;
  request.deadline_ms = config_.ingest_deadline_ms;
  // Fire-and-forget: no retries (header contract). The slave's gap-fill
  // repairs a lost second on the next arrival.
  const runtime::IngestReply reply =
      transports_[ingest_routes_.at(id)].endpoint->ingest(request);
  if (reply.status != runtime::EndpointStatus::Ok) {
    metric_ingest_failures_.add();
  }
}

bool OnlineMonitor::updateRearm(AppState& state, double good_signal) {
  if (!state.handled) return false;
  const SloSpec& slo = state.spec.slo;
  if (slo.kind == SloSpec::Kind::Latency) {
    if (good_signal <= slo.latency_threshold_sec) {
      if (++state.good_streak >= config_.rearm_good_sec) {
        state.latency.reset();
        state.handled = false;
        state.good_streak = 0;
      }
    } else {
      state.good_streak = 0;
    }
  } else {
    if (good_signal - state.progress_anchor >=
        slo.progress_min_delta *
            static_cast<double>(config_.rearm_good_sec)) {
      state.progress.reset();
      state.handled = false;
      state.good_streak = 0;
    }
  }
  return true;
}

bool OnlineMonitor::observeLatency(std::size_t app, TimeSec t,
                                   double latency_sec) {
  AppState& state = apps_.at(app);
  clock_ = std::max(clock_, t);
  if (updateRearm(state, latency_sec)) return false;
  const auto violation = state.latency.observe(t, latency_sec);
  if (!violation.has_value()) return false;
  return latch(app, *violation);
}

bool OnlineMonitor::observeProgress(std::size_t app, TimeSec t,
                                    double progress) {
  AppState& state = apps_.at(app);
  clock_ = std::max(clock_, t);
  if (updateRearm(state, progress)) return false;
  const auto violation = state.progress.observe(t, progress);
  if (!violation.has_value()) return false;
  state.progress_anchor = progress;
  return latch(app, *violation);
}

bool OnlineMonitor::observe(std::size_t app, const sim::StreamTick& tick) {
  return apps_.at(app).spec.slo.kind == SloSpec::Kind::Latency
             ? observeLatency(app, tick.t, tick.latency_sec)
             : observeProgress(app, tick.t, tick.progress);
}

bool OnlineMonitor::cooldownExpired() const {
  return !fired_once_ || clock_ - last_fire_clock_ >= config_.cooldown_sec;
}

bool OnlineMonitor::latch(std::size_t app, TimeSec tv) {
  AppState& state = apps_[app];
  state.handled = true;
  state.good_streak = 0;
  metric_slo_latches_.add();
  if (pending_.empty() && cooldownExpired()) {
    fire(app, tv);
    return true;
  }
  if (pending_.size() < config_.max_pending_incidents) {
    pending_.push_back({app, tv});
    metric_incidents_queued_.add();
  } else {
    metric_incidents_dropped_.add();
  }
  return false;
}

void OnlineMonitor::fire(std::size_t app, TimeSec tv) {
  FCHAIN_SPAN_VAR(span, "online.incident");
  span.arg("app", static_cast<std::int64_t>(app));
  span.arg("tv", static_cast<std::int64_t>(tv));
  const AppState& state = apps_[app];
  const auto wall_start = std::chrono::steady_clock::now();
  OnlineIncident incident;
  incident.app = app;
  incident.app_name = state.spec.name;
  incident.violation_time = tv;
  incident.triggered_at = clock_;
  incident.queued_delay_sec = clock_ - tv;
  const core::MasterRuntimeStats before = master_.runtimeStats();
  if (localizer_) {
    incident.result = localizer_(app, state.spec.components, tv);
  } else {
    // Dependency knowledge is per-application (see setDependencies): install
    // this app's graph — or the cluster default — for the fan-out. Fires are
    // serialized through latch()/pump(), so the swap cannot race a localize.
    master_.setDependencies(state.has_deps ? state.deps : default_deps_);
    incident.result = master_.localize(state.spec.components, tv);
  }
  const core::MasterRuntimeStats after = master_.runtimeStats();
  incident.watchdog_trips_delta = after.watchdog_trips - before.watchdog_trips;
  incident.deadline_skips_delta = after.deadline_skips - before.deadline_skips;
  incident.localize_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  metric_triggers_.add();
  metric_trigger_latency_ms_.observe(incident.localize_wall_ms);
  fired_once_ = true;
  last_fire_clock_ = clock_;
  incidents_.push_back(incident);
  if (callback_) callback_(incidents_.back());
}

std::size_t OnlineMonitor::pump() {
  std::size_t fired = 0;
  while (!pending_.empty() && cooldownExpired()) {
    const PendingTrigger next = pending_.front();
    pending_.pop_front();
    fire(next.app, next.tv);
    ++fired;
  }
  return fired;
}

std::size_t OnlineMonitor::drain() {
  std::size_t fired = 0;
  while (!pending_.empty()) {
    const PendingTrigger next = pending_.front();
    pending_.pop_front();
    fire(next.app, next.tv);
    ++fired;
  }
  return fired;
}

}  // namespace fchain::online
