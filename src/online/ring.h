// Bounded retention of recent raw telemetry (online monitoring runtime).
//
// The offline pipeline keeps every sample of a run; an always-on monitor
// cannot — hours of multi-application traffic at 1 Hz x 6 metrics would grow
// without bound. TelemetryRing keeps, per component, only the trailing
// window an incident analysis could still need (look-back W + the burst
// half-window Q + the predictor's error-history window; see
// OnlineMonitorConfig::retention_sec) under a hard total sample budget.
// Older samples scroll out; evictions are counted so the monitor can report
// how much history was shed.
//
// The ring is the *master-side* record of what streamed through the monitor
// (incident forensics, equivalence checks); the authoritative analysis state
// lives in the slaves, which receive every sample via the ingest RPC.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <map>
#include <optional>

#include "common/types.h"

namespace fchain::online {

class TelemetryRing {
 public:
  /// Estimated footprint of one retained sample (the six metric values; the
  /// deque block overhead is not counted — callers sizing a byte budget
  /// should treat this as a floor, not an exact allocator measurement).
  static constexpr std::size_t kBytesPerSample =
      sizeof(std::array<double, kMetricCount>);

  explicit TelemetryRing(std::size_t capacity_per_component)
      : capacity_(capacity_per_component) {}

  void addComponent(ComponentId id);
  bool knows(ComponentId id) const { return rings_.contains(id); }
  std::size_t componentCount() const { return rings_.size(); }

  /// Shrinks (or grows) the per-component budget; windows over the new
  /// budget are trimmed immediately, counting evictions.
  void setCapacityPerComponent(std::size_t capacity);

  /// Stores one sample. Contiguity is maintained the same way the slave's
  /// series is: a gap is filled with the last retained value, a duplicate
  /// timestamp overwrites in place, a timestamp older than the retained
  /// window is dropped. A gap larger than the whole window restarts the
  /// window at `t` (everything older would scroll out anyway). Returns
  /// false for an unknown component.
  bool push(ComponentId id, TimeSec t,
            const std::array<double, kMetricCount>& sample);

  std::size_t capacityPerComponent() const { return capacity_; }
  /// Total sample budget across all components.
  std::size_t capacity() const { return capacity_ * rings_.size(); }
  /// Samples currently retained across all components.
  std::size_t occupancy() const { return occupancy_; }
  /// Samples that have scrolled out of a window since construction.
  std::size_t evictions() const { return evictions_; }
  std::size_t approxBytes() const { return occupancy_ * kBytesPerSample; }

  /// Oldest retained timestamp of `id` (nullopt: unknown or empty).
  std::optional<TimeSec> startTime(ComponentId id) const;
  /// One past the newest retained timestamp of `id`.
  std::optional<TimeSec> endTime(ComponentId id) const;
  /// Retained values of `id` at time `t` (nullopt: outside the window).
  std::optional<std::array<double, kMetricCount>> at(ComponentId id,
                                                     TimeSec t) const;

 private:
  struct Window {
    TimeSec start = 0;  ///< timestamp of samples.front()
    std::deque<std::array<double, kMetricCount>> samples;
  };

  /// Pops from the front of `w` until it fits the budget.
  void trim(Window& w);

  std::size_t capacity_;
  std::map<ComponentId, Window> rings_;
  std::size_t occupancy_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace fchain::online
