#include "netdep/cooccurrence.h"

#include <algorithm>
#include <map>

namespace fchain::netdep {

namespace {

using EdgeKey = std::pair<ComponentId, ComponentId>;

/// Flow start timestamps per directed pair, after gap-based segmentation
/// (consecutive events closer than the gap threshold belong to one flow).
std::map<EdgeKey, std::vector<double>> flowStarts(
    std::vector<FlowEvent>& trace, double gap_threshold) {
  std::sort(trace.begin(), trace.end(),
            [](const FlowEvent& a, const FlowEvent& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.start_sec < b.start_sec;
            });
  std::map<EdgeKey, std::vector<double>> starts;
  std::size_t i = 0;
  while (i < trace.size()) {
    const EdgeKey key{trace[i].from, trace[i].to};
    auto& list = starts[key];
    double flow_end = -1e18;
    std::size_t j = i;
    while (j < trace.size() && trace[j].from == key.first &&
           trace[j].to == key.second) {
      if (trace[j].start_sec - flow_end > gap_threshold) {
        list.push_back(trace[j].start_sec);
      }
      flow_end = std::max(flow_end, trace[j].endSec());
      ++j;
    }
    i = j;
  }
  return starts;
}

}  // namespace

std::vector<CoOccurrenceEdge> coOccurrenceStatistics(
    std::size_t component_count, std::vector<FlowEvent> trace,
    const DiscoveryConfig& discovery, const CoOccurrenceConfig& config) {
  const auto starts = flowStarts(trace, discovery.gap_threshold_sec);

  std::vector<CoOccurrenceEdge> edges;
  for (const auto& [parent_key, parent_starts] : starts) {
    if (parent_starts.size() < config.min_samples) continue;
    const ComponentId middle = parent_key.second;
    for (const auto& [child_key, child_starts] : starts) {
      if (child_key.first != middle) continue;
      if (child_key.second == parent_key.first) continue;  // the reply path
      if (child_starts.empty()) continue;

      std::size_t hits = 0;
      for (double t : parent_starts) {
        // Any child flow starting in [t, t + window]?
        const auto it =
            std::lower_bound(child_starts.begin(), child_starts.end(), t);
        if (it != child_starts.end() && *it <= t + config.window_sec) {
          ++hits;
        }
      }
      CoOccurrenceEdge edge;
      edge.parent_from = parent_key.first;
      edge.middle = middle;
      edge.child_to = child_key.second;
      edge.samples = parent_starts.size();
      edge.probability =
          static_cast<double>(hits) / static_cast<double>(parent_starts.size());
      if (component_count == 0 ||
          (edge.parent_from < component_count &&
           edge.child_to < component_count)) {
        edges.push_back(edge);
      }
    }
  }
  return edges;
}

DependencyGraph inferCoOccurrence(std::size_t component_count,
                                  std::vector<FlowEvent> trace,
                                  const DiscoveryConfig& discovery,
                                  const CoOccurrenceConfig& config) {
  // Directly observed client-facing edges.
  DependencyGraph graph =
      discoverDependencies(component_count, trace, discovery);
  // Plus the causally inferred downstream dependencies.
  for (const auto& edge : coOccurrenceStatistics(component_count,
                                                 std::move(trace), discovery,
                                                 config)) {
    if (edge.probability >= config.min_probability &&
        edge.samples >= config.min_samples) {
      graph.addEdge(edge.middle, edge.child_to);
    }
  }
  return graph;
}

}  // namespace fchain::netdep
