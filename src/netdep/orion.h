// Orion-style dependency discovery from delay distributions (related work
// [27]: Chen et al., "Automating network application dependency discovery",
// OSDI 2008).
//
// Orion's observation: if service B depends on service C, the delay between
// B-bound traffic and C-bound traffic concentrates in a *typical spike* of
// the delay distribution (the service's processing time), whereas unrelated
// service pairs see delays spread across the whole range. This module
// histograms the start-to-start delays between candidate edge pairs and
// accepts a dependency when one narrow delay band holds an outsized share
// of the mass.
//
// Like every flow-based technique, it inherits the gap-free-stream failure
// mode the paper documents for System S.
#pragma once

#include "netdep/dependency.h"

namespace fchain::netdep {

struct OrionConfig {
  /// Delay histogram range and resolution (seconds).
  double max_delay_sec = 2.0;
  double bin_width_sec = 0.05;
  /// Minimum number of delay samples before a verdict is attempted.
  std::size_t min_samples = 100;
  /// A spike is accepted when its 3-bin band holds at least this multiple
  /// of the mass a uniform distribution would put there.
  double spike_ratio = 8.0;
};

struct DelaySpike {
  ComponentId middle = 0;   ///< B: the service whose dependency is inferred
  ComponentId child_to = 0; ///< C: what B calls
  double delay_sec = 0.0;   ///< location of the typical spike
  double mass_ratio = 0.0;  ///< spike mass vs uniform expectation
  std::size_t samples = 0;
};

/// Delay-spike statistics for every edge pair (A->B, B->C) sharing a middle
/// component.
std::vector<DelaySpike> delaySpikes(std::size_t component_count,
                                    std::vector<FlowEvent> trace,
                                    const DiscoveryConfig& discovery = {},
                                    const OrionConfig& config = {});

/// Dependency graph accepted by the delay-spike criterion, unioned with the
/// directly observed flow-count edges.
DependencyGraph inferOrion(std::size_t component_count,
                           std::vector<FlowEvent> trace,
                           const DiscoveryConfig& discovery = {},
                           const OrionConfig& config = {});

}  // namespace fchain::netdep
