#include "netdep/orion.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace fchain::netdep {

namespace {

using EdgeKey = std::pair<ComponentId, ComponentId>;

std::map<EdgeKey, std::vector<double>> flowStartsByEdge(
    std::vector<FlowEvent>& trace, double gap_threshold) {
  std::sort(trace.begin(), trace.end(),
            [](const FlowEvent& a, const FlowEvent& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.start_sec < b.start_sec;
            });
  std::map<EdgeKey, std::vector<double>> starts;
  std::size_t i = 0;
  while (i < trace.size()) {
    const EdgeKey key{trace[i].from, trace[i].to};
    auto& list = starts[key];
    double flow_end = -1e18;
    std::size_t j = i;
    while (j < trace.size() && trace[j].from == key.first &&
           trace[j].to == key.second) {
      if (trace[j].start_sec - flow_end > gap_threshold) {
        list.push_back(trace[j].start_sec);
      }
      flow_end = std::max(flow_end, trace[j].endSec());
      ++j;
    }
    i = j;
  }
  return starts;
}

}  // namespace

std::vector<DelaySpike> delaySpikes(std::size_t component_count,
                                    std::vector<FlowEvent> trace,
                                    const DiscoveryConfig& discovery,
                                    const OrionConfig& config) {
  const auto starts = flowStartsByEdge(trace, discovery.gap_threshold_sec);
  const auto bins =
      static_cast<std::size_t>(config.max_delay_sec / config.bin_width_sec);

  std::vector<DelaySpike> spikes;
  for (const auto& [parent_key, parent_starts] : starts) {
    const ComponentId middle = parent_key.second;
    for (const auto& [child_key, child_starts] : starts) {
      if (child_key.first != middle) continue;
      if (child_key.second == parent_key.first) continue;  // reply path
      if (child_starts.empty()) continue;

      // Histogram the delay from each parent start to the first child
      // start that follows it.
      std::vector<std::size_t> histogram(bins, 0);
      std::size_t samples = 0;
      for (double t : parent_starts) {
        const auto it =
            std::lower_bound(child_starts.begin(), child_starts.end(), t);
        if (it == child_starts.end()) continue;
        const double delay = *it - t;
        if (delay >= config.max_delay_sec) continue;
        ++histogram[static_cast<std::size_t>(delay / config.bin_width_sec)];
        ++samples;
      }
      if (samples < config.min_samples) continue;

      // Strongest 3-bin band.
      std::size_t best_bin = 0;
      std::size_t best_mass = 0;
      for (std::size_t b = 0; b < bins; ++b) {
        std::size_t mass = histogram[b];
        if (b > 0) mass += histogram[b - 1];
        if (b + 1 < bins) mass += histogram[b + 1];
        if (mass > best_mass) {
          best_mass = mass;
          best_bin = b;
        }
      }
      const double uniform_mass =
          3.0 * static_cast<double>(samples) / static_cast<double>(bins);

      DelaySpike spike;
      spike.middle = middle;
      spike.child_to = child_key.second;
      spike.delay_sec =
          (static_cast<double>(best_bin) + 0.5) * config.bin_width_sec;
      spike.mass_ratio =
          static_cast<double>(best_mass) / std::max(1e-9, uniform_mass);
      spike.samples = samples;
      if (component_count == 0 ||
          (spike.middle < component_count &&
           spike.child_to < component_count)) {
        spikes.push_back(spike);
      }
    }
  }
  return spikes;
}

DependencyGraph inferOrion(std::size_t component_count,
                           std::vector<FlowEvent> trace,
                           const DiscoveryConfig& discovery,
                           const OrionConfig& config) {
  DependencyGraph graph =
      discoverDependencies(component_count, trace, discovery);
  for (const auto& spike :
       delaySpikes(component_count, std::move(trace), discovery, config)) {
    if (spike.mass_ratio >= config.spike_ratio) {
      graph.addEdge(spike.middle, spike.child_to);
    }
  }
  return graph;
}

}  // namespace fchain::netdep
