#include "netdep/dependency.h"

#include <algorithm>
#include <deque>

namespace fchain::netdep {

std::vector<FlowEvent> synthesizePacketTrace(const sim::RunRecord& record,
                                             const PacketTraceConfig& config) {
  std::vector<FlowEvent> trace;
  Rng rng(config.seed);
  const bool streaming = record.app_spec.wire_style == sim::WireStyle::Streaming;

  for (std::size_t e = 0; e < record.edge_traffic.size(); ++e) {
    const auto& edge = record.app_spec.edges[e];
    const auto& traffic = record.edge_traffic[e];
    Rng edge_rng = rng.fork();
    for (std::size_t t = 0; t < traffic.size(); ++t) {
      const double units = traffic[t];
      if (units <= 0.0) continue;
      const double tick = static_cast<double>(t);
      if (streaming) {
        // Tuples flow continuously: activity covers the entire second, so
        // consecutive ticks abut and gap-based segmentation sees one flow.
        trace.push_back(FlowEvent{edge.from, edge.to, tick, 1.0});
        continue;
      }
      // Request/reply: traffic arrives as distinct short sessions.
      auto sessions = static_cast<std::size_t>(units / config.units_per_session);
      if (sessions == 0) sessions = 1;
      sessions = std::min<std::size_t>(sessions, 50);
      for (std::size_t s = 0; s < sessions; ++s) {
        const double duration = edge_rng.uniform(config.min_session_sec,
                                                 config.max_session_sec);
        const double start =
            tick + edge_rng.uniform(0.0, std::max(1e-3, 1.0 - duration));
        trace.push_back(FlowEvent{edge.from, edge.to, start, duration});
      }
    }
  }

  std::sort(trace.begin(), trace.end(),
            [](const FlowEvent& a, const FlowEvent& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.start_sec < b.start_sec;
            });
  return trace;
}

void DependencyGraph::addEdge(ComponentId from, ComponentId to) {
  if (from >= n_ || to >= n_ || from == to) return;
  auto& row = adjacency_[from];
  if (std::find(row.begin(), row.end(), to) == row.end()) row.push_back(to);
}

bool DependencyGraph::hasEdge(ComponentId from, ComponentId to) const {
  if (from >= n_) return false;
  const auto& row = adjacency_[from];
  return std::find(row.begin(), row.end(), to) != row.end();
}

std::size_t DependencyGraph::edgeCount() const {
  std::size_t count = 0;
  for (const auto& row : adjacency_) count += row.size();
  return count;
}

bool DependencyGraph::reaches(ComponentId from, ComponentId to) const {
  if (from >= n_ || to >= n_) return false;
  if (from == to) return true;
  std::vector<bool> seen(n_, false);
  std::deque<ComponentId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const ComponentId cur = frontier.front();
    frontier.pop_front();
    for (ComponentId next : adjacency_[cur]) {
      if (next == to) return true;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

DependencyGraph discoverDependencies(std::size_t component_count,
                                     std::vector<FlowEvent> trace,
                                     const DiscoveryConfig& config) {
  std::sort(trace.begin(), trace.end(),
            [](const FlowEvent& a, const FlowEvent& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.start_sec < b.start_sec;
            });

  DependencyGraph graph(component_count);
  std::size_t i = 0;
  while (i < trace.size()) {
    // One directed pair's events form a contiguous range after sorting.
    std::size_t j = i;
    std::size_t flows = 0;
    double flow_end = -1e18;
    while (j < trace.size() && trace[j].from == trace[i].from &&
           trace[j].to == trace[i].to) {
      if (trace[j].start_sec - flow_end > config.gap_threshold_sec) {
        ++flows;  // idle gap: a new flow starts
      }
      flow_end = std::max(flow_end, trace[j].endSec());
      ++j;
    }
    if (flows >= config.min_flows) {
      graph.addEdge(trace[i].from, trace[i].to);
    }
    i = j;
  }
  return graph;
}

DependencyGraph discoverDependencies(const sim::RunRecord& record,
                                     const DiscoveryConfig& config) {
  return discoverDependencies(record.app_spec.components.size(),
                              synthesizePacketTrace(record), config);
}

DependencyGraph fromTopology(const sim::ApplicationSpec& spec) {
  DependencyGraph graph(spec.components.size());
  for (const auto& edge : spec.edges) {
    if (edge.weight > 0.0) graph.addEdge(edge.from, edge.to);
  }
  return graph;
}

}  // namespace fchain::netdep
