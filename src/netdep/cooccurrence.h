// Sherlock-style co-occurrence dependency inference.
//
// Gap-based flow counting (dependency.h) answers "who talks to whom"; the
// co-occurrence analysis answers the stronger question "whose requests
// *cause* whose": if flows on edge B->C reliably start within a short
// window after flows on edge A->B, then B's handling of A's requests
// depends on C. This is how Sherlock [11] assembles multi-level dependency
// graphs from nothing but packet timestamps — and it inherits the same
// failure mode: gap-free streams yield one flow per edge, hence no start
// events to correlate.
#pragma once

#include "netdep/dependency.h"

namespace fchain::netdep {

struct CoOccurrenceConfig {
  /// A child flow must start within this window after the parent flow's
  /// start to count as co-occurring.
  double window_sec = 0.5;
  /// Conditional probability P(child start | parent start) above which the
  /// dependency is accepted.
  double min_probability = 0.5;
  /// Parent flow starts required before the estimate is trusted.
  std::size_t min_samples = 50;
};

struct CoOccurrenceEdge {
  ComponentId parent_from = 0;  ///< the triggering edge A -> B
  ComponentId middle = 0;       ///< B, the service whose dependency this is
  ComponentId child_to = 0;     ///< the dependent edge B -> C
  double probability = 0.0;
  std::size_t samples = 0;
};

/// Full co-occurrence statistics for every edge pair (A->B, B->C) sharing a
/// middle component; ordering/causality analysis over a packet trace.
std::vector<CoOccurrenceEdge> coOccurrenceStatistics(
    std::size_t component_count, std::vector<FlowEvent> trace,
    const DiscoveryConfig& discovery = {},
    const CoOccurrenceConfig& config = {});

/// Dependency graph implied by the co-occurrence analysis: an edge B -> C
/// for every accepted (A->B, B->C) pair, plus the client-facing edges A -> B
/// themselves (they are directly observed).
DependencyGraph inferCoOccurrence(std::size_t component_count,
                                  std::vector<FlowEvent> trace,
                                  const DiscoveryConfig& discovery = {},
                                  const CoOccurrenceConfig& config = {});

}  // namespace fchain::netdep
