// Black-box inter-component dependency discovery (paper §II-C, citing
// Sherlock [11]).
//
// The discovery tool watches network traffic between components, segments
// each directed pair's packet activity into flows using idle gaps, and
// declares a dependency once enough distinct flows have been observed
// ("the black-box dependency scheme needs to accumulate sufficient amount of
// network trace data"). The paper's key negative finding is reproduced here:
// a data-stream system ships gap-free continuous packet streams, so gap-based
// flow extraction yields a single endless flow per edge and *no* dependency
// is ever discovered.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace fchain::netdep {

/// One contiguous burst of packets on a directed component pair.
struct FlowEvent {
  ComponentId from = 0;
  ComponentId to = 0;
  double start_sec = 0.0;
  double duration_sec = 0.0;

  double endSec() const { return start_sec + duration_sec; }
};

struct PacketTraceConfig {
  /// Work units bundled into one request/reply session (one flow).
  double units_per_session = 20.0;
  /// Session activity duration bounds (seconds).
  double min_session_sec = 0.02;
  double max_session_sec = 0.10;
  std::uint64_t seed = 0x9ac4e7;
};

/// Synthesizes the flow-level packet trace implied by a run's per-edge
/// traffic. Request/reply applications produce many short sessions with idle
/// gaps between them; streaming applications produce back-to-back activity
/// covering every second with traffic (no gaps). Events are sorted by edge
/// then time.
std::vector<FlowEvent> synthesizePacketTrace(const sim::RunRecord& record,
                                             const PacketTraceConfig& config = {});

/// Directed dependency graph over an application's components.
class DependencyGraph {
 public:
  DependencyGraph() = default;
  explicit DependencyGraph(std::size_t component_count)
      : n_(component_count), adjacency_(component_count) {}

  std::size_t componentCount() const { return n_; }

  void addEdge(ComponentId from, ComponentId to);
  bool hasEdge(ComponentId from, ComponentId to) const;
  std::size_t edgeCount() const;
  bool empty() const { return edgeCount() == 0; }

  /// True when a directed path from -> to exists (BFS).
  bool reaches(ComponentId from, ComponentId to) const;

  /// True when a directed path exists in either direction. Fault effects
  /// travel downstream (starvation) *and* upstream (back-pressure), so the
  /// pinpointing filter treats either orientation as a feasible propagation
  /// route between two components.
  bool connectedEitherWay(ComponentId a, ComponentId b) const {
    return reaches(a, b) || reaches(b, a);
  }

  const std::vector<std::vector<ComponentId>>& adjacency() const {
    return adjacency_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::vector<ComponentId>> adjacency_;
};

struct DiscoveryConfig {
  /// Idle gap (seconds) that separates two flows on the same edge.
  double gap_threshold_sec = 0.2;
  /// Flows required before an edge counts as a discovered dependency.
  std::size_t min_flows = 50;
};

/// Gap-based flow extraction + accumulation over a packet trace.
DependencyGraph discoverDependencies(std::size_t component_count,
                                     std::vector<FlowEvent> trace,
                                     const DiscoveryConfig& config = {});

/// Convenience: full pipeline from a run record.
DependencyGraph discoverDependencies(const sim::RunRecord& record,
                                     const DiscoveryConfig& config = {});

/// The *true* topology as a dependency graph — what the Topology baseline
/// assumes as given knowledge.
DependencyGraph fromTopology(const sim::ApplicationSpec& spec);

}  // namespace fchain::netdep
