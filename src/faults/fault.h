// Fault model (paper §III-A "Fault injection").
//
// Each evaluation run injects one fault spec at a random instant. The spec
// carries the *ground-truth* faulty component set used to score precision
// and recall. The faults reproduce the signatures the paper describes:
//
//  RUBiS    single: MemLeak (db), CpuHog (db), NetHog (web)
//           multi:  OffloadBug (app1+app2), LBBug (app1+app2)
//  System S single: MemLeak, CpuHog, Bottleneck (random PE)
//           multi:  ConcMemLeak, ConcCpuHog (two random PEs)
//  Hadoop   multi:  ConcMemLeak, ConcCpuHog(infinite loop), ConcDiskHog
//                   (all map nodes)
//
// Ground-truth note for the two RUBiS software bugs: the paper files both
// under "multi-component concurrent faults". We take the faulty set to be
// the components whose behaviour the bug alters *directly at injection time*
// (application server 1 absorbing the offloaded load AND application server
// 2 losing it), not components affected later via inter-component
// propagation. DESIGN.md discusses this interpretation.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fchain::faults {

enum class FaultType : std::uint8_t {
  MemLeak,       ///< heap leak; memory climbs until swap thrashing
  CpuHog,        ///< co-located CPU-bound process steals cycles (contention)
  InfiniteLoop,  ///< bug inside the task itself: spins at 100 %, no progress
  NetHog,        ///< request flood at the component (httperf-style)
  DiskHog,       ///< disk-I/O-intensive program in Domain 0 (slow ramp)
  Bottleneck,    ///< low CPU cap placed over the component
  OffloadBug,    ///< RUBiS JBAS-1442: remote EJB lookup binds locally
  LBBug,         ///< RUBiS mod_jk bug: uneven request dispatch
  WorkloadSurge, ///< external factor: client workload jumps (no faulty comp.)
  SharedSlowdown,///< external factor: shared service (NFS) degrades
  // Call-level faults: perturb the component's *inter-component RPC path*
  // rather than a resource metric (the call-latency / call-failure
  // categories of the anolis fault taxonomy). Targets must have out-edges.
  CallLatency,   ///< every outbound call gains fixed RPC-stack latency
  CallFailure,   ///< a fraction of outbound calls fail and are retried
};

/// All injectable fault types, in enum order (campaign sweeps iterate this).
inline constexpr std::array<FaultType, 12> kAllFaultTypes = {
    FaultType::MemLeak,       FaultType::CpuHog,
    FaultType::InfiniteLoop,  FaultType::NetHog,
    FaultType::DiskHog,       FaultType::Bottleneck,
    FaultType::OffloadBug,    FaultType::LBBug,
    FaultType::WorkloadSurge, FaultType::SharedSlowdown,
    FaultType::CallLatency,   FaultType::CallFailure,
};

std::string_view faultTypeName(FaultType type);

/// Inverse of faultTypeName (campaign configs / reports parse fault types by
/// name). Throws std::invalid_argument on an unknown name.
FaultType faultTypeFromName(std::string_view name);

/// True for the external factors (workload surge, shared-service slowdown):
/// no component is at fault and the expected verdict is external-cause.
bool isExternalFactor(FaultType type);

/// True for the call-level faults, which must target components that make
/// outbound calls (out-edges) to have any effect.
bool isCallLevel(FaultType type);

struct FaultSpec {
  FaultType type = FaultType::MemLeak;
  /// Ground-truth faulty components (empty for external factors).
  std::vector<ComponentId> targets;
  /// Injection instant (simulation seconds).
  TimeSec start_time = 0;
  /// Relative severity knob, 1.0 = the calibrated default.
  double intensity = 1.0;
};

}  // namespace fchain::faults
