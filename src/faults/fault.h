// Fault model (paper §III-A "Fault injection").
//
// Each evaluation run injects one fault spec at a random instant. The spec
// carries the *ground-truth* faulty component set used to score precision
// and recall. The faults reproduce the signatures the paper describes:
//
//  RUBiS    single: MemLeak (db), CpuHog (db), NetHog (web)
//           multi:  OffloadBug (app1+app2), LBBug (app1+app2)
//  System S single: MemLeak, CpuHog, Bottleneck (random PE)
//           multi:  ConcMemLeak, ConcCpuHog (two random PEs)
//  Hadoop   multi:  ConcMemLeak, ConcCpuHog(infinite loop), ConcDiskHog
//                   (all map nodes)
//
// Ground-truth note for the two RUBiS software bugs: the paper files both
// under "multi-component concurrent faults". We take the faulty set to be
// the components whose behaviour the bug alters *directly at injection time*
// (application server 1 absorbing the offloaded load AND application server
// 2 losing it), not components affected later via inter-component
// propagation. DESIGN.md discusses this interpretation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fchain::faults {

enum class FaultType : std::uint8_t {
  MemLeak,       ///< heap leak; memory climbs until swap thrashing
  CpuHog,        ///< co-located CPU-bound process steals cycles (contention)
  InfiniteLoop,  ///< bug inside the task itself: spins at 100 %, no progress
  NetHog,        ///< request flood at the component (httperf-style)
  DiskHog,       ///< disk-I/O-intensive program in Domain 0 (slow ramp)
  Bottleneck,    ///< low CPU cap placed over the component
  OffloadBug,    ///< RUBiS JBAS-1442: remote EJB lookup binds locally
  LBBug,         ///< RUBiS mod_jk bug: uneven request dispatch
  WorkloadSurge, ///< external factor: client workload jumps (no faulty comp.)
  SharedSlowdown ///< external factor: shared service (NFS) degrades
};

std::string_view faultTypeName(FaultType type);

struct FaultSpec {
  FaultType type = FaultType::MemLeak;
  /// Ground-truth faulty components (empty for external factors).
  std::vector<ComponentId> targets;
  /// Injection instant (simulation seconds).
  TimeSec start_time = 0;
  /// Relative severity knob, 1.0 = the calibrated default.
  double intensity = 1.0;
};

}  // namespace fchain::faults
