#include "faults/fault.h"

namespace fchain::faults {

std::string_view faultTypeName(FaultType type) {
  switch (type) {
    case FaultType::MemLeak:
      return "MemLeak";
    case FaultType::CpuHog:
      return "CpuHog";
    case FaultType::InfiniteLoop:
      return "InfiniteLoop";
    case FaultType::NetHog:
      return "NetHog";
    case FaultType::DiskHog:
      return "DiskHog";
    case FaultType::Bottleneck:
      return "Bottleneck";
    case FaultType::OffloadBug:
      return "OffloadBug";
    case FaultType::LBBug:
      return "LBBug";
    case FaultType::WorkloadSurge:
      return "WorkloadSurge";
    case FaultType::SharedSlowdown:
      return "SharedSlowdown";
  }
  return "unknown";
}

}  // namespace fchain::faults
