#include "faults/fault.h"

#include <stdexcept>
#include <string>

namespace fchain::faults {

std::string_view faultTypeName(FaultType type) {
  switch (type) {
    case FaultType::MemLeak:
      return "MemLeak";
    case FaultType::CpuHog:
      return "CpuHog";
    case FaultType::InfiniteLoop:
      return "InfiniteLoop";
    case FaultType::NetHog:
      return "NetHog";
    case FaultType::DiskHog:
      return "DiskHog";
    case FaultType::Bottleneck:
      return "Bottleneck";
    case FaultType::OffloadBug:
      return "OffloadBug";
    case FaultType::LBBug:
      return "LBBug";
    case FaultType::WorkloadSurge:
      return "WorkloadSurge";
    case FaultType::SharedSlowdown:
      return "SharedSlowdown";
    case FaultType::CallLatency:
      return "CallLatency";
    case FaultType::CallFailure:
      return "CallFailure";
  }
  return "unknown";
}

FaultType faultTypeFromName(std::string_view name) {
  for (FaultType type : kAllFaultTypes) {
    if (faultTypeName(type) == name) return type;
  }
  throw std::invalid_argument("unknown fault type name: " +
                              std::string(name));
}

bool isExternalFactor(FaultType type) {
  return type == FaultType::WorkloadSurge ||
         type == FaultType::SharedSlowdown;
}

bool isCallLevel(FaultType type) {
  return type == FaultType::CallLatency || type == FaultType::CallFailure;
}

}  // namespace fchain::faults
