// Histogram baseline (paper §III-A, after Oliner et al. [10]).
//
// For each component and metric, compute the Kullback-Leibler divergence
// between the histogram of the recent look-back window and the histogram of
// the whole history; a component whose maximum per-metric score exceeds the
// threshold is pinpointed. The paper's observed weakness is structural and
// reproduced here: a fault that manifests just seconds before detection
// contributes too few recent samples to move the window histogram, so
// suddenly manifesting faults (CpuHog, NetHog) are missed at thresholds
// strict enough to avoid false alarms.
#pragma once

#include "baselines/localizer.h"
#include "common/types.h"

namespace fchain::baselines {

class HistogramScheme : public FaultLocalizer {
 public:
  explicit HistogramScheme(TimeSec lookback_sec = 100, std::size_t bins = 20)
      : lookback_(lookback_sec), bins_(bins) {}

  std::string name() const override { return "Histogram"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
  }
  double defaultThreshold() const override { return 0.4; }

  /// Anomaly score of one component (max KL divergence across metrics).
  double score(const sim::RunRecord& record, ComponentId id,
               TimeSec violation_time) const;

 private:
  TimeSec lookback_;
  std::size_t bins_;
};

}  // namespace fchain::baselines
