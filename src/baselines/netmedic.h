// NetMedic baseline (paper §III-A scheme 2, after Kandula et al. [9]).
//
// NetMedic is application-agnostic multi-metric fault localization: it
// assumes the application topology, describes each component by a state
// vector of its metrics, estimates the impact an abnormal component exerts
// on its topological neighbours by finding a *historical* interval whose
// source-component state resembles the current one (using the paper-
// specified 1800 s of recent history), and ranks components by how much of
// the observed abnormality they explain. The crucial published detail we
// reproduce: when no similar historical state exists — always the case for
// previously unseen faults — NetMedic falls back to a default high edge
// impact of 0.8, which is what makes its diagnosis brittle on novel faults
// (and coincidentally right when the true culprit dominates anyway).
//
// Output is a ranked list; following the paper's methodology we pinpoint the
// top-ranked component plus every component whose score is within delta of
// it, sweeping delta for the ROC curve.
#pragma once

#include "baselines/localizer.h"

namespace fchain::baselines {

struct NetMedicConfig {
  /// Current-state window before the violation (seconds).
  TimeSec state_window_sec = 60;
  /// History searched for similar states (paper: 1800 s).
  TimeSec history_sec = 1800;
  /// Step between candidate historical windows.
  TimeSec history_step_sec = 30;
  /// Normalized state distance below which a historical state is "similar".
  double similarity_limit = 0.6;
  /// Impact assigned when no similar historical state exists (paper: 0.8).
  double default_impact = 0.8;
  /// Abnormality (normalized deviation) above which a component enters the
  /// ranking at all.
  double abnormality_floor = 0.15;
};

class NetMedicScheme : public FaultLocalizer {
 public:
  explicit NetMedicScheme(NetMedicConfig config = {}) : config_(config) {}

  std::string name() const override { return "NetMedic"; }

  /// `threshold` is delta: components within delta of the top score are
  /// also pinpointed.
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {0.02, 0.05, 0.1, 0.2, 0.35, 0.5};
  }
  double defaultThreshold() const override { return 0.1; }

  /// Full ranking (component, score), highest first; exposed for tests.
  std::vector<std::pair<ComponentId, double>> rank(
      const LocalizeInput& input) const;

 private:
  NetMedicConfig config_;
};

}  // namespace fchain::baselines
