// Topology and Dependency baselines (paper §III-A, schemes 3 and 4).
//
// Both first detect abnormal components with the PAL-style outlier change
// point detector (no predictability filter), then blame graph structure:
// every abnormal component with no abnormal predecessor in the graph's flow
// direction is pinpointed (the fault is assumed to enter at the most
// upstream abnormal tier and propagate downstream). This is exactly the
// assumption back-pressure breaks: a faulty last tier (RUBiS db) drives its
// upstream tiers abnormal, and these schemes blame the upstream tier.
//
//  - Topology *assumes* the true application topology as given knowledge.
//  - Dependency uses the black-box *discovered* graph instead; when
//    discovery found nothing (System S streams), it degenerates to
//    outputting every abnormal component.
#pragma once

#include "baselines/localizer.h"
#include "fchain/fchain.h"

namespace fchain::baselines {

/// Shared first stage: PAL-style abnormal component detection. `zscore` is
/// the outlier MAD z-score threshold.
std::vector<core::ComponentFinding> detectAbnormalComponents(
    const sim::RunRecord& record, double zscore,
    const core::FChainConfig& base_config);

/// Of the abnormal components, those with no abnormal predecessor in
/// `graph` (sources of the abnormal subgraph in flow direction).
std::vector<ComponentId> upstreamAbnormal(
    const std::vector<core::ComponentFinding>& abnormal,
    const netdep::DependencyGraph& graph);

class TopologyScheme : public FaultLocalizer {
 public:
  explicit TopologyScheme(core::FChainConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "Topology"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {1.0, 1.5, 2.0, 2.5, 3.0};
  }
  double defaultThreshold() const override { return 2.0; }

 private:
  core::FChainConfig config_;
};

class DependencyScheme : public FaultLocalizer {
 public:
  explicit DependencyScheme(core::FChainConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "Dependency"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {1.0, 1.5, 2.0, 2.5, 3.0};
  }
  double defaultThreshold() const override { return 2.0; }

 private:
  core::FChainConfig config_;
};

}  // namespace fchain::baselines
