#include "baselines/fchain_scheme.h"

namespace fchain::baselines {

std::vector<ComponentId> FChainScheme::localize(const LocalizeInput& input,
                                                double threshold) const {
  core::FChainConfig config = config_;
  // Scale the dynamic threshold's percentile aggressiveness via the burst
  // magnitude: >1 demands larger errors (stricter), <1 is more permissive.
  config.burst.magnitude_percentile =
      std::min(99.0, config.burst.magnitude_percentile * threshold);
  return core::localizeRecord(*input.record, input.discovered, config)
      .pinpointed;
}

PalScheme::PalScheme(core::FChainConfig config) : config_(std::move(config)) {
  config_.use_predictability = false;
  config_.use_dependency = false;
  config_.detect_external_factor = false;
}

std::vector<ComponentId> PalScheme::localize(const LocalizeInput& input,
                                             double threshold) const {
  core::FChainConfig config = config_;
  config.outlier.mad_zscore = threshold;
  return core::localizeRecord(*input.record, nullptr, config).pinpointed;
}

std::vector<ComponentId> FixedFilteringScheme::localize(
    const LocalizeInput& input, double threshold) const {
  core::FChainConfig config = config_;
  config.fixed_error_threshold = threshold;
  return core::localizeRecord(*input.record, input.discovered, config)
      .pinpointed;
}

}  // namespace fchain::baselines
