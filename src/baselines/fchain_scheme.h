// Adapters exposing the FChain core (and its ablation variants PAL and
// Fixed-Filtering) through the common FaultLocalizer interface.
#pragma once

#include "baselines/localizer.h"
#include "fchain/fchain.h"

namespace fchain::baselines {

/// Full FChain. The sweep parameter scales the dynamic burst threshold
/// (1.0 = the paper's configuration), giving FChain a short ROC trace
/// around its operating point.
class FChainScheme : public FaultLocalizer {
 public:
  explicit FChainScheme(core::FChainConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "FChain"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override { return {1.0}; }
  double defaultThreshold() const override { return 1.0; }

  const core::FChainConfig& config() const { return config_; }

 private:
  core::FChainConfig config_;
};

/// PAL [13]: change-propagation chaining with smoothing + outlier change
/// point detection, but *no* predictability filter and *no* dependency
/// refinement. The sweep parameter is the outlier MAD z-score.
class PalScheme : public FaultLocalizer {
 public:
  explicit PalScheme(core::FChainConfig config = {});

  std::string name() const override { return "PAL"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {1.0, 1.5, 2.0, 2.5, 3.0};
  }
  double defaultThreshold() const override { return 2.0; }

 private:
  core::FChainConfig config_;
};

/// Fixed-Filtering: the full FChain pipeline but with a *fixed* prediction
/// error threshold (a multiple of the look-back window's robust scale)
/// instead of the burstiness-derived dynamic threshold. The sweep parameter
/// is that multiple.
class FixedFilteringScheme : public FaultLocalizer {
 public:
  explicit FixedFilteringScheme(core::FChainConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "Fixed-Filtering"; }
  std::vector<ComponentId> localize(const LocalizeInput& input,
                                    double threshold) const override;
  std::vector<double> thresholdSweep() const override {
    return {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  }
  double defaultThreshold() const override { return 2.0; }

 private:
  core::FChainConfig config_;
};

}  // namespace fchain::baselines
