// Common interface for all fault localization schemes compared in the
// paper's evaluation (§III-A): FChain itself plus Histogram, NetMedic,
// Topology, Dependency, PAL and Fixed-Filtering.
//
// Every scheme maps a recorded run (metrics + violation time) to a set of
// pinpointed components. Schemes expose one sweepable sensitivity parameter
// so the evaluation can trace their precision/recall tradeoff ("we vary the
// anomaly score threshold to show the tradeoff...", §III-A); schemes without
// a natural knob (FChain) return a single operating point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netdep/dependency.h"
#include "sim/simulator.h"

namespace fchain::baselines {

struct LocalizeInput {
  const sim::RunRecord* record = nullptr;
  /// Black-box *discovered* dependency graph (may be empty, e.g. System S).
  const netdep::DependencyGraph* discovered = nullptr;
  /// Ground-truth topology; only schemes that *assume* topology knowledge
  /// (Topology, NetMedic) may read this.
  const netdep::DependencyGraph* topology = nullptr;
};

class FaultLocalizer {
 public:
  virtual ~FaultLocalizer() = default;

  virtual std::string name() const = 0;

  /// Pinpoints faulty components; `threshold` is the scheme's sensitivity
  /// parameter (meaning is scheme-specific).
  virtual std::vector<ComponentId> localize(const LocalizeInput& input,
                                            double threshold) const = 0;

  /// Thresholds to sweep for the ROC curve (most permissive to strictest).
  virtual std::vector<double> thresholdSweep() const = 0;

  /// The scheme's recommended single operating point.
  virtual double defaultThreshold() const = 0;
};

}  // namespace fchain::baselines
