#include "baselines/histogram_scheme.h"

#include <algorithm>

#include "common/stats.h"

namespace fchain::baselines {

double HistogramScheme::score(const sim::RunRecord& record, ComponentId id,
                              TimeSec violation_time) const {
  const MetricSeries& series = record.metrics[id];
  double best = 0.0;
  for (MetricKind kind : kAllMetrics) {
    const TimeSeries& ts = series.of(kind);
    const auto all = ts.window(ts.startTime(), violation_time + 1);
    const auto recent =
        ts.window(violation_time - lookback_, violation_time + 1);
    if (all.size() < 2 * recent.size() || recent.size() < 10) continue;

    const double lo = fchain::minValue(all);
    double hi = fchain::maxValue(all);
    if (hi <= lo) hi = lo + 1.0;
    Histogram recent_hist(lo, hi, bins_);
    Histogram full_hist(lo, hi, bins_);
    recent_hist.addAll(recent);
    full_hist.addAll(all);
    best = std::max(best, klDivergence(recent_hist, full_hist));
  }
  return best;
}

std::vector<ComponentId> HistogramScheme::localize(const LocalizeInput& input,
                                                   double threshold) const {
  std::vector<ComponentId> pinpointed;
  const sim::RunRecord& record = *input.record;
  if (!record.violation_time.has_value()) return pinpointed;
  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    if (score(record, id, *record.violation_time) > threshold) {
      pinpointed.push_back(id);
    }
  }
  return pinpointed;
}

}  // namespace fchain::baselines
