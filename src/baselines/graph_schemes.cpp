#include "baselines/graph_schemes.h"

#include <algorithm>

namespace fchain::baselines {

std::vector<core::ComponentFinding> detectAbnormalComponents(
    const sim::RunRecord& record, double zscore,
    const core::FChainConfig& base_config) {
  std::vector<core::ComponentFinding> findings;
  if (!record.violation_time.has_value()) return findings;
  const TimeSec tv = *record.violation_time;

  core::FChainConfig config = base_config;
  config.use_predictability = false;
  config.outlier.mad_zscore = zscore;
  core::AbnormalChangeSelector selector(config);

  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    const auto model =
        core::replayModel(record.metrics[id], tv + 1, config.predictor);
    if (auto finding =
            selector.analyzeComponent(id, record.metrics[id], model, tv)) {
      findings.push_back(std::move(*finding));
    }
  }
  return findings;
}

std::vector<ComponentId> upstreamAbnormal(
    const std::vector<core::ComponentFinding>& abnormal,
    const netdep::DependencyGraph& graph) {
  std::vector<ComponentId> pinpointed;
  for (const auto& candidate : abnormal) {
    bool has_abnormal_predecessor = false;
    for (const auto& other : abnormal) {
      if (other.component == candidate.component) continue;
      if (graph.hasEdge(other.component, candidate.component)) {
        has_abnormal_predecessor = true;
        break;
      }
    }
    if (!has_abnormal_predecessor) pinpointed.push_back(candidate.component);
  }
  std::sort(pinpointed.begin(), pinpointed.end());
  return pinpointed;
}

std::vector<ComponentId> TopologyScheme::localize(const LocalizeInput& input,
                                                  double threshold) const {
  const auto abnormal =
      detectAbnormalComponents(*input.record, threshold, config_);
  return upstreamAbnormal(abnormal, *input.topology);
}

std::vector<ComponentId> DependencyScheme::localize(const LocalizeInput& input,
                                                    double threshold) const {
  const auto abnormal =
      detectAbnormalComponents(*input.record, threshold, config_);
  if (input.discovered == nullptr || input.discovered->empty()) {
    // No dependency information could be accumulated: every abnormal
    // component is reported (paper §III-B on System S).
    std::vector<ComponentId> all;
    for (const auto& finding : abnormal) all.push_back(finding.component);
    std::sort(all.begin(), all.end());
    return all;
  }
  return upstreamAbnormal(abnormal, *input.discovered);
}

}  // namespace fchain::baselines
