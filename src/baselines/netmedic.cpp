#include "baselines/netmedic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace fchain::baselines {

namespace {

/// Normalized state vector of one component over [from, to): per-metric mean
/// divided by the metric's historical scale.
struct StateVector {
  std::array<double, kMetricCount> values{};
  bool valid = false;
};

struct ComponentContext {
  std::array<double, kMetricCount> hist_mean{};
  std::array<double, kMetricCount> hist_scale{};
};

ComponentContext makeContext(const MetricSeries& series, TimeSec hist_from,
                             TimeSec hist_to) {
  ComponentContext context;
  for (MetricKind kind : kAllMetrics) {
    const auto window = series.of(kind).window(hist_from, hist_to);
    const std::size_t m = metricIndex(kind);
    context.hist_mean[m] = mean(window);
    context.hist_scale[m] = std::max(1e-6, stddev(window));
  }
  return context;
}

StateVector stateAt(const MetricSeries& series, const ComponentContext& ctx,
                    TimeSec from, TimeSec to) {
  StateVector state;
  for (MetricKind kind : kAllMetrics) {
    const auto window = series.of(kind).window(from, to);
    if (window.size() < 5) return state;  // not enough data
    const std::size_t m = metricIndex(kind);
    state.values[m] = (mean(window) - ctx.hist_mean[m]) / ctx.hist_scale[m];
  }
  state.valid = true;
  return state;
}

double stateDistance(const StateVector& a, const StateVector& b) {
  double sum = 0.0;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    sum += std::fabs(a.values[m] - b.values[m]);
  }
  return sum / static_cast<double>(kMetricCount);
}

/// Abnormality of a state: largest normalized deviation, squashed to [0, 1].
/// NetMedic's abnormality is an empirical tail probability, which saturates
/// for anything beyond the historical range — so under a fault the culprit
/// AND the components it affects all score ~1, and the ranking hinges on
/// the (unreliable) impact estimates.
double abnormality(const StateVector& state) {
  double worst = 0.0;
  for (double v : state.values) worst = std::max(worst, std::fabs(v));
  return std::min(1.0, worst / 2.0);
}

/// Deterministic stand-in for the estimation noise of NetMedic's default
/// impact: with no similar historical state, the published system guesses a
/// high impact (0.8); the guess is systematically off by an unpredictable
/// amount, which is exactly what degrades its ranking on unseen faults.
double perturbedDefault(double base, ComponentId c, ComponentId d,
                        TimeSec tv) {
  SplitMix64 sm((static_cast<std::uint64_t>(c) << 40) ^
                (static_cast<std::uint64_t>(d) << 20) ^
                static_cast<std::uint64_t>(tv));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (0.85 + 0.3 * u);
}

}  // namespace

std::vector<std::pair<ComponentId, double>> NetMedicScheme::rank(
    const LocalizeInput& input) const {
  const sim::RunRecord& record = *input.record;
  std::vector<std::pair<ComponentId, double>> scores;
  if (!record.violation_time.has_value()) return scores;
  const TimeSec tv = *record.violation_time;
  const std::size_t n = record.metrics.size();

  const TimeSec now_from = tv - config_.state_window_sec;
  const TimeSec hist_from = std::max<TimeSec>(0, now_from - config_.history_sec);
  const TimeSec hist_to = now_from;

  // Per-component context, current state, abnormality.
  std::vector<ComponentContext> contexts(n);
  std::vector<StateVector> now_states(n);
  std::vector<double> abnormal(n, 0.0);
  for (ComponentId c = 0; c < n; ++c) {
    contexts[c] = makeContext(record.metrics[c], hist_from, hist_to);
    now_states[c] = stateAt(record.metrics[c], contexts[c], now_from, tv + 1);
    if (now_states[c].valid) abnormal[c] = abnormality(now_states[c]);
  }

  // Impact of c on d: find the historical window where c's state was most
  // similar to its current state; the impact is how closely d's state then
  // matches d's state now. Unseen source state => default impact.
  auto impact = [&](ComponentId c, ComponentId d) {
    double best_dist = 1e18;
    TimeSec best_from = -1;
    for (TimeSec from = hist_from; from + config_.state_window_sec <= hist_to;
         from += config_.history_step_sec) {
      const auto past = stateAt(record.metrics[c], contexts[c], from,
                                from + config_.state_window_sec);
      if (!past.valid) continue;
      const double dist = stateDistance(now_states[c], past);
      if (dist < best_dist) {
        best_dist = dist;
        best_from = from;
      }
    }
    if (best_from < 0 || best_dist > config_.similarity_limit) {
      // Previously unseen state: guess the default high impact.
      return perturbedDefault(config_.default_impact, c, d, tv);
    }
    const auto d_past = stateAt(record.metrics[d], contexts[d], best_from,
                                best_from + config_.state_window_sec);
    if (!d_past.valid) return perturbedDefault(config_.default_impact, c, d, tv);
    const double dist_d = stateDistance(now_states[d], d_past);
    return std::clamp(1.0 - dist_d, 0.0, 1.0);
  };

  for (ComponentId c = 0; c < n; ++c) {
    if (!now_states[c].valid || abnormal[c] < config_.abnormality_floor) {
      scores.emplace_back(c, 0.0);
      continue;
    }
    // How much of the other abnormal components' behaviour does c explain?
    double explain = 0.0;
    std::size_t affected = 0;
    for (ComponentId d = 0; d < n; ++d) {
      if (d == c || !now_states[d].valid ||
          abnormal[d] < config_.abnormality_floor) {
        continue;
      }
      if (!input.topology->connectedEitherWay(c, d)) continue;
      explain += impact(c, d);
      ++affected;
    }
    const double reach = affected == 0 ? 1.0 : explain / static_cast<double>(affected);
    scores.emplace_back(c, abnormal[c] * reach);
  }

  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return scores;
}

std::vector<ComponentId> NetMedicScheme::localize(const LocalizeInput& input,
                                                  double threshold) const {
  std::vector<ComponentId> pinpointed;
  const auto ranking = rank(input);
  if (ranking.empty() || ranking.front().second <= 0.0) return pinpointed;
  const double top = ranking.front().second;
  for (const auto& [component, score] : ranking) {
    if (score > 0.0 && top - score <= threshold) {
      pinpointed.push_back(component);
    }
  }
  std::sort(pinpointed.begin(), pinpointed.end());
  return pinpointed;
}

}  // namespace fchain::baselines
