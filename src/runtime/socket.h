// POSIX socket primitives for the framed wire transport.
//
// Thin RAII wrappers over TCP / Unix-domain stream sockets with explicit
// deadlines on every operation (non-blocking fds + poll, no SO_*TIMEO
// surprises) and a frame-aware receive path: recvFrame() reads exactly one
// persist-codec frame (runtime/wire.h) and classifies what actually
// happened on the wire —
//
//   Ok          a complete frame arrived (CRC still checked by the caller's
//               wire::decodeMessage, which distinguishes bit-rot)
//   Timeout     the deadline expired mid-read
//   Closed      the peer closed cleanly *between* frames
//   Torn        the connection died mid-frame: the half-delivered reply a
//               kill -9'd peer leaves behind (a retryable transport error,
//               not a protocol failure)
//   Corrupt     the frame header itself is unparseable (bad magic, an
//               oversized length) — nothing after it can be trusted
//   BadVersion  the peer speaks a newer protocol version
//
// That taxonomy is what the chaos decorators (FlakyEndpoint torn replies,
// HungEndpoint abandoned calls) emulate in-process, so the emulated and
// real transports exercise the same master-side handling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fchain::runtime {

/// A listen/connect address: "tcp:<host>:<port>" or "unix:<path>".
struct SocketAddress {
  enum class Kind { Tcp, Unix };
  Kind kind = Kind::Unix;
  std::string host;         ///< tcp only
  std::uint16_t port = 0;   ///< tcp only (0 = auto-assign when listening)
  std::string path;         ///< unix only

  static SocketAddress tcp(std::string host, std::uint16_t port);
  static SocketAddress unixPath(std::string path);
  /// Parses the "tcp:host:port" / "unix:path" spec; throws
  /// std::invalid_argument on anything else.
  static SocketAddress parse(const std::string& spec);
  std::string str() const;
};

enum class RecvStatus : std::uint8_t {
  Ok,
  Timeout,
  Closed,
  Torn,
  Corrupt,
  BadVersion,
};

/// One connected stream socket (move-only, closes on destruction). All
/// deadlines are wall-clock milliseconds; <= 0 means no deadline.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Connects within the deadline; returns an invalid Socket on failure
  /// (refused, unreachable, timeout).
  static Socket connectTo(const SocketAddress& address, double timeout_ms);

  /// Writes the whole buffer within the deadline.
  bool sendAll(const std::vector<std::uint8_t>& bytes, double timeout_ms);

  /// Reads exactly one frame (header + declared payload) into `frame`.
  /// On anything but Ok the buffer contents are unspecified and the
  /// connection should be closed: a stream that lost framing cannot resync.
  RecvStatus recvFrame(std::vector<std::uint8_t>& frame, double timeout_ms);

 private:
  int fd_ = -1;
};

/// A bound, listening socket. For unix addresses any stale socket file is
/// unlinked first (daemon restart reuses its path); for tcp port 0 the
/// kernel-assigned port is reflected in address().
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Throws std::runtime_error when binding fails.
  static Listener listenOn(const SocketAddress& address);

  /// Accepts one connection within the deadline; invalid Socket on timeout.
  Socket accept(double timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const SocketAddress& address() const { return address_; }
  void close();

 private:
  int fd_ = -1;
  SocketAddress address_;
};

}  // namespace fchain::runtime
