#include "runtime/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "persist/codec.h"
#include "runtime/wire.h"

namespace fchain::runtime {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadlineFrom(double timeout_ms) {
  if (timeout_ms <= 0.0) return Clock::time_point::max();
  return Clock::now() +
         std::chrono::microseconds(static_cast<std::int64_t>(timeout_ms * 1e3));
}

/// Remaining milliseconds for poll(); -1 = infinite, 0 = expired.
int remainingMs(Clock::time_point deadline) {
  if (deadline == Clock::time_point::max()) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  // Round up so a sub-millisecond remainder still polls once.
  return static_cast<int>(std::min<std::int64_t>(left.count() + 1, 60'000));
}

bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Waits for the fd to become readable/writable before the deadline.
bool waitFor(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const int wait = remainingMs(deadline);
    if (wait == 0) return false;
    struct pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, wait);
    if (rc > 0) return true;
    if (rc == 0) return false;  // poll's own timeout
    if (errno != EINTR) return false;
  }
}

}  // namespace

// --- SocketAddress ---------------------------------------------------------

SocketAddress SocketAddress::tcp(std::string host, std::uint16_t port) {
  SocketAddress a;
  a.kind = Kind::Tcp;
  a.host = std::move(host);
  a.port = port;
  return a;
}

SocketAddress SocketAddress::unixPath(std::string path) {
  SocketAddress a;
  a.kind = Kind::Unix;
  a.path = std::move(path);
  return a;
}

SocketAddress SocketAddress::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) {
      throw std::invalid_argument("empty unix socket path: " + spec);
    }
    return unixPath(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("expected tcp:host:port, got " + spec);
    }
    const std::string host = rest.substr(0, colon);
    const int port = std::stoi(rest.substr(colon + 1));
    if (port < 0 || port > 65535) {
      throw std::invalid_argument("port out of range: " + spec);
    }
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("expected tcp:host:port or unix:path, got " +
                              spec);
}

std::string SocketAddress::str() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

// --- Socket ----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connectTo(const SocketAddress& address, double timeout_ms) {
  const Clock::time_point deadline = deadlineFrom(timeout_ms);
  int fd = -1;
  union {
    struct sockaddr sa;
    struct sockaddr_in in;
    struct sockaddr_un un;
  } addr{};
  socklen_t addr_len = 0;
  if (address.kind == SocketAddress::Kind::Unix) {
    if (address.path.size() >= sizeof(addr.un.sun_path)) return Socket{};
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    addr.un.sun_family = AF_UNIX;
    std::strncpy(addr.un.sun_path, address.path.c_str(),
                 sizeof(addr.un.sun_path) - 1);
    addr_len = sizeof(addr.un);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    addr.in.sin_family = AF_INET;
    addr.in.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &addr.in.sin_addr) != 1) {
      if (fd >= 0) ::close(fd);
      return Socket{};
    }
    addr_len = sizeof(addr.in);
  }
  if (fd < 0) return Socket{};
  if (!setNonBlocking(fd)) {
    ::close(fd);
    return Socket{};
  }
  if (::connect(fd, &addr.sa, addr_len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      ::close(fd);
      return Socket{};
    }
    if (!waitFor(fd, POLLOUT, deadline)) {
      ::close(fd);
      return Socket{};
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Socket{};
    }
  }
  if (address.kind == SocketAddress::Kind::Tcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket{fd};
}

bool Socket::sendAll(const std::vector<std::uint8_t>& bytes,
                     double timeout_ms) {
  if (fd_ < 0) return false;
  const Clock::time_point deadline = deadlineFrom(timeout_ms);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!waitFor(fd_, POLLOUT, deadline)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer reset / closed
  }
  return true;
}

RecvStatus Socket::recvFrame(std::vector<std::uint8_t>& frame,
                             double timeout_ms) {
  frame.clear();
  if (fd_ < 0) return RecvStatus::Closed;
  const Clock::time_point deadline = deadlineFrom(timeout_ms);

  const auto readExact = [&](std::size_t target) -> RecvStatus {
    while (frame.size() < target) {
      std::uint8_t chunk[4096];
      const std::size_t want =
          std::min(sizeof(chunk), target - frame.size());
      const ssize_t n = ::recv(fd_, chunk, want, 0);
      if (n > 0) {
        frame.insert(frame.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) {
        // EOF between frames is a clean close; EOF inside one is the
        // half-delivered frame a dying peer leaves behind.
        return frame.empty() ? RecvStatus::Closed : RecvStatus::Torn;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!waitFor(fd_, POLLIN, deadline)) return RecvStatus::Timeout;
        continue;
      }
      if (errno == EINTR) continue;
      // ECONNRESET & friends: the mid-stream equivalent of a torn frame.
      return frame.empty() ? RecvStatus::Closed : RecvStatus::Torn;
    }
    return RecvStatus::Ok;
  };

  const RecvStatus header = readExact(persist::kFrameHeaderSize);
  if (header != RecvStatus::Ok) return header;

  // Parse the header before trusting the declared length.
  persist::Decoder d(frame);
  const std::uint32_t magic = d.u32();
  if (magic != wire::kWireMagic) return RecvStatus::Corrupt;
  const std::uint32_t version = d.u32();
  if (version == 0) return RecvStatus::Corrupt;
  if (version > wire::kWireVersion) return RecvStatus::BadVersion;
  const std::uint64_t length = d.u64();
  if (length > wire::kMaxFramePayload) return RecvStatus::Corrupt;

  return readExact(persist::kFrameHeaderSize +
                   static_cast<std::size_t>(length));
}

// --- Listener --------------------------------------------------------------

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), address_(std::move(other.address_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    other.fd_ = -1;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (address_.kind == SocketAddress::Kind::Unix) {
      ::unlink(address_.path.c_str());
    }
  }
}

Listener Listener::listenOn(const SocketAddress& address) {
  Listener listener;
  listener.address_ = address;
  int fd = -1;
  if (address.kind == SocketAddress::Kind::Unix) {
    struct sockaddr_un un{};
    if (address.path.size() >= sizeof(un.sun_path)) {
      throw std::runtime_error("unix socket path too long: " + address.path);
    }
    ::unlink(address.path.c_str());
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed for " + address.str());
    un.sun_family = AF_UNIX;
    std::strncpy(un.sun_path, address.path.c_str(), sizeof(un.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&un), sizeof(un)) != 0) {
      ::close(fd);
      throw std::runtime_error("bind() failed for " + address.str() + ": " +
                               std::strerror(errno));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed for " + address.str());
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in in{};
    in.sin_family = AF_INET;
    in.sin_port = htons(address.port);
    if (::inet_pton(AF_INET, address.host.c_str(), &in.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("bad tcp host: " + address.host);
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&in), sizeof(in)) != 0) {
      ::close(fd);
      throw std::runtime_error("bind() failed for " + address.str() + ": " +
                               std::strerror(errno));
    }
    // Reflect a kernel-assigned port back into the address.
    struct sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      listener.address_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("listen() failed for " + address.str() + ": " +
                             std::strerror(errno));
  }
  if (!setNonBlocking(fd)) {
    ::close(fd);
    throw std::runtime_error("fcntl() failed for " + address.str());
  }
  listener.fd_ = fd;
  return listener;
}

Socket Listener::accept(double timeout_ms) {
  if (fd_ < 0) return Socket{};
  const Clock::time_point deadline = deadlineFrom(timeout_ms);
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (!setNonBlocking(fd)) {
        ::close(fd);
        return Socket{};
      }
      if (address_.kind == SocketAddress::Kind::Tcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      return Socket{fd};
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!waitFor(fd_, POLLIN, deadline)) return Socket{};
      continue;
    }
    if (errno == EINTR) continue;
    return Socket{};
  }
}

}  // namespace fchain::runtime
