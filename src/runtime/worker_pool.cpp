#include "runtime/worker_pool.h"

#include <algorithm>
#include <utility>

namespace fchain::runtime {

WorkerPool::WorkerPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
    pending_ += tasks.size();
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fchain::runtime
