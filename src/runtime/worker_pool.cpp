#include "runtime/worker_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace fchain::runtime {

WorkerPool::WorkerPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  obs::Tracer& tracer = obs::tracer();
  if (tracer.enabled()) {
    // Bracket each task with a "pool.task" span and report how long it sat
    // in the queue; the wait is measured from enqueue here to dequeue on
    // the worker, then recorded *by* the worker so the span lands on the
    // thread that actually ran the task.
    for (auto& task : tasks) {
      task = [inner = std::move(task), enqueued_us = tracer.now(),
              &tracer] {
        tracer.recordSpan("pool.queue_wait", enqueued_us, tracer.now());
        obs::Span span(tracer, "pool.task");
        inner();
      };
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
    pending_.fetch_add(tasks.size(), std::memory_order_relaxed);
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock,
                 [this] { return pending_.load(std::memory_order_relaxed) ==
                                 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and no work left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.fetch_sub(1, std::memory_order_relaxed) == 1) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace fchain::runtime
