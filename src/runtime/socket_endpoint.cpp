#include "runtime/socket_endpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "persist/codec.h"

namespace fchain::runtime {
namespace {

obs::MetricRegistry& registryOf(const SocketEndpointConfig& config) {
  return config.registry != nullptr ? *config.registry : obs::metrics();
}

}  // namespace

SocketEndpoint::SocketEndpoint(SocketEndpointConfig config)
    : config_(std::move(config)),
      metric_connects_(registryOf(config_).counter("runtime.socket.connects")),
      metric_reconnects_(
          registryOf(config_).counter("runtime.socket.reconnects")),
      metric_frames_tx_(
          registryOf(config_).counter("runtime.socket.frames_tx")),
      metric_frames_rx_(
          registryOf(config_).counter("runtime.socket.frames_rx")),
      metric_crc_errors_(
          registryOf(config_).counter("runtime.socket.crc_errors")),
      metric_torn_frames_(
          registryOf(config_).counter("runtime.socket.torn_frames")) {}

HostId SocketEndpoint::host() const {
  std::lock_guard<std::mutex> g(mutex_);
  return host_;
}

std::uint64_t SocketEndpoint::identity() const {
  std::lock_guard<std::mutex> g(mutex_);
  return identity_;
}

std::vector<ComponentId> SocketEndpoint::handshakeComponents() const {
  std::lock_guard<std::mutex> g(mutex_);
  return components_;
}

bool SocketEndpoint::connected() const {
  std::lock_guard<std::mutex> g(mutex_);
  return conn_.valid();
}

void SocketEndpoint::disconnect() {
  std::lock_guard<std::mutex> g(mutex_);
  conn_.close();
}

bool SocketEndpoint::ensureConnectedLocked() {
  if (version_rejected_) return false;
  if (conn_.valid()) return true;
  const int attempts = std::max(1, config_.reconnect.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const double delay = retryDelayMs(
          config_.reconnect, attempt - 1,
          mixSeed(0x50c4e7ull, config_.backoff_seed, request_counter_));
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(delay * 1e3)));
    }
    Socket sock =
        Socket::connectTo(config_.address, config_.connect_timeout_ms);
    if (!sock.valid()) continue;

    // Versioned handshake: Hello out, HelloReply (or a rejection) back.
    if (!sock.sendAll(wire::encodeHello({}), config_.io_timeout_ms)) continue;
    metric_frames_tx_.add();
    std::vector<std::uint8_t> frame;
    const RecvStatus status = sock.recvFrame(frame, config_.io_timeout_ms);
    if (status == RecvStatus::BadVersion) {
      version_rejected_ = true;
      return false;
    }
    if (status != RecvStatus::Ok) {
      if (status == RecvStatus::Torn) metric_torn_frames_.add();
      if (status == RecvStatus::Corrupt) metric_crc_errors_.add();
      continue;
    }
    metric_frames_rx_.add();
    wire::Message message;
    try {
      message = wire::decodeMessage(frame);
    } catch (const persist::CorruptDataError&) {
      metric_crc_errors_.add();
      continue;
    }
    if (const auto* error = std::get_if<wire::WireError>(&message)) {
      if (error->code == wire::ErrorCode::VersionMismatch) {
        version_rejected_ = true;
        return false;
      }
      continue;
    }
    const auto* hello = std::get_if<wire::HelloReply>(&message);
    if (hello == nullptr) continue;
    if (hello->protocol_version != wire::kWireVersion) {
      version_rejected_ = true;
      return false;
    }
    if (identity_ != 0 && hello->identity_hash != identity_) {
      // The address now leads to a different slave (host or claims
      // changed): refuse to adopt it — the master's routing table was
      // built for the slave we originally handshook.
      return false;
    }
    host_ = hello->host;
    identity_ = hello->identity_hash;
    components_ = hello->components;
    conn_ = std::move(sock);
    metric_connects_.add();
    if (ever_connected_) metric_reconnects_.add();
    ever_connected_ = true;
    return true;
  }
  return false;
}

EndpointStatus SocketEndpoint::roundTripLocked(
    const std::vector<std::uint8_t>& frame, double deadline_ms,
    wire::Message& reply) {
  ++request_counter_;
  if (!ensureConnectedLocked()) return EndpointStatus::Unavailable;
  const double io = deadline_ms > 0.0 ? deadline_ms : config_.io_timeout_ms;
  if (!conn_.sendAll(frame, io)) {
    // A send that dies mid-frame leaves the peer a torn request; either way
    // the reply is lost, which is the retryable Dropped case.
    conn_.close();
    return EndpointStatus::Dropped;
  }
  metric_frames_tx_.add();
  std::vector<std::uint8_t> buf;
  const RecvStatus status = conn_.recvFrame(buf, io);
  switch (status) {
    case RecvStatus::Ok:
      break;
    case RecvStatus::Timeout:
      // An abandoned in-flight reply would desync the stream: drop the
      // connection so the retry starts clean.
      conn_.close();
      return EndpointStatus::Timeout;
    case RecvStatus::Torn:
      metric_torn_frames_.add();
      conn_.close();
      return EndpointStatus::Dropped;
    case RecvStatus::Closed:
      conn_.close();
      return EndpointStatus::Dropped;
    case RecvStatus::Corrupt:
      metric_crc_errors_.add();
      conn_.close();
      return EndpointStatus::Dropped;
    case RecvStatus::BadVersion:
      version_rejected_ = true;
      conn_.close();
      return EndpointStatus::Unavailable;
  }
  metric_frames_rx_.add();
  try {
    reply = wire::decodeMessage(buf);
  } catch (const persist::CorruptDataError&) {
    metric_crc_errors_.add();
    conn_.close();
    return EndpointStatus::Dropped;
  }
  if (const auto* error = std::get_if<wire::WireError>(&reply)) {
    if (error->code == wire::ErrorCode::VersionMismatch) {
      version_rejected_ = true;
      conn_.close();
      return EndpointStatus::Unavailable;
    }
    if (error->code == wire::ErrorCode::ShuttingDown) {
      conn_.close();
      return EndpointStatus::Unavailable;
    }
    conn_.close();
    return EndpointStatus::Dropped;
  }
  return EndpointStatus::Ok;
}

ComponentListReply SocketEndpoint::listComponents() {
  std::lock_guard<std::mutex> g(mutex_);
  wire::Message reply;
  const EndpointStatus status = roundTripLocked(
      wire::encodeListComponentsRequest(), config_.io_timeout_ms, reply);
  if (status != EndpointStatus::Ok) return {status, {}};
  const auto* list = std::get_if<ComponentListReply>(&reply);
  if (list == nullptr) {
    conn_.close();
    return {EndpointStatus::Dropped, {}};
  }
  return *list;
}

AnalyzeReply SocketEndpoint::analyze(const AnalyzeRequest& request) {
  // Single-component analysis rides the batch message: one protocol, one
  // server dispatch path.
  AnalyzeBatchRequest batch;
  batch.components = {request.component};
  batch.violation_time = request.violation_time;
  batch.deadline_ms = request.deadline_ms;
  AnalyzeBatchReply batched = analyzeBatch(batch);
  AnalyzeReply reply;
  reply.status = batched.status;
  reply.latency_ms = batched.latency_ms;
  if (batched.status == EndpointStatus::Ok && batched.findings.size() == 1) {
    reply.finding = std::move(batched.findings[0]);
  }
  return reply;
}

AnalyzeBatchReply SocketEndpoint::analyzeBatch(
    const AnalyzeBatchRequest& request) {
  std::lock_guard<std::mutex> g(mutex_);
  wire::Message reply;
  const EndpointStatus status = roundTripLocked(
      wire::encodeAnalyzeBatchRequest(request), request.deadline_ms, reply);
  if (status != EndpointStatus::Ok) return {status, {}, 0.0};
  auto* batched = std::get_if<AnalyzeBatchReply>(&reply);
  if (batched == nullptr ||
      (batched->status == EndpointStatus::Ok &&
       batched->findings.size() != request.components.size())) {
    conn_.close();
    return {EndpointStatus::Dropped, {}, 0.0};
  }
  return std::move(*batched);
}

IngestReply SocketEndpoint::ingest(const IngestRequest& request) {
  std::lock_guard<std::mutex> g(mutex_);
  wire::Message reply;
  const EndpointStatus status = roundTripLocked(
      wire::encodeIngestRequest(request), request.deadline_ms, reply);
  if (status != EndpointStatus::Ok) return {status, 0.0};
  const auto* ingested = std::get_if<IngestReply>(&reply);
  if (ingested == nullptr) {
    conn_.close();
    return {EndpointStatus::Dropped, 0.0};
  }
  return *ingested;
}

}  // namespace fchain::runtime
