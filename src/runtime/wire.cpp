#include "runtime/wire.h"

#include <algorithm>
#include <utility>

#include "persist/codec.h"

namespace fchain::runtime::wire {
namespace {

using persist::Decoder;
using persist::Encoder;

std::vector<std::uint8_t> frameOf(MsgType type, Encoder body) {
  Encoder payload;
  payload.u8(static_cast<std::uint8_t>(type));
  payload.bytes(body.buffer());
  return persist::frame(kWireMagic, kWireVersion, payload.buffer());
}

void encodeComponents(Encoder& e, const std::vector<ComponentId>& ids) {
  e.u64(ids.size());
  for (ComponentId id : ids) e.u32(id);
}

std::vector<ComponentId> decodeComponents(Decoder& d) {
  const std::uint64_t n = d.u64();
  if (n > d.remaining() / sizeof(std::uint32_t)) {
    d.fail("component count exceeds remaining bytes");
  }
  std::vector<ComponentId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(d.u32());
  return ids;
}

EndpointStatus decodeStatus(Decoder& d) {
  const std::uint8_t raw = d.u8();
  if (raw > static_cast<std::uint8_t>(EndpointStatus::Unavailable)) {
    d.fail("endpoint status out of range");
  }
  return static_cast<EndpointStatus>(raw);
}

Trend decodeTrend(Decoder& d) {
  const std::uint8_t raw = d.u8();
  if (raw > static_cast<std::uint8_t>(Trend::Flat)) {
    d.fail("trend out of range");
  }
  return static_cast<Trend>(raw);
}

void encodeFinding(Encoder& e, const core::ComponentFinding& finding) {
  e.u32(finding.component);
  e.i64(finding.onset);
  e.u8(static_cast<std::uint8_t>(finding.trend));
  e.u64(finding.metrics.size());
  for (const core::MetricFinding& m : finding.metrics) {
    e.u8(static_cast<std::uint8_t>(m.metric));
    e.i64(m.onset);
    e.i64(m.change_point);
    e.u8(static_cast<std::uint8_t>(m.trend));
    e.f64(m.prediction_error);
    e.f64(m.expected_error);
  }
}

core::ComponentFinding decodeFinding(Decoder& d) {
  core::ComponentFinding finding;
  finding.component = d.u32();
  finding.onset = d.i64();
  finding.trend = decodeTrend(d);
  const std::uint64_t metrics = d.u64();
  // Each metric finding is at least 1+8+8+1+8+8 = 34 bytes.
  if (metrics > d.remaining() / 34) {
    d.fail("metric finding count exceeds remaining bytes");
  }
  finding.metrics.reserve(static_cast<std::size_t>(metrics));
  for (std::uint64_t i = 0; i < metrics; ++i) {
    core::MetricFinding m;
    const std::uint8_t kind = d.u8();
    if (kind >= kMetricCount) d.fail("metric kind out of range");
    m.metric = static_cast<MetricKind>(kind);
    m.onset = d.i64();
    m.change_point = d.i64();
    m.trend = decodeTrend(d);
    m.prediction_error = d.f64();
    m.expected_error = d.f64();
    finding.metrics.push_back(m);
  }
  return finding;
}

Message decodeBody(MsgType type, Decoder& d) {
  switch (type) {
    case MsgType::Hello: {
      Hello msg;
      msg.protocol_version = d.u32();
      return msg;
    }
    case MsgType::HelloReply: {
      HelloReply msg;
      msg.protocol_version = d.u32();
      msg.host = d.u32();
      msg.identity_hash = d.u64();
      msg.components = decodeComponents(d);
      return msg;
    }
    case MsgType::AnalyzeBatchRequest: {
      AnalyzeBatchRequest msg;
      msg.components = decodeComponents(d);
      msg.violation_time = d.i64();
      msg.deadline_ms = d.f64();
      return msg;
    }
    case MsgType::AnalyzeBatchReply: {
      AnalyzeBatchReply msg;
      msg.status = decodeStatus(d);
      msg.latency_ms = d.f64();
      const std::uint64_t slots = d.u64();
      // Each slot is at least its 1-byte presence flag.
      if (slots > d.remaining()) d.fail("finding count exceeds remaining bytes");
      msg.findings.reserve(static_cast<std::size_t>(slots));
      for (std::uint64_t i = 0; i < slots; ++i) {
        const std::uint8_t has = d.u8();
        if (has > 1) d.fail("finding presence flag out of range");
        if (has == 1) {
          msg.findings.push_back(decodeFinding(d));
        } else {
          msg.findings.push_back(std::nullopt);
        }
      }
      return msg;
    }
    case MsgType::IngestRequest: {
      IngestRequest msg;
      msg.component = d.u32();
      msg.t = d.i64();
      msg.deadline_ms = d.f64();
      for (std::size_t i = 0; i < kMetricCount; ++i) msg.sample[i] = d.f64();
      return msg;
    }
    case MsgType::IngestReply: {
      IngestReply msg;
      msg.status = decodeStatus(d);
      msg.latency_ms = d.f64();
      return msg;
    }
    case MsgType::ListComponentsRequest:
      return ListComponentsRequest{};
    case MsgType::ListComponentsReply: {
      ComponentListReply msg;
      msg.status = decodeStatus(d);
      msg.components = decodeComponents(d);
      return msg;
    }
    case MsgType::Error: {
      WireError msg;
      const std::uint32_t code = d.u32();
      if (code < static_cast<std::uint32_t>(ErrorCode::VersionMismatch) ||
          code > static_cast<std::uint32_t>(ErrorCode::ShuttingDown)) {
        d.fail("error code out of range");
      }
      msg.code = static_cast<ErrorCode>(code);
      const std::uint64_t len = d.u64();
      if (len > d.remaining()) d.fail("error message exceeds remaining bytes");
      msg.message.reserve(static_cast<std::size_t>(len));
      for (std::uint64_t i = 0; i < len; ++i) {
        msg.message.push_back(static_cast<char>(d.u8()));
      }
      return msg;
    }
    case MsgType::Shutdown:
      return Shutdown{};
  }
  d.fail("unknown message type");
}

}  // namespace

std::uint64_t slaveIdentityHash(HostId host,
                                std::vector<ComponentId> components) {
  std::sort(components.begin(), components.end());
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (v >> shift) & 0xffu;
      hash *= 0x100000001b3ull;  // FNV prime
    }
  };
  mix(host);
  for (ComponentId id : components) mix(id);
  return hash;
}

std::vector<std::uint8_t> encodeHello(const Hello& msg) {
  Encoder body;
  body.u32(msg.protocol_version);
  return frameOf(MsgType::Hello, std::move(body));
}

std::vector<std::uint8_t> encodeHelloReply(const HelloReply& msg) {
  Encoder body;
  body.u32(msg.protocol_version);
  body.u32(msg.host);
  body.u64(msg.identity_hash);
  encodeComponents(body, msg.components);
  return frameOf(MsgType::HelloReply, std::move(body));
}

std::vector<std::uint8_t> encodeAnalyzeBatchRequest(
    const AnalyzeBatchRequest& msg) {
  Encoder body;
  encodeComponents(body, msg.components);
  body.i64(msg.violation_time);
  body.f64(msg.deadline_ms);
  return frameOf(MsgType::AnalyzeBatchRequest, std::move(body));
}

std::vector<std::uint8_t> encodeAnalyzeBatchReply(
    const AnalyzeBatchReply& msg) {
  Encoder body;
  body.u8(static_cast<std::uint8_t>(msg.status));
  body.f64(msg.latency_ms);
  body.u64(msg.findings.size());
  for (const std::optional<core::ComponentFinding>& slot : msg.findings) {
    body.u8(slot.has_value() ? 1 : 0);
    if (slot.has_value()) encodeFinding(body, *slot);
  }
  return frameOf(MsgType::AnalyzeBatchReply, std::move(body));
}

std::vector<std::uint8_t> encodeIngestRequest(const IngestRequest& msg) {
  Encoder body;
  body.u32(msg.component);
  body.i64(msg.t);
  body.f64(msg.deadline_ms);
  for (double v : msg.sample) body.f64(v);
  return frameOf(MsgType::IngestRequest, std::move(body));
}

std::vector<std::uint8_t> encodeIngestReply(const IngestReply& msg) {
  Encoder body;
  body.u8(static_cast<std::uint8_t>(msg.status));
  body.f64(msg.latency_ms);
  return frameOf(MsgType::IngestReply, std::move(body));
}

std::vector<std::uint8_t> encodeListComponentsRequest() {
  return frameOf(MsgType::ListComponentsRequest, Encoder{});
}

std::vector<std::uint8_t> encodeListComponentsReply(
    const ComponentListReply& msg) {
  Encoder body;
  body.u8(static_cast<std::uint8_t>(msg.status));
  encodeComponents(body, msg.components);
  return frameOf(MsgType::ListComponentsReply, std::move(body));
}

std::vector<std::uint8_t> encodeError(const WireError& msg) {
  Encoder body;
  body.u32(static_cast<std::uint32_t>(msg.code));
  body.u64(msg.message.size());
  for (char c : msg.message) body.u8(static_cast<std::uint8_t>(c));
  return frameOf(MsgType::Error, std::move(body));
}

std::vector<std::uint8_t> encodeShutdown() {
  return frameOf(MsgType::Shutdown, Encoder{});
}

Message decodeMessage(std::span<const std::uint8_t> frame_bytes) {
  const persist::FrameView view =
      persist::unframe(frame_bytes, kWireMagic, kWireVersion);
  if (view.payload.size() > kMaxFramePayload) {
    throw persist::CorruptDataError("oversized wire frame payload",
                                    /*offset=*/8);
  }
  return decodePayload(view.payload);
}

Message decodePayload(std::span<const std::uint8_t> payload) {
  Decoder d(payload);
  const std::uint8_t raw = d.u8();
  if (raw < static_cast<std::uint8_t>(MsgType::Hello) ||
      raw > static_cast<std::uint8_t>(MsgType::Shutdown)) {
    d.fail("unknown wire message type");
  }
  Message message = decodeBody(static_cast<MsgType>(raw), d);
  if (!d.done()) d.fail("trailing bytes after wire message");
  return message;
}

}  // namespace fchain::runtime::wire
