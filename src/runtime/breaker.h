// Per-endpoint circuit breaker for watchdog trips.
//
// Health tracking (health.h) demotes endpoints that return failures — cheap
// signals the transport hands back quickly. A watchdog trip is categorically
// worse: the endpoint consumed the *entire* wall-time allowance and a
// sacrificial thread (watchdog.h). Retrying such an endpoint costs the full
// timeout every time, so after `trip_after` consecutive trips the breaker
// opens and the master routes the endpoint's components straight to
// degraded-mode coverage (PinpointResult::unanalyzed) without spending any
// wall time on it. Every `probe_after` denials one probe is let through;
// any call that *completes* — even with a failure status, since completing
// quickly is exactly what a hung endpoint cannot do — closes the breaker.
//
// Thread-safety mirrors EndpointHealth: lock-free atomics, plus custom
// copy operations because endpoints live in a vector.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>

namespace fchain::runtime {

class CircuitBreaker {
 public:
  explicit CircuitBreaker(int trip_after = 2, int probe_after = 2)
      : trip_after_(std::max(1, trip_after)),
        probe_after_(std::max(1, probe_after)) {}

  CircuitBreaker(const CircuitBreaker& other)
      : trip_after_(other.trip_after_),
        probe_after_(other.probe_after_),
        consecutive_trips_(other.consecutive_trips_.load(
            std::memory_order_relaxed)),
        open_(other.open_.load(std::memory_order_relaxed)),
        denials_(other.denials_.load(std::memory_order_relaxed)),
        total_trips_(other.total_trips_.load(std::memory_order_relaxed)),
        total_opens_(other.total_opens_.load(std::memory_order_relaxed)) {}

  CircuitBreaker& operator=(const CircuitBreaker& other) {
    trip_after_ = other.trip_after_;
    probe_after_ = other.probe_after_;
    consecutive_trips_.store(
        other.consecutive_trips_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    open_.store(other.open_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    denials_.store(other.denials_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    total_trips_.store(other.total_trips_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    total_opens_.store(other.total_opens_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return *this;
  }

  /// True when the caller may issue a request. While open, every
  /// `probe_after`-th denial lets one probe through instead.
  bool allowRequest() {
    if (!open_.load(std::memory_order_relaxed)) return true;
    const int denied = denials_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (denied >= probe_after_) {
      denials_.store(0, std::memory_order_relaxed);
      return true;  // half-open probe
    }
    return false;
  }

  /// Records a watchdog trip. Returns true when this trip opened the
  /// breaker (for the caller's metrics).
  bool recordTrip() {
    total_trips_.fetch_add(1, std::memory_order_relaxed);
    const int trips =
        consecutive_trips_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (trips >= trip_after_ && !open_.exchange(true,
                                                std::memory_order_relaxed)) {
      denials_.store(0, std::memory_order_relaxed);
      total_opens_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Records that a call completed (any reply status): the endpoint is not
  /// hanging, so the breaker closes.
  void recordCompletion() {
    consecutive_trips_.store(0, std::memory_order_relaxed);
    open_.store(false, std::memory_order_relaxed);
    denials_.store(0, std::memory_order_relaxed);
  }

  bool open() const { return open_.load(std::memory_order_relaxed); }
  std::size_t totalTrips() const {
    return total_trips_.load(std::memory_order_relaxed);
  }
  std::size_t totalOpens() const {
    return total_opens_.load(std::memory_order_relaxed);
  }

 private:
  int trip_after_;
  int probe_after_;
  std::atomic<int> consecutive_trips_{0};
  std::atomic<bool> open_{false};
  std::atomic<int> denials_{0};
  std::atomic<std::size_t> total_trips_{0};
  std::atomic<std::size_t> total_opens_{0};
};

}  // namespace fchain::runtime
