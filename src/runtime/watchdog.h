// Deadline-bounded localization: wall-time watchdog for endpoint calls.
//
// The retry/health machinery (health.h) handles endpoints that *answer
// badly* — drops, timeouts, outages are reply statuses the transport
// returns. It cannot handle an endpoint that simply never returns: a hung
// RPC library, a slave wedged in D-state, a half-dead network connection.
// One such call would freeze the serial localization loop (or park a pool
// worker forever) and blow through any SLO on diagnosis latency.
//
// callWithWallTimeout() bounds that: the call runs on a sacrificial thread
// and the caller waits at most `timeout_ms` of real wall time. On timeout
// the caller walks away with nullopt and the thread is abandoned — it
// finishes (or hangs) on its own and drops its result into a shared block
// kept alive by shared_ptr, never touching the caller again. Crucially the
// per-endpoint mutex must be acquired *inside* the sacrificial thread (the
// master passes a closure that locks first): an abandoned call then wedges
// only that endpoint's serialization, not the coordinator or a pool worker.
//
// Everything here is wall-clock by definition, so it is OFF by default
// (WatchdogConfig zeros) — the deterministic simulated-time paths and the
// golden tests are untouched unless a deployment opts in.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace fchain::runtime {

struct WatchdogConfig {
  /// Wall-time bound on one endpoint call (ms). 0 disables the per-call
  /// watchdog: calls run inline on the caller's thread, exactly the
  /// pre-watchdog behaviour.
  double call_timeout_ms = 0.0;
  /// Wall-time budget for one whole localize() (ms). When exhausted the
  /// master stops issuing endpoint work; the remaining components land in
  /// PinpointResult::unanalyzed (degraded-mode coverage). 0 disables it.
  double localize_deadline_ms = 0.0;
  /// Consecutive watchdog trips on one endpoint before its circuit breaker
  /// opens (see breaker.h).
  int breaker_trip_after = 2;
  /// Denied requests while open before the breaker lets one probe through.
  int breaker_probe_after = 2;

  bool enabled() const {
    return call_timeout_ms > 0.0 || localize_deadline_ms > 0.0;
  }
};

/// Runs `fn` on a sacrificial thread; returns its result, or nullopt when it
/// did not finish within `timeout_ms` wall milliseconds. The abandoned
/// thread keeps the shared result block (and everything `fn` captured by
/// value) alive until it eventually finishes; its late result is discarded.
template <typename Fn>
auto callWithWallTimeout(Fn&& fn, double timeout_ms)
    -> std::optional<decltype(fn())> {
  using R = decltype(fn());
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    std::optional<R> result;
    bool done = false;
  };
  auto shared = std::make_shared<Shared>();
  std::thread([shared, fn = std::forward<Fn>(fn)]() mutable {
    R r = fn();
    std::lock_guard<std::mutex> g(shared->m);
    shared->result = std::move(r);
    shared->done = true;
    shared->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> g(shared->m);
  if (!shared->cv.wait_for(g,
                           std::chrono::duration<double, std::milli>(
                               timeout_ms),
                           [&] { return shared->done; })) {
    return std::nullopt;
  }
  return std::move(shared->result);
}

}  // namespace fchain::runtime
