// Test/chaos decorator: an endpoint that hangs instead of failing.
//
// FlakyEndpoint (flaky_endpoint.h) models a transport that *answers* badly;
// this models the failure mode the watchdog exists for — a call that never
// returns. While hung(), every request parks on a condition variable until
// release(); the caller (a watchdog sacrificial thread in real use) is stuck
// for exactly that long. inFlight() lets tests drain abandoned calls before
// tearing down: release() then wait for inFlight() == 0. The count covers
// the *whole* decorated call — a released thread is still in flight while it
// executes the inner endpoint's work, so a drained endpoint's slave is safe
// to destroy (counting only the parked window would let teardown race the
// abandoned thread's analysis: a use-after-free).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "runtime/endpoint.h"

namespace fchain::runtime {

class HungEndpoint final : public SlaveEndpoint {
 public:
  explicit HungEndpoint(std::shared_ptr<SlaveEndpoint> inner,
                        bool start_hung = false)
      : inner_(std::move(inner)), hung_(start_hung) {}

  /// Subsequent (and currently arriving) calls block until release().
  void hang() {
    std::lock_guard<std::mutex> g(m_);
    hung_ = true;
  }

  /// Unblocks every parked call; new calls pass straight through.
  void release() {
    {
      std::lock_guard<std::mutex> g(m_);
      hung_ = false;
    }
    cv_.notify_all();
  }

  /// Unblocks every parked call as if the peer died mid-send: each one
  /// returns a Dropped reply (the torn half-frame a real socket reports)
  /// instead of reaching the inner endpoint — the partial-frame-delivery
  /// failure mode, same retryable taxonomy as SocketEndpoint's torn-frame
  /// handling. Calls arriving *after* this pass straight through: only the
  /// in-flight replies were cut off.
  void releaseWithTornReply() {
    {
      std::lock_guard<std::mutex> g(m_);
      hung_ = false;
      if (parked_ > 0) torn_release_ = true;
    }
    cv_.notify_all();
  }

  /// Calls abandoned by releaseWithTornReply().
  std::size_t tornReplies() const {
    std::lock_guard<std::mutex> g(m_);
    return torn_replies_;
  }

  /// Calls currently inside the endpoint — parked in the hang or executing
  /// the inner call (teardown drain for tests, see the header comment).
  int inFlight() const {
    std::lock_guard<std::mutex> g(m_);
    return in_flight_;
  }

  HostId host() const override { return inner_->host(); }

  ComponentListReply listComponents() override {
    const InFlightGuard guard(*this);
    if (!maybeBlock()) return {EndpointStatus::Dropped, {}};
    return inner_->listComponents();
  }

  AnalyzeReply analyze(const AnalyzeRequest& request) override {
    const InFlightGuard guard(*this);
    if (!maybeBlock()) {
      AnalyzeReply reply;
      reply.status = EndpointStatus::Dropped;
      return reply;
    }
    return inner_->analyze(request);
  }

  AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) override {
    const InFlightGuard guard(*this);
    if (!maybeBlock()) return {EndpointStatus::Dropped, {}, 0.0};
    return inner_->analyzeBatch(request);
  }

  IngestReply ingest(const IngestRequest& request) override {
    const InFlightGuard guard(*this);
    if (!maybeBlock()) return {EndpointStatus::Dropped, 0.0};
    return inner_->ingest(request);
  }

 private:
  /// Scopes in_flight_ over the whole decorated call, inner work included.
  struct InFlightGuard {
    explicit InFlightGuard(HungEndpoint& endpoint) : endpoint_(endpoint) {
      std::lock_guard<std::mutex> g(endpoint_.m_);
      ++endpoint_.in_flight_;
    }
    ~InFlightGuard() {
      std::lock_guard<std::mutex> g(endpoint_.m_);
      --endpoint_.in_flight_;
    }
    InFlightGuard(const InFlightGuard&) = delete;
    InFlightGuard& operator=(const InFlightGuard&) = delete;
    HungEndpoint& endpoint_;
  };

  /// False: the call was parked and then abandoned with a torn reply — the
  /// caller must return Dropped without touching the inner endpoint.
  bool maybeBlock() {
    std::unique_lock<std::mutex> g(m_);
    if (!hung_) return true;
    ++parked_;
    cv_.wait(g, [&] { return !hung_; });
    --parked_;
    if (torn_release_) {
      ++torn_replies_;
      if (parked_ == 0) torn_release_ = false;
      return false;
    }
    return true;
  }

  std::shared_ptr<SlaveEndpoint> inner_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool hung_ = false;
  bool torn_release_ = false;
  int in_flight_ = 0;
  int parked_ = 0;  ///< calls currently waiting in the hang window
  std::size_t torn_replies_ = 0;
};

}  // namespace fchain::runtime
