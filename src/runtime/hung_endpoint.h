// Test/chaos decorator: an endpoint that hangs instead of failing.
//
// FlakyEndpoint (flaky_endpoint.h) models a transport that *answers* badly;
// this models the failure mode the watchdog exists for — a call that never
// returns. While hung(), every request parks on a condition variable until
// release(); the caller (a watchdog sacrificial thread in real use) is stuck
// for exactly that long. inFlight() lets tests drain abandoned calls before
// tearing down: release() then wait for inFlight() == 0.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "runtime/endpoint.h"

namespace fchain::runtime {

class HungEndpoint final : public SlaveEndpoint {
 public:
  explicit HungEndpoint(std::shared_ptr<SlaveEndpoint> inner,
                        bool start_hung = false)
      : inner_(std::move(inner)), hung_(start_hung) {}

  /// Subsequent (and currently arriving) calls block until release().
  void hang() {
    std::lock_guard<std::mutex> g(m_);
    hung_ = true;
  }

  /// Unblocks every parked call; new calls pass straight through.
  void release() {
    {
      std::lock_guard<std::mutex> g(m_);
      hung_ = false;
    }
    cv_.notify_all();
  }

  /// Calls currently parked inside the hang (teardown drain for tests).
  int inFlight() const {
    std::lock_guard<std::mutex> g(m_);
    return in_flight_;
  }

  HostId host() const override { return inner_->host(); }

  ComponentListReply listComponents() override {
    maybeBlock();
    return inner_->listComponents();
  }

  AnalyzeReply analyze(const AnalyzeRequest& request) override {
    maybeBlock();
    return inner_->analyze(request);
  }

  AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) override {
    maybeBlock();
    return inner_->analyzeBatch(request);
  }

 private:
  void maybeBlock() {
    std::unique_lock<std::mutex> g(m_);
    if (!hung_) return;
    ++in_flight_;
    cv_.wait(g, [&] { return !hung_; });
    --in_flight_;
  }

  std::shared_ptr<SlaveEndpoint> inner_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  bool hung_ = false;
  int in_flight_ = 0;
};

}  // namespace fchain::runtime
