// Per-endpoint health tracking and retry policy for the FChain master.
//
// The master treats each slave as healthy until requests start failing:
// consecutive failures demote it to degraded and then to down (presumed
// dead — probed with a single attempt instead of the full retry budget so a
// fleet-wide blackout cannot stall localization). One success fully
// restores the endpoint: FChain's analysis requests are idempotent reads,
// so there is no reason to distrust a slave that just answered.
//
// Retries use capped exponential backoff with deterministic jitter
// (seeded, no wall clock) so reproducibility survives the retry path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/rng.h"

namespace fchain::runtime {

enum class HealthState : std::uint8_t {
  Healthy,   ///< answering normally
  Degraded,  ///< recent consecutive failures; still tried with retries
  Down,      ///< presumed dead; probed with a single attempt per localize
};

inline std::string_view healthStateName(HealthState state) {
  switch (state) {
    case HealthState::Healthy: return "healthy";
    case HealthState::Degraded: return "degraded";
    case HealthState::Down: return "down";
  }
  return "unknown";
}

/// Master-side request policy: attempts per analysis request plus the
/// backoff schedule between them.
struct RetryPolicy {
  int max_attempts = 3;             ///< total tries per request (>= 1)
  double request_deadline_ms = 200.0;  ///< per-request deadline (0 = none)
  double base_backoff_ms = 50.0;    ///< delay before the first retry
  double backoff_multiplier = 2.0;  ///< growth per further retry
  double max_backoff_ms = 1000.0;   ///< cap on any single delay
  double jitter_fraction = 0.2;     ///< uniform +-fraction around the delay
  /// Consecutive failures before an endpoint is considered degraded / down.
  int degraded_after = 1;
  int down_after = 3;
};

/// Backoff delay before retry `attempt` (0-based: the delay after the first
/// failure is attempt 0). Deterministic in (policy, attempt, salt).
inline double retryDelayMs(const RetryPolicy& policy, int attempt,
                           std::uint64_t salt) {
  double delay = policy.base_backoff_ms;
  for (int i = 0; i < attempt; ++i) delay *= policy.backoff_multiplier;
  delay = std::min(delay, policy.max_backoff_ms);
  if (policy.jitter_fraction > 0.0) {
    Rng rng(mixSeed(0x6a177e12u, salt, static_cast<std::uint64_t>(attempt)));
    delay *= rng.uniform(1.0 - policy.jitter_fraction,
                         1.0 + policy.jitter_fraction);
  }
  return std::max(0.0, delay);
}

/// Consecutive-failure health tracker for one endpoint. Thread-safe: the
/// parallel localization engine records outcomes from worker threads while
/// endpointHealth() may be read from the coordinator, so the counters are
/// atomics. (Per-endpoint request *ordering* is enforced by the master's
/// per-endpoint mutex, not here.)
class EndpointHealth {
 public:
  EndpointHealth(int degraded_after = 1, int down_after = 3)
      : degraded_after_(std::max(1, degraded_after)),
        down_after_(std::max(degraded_after_, down_after)) {}

  EndpointHealth(const EndpointHealth& other)
      : degraded_after_(other.degraded_after_),
        down_after_(other.down_after_),
        consecutive_failures_(other.consecutiveFailures()),
        total_failures_(other.totalFailures()),
        total_successes_(other.totalSuccesses()) {}

  EndpointHealth& operator=(const EndpointHealth& other) {
    degraded_after_ = other.degraded_after_;
    down_after_ = other.down_after_;
    consecutive_failures_.store(other.consecutiveFailures(),
                                std::memory_order_relaxed);
    total_failures_.store(other.totalFailures(), std::memory_order_relaxed);
    total_successes_.store(other.totalSuccesses(), std::memory_order_relaxed);
    return *this;
  }

  void recordSuccess() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    total_successes_.fetch_add(1, std::memory_order_relaxed);
  }

  void recordFailure() {
    consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
    total_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  HealthState state() const {
    const int failures = consecutiveFailures();
    if (failures >= down_after_) return HealthState::Down;
    if (failures >= degraded_after_) return HealthState::Degraded;
    return HealthState::Healthy;
  }

  int consecutiveFailures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  std::size_t totalFailures() const {
    return total_failures_.load(std::memory_order_relaxed);
  }
  std::size_t totalSuccesses() const {
    return total_successes_.load(std::memory_order_relaxed);
  }

 private:
  int degraded_after_;
  int down_after_;
  std::atomic<int> consecutive_failures_{0};
  std::atomic<std::size_t> total_failures_{0};
  std::atomic<std::size_t> total_successes_{0};
};

}  // namespace fchain::runtime
