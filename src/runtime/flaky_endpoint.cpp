#include "runtime/flaky_endpoint.h"

#include <cmath>
#include <limits>

namespace fchain::runtime {

FlakyEndpoint::FlakyEndpoint(std::shared_ptr<SlaveEndpoint> inner,
                             FlakyConfig config)
    : inner_(std::move(inner)), config_(std::move(config)) {}

EndpointStatus FlakyEndpoint::roll(std::uint64_t index, TimeSec now,
                                   double deadline_ms,
                                   double* latency_ms) const {
  if (down_ || index < config_.fail_first) return EndpointStatus::Unavailable;
  for (const auto& [from, to] : config_.outage_windows) {
    if (now >= from && now < to) return EndpointStatus::Unavailable;
  }
  Rng rng(mixSeed(config_.seed, 0x41afedull, index));
  if (rng.chance(config_.drop_probability)) return EndpointStatus::Dropped;
  if (rng.chance(config_.timeout_probability)) return EndpointStatus::Timeout;
  // Guarded so the zero-probability default consumes no draw: existing
  // seeded runs stay bit-identical with the torn-reply knob off.
  if (config_.torn_reply_probability > 0.0 &&
      rng.chance(config_.torn_reply_probability)) {
    ++torn_replies_;
    return EndpointStatus::Dropped;
  }
  double latency = config_.latency_mean_ms;
  if (config_.latency_jitter_ms > 0.0) {
    latency = std::max(
        0.0, latency + rng.uniform(-config_.latency_jitter_ms,
                                   config_.latency_jitter_ms));
  }
  if (latency_ms != nullptr) *latency_ms = latency;
  if (deadline_ms > 0.0 && latency > deadline_ms) {
    return EndpointStatus::Timeout;
  }
  return EndpointStatus::Ok;
}

ComponentListReply FlakyEndpoint::listComponents() {
  const std::uint64_t index = requests_++;
  // Discovery happens before any incident, so no sim-time outage applies;
  // drops/cold-start failures still do.
  const EndpointStatus status =
      roll(index, std::numeric_limits<TimeSec>::min(), 0.0, nullptr);
  if (status != EndpointStatus::Ok) return {status, {}};
  return inner_->listComponents();
}

AnalyzeReply FlakyEndpoint::analyze(const AnalyzeRequest& request) {
  const std::uint64_t index = requests_++;
  double latency = 0.0;
  const EndpointStatus status =
      roll(index, request.violation_time, request.deadline_ms, &latency);
  if (status != EndpointStatus::Ok) {
    AnalyzeReply reply;
    reply.status = status;
    return reply;
  }
  AnalyzeReply reply = inner_->analyze(request);
  reply.latency_ms += latency;
  return reply;
}

AnalyzeBatchReply FlakyEndpoint::analyzeBatch(
    const AnalyzeBatchRequest& request) {
  const std::uint64_t index = requests_++;
  double latency = 0.0;
  const EndpointStatus status =
      roll(index, request.violation_time, request.deadline_ms, &latency);
  if (status != EndpointStatus::Ok) {
    AnalyzeBatchReply reply;
    reply.status = status;
    return reply;
  }
  AnalyzeBatchReply reply = inner_->analyzeBatch(request);
  reply.latency_ms += latency;
  return reply;
}

IngestReply FlakyEndpoint::ingest(const IngestRequest& request) {
  const std::uint64_t index = requests_++;
  double latency = 0.0;
  // The sample's own timestamp is the transport's "now": outage windows
  // swallow the seconds they cover.
  const EndpointStatus status =
      roll(index, request.t, request.deadline_ms, &latency);
  if (status != EndpointStatus::Ok) return {status, 0.0};
  IngestReply reply = inner_->ingest(request);
  reply.latency_ms += latency;
  return reply;
}

}  // namespace fchain::runtime
