// Fault-injecting decorator around any SlaveEndpoint.
//
// Reproduces the monitoring-plane failure modes the telemetry-fault
// tolerance layer must survive: lost requests, slow replies that blow the
// deadline, the first-N-requests cold-start failures of a restarting agent,
// scheduled slave blackout windows, and a hard down switch. All randomness
// is seeded per request counter, so a run is exactly reproducible.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "runtime/endpoint.h"

namespace fchain::runtime {

struct FlakyConfig {
  /// Probability that a request (or its response) vanishes -> Dropped.
  double drop_probability = 0.0;
  /// Probability that the slave stalls past any deadline -> Timeout.
  double timeout_probability = 0.0;
  /// Probability that the reply is cut off mid-frame — the peer (or its
  /// network path) died while sending, the partial-frame signature a real
  /// socket reports as a torn frame -> Dropped (retryable; same taxonomy as
  /// SocketEndpoint's torn-frame handling). Distinguished from
  /// drop_probability in bookkeeping only: tornReplies() counts these.
  double torn_reply_probability = 0.0;
  /// Simulated service latency; a reply whose drawn latency exceeds the
  /// request deadline is reported as a Timeout by the endpoint itself.
  double latency_mean_ms = 5.0;
  double latency_jitter_ms = 0.0;
  /// Fail the first N requests outright (agent cold start) -> Unavailable.
  std::size_t fail_first = 0;
  /// Blackout windows [from, to) in simulation seconds, matched against the
  /// request's violation_time (the master's notion of "now") -> Unavailable.
  std::vector<std::pair<TimeSec, TimeSec>> outage_windows;
  std::uint64_t seed = 0;
};

class FlakyEndpoint final : public SlaveEndpoint {
 public:
  FlakyEndpoint(std::shared_ptr<SlaveEndpoint> inner, FlakyConfig config);

  HostId host() const override { return inner_->host(); }
  ComponentListReply listComponents() override;
  AnalyzeReply analyze(const AnalyzeRequest& request) override;
  /// A batch is one request on the wire: one fate roll (one request-counter
  /// tick) covers every component in it. Callers must serialize requests to
  /// one FlakyEndpoint (the master's per-endpoint mutex does); the counter
  /// itself is not atomic.
  AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) override;
  /// One fate roll per sample; outage windows match against the sample's own
  /// timestamp (streaming has no violation_time yet).
  IngestReply ingest(const IngestRequest& request) override;

  /// Hard kill switch (e.g. driven by sim::TelemetryFaultInjector's slave
  /// outage windows): while set, every request fails Unavailable.
  void setDown(bool down) { down_ = down; }
  bool isDown() const { return down_; }

  std::size_t requestCount() const { return requests_; }
  /// Requests whose reply was truncated mid-frame (torn_reply_probability).
  std::size_t tornReplies() const { return torn_replies_; }

 private:
  /// Drops/timeouts/outages for the request numbered `index` at sim time
  /// `now`; Ok (with a drawn latency) when the request survives.
  EndpointStatus roll(std::uint64_t index, TimeSec now, double deadline_ms,
                      double* latency_ms) const;

  std::shared_ptr<SlaveEndpoint> inner_;
  FlakyConfig config_;
  bool down_ = false;
  std::uint64_t requests_ = 0;
  /// Counted inside the (logically const) fate roll.
  mutable std::size_t torn_replies_ = 0;
};

}  // namespace fchain::runtime
