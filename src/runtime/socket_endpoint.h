// SlaveEndpoint over a real TCP / Unix-domain socket.
//
// The client half of the wire protocol (runtime/wire.h): connects lazily,
// performs the versioned handshake, and maps every transport event into the
// EndpointStatus taxonomy the master already handles —
//
//   connect refused / retries exhausted          -> Unavailable
//   version-mismatch / identity-mismatch reject  -> Unavailable
//   deadline expired (connect, send, or recv)    -> Timeout
//   torn frame (peer died mid-reply), CRC damage,
//   peer closed mid-RPC                          -> Dropped (retryable)
//
// so the PR-4 retry / health / watchdog / circuit-breaker paths drive real
// I/O errors without modification. Reconnects are bounded per call and
// paced by the existing deterministic backoff (runtime/health.h,
// retryDelayMs — here the delay is actually slept, since a real transport
// has real time). After any non-Ok event the connection is closed: a byte
// stream that lost framing cannot resync mid-flight.
//
// The handshake pins slave identity: the first successful HelloReply fixes
// the expected identity hash, and a later reconnect reaching a *different*
// slave (host or component claims changed) is refused — the master's
// routing table must never silently migrate to a stranger. A restarted or
// checkpoint-recovered slave serving the same manifest hashes identically
// and re-registers transparently.
//
// Metrics (registered in the configured obs registry):
//   runtime.socket.connects      successful connects + handshakes
//   runtime.socket.reconnects    successful connects after the first
//   runtime.socket.frames_tx     frames written (handshake included)
//   runtime.socket.frames_rx     complete frames read
//   runtime.socket.crc_errors    frames rejected by CRC / header / decode
//   runtime.socket.torn_frames   connections lost mid-frame
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "runtime/endpoint.h"
#include "runtime/health.h"
#include "runtime/socket.h"
#include "runtime/wire.h"

namespace fchain::runtime {

struct SocketEndpointConfig {
  SocketAddress address;
  /// Deadline for one connect attempt.
  double connect_timeout_ms = 2000.0;
  /// Per-operation I/O deadline used when the request carries none.
  double io_timeout_ms = 5000.0;
  /// Bounded reconnect: attempts per call, paced by the deterministic
  /// backoff schedule (only max_attempts / base_backoff_ms / multiplier /
  /// max_backoff_ms / jitter_fraction are read here).
  RetryPolicy reconnect{.max_attempts = 3,
                        .request_deadline_ms = 0.0,
                        .base_backoff_ms = 10.0,
                        .backoff_multiplier = 2.0,
                        .max_backoff_ms = 200.0,
                        .jitter_fraction = 0.2};
  /// Salt for the backoff jitter stream (per-endpoint, reproducible).
  std::uint64_t backoff_seed = 0;
  /// Metric registry; nullptr uses the process-global obs::metrics().
  obs::MetricRegistry* registry = nullptr;
};

class SocketEndpoint final : public SlaveEndpoint {
 public:
  explicit SocketEndpoint(SocketEndpointConfig config);

  /// Slave id from the last successful handshake (0 before the first).
  HostId host() const override;
  ComponentListReply listComponents() override;
  AnalyzeReply analyze(const AnalyzeRequest& request) override;
  AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) override;
  IngestReply ingest(const IngestRequest& request) override;

  /// Identity hash from the last successful handshake (0 before the first).
  std::uint64_t identity() const;
  /// Component claims from the last successful handshake.
  std::vector<ComponentId> handshakeComponents() const;
  bool connected() const;
  /// Closes the connection; the next request reconnects and re-handshakes.
  void disconnect();

  const SocketAddress& address() const { return config_.address; }

 private:
  /// Connects + handshakes if needed; false leaves status() = Unavailable.
  bool ensureConnectedLocked();
  /// One frame out, one frame in. On success `reply` holds the decoded
  /// message; on failure the connection is closed and the status says why.
  EndpointStatus roundTripLocked(const std::vector<std::uint8_t>& frame,
                                 double deadline_ms, wire::Message& reply);

  SocketEndpointConfig config_;
  mutable std::mutex mutex_;
  Socket conn_;
  bool ever_connected_ = false;
  /// Set on a version-mismatch rejection: the peer will never speak our
  /// protocol, so further calls fail fast instead of reconnect-storming.
  bool version_rejected_ = false;
  HostId host_ = 0;
  std::uint64_t identity_ = 0;
  std::vector<ComponentId> components_;
  std::uint64_t request_counter_ = 0;

  obs::Counter& metric_connects_;
  obs::Counter& metric_reconnects_;
  obs::Counter& metric_frames_tx_;
  obs::Counter& metric_frames_rx_;
  obs::Counter& metric_crc_errors_;
  obs::Counter& metric_torn_frames_;
};

}  // namespace fchain::runtime
