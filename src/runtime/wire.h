// Framed wire protocol for the out-of-process master <-> slave transport.
//
// Every message travels as one persist-codec frame (persist/codec.h):
//
//   magic "FCWR" u32 | version u32 | payload length u64 | payload crc32 u32
//   | payload bytes
//
// so the transport inherits the crash-tolerance layer's guarantees verbatim:
// a torn or bit-flipped frame is rejected with the byte offset of the
// damage (persist::CorruptDataError), never crashed on, never read as
// garbage. The payload is a u8 message tag followed by little-endian codec
// fields; doubles are bit-cast, so an AnalyzeBatchReply decodes to the
// *exact* finding bits the slave computed — the multi-process identity
// guarantee (byte-identical PinpointResults over sockets) depends on that.
//
// Protocol flow (see docs/ARCHITECTURE.md "Multi-process deployment"):
//
//   client                               server (fchain_slave)
//   ------ connect ---------------------------------------------
//   Hello{version}              ->
//                               <-       HelloReply{version, host,
//                                          identity_hash, components}
//   ------ steady state ----------------------------------------
//   AnalyzeBatchRequest         ->
//                               <-       AnalyzeBatchReply
//   IngestRequest               ->
//                               <-       IngestReply
//   ListComponentsRequest       ->
//                               <-       ListComponentsReply
//   ------ errors ----------------------------------------------
//                               <-       Error{code, message}
//
// The handshake doubles as component-claim registration: HelloReply carries
// the slave's identity hash (a deterministic function of host id + sorted
// component claims, see slaveIdentityHash), so a reconnect to a restarted —
// or checkpoint-recovered — slave re-registers idempotently, while a second
// live process claiming the same slave id with *different* components is
// rejected as split-brain (runtime/slave_registry.h).
//
// Layering note: like endpoint.h, this header references fchain_core structs
// (core::ComponentFinding) but only as plain data — wire.cpp compiles into
// fchain_runtime and links only fchain_persist + fchain_common.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "runtime/endpoint.h"

namespace fchain::runtime::wire {

/// "FCWR" little-endian, sibling of persist's "FCSN"/"FCJL"/"FCIJ" magics.
inline constexpr std::uint32_t kWireMagic = 0x52574346;
inline constexpr std::uint32_t kWireVersion = 1;

/// Upper bound on any frame payload. A peer announcing more is lying or
/// corrupt (the largest legitimate message — a batch reply with findings for
/// every component of a large app — is orders of magnitude smaller), so the
/// frame is rejected before any allocation happens.
inline constexpr std::uint64_t kMaxFramePayload = 16ull << 20;

/// First payload byte of every frame.
enum class MsgType : std::uint8_t {
  Hello = 1,
  HelloReply = 2,
  AnalyzeBatchRequest = 3,
  AnalyzeBatchReply = 4,
  IngestRequest = 5,
  IngestReply = 6,
  ListComponentsRequest = 7,
  ListComponentsReply = 8,
  Error = 9,
  Shutdown = 10,
};

/// Client -> server connection opener.
struct Hello {
  std::uint32_t protocol_version = kWireVersion;
};

/// Server -> client handshake reply: who this slave is and what it claims.
struct HelloReply {
  std::uint32_t protocol_version = kWireVersion;
  HostId host = 0;
  /// slaveIdentityHash(host, components): stable across restart + checkpoint
  /// recovery, distinct across different component claims.
  std::uint64_t identity_hash = 0;
  std::vector<ComponentId> components;
};

enum class ErrorCode : std::uint32_t {
  VersionMismatch = 1,  ///< peer speaks a protocol version we do not
  BadRequest = 2,       ///< frame decoded but the message was malformed
  ShuttingDown = 3,     ///< server is draining; do not retry here
};

struct WireError {
  ErrorCode code = ErrorCode::BadRequest;
  std::string message;
};

struct ListComponentsRequest {};
struct Shutdown {};

using Message =
    std::variant<Hello, HelloReply, AnalyzeBatchRequest, AnalyzeBatchReply,
                 IngestRequest, IngestReply, ListComponentsRequest,
                 ComponentListReply, WireError, Shutdown>;

/// Deterministic identity of a slave's claim: FNV-1a over the host id and
/// the *sorted* component list. A restarted (or recovered) slave serving the
/// same manifest hashes identically — reconnect re-registers idempotently —
/// while any difference in the claim set yields a different hash, which the
/// split-brain guard rejects.
std::uint64_t slaveIdentityHash(HostId host,
                                std::vector<ComponentId> components);

// --- Encoding (returns a complete frame, ready to send) --------------------

std::vector<std::uint8_t> encodeHello(const Hello& msg);
std::vector<std::uint8_t> encodeHelloReply(const HelloReply& msg);
std::vector<std::uint8_t> encodeAnalyzeBatchRequest(
    const AnalyzeBatchRequest& msg);
std::vector<std::uint8_t> encodeAnalyzeBatchReply(const AnalyzeBatchReply& msg);
std::vector<std::uint8_t> encodeIngestRequest(const IngestRequest& msg);
std::vector<std::uint8_t> encodeIngestReply(const IngestReply& msg);
std::vector<std::uint8_t> encodeListComponentsRequest();
std::vector<std::uint8_t> encodeListComponentsReply(
    const ComponentListReply& msg);
std::vector<std::uint8_t> encodeError(const WireError& msg);
std::vector<std::uint8_t> encodeShutdown();

// --- Decoding --------------------------------------------------------------

/// Decodes a complete frame (header + payload): magic / version / length /
/// CRC validation via persist::unframe, an oversized-payload bound, then
/// the tagged message body with every enum range-checked and trailing bytes
/// rejected. Throws persist::CorruptDataError (carrying the byte offset of
/// the damage) on any violation.
Message decodeMessage(std::span<const std::uint8_t> frame_bytes);

/// Decodes an already-unframed payload (the tag byte onward). Same
/// validation and error contract as decodeMessage; offsets are relative to
/// the payload.
Message decodePayload(std::span<const std::uint8_t> payload);

}  // namespace fchain::runtime::wire
