// Fixed-size worker pool for the parallel localization engine.
//
// FChainMaster fans analyze batches out across slave endpoints, and
// FChainSlave fans per-VM change-point analysis out across cores. Both use
// this pool: a fixed set of threads spawned once, fed through a shared task
// queue. Determinism is preserved by construction — tasks write into
// pre-allocated, disjoint result slots and the coordinator merges them in a
// fixed order after run() returns, so the schedule can never reorder
// results.
//
// The pool knows nothing about FChain types (it lives below the core layer,
// linking only the standard library), so both fchain_core and future
// subsystems can share it.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace fchain::runtime {

/// Fixed-size thread pool. Threads are spawned in the constructor and
/// joined in the destructor; run() executes a batch of independent tasks to
/// completion. Safe to call run() from multiple coordinator threads
/// concurrently (each waits until the queue fully drains).
class WorkerPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threadCount() const { return static_cast<int>(workers_.size()); }

  /// Runs every task to completion and returns. Tasks must not themselves
  /// call run() on the same pool (the worker would deadlock waiting for
  /// itself). If a task throws, the first exception is rethrown here after
  /// all tasks of the batch have finished.
  void run(std::vector<std::function<void()>> tasks);

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;  ///< queued + currently-running tasks
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fchain::runtime
