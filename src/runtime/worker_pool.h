// Fixed-size worker pool for the parallel localization engine.
//
// FChainMaster fans analyze batches out across slave endpoints, and
// FChainSlave fans per-VM change-point analysis out across cores. Both use
// this pool: a fixed set of threads spawned once, fed through a shared task
// queue. Determinism is preserved by construction — tasks write into
// pre-allocated, disjoint result slots and the coordinator merges them in a
// fixed order after run() returns, so the schedule can never reorder
// results.
//
// The pool knows nothing about FChain types (it lives below the core layer,
// linking only the standard library), so both fchain_core and future
// subsystems can share it.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace fchain::runtime {

/// Fixed-size thread pool. Threads are spawned in the constructor and
/// joined in the destructor; run() executes a batch of independent tasks to
/// completion. Safe to call run() from multiple coordinator threads
/// concurrently (each waits until the queue fully drains).
class WorkerPool {
 public:
  /// Spawns max(1, threads) workers.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threadCount() const { return static_cast<int>(workers_.size()); }

  /// Queued + currently-running tasks, readable from any thread without
  /// taking the queue lock. 0 whenever no run() is in flight — the
  /// queue-depth gauge the master records must drain back to zero after
  /// every localization.
  std::size_t pendingCount() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Runs every task to completion and returns. Tasks must not themselves
  /// call run() on the same pool (the worker would deadlock waiting for
  /// itself). If a task throws, the first exception is rethrown here after
  /// all tasks of the batch have finished. When the global tracer is
  /// enabled, each task is bracketed by a "pool.task" span and its time in
  /// the queue recorded as "pool.queue_wait".
  void run(std::vector<std::function<void()>> tasks);

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  /// Queued + currently-running tasks. Mutated only under mutex_ (the
  /// condition variables need that anyway); atomic so pendingCount() can
  /// observe it lock-free.
  std::atomic<std::size_t> pending_{0};
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fchain::runtime
