// Master-to-slave transport abstraction (telemetry-fault tolerance layer).
//
// The seed reproduction called FChainSlave methods through raw in-process
// pointers, which bakes the assumption of a perfectly reliable monitoring
// plane into the master. Real clouds lose requests, time out, and take whole
// slaves offline; this module inserts an RPC-shaped seam between
// FChainMaster and FChainSlave so those failure modes become first-class:
//
//   FChainMaster ── SlaveEndpoint (interface) ──┬── LocalEndpoint  (in-process)
//                                               └── FlakyEndpoint  (decorator
//                                                    injecting drops/timeouts/
//                                                    outages; flaky_endpoint.h)
//
// Every request carries a deadline; every reply carries an explicit status
// so the master can retry, back off, and track per-slave health
// (runtime/health.h) instead of silently pretending full coverage.
//
// Layering note: these headers see fchain_core types (ComponentFinding,
// FChainSlave), but the link-level dependency points the other way —
// fchain_core links fchain_runtime, and everything here that touches core
// symbols is header-only so it compiles into its including library.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "fchain/slave.h"

namespace fchain::runtime {

/// Outcome of one request to a slave endpoint.
enum class EndpointStatus : std::uint8_t {
  Ok,           ///< reply received within the deadline
  Timeout,      ///< the slave answered too slowly (deadline exceeded)
  Dropped,      ///< request or response lost in transit
  Unavailable,  ///< slave process down / unreachable (fast failure)
};

inline std::string_view endpointStatusName(EndpointStatus status) {
  switch (status) {
    case EndpointStatus::Ok: return "ok";
    case EndpointStatus::Timeout: return "timeout";
    case EndpointStatus::Dropped: return "dropped";
    case EndpointStatus::Unavailable: return "unavailable";
  }
  return "unknown";
}

/// Master RPC: analyze one component's look-back window before
/// `violation_time`.
struct AnalyzeRequest {
  ComponentId component = kNoComponent;
  TimeSec violation_time = 0;
  /// Per-request deadline in (simulated) milliseconds; 0 disables it.
  double deadline_ms = 0.0;
};

struct AnalyzeReply {
  EndpointStatus status = EndpointStatus::Unavailable;
  /// Present iff status == Ok *and* the component shows an abnormal change.
  std::optional<core::ComponentFinding> finding;
  /// Simulated service latency of this request.
  double latency_ms = 0.0;
};

/// Batched master RPC: one request per *slave* covering every component it
/// monitors for this localization, instead of one request per component.
/// This is what the parallel localization engine fans out — a slave hosting
/// k VMs costs one transport round-trip, not k.
struct AnalyzeBatchRequest {
  std::vector<ComponentId> components;
  TimeSec violation_time = 0;
  /// Per-request deadline in (simulated) milliseconds; 0 disables it.
  double deadline_ms = 0.0;
};

/// Batch replies are all-or-nothing at the transport level: the batch is a
/// single request, so a drop/timeout/outage loses every component in it
/// (status != Ok, findings empty) and the master retries the batch.
struct AnalyzeBatchReply {
  EndpointStatus status = EndpointStatus::Unavailable;
  /// Aligned with AnalyzeBatchRequest::components; a slot is nullopt when
  /// the component is unknown to the slave or shows no abnormal change.
  std::vector<std::optional<core::ComponentFinding>> findings;
  /// Simulated service latency of this request.
  double latency_ms = 0.0;
};

/// Reply to the component-discovery RPC issued at registration time.
struct ComponentListReply {
  EndpointStatus status = EndpointStatus::Unavailable;
  std::vector<ComponentId> components;
};

/// Streaming-ingest RPC (online monitoring runtime): one second of samples
/// for one component, pushed master-side -> slave-side. Unlike the analysis
/// RPCs this is fire-and-forget with no retries — a lost sample is repaired
/// by the slave's gap-fill on the next arrival, and re-sending a stale
/// second would only hit the duplicate path.
struct IngestRequest {
  ComponentId component = kNoComponent;
  TimeSec t = 0;
  std::array<double, kMetricCount> sample{};
  /// Per-request deadline in (simulated) milliseconds; 0 disables it.
  double deadline_ms = 0.0;
};

struct IngestReply {
  EndpointStatus status = EndpointStatus::Unavailable;
  /// Simulated service latency of this request.
  double latency_ms = 0.0;
};

/// Transport-level handle to one FChain slave. Implementations must be
/// deterministic for reproducible experiments (seeded, no wall clock).
class SlaveEndpoint {
 public:
  virtual ~SlaveEndpoint() = default;

  /// Host the slave runs on (advisory; used for display and outage mapping).
  virtual HostId host() const = 0;

  /// Lists the components this slave monitors.
  virtual ComponentListReply listComponents() = 0;

  /// Runs the abnormal-change analysis for one component.
  virtual AnalyzeReply analyze(const AnalyzeRequest& request) = 0;

  /// Runs the abnormal-change analysis for a batch of components in one
  /// round-trip. The default adapter loops analyze() per component so
  /// transports that predate the batch protocol keep working; real
  /// implementations override it with a genuinely single request
  /// (LocalEndpoint dispatches to FChainSlave::analyzeBatch, FlakyEndpoint
  /// rolls one transport fate for the whole batch).
  virtual AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) {
    AnalyzeBatchReply reply;
    reply.status = EndpointStatus::Ok;
    reply.findings.reserve(request.components.size());
    for (ComponentId id : request.components) {
      AnalyzeRequest single;
      single.component = id;
      single.violation_time = request.violation_time;
      single.deadline_ms = request.deadline_ms;
      AnalyzeReply one = analyze(single);
      if (one.status != EndpointStatus::Ok) {
        return {one.status, {}, reply.latency_ms + one.latency_ms};
      }
      reply.findings.push_back(std::move(one.finding));
      reply.latency_ms += one.latency_ms;
    }
    return reply;
  }

  /// Pushes one second of samples to the slave (online monitoring runtime).
  /// The default rejects the request so analysis-only transports predating
  /// the streaming protocol stay valid implementations.
  virtual IngestReply ingest(const IngestRequest& request) {
    (void)request;
    return {EndpointStatus::Unavailable, 0.0};
  }
};

/// In-process endpoint: wraps a raw FChainSlave pointer and always succeeds
/// with zero latency — the seed reproduction's behaviour, now explicit. The
/// slave must outlive the endpoint.
class LocalEndpoint final : public SlaveEndpoint {
 public:
  explicit LocalEndpoint(core::FChainSlave* slave) : slave_(slave) {}

  HostId host() const override { return slave_->host(); }

  ComponentListReply listComponents() override {
    return {EndpointStatus::Ok, slave_->components()};
  }

  AnalyzeReply analyze(const AnalyzeRequest& request) override {
    AnalyzeReply reply;
    reply.status = EndpointStatus::Ok;
    reply.finding = slave_->analyze(request.component, request.violation_time);
    return reply;
  }

  AnalyzeBatchReply analyzeBatch(const AnalyzeBatchRequest& request) override {
    AnalyzeBatchReply reply;
    reply.status = EndpointStatus::Ok;
    reply.findings =
        slave_->analyzeBatch(request.components, request.violation_time);
    return reply;
  }

  IngestReply ingest(const IngestRequest& request) override {
    slave_->ingestAt(request.component, request.t, request.sample);
    return {EndpointStatus::Ok, 0.0};
  }

  const core::FChainSlave* slave() const { return slave_; }

 private:
  core::FChainSlave* slave_;
};

}  // namespace fchain::runtime
