// Master-side slave-claim registry: the split-brain guard.
//
// Every wire handshake carries the slave's identity hash — a deterministic
// function of its host id and sorted component claims (wire.h,
// slaveIdentityHash). The registry records the first claim per slave id;
// a reconnect presenting the *same* hash (a restarted or
// checkpoint-recovered slave serving its old manifest) re-registers
// idempotently, while a second live process claiming the same slave id with
// a *different* hash is rejected — two processes believing they are the
// same slave but monitoring different components would corrupt the routing
// table and split localization coverage between them.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/types.h"

namespace fchain::runtime {

class SlaveRegistry {
 public:
  enum class Claim {
    Registered,    ///< first claim for this slave id
    Reregistered,  ///< same id, same identity hash: idempotent reconnect
    Rejected,      ///< same id, different identity hash: split-brain
  };

  Claim claim(HostId slave_id, std::uint64_t identity_hash) {
    std::lock_guard<std::mutex> g(mutex_);
    const auto [it, inserted] = claims_.try_emplace(slave_id, identity_hash);
    if (inserted) return Claim::Registered;
    return it->second == identity_hash ? Claim::Reregistered : Claim::Rejected;
  }

  /// Forgets a claim (deliberate decommission — a crash must NOT release:
  /// the restarted slave re-registers under the same hash anyway, and
  /// releasing would let an impostor steal the id while it is down).
  void release(HostId slave_id) {
    std::lock_guard<std::mutex> g(mutex_);
    claims_.erase(slave_id);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mutex_);
    return claims_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<HostId, std::uint64_t> claims_;
};

}  // namespace fchain::runtime
