// SignalScratch: the reusable per-thread arena behind the zero-allocation
// signal hot path.
//
// Every per-VM analysis (smooth → CUSUM+bootstrap → outlier filter → burst
// threshold → tangent rollback) used to allocate dozens of short-lived
// vectors per metric. SignalScratch owns all of those buffers plus the two
// expensive-to-build caches — the bootstrap permutation pool and the FFT
// plans — so that in steady state the signal kernels touch no allocator at
// all: buffers are sized once per thread and reused across metrics, VMs and
// triggers.
//
// Ownership rules (see DESIGN.md "Incremental signal engine"):
//   - One scratch per thread. The kernels never share a scratch across
//     threads; FChainSlave's analysis pool gives each worker its own via
//     thread_local storage.
//   - Each lane (named buffer) has exactly one producer at a time. The
//     kernels document which lanes they clobber; nested helpers use the
//     statsA/statsB lanes, which no kernel passes as input.
//   - Lane contents are invalidated by the next kernel call; callers that
//     need results across calls copy them out (the selector copies nothing:
//     it consumes each lane before the next kernel runs).
//
// The arena counts its own growth: every capacity increase bumps the
// process-wide `signal.scratch.grow_events` counter and the
// `signal.scratch.bytes` gauge in obs::metrics(), which is how the
// allocation-per-sample bench and tests observe "zero steady-state
// allocation" directly.
#pragma once

#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "signal/cusum.h"
#include "signal/fft.h"

namespace fchain::signal {

/// Deterministic bootstrap permutation pool, keyed by segment length.
///
/// The pooled bootstrap (CusumConfig::bootstrap == PooledPermutations) draws
/// its resampling permutations from a stream that depends only on
/// (seed, rounds, segment length) — *not* on how many segments were analyzed
/// before, which is what makes per-segment early exit and cross-thread
/// determinism possible. The pool is a pure cache: entries for lengths up to
/// kMaxPooledLength are kept, longer segments are regenerated into a reused
/// overflow buffer on every call, and both paths produce byte-identical
/// permutations.
class PermutationPool {
 public:
  /// Lengths above this are not retained (the pool would grow without bound
  /// on long look-back windows); they are regenerated into `overflow_`.
  static constexpr std::size_t kMaxPooledLength = 128;

  /// Round-major block of `rounds` permutations of [0, n): entry
  /// r * n + i is the source index of position i in resample round r.
  /// The returned span is valid until the next call.
  std::span<const std::uint32_t> permutations(std::uint64_t seed,
                                              std::size_t rounds,
                                              std::size_t n);

  /// Bytes retained by the cache (for the scratch gauge).
  std::size_t retainedBytes() const;

 private:
  std::uint64_t seed_ = 0;
  std::size_t rounds_ = 0;
  std::map<std::size_t, std::vector<std::uint32_t>> pool_;
  std::vector<std::uint32_t> overflow_;
};

/// Totals for one scratch arena (all thread-local arenas also aggregate into
/// obs::metrics()).
struct ScratchStats {
  std::uint64_t grow_events = 0;  ///< buffer capacity increases
  std::uint64_t bytes = 0;        ///< current retained buffer bytes
};

class SignalScratch {
 public:
  SignalScratch();

  // Named double lanes, each returned resized to n (values unspecified).
  // Lane assignments — one producer at a time:
  //   smoothed   moving-average output / rollback input
  //   shuffle    bootstrap resample buffer (legacy threaded-RNG mode)
  //   burst      burst-signal magnitudes
  //   blockMax   history-error block maxima
  //   diffs      adaptive-smoothing first differences
  //   statsA/B   work buffers for percentileInPlace / medianAbsDeviation;
  //              reserved for the stats helpers, never a kernel input.
  std::vector<double>& smoothed(std::size_t n) { return prep(smoothed_, n); }
  std::vector<double>& shuffle(std::size_t n) { return prep(shuffle_, n); }
  std::vector<double>& burst(std::size_t n) { return prep(burst_, n); }
  std::vector<double>& blockMax(std::size_t n) { return prep(block_max_, n); }
  std::vector<double>& diffs(std::size_t n) { return prep(diffs_, n); }
  std::vector<double>& statsA() { return stats_a_; }
  std::vector<double>& statsB() { return stats_b_; }

  /// Complex spectrum lane for the planned FFT (resized by the kernel).
  std::vector<std::complex<double>>& spectrum() { return spectrum_; }

  /// Change-point lanes; returned cleared, capacity retained.
  std::vector<ChangePoint>& points() { return cleared(points_); }
  std::vector<ChangePoint>& outliers() { return cleared(outliers_); }

  /// Bootstrap permutations (see PermutationPool).
  std::span<const std::uint32_t> permutations(std::uint64_t seed,
                                              std::size_t rounds,
                                              std::size_t n) {
    return pool_.permutations(seed, rounds, n);
  }

  /// Cached FFT plan for size n (power of two).
  const FftPlan& plan(std::size_t n);

  /// Growth accounting for this arena. Steady state means grow_events stops
  /// moving; the throughput bench gates on exactly that.
  ScratchStats stats() const;

  /// Re-measures retained bytes and publishes deltas to obs::metrics().
  /// Called internally after kernels run; cheap (no allocation, a handful
  /// of atomic adds only when something grew).
  void accountGrowth();

 private:
  template <typename T>
  std::vector<T>& prep(std::vector<T>& lane, std::size_t n) {
    lane.resize(n);
    return lane;
  }

  std::uint64_t retainedBytes() const;

  std::vector<ChangePoint>& cleared(std::vector<ChangePoint>& lane) {
    lane.clear();
    return lane;
  }

  std::vector<double> smoothed_;
  std::vector<double> shuffle_;
  std::vector<double> burst_;
  std::vector<double> block_max_;
  std::vector<double> diffs_;
  std::vector<double> stats_a_;
  std::vector<double> stats_b_;
  std::vector<std::complex<double>> spectrum_;
  std::vector<ChangePoint> points_;
  std::vector<ChangePoint> outliers_;
  PermutationPool pool_;
  std::map<std::size_t, FftPlan> plans_;

  std::uint64_t grow_events_ = 0;
  std::uint64_t published_grow_events_ = 0;
  std::uint64_t published_bytes_ = 0;
};

/// The calling thread's scratch arena. One per thread, constructed on first
/// use; this is what the public (scratch-less) signal entry points and the
/// change selector use, so parallel per-VM analysis never shares buffers.
SignalScratch& threadScratch();

}  // namespace fchain::signal
