#include "signal/smoothing.h"

#include <algorithm>

namespace fchain::signal {

std::vector<double>& movingAverageInto(std::span<const double> xs,
                                       std::size_t half,
                                       std::vector<double>& out) {
  out.assign(xs.begin(), xs.end());
  if (half == 0 || xs.size() < 2) return out;
  const auto n = static_cast<std::ptrdiff_t>(xs.size());
  const auto h = static_cast<std::ptrdiff_t>(half);
  // Per-window ascending sums, not a sliding running sum: a running sum
  // accumulates rounding differently and would break bit-identity with the
  // reference engine. The window is tiny (half <= 3 in the pipeline), so the
  // rescan costs nothing measurable.
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + h);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += xs[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> movingAverage(std::span<const double> xs,
                                  std::size_t half) {
  std::vector<double> out;
  movingAverageInto(xs, half, out);
  return out;
}

std::vector<double> ewma(std::span<const double> xs, double alpha) {
  std::vector<double> out;
  out.reserve(xs.size());
  double prev = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) {
    prev = alpha * x + (1.0 - alpha) * prev;
    out.push_back(prev);
  }
  return out;
}

}  // namespace fchain::signal
