// Frozen reference signal engine.
//
// These are the pre-optimization implementations of the signal kernels,
// kept verbatim (allocations, per-round means, RNG threading and all) for
// two jobs:
//
//   1. Oracle for the serial ≡ optimized identity tests: the scratch-arena
//      engine in ThreadedRng bootstrap mode must reproduce these outputs
//      bit for bit, and the pooled engine's deviations must stay within the
//      bounded-delta the tests pin down.
//   2. In-binary baseline for the throughput bench: the CI speedup gate is
//      the ratio of the optimized engine to this engine measured in the
//      same run on the same machine, so the floor is hardware-independent.
//
// Do not "improve" this code — its value is that it never changes. It is
// deliberately not wired into any production path.
#pragma once

#include <span>
#include <vector>

#include "signal/burst.h"
#include "signal/cusum.h"
#include "signal/outlier.h"
#include "signal/tangent.h"

namespace fchain::signal::reference {

/// Pre-optimization percentile (no NaN guard, interpolation arithmetic at
/// the endpoints — see fchain::percentile for the fixed contract).
double percentile(std::span<const double> xs, double p);

std::vector<double> movingAverage(std::span<const double> xs,
                                  std::size_t half);

/// Original CUSUM + bootstrap: one RNG threaded through the segmentation
/// recursion, a fresh shuffle buffer per segment, the segment mean
/// recomputed inside every bootstrap round. Ignores config.bootstrap.
std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config = {});

std::vector<ChangePoint> outlierChangePoints(
    std::span<const ChangePoint> points, const OutlierConfig& config = {});

std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config = {});

/// Original cold-start semantic: returns 0.0 for windows shorter than 2
/// samples. Ignores config.min_window.
double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config = {});

std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected,
                          const RollbackConfig& config = {});

}  // namespace fchain::signal::reference
