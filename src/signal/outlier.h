// Change-magnitude outlier detection (the PAL [13] filtering step).
//
// CUSUM on a fluctuating metric returns many change points; most are "random
// peak and bottom values" (paper Fig. 3). PAL keeps only change points whose
// level shift is an *outlier* among all detected shifts, measured with a
// robust MAD z-score. FChain applies this as a pre-filter before its
// predictability test; the PAL baseline stops here.
#pragma once

#include <span>
#include <vector>

#include "signal/cusum.h"

namespace fchain::signal {

class SignalScratch;

struct OutlierConfig {
  /// Robust z-score (|shift - median| / (1.4826 * MAD)) above which a change
  /// point counts as an outlier.
  double mad_zscore = 2.0;
  /// When MAD degenerates to ~0 (most shifts identical), fall back to
  /// flagging shifts above this multiple of the median absolute shift.
  double degenerate_ratio = 3.0;
};

/// Returns the subset of `points` whose shift magnitude is an outlier.
/// With fewer than 3 points every point is kept (no basis for comparison).
std::vector<ChangePoint> outlierChangePoints(
    std::span<const ChangePoint> points, const OutlierConfig& config = {});

/// Zero-allocation variant: filters into `out` (cleared first), using
/// `scratch`'s stats lanes for the median/MAD work buffers. `out` may be
/// scratch.outliers() but must not alias the storage behind `points`.
/// Returns `out` for convenience.
std::vector<ChangePoint>& outlierChangePointsInto(
    std::span<const ChangePoint> points, const OutlierConfig& config,
    SignalScratch& scratch, std::vector<ChangePoint>& out);

}  // namespace fchain::signal
