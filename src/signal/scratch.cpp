#include "signal/scratch.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "obs/metrics.h"

namespace fchain::signal {

namespace {

/// Fisher-Yates over an index row, consuming `rng` exactly like the
/// threaded bootstrap consumes it over data.
void shuffleRow(std::uint32_t* row, std::size_t n, fchain::Rng& rng) {
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(row[i], row[rng.below(i + 1)]);
  }
}

/// Generates the canonical permutation block for (seed, rounds, n): round 0
/// shuffles the identity, each later round shuffles the previous round's
/// permutation (composing permutations, like the threaded bootstrap's
/// shuffle-of-shuffle), all from an RNG derived only from (seed, n). This
/// definition is independent of caching: pooled and overflow paths produce
/// identical blocks.
void generateBlock(std::uint64_t seed, std::size_t rounds, std::size_t n,
                   std::vector<std::uint32_t>& out) {
  out.resize(rounds * n);
  if (rounds == 0 || n == 0) return;
  fchain::Rng rng(fchain::mixSeed(seed, 0xb0075ULL, n));
  std::iota(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(n), 0u);
  shuffleRow(out.data(), n, rng);
  for (std::size_t r = 1; r < rounds; ++r) {
    std::uint32_t* row = out.data() + r * n;
    std::copy_n(row - n, n, row);
    shuffleRow(row, n, rng);
  }
}

}  // namespace

std::span<const std::uint32_t> PermutationPool::permutations(
    std::uint64_t seed, std::size_t rounds, std::size_t n) {
  if (seed != seed_ || rounds != rounds_) {
    // A different bootstrap configuration invalidates every cached block.
    pool_.clear();
    seed_ = seed;
    rounds_ = rounds;
  }
  if (n > kMaxPooledLength) {
    generateBlock(seed, rounds, n, overflow_);
    return overflow_;
  }
  auto [it, inserted] = pool_.try_emplace(n);
  if (inserted) generateBlock(seed, rounds, n, it->second);
  return it->second;
}

std::size_t PermutationPool::retainedBytes() const {
  std::size_t bytes = overflow_.capacity() * sizeof(std::uint32_t);
  for (const auto& [n, block] : pool_) {
    bytes += block.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

SignalScratch::SignalScratch() = default;

const FftPlan& SignalScratch::plan(std::size_t n) {
  auto [it, inserted] = plans_.try_emplace(n);
  if (inserted) it->second = FftPlan::make(n);
  return it->second;
}

std::uint64_t SignalScratch::retainedBytes() const {
  std::size_t bytes = 0;
  for (const std::vector<double>* lane :
       {&smoothed_, &shuffle_, &burst_, &block_max_, &diffs_, &stats_a_,
        &stats_b_}) {
    bytes += lane->capacity() * sizeof(double);
  }
  bytes += spectrum_.capacity() * sizeof(std::complex<double>);
  bytes += points_.capacity() * sizeof(ChangePoint);
  bytes += outliers_.capacity() * sizeof(ChangePoint);
  bytes += pool_.retainedBytes();
  for (const auto& [n, plan] : plans_) {
    bytes += plan.bitrev.capacity() * sizeof(std::uint32_t) +
             (plan.forward.capacity() + plan.inverse.capacity()) *
                 sizeof(std::complex<double>);
  }
  return bytes;
}

ScratchStats SignalScratch::stats() const {
  return ScratchStats{grow_events_, retainedBytes()};
}

void SignalScratch::accountGrowth() {
  const std::uint64_t bytes = retainedBytes();
  if (bytes <= published_bytes_ && grow_events_ == published_grow_events_) {
    return;
  }
  if (bytes > published_bytes_) ++grow_events_;
  // Registration is mutex-protected inside the registry but only the deltas
  // below run per call, and only when something actually grew.
  static obs::Counter& grow_counter =
      obs::metrics().counter("signal.scratch.grow_events");
  static obs::Gauge& bytes_gauge =
      obs::metrics().gauge("signal.scratch.bytes");
  grow_counter.add(grow_events_ - published_grow_events_);
  if (bytes >= published_bytes_) {
    bytes_gauge.add(static_cast<double>(bytes - published_bytes_));
  } else {
    bytes_gauge.add(-static_cast<double>(published_bytes_ - bytes));
  }
  published_grow_events_ = grow_events_;
  published_bytes_ = bytes;
}

SignalScratch& threadScratch() {
  static thread_local SignalScratch scratch;
  return scratch;
}

}  // namespace fchain::signal
