// Frozen pre-optimization signal kernels. See reference.h — do not edit
// these implementations; the identity tests and the bench speedup gate both
// assume they stay exactly as the original engine shipped them.
#include "signal/reference.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "signal/fft.h"

namespace fchain::signal::reference {

namespace {

struct CusumResult {
  double range = 0.0;
  std::size_t peak = 0;
};

CusumResult cusumRange(std::span<const double> xs) {
  const double m = fchain::mean(xs);
  double s = 0.0;
  double lo = 0.0, hi = 0.0;
  double best_abs = 0.0;
  CusumResult result;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    s += xs[i] - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (std::fabs(s) > best_abs) {
      best_abs = std::fabs(s);
      result.peak = i;
    }
  }
  result.range = hi - lo;
  return result;
}

void detectRecursive(std::span<const double> xs, std::size_t offset,
                     const CusumConfig& config, fchain::Rng& rng,
                     std::vector<ChangePoint>& out) {
  if (xs.size() < config.min_segment * 2) return;
  if (out.size() >= config.max_change_points) return;

  const CusumResult observed = cusumRange(xs);
  if (observed.range <= 0.0) return;

  // Bootstrap: how often does a random reordering produce as large a range?
  std::vector<double> shuffled(xs.begin(), xs.end());
  std::size_t below = 0;
  for (std::size_t round = 0; round < config.bootstrap_rounds; ++round) {
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
    }
    if (cusumRange(shuffled).range < observed.range) ++below;
  }
  const double confidence =
      static_cast<double>(below) / static_cast<double>(config.bootstrap_rounds);
  if (confidence < config.confidence) return;

  // Change starts at the sample *after* the |S| peak.
  const std::size_t split = observed.peak + 1;
  if (split < config.min_segment || xs.size() - split < config.min_segment) {
    return;
  }

  const double before = fchain::mean(xs.subspan(0, split));
  const double after = fchain::mean(xs.subspan(split));
  out.push_back(ChangePoint{offset + split, confidence, after - before});

  detectRecursive(xs.subspan(0, split), offset, config, rng, out);
  detectRecursive(xs.subspan(split), offset + split, config, rng, out);
}

double tangentAt(std::span<const double> xs, std::size_t index,
                 std::size_t half_window) {
  if (xs.empty()) return 0.0;
  const std::size_t lo = index > half_window ? index - half_window : 0;
  const std::size_t hi = std::min(xs.size(), index + half_window + 1);
  if (hi <= lo + 1) return 0.0;
  return fchain::slope(xs.subspan(lo, hi - lo));
}

}  // namespace

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty span");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> movingAverage(std::span<const double> xs,
                                  std::size_t half) {
  std::vector<double> out(xs.begin(), xs.end());
  if (half == 0 || xs.size() < 2) return out;
  const auto n = static_cast<std::ptrdiff_t>(xs.size());
  const auto h = static_cast<std::ptrdiff_t>(half);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + h);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      sum += xs[static_cast<std::size_t>(j)];
    }
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config) {
  std::vector<ChangePoint> points;
  fchain::Rng rng(config.seed);
  detectRecursive(xs, 0, config, rng, points);
  std::sort(points.begin(), points.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.index < b.index;
            });
  return points;
}

std::vector<ChangePoint> outlierChangePoints(
    std::span<const ChangePoint> points, const OutlierConfig& config) {
  std::vector<ChangePoint> out;
  if (points.size() < 3) {
    out.assign(points.begin(), points.end());
    return out;
  }

  std::vector<double> magnitudes;
  magnitudes.reserve(points.size());
  for (const auto& p : points) magnitudes.push_back(std::fabs(p.shift));

  const double med = fchain::median(magnitudes);
  const double mad = fchain::medianAbsDeviation(magnitudes);
  const double robust_sigma = 1.4826 * mad;

  for (const auto& p : points) {
    const double magnitude = std::fabs(p.shift);
    bool is_outlier;
    if (robust_sigma > 1e-12) {
      is_outlier = (magnitude - med) / robust_sigma > config.mad_zscore;
    } else {
      is_outlier = med > 1e-12 && magnitude > config.degenerate_ratio * med;
    }
    if (is_outlier) out.push_back(p);
  }
  return out;
}

std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config) {
  const std::size_t n = xs.size();
  if (n < 2) return std::vector<double>(n, 0.0);

  const double m = fchain::mean(xs);
  std::vector<double> centered(xs.begin(), xs.end());
  for (double& x : centered) x -= m;

  auto spectrum = fftReal(centered);
  const std::size_t len = spectrum.size();
  const double nyquist = static_cast<double>(len / 2);
  const double cutoff = (1.0 - config.high_freq_fraction) * nyquist;
  for (std::size_t i = 0; i < len; ++i) {
    const double freq = static_cast<double>(std::min(i, len - i));
    if (freq < cutoff || i == 0) spectrum[i] = 0.0;
  }
  return ifftToReal(std::move(spectrum), n);
}

double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config) {
  if (xs.size() < 2) return 0.0;
  // Qualified: ADL on BurstConfig would otherwise also find the optimized
  // engine's overload in the enclosing namespace.
  auto burst = reference::burstSignal(xs, config);
  for (double& b : burst) b = std::fabs(b);
  return percentile(burst, config.magnitude_percentile);
}

std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected,
                          const RollbackConfig& config) {
  if (points.empty() || selected >= points.size()) return selected;

  double scale = fchain::medianAbsDeviation(xs) * 1.4826;
  if (scale < 1e-9) scale = std::max(1e-9, fchain::stddev(xs));

  const double anchor_sign = points[selected].shift >= 0.0 ? 1.0 : -1.0;
  std::size_t current = selected;
  while (current > 0) {
    if (points[current - 1].shift * anchor_sign < 0.0) break;
    const double tangent_cur =
        tangentAt(xs, points[current].index, config.tangent_half_window);
    const double tangent_prev =
        tangentAt(xs, points[current - 1].index, config.tangent_half_window);
    const double closeness =
        config.relative_epsilon *
            std::max(std::fabs(tangent_cur), std::fabs(tangent_prev)) +
        config.scale_floor * scale;
    if (std::fabs(tangent_cur - tangent_prev) >= closeness) break;
    --current;
  }
  return current;
}

}  // namespace fchain::signal::reference
