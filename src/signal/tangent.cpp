#include "signal/tangent.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "signal/scratch.h"

namespace fchain::signal {

double tangentAt(std::span<const double> xs, std::size_t index,
                 std::size_t half_window) {
  if (xs.empty()) return 0.0;
  const std::size_t lo = index > half_window ? index - half_window : 0;
  const std::size_t hi = std::min(xs.size(), index + half_window + 1);
  if (hi <= lo + 1) return 0.0;
  return fchain::slope(xs.subspan(lo, hi - lo));
}

std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected, const RollbackConfig& config,
                          SignalScratch& scratch) {
  if (points.empty() || selected >= points.size()) return selected;

  double scale = fchain::medianAbsDeviation(xs, scratch.statsA(),
                                            scratch.statsB()) *
                 1.4826;
  if (scale < 1e-9) scale = std::max(1e-9, fchain::stddev(xs));

  // Rolling back is only meaningful while we stay inside the same
  // manifestation: the preceding change point must continue the anchor's
  // direction (same shift sign) *and* sit on a similar local tangent.
  const double anchor_sign = points[selected].shift >= 0.0 ? 1.0 : -1.0;
  std::size_t current = selected;
  while (current > 0) {
    if (points[current - 1].shift * anchor_sign < 0.0) break;
    const double tangent_cur =
        tangentAt(xs, points[current].index, config.tangent_half_window);
    const double tangent_prev =
        tangentAt(xs, points[current - 1].index, config.tangent_half_window);
    const double closeness =
        config.relative_epsilon *
            std::max(std::fabs(tangent_cur), std::fabs(tangent_prev)) +
        config.scale_floor * scale;
    if (std::fabs(tangent_cur - tangent_prev) >= closeness) break;
    --current;
  }
  return current;
}

std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected,
                          const RollbackConfig& config) {
  return rollbackOnset(xs, points, selected, config, threadScratch());
}

}  // namespace fchain::signal
