#include "signal/burst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "obs/trace.h"
#include "signal/fft.h"
#include "signal/scratch.h"

namespace fchain::signal {

std::vector<double>& burstSignalInto(std::span<const double> xs,
                                     const BurstConfig& config,
                                     SignalScratch& scratch) {
  const std::size_t n = xs.size();
  std::vector<double>& out = scratch.burst(n);
  if (n < 2) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }

  // Remove the mean before padding so zero-padding does not fabricate an
  // artificial step (which would leak energy into every frequency). The
  // centered window lives in the burst lane, which then receives the
  // synthesized burst signal back from the inverse transform.
  const double m = fchain::mean(xs);
  for (std::size_t i = 0; i < n; ++i) out[i] = xs[i] - m;

  const FftPlan& plan = scratch.plan(nextPow2(n));
  std::vector<std::complex<double>>& spectrum = scratch.spectrum();
  fftRealInto(out, plan, spectrum);
  const std::size_t len = spectrum.size();
  // Real-signal spectrum is conjugate-symmetric: bins i and len-i carry the
  // same physical frequency min(i, len-i) in [0, len/2]. "Top 90 % of
  // frequencies" keeps every bin whose physical frequency lies in the upper
  // 90 % of [0, len/2], i.e. zeroes the lowest 10 % (including DC).
  const double nyquist = static_cast<double>(len / 2);
  const double cutoff = (1.0 - config.high_freq_fraction) * nyquist;
  for (std::size_t i = 0; i < len; ++i) {
    const double freq = static_cast<double>(std::min(i, len - i));
    if (freq < cutoff || i == 0) spectrum[i] = 0.0;
  }
  ifftRealInto(spectrum, plan, out);
  return out;
}

std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config) {
  return burstSignalInto(xs, config, threadScratch());
}

double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config,
                               SignalScratch& scratch) {
  FCHAIN_SPAN_VAR(span, "signal.burst_threshold");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  if (xs.size() < std::max<std::size_t>(config.min_window, 2)) {
    // Cold start: too few samples to estimate burstiness. +inf means "no
    // threshold yet" — no prediction error can look abnormal until the
    // window fills (the old 0.0 return meant the opposite).
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double>& burst = burstSignalInto(xs, config, scratch);
  for (double& b : burst) b = std::fabs(b);
  return fchain::percentileInPlace(burst, config.magnitude_percentile);
}

double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config) {
  return expectedPredictionError(xs, config, threadScratch());
}

}  // namespace fchain::signal
