#include "signal/burst.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "obs/trace.h"
#include "signal/fft.h"

namespace fchain::signal {

std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config) {
  const std::size_t n = xs.size();
  if (n < 2) return std::vector<double>(n, 0.0);

  // Remove the mean before padding so zero-padding does not fabricate an
  // artificial step (which would leak energy into every frequency).
  const double m = fchain::mean(xs);
  std::vector<double> centered(xs.begin(), xs.end());
  for (double& x : centered) x -= m;

  auto spectrum = fftReal(centered);
  const std::size_t len = spectrum.size();
  // Real-signal spectrum is conjugate-symmetric: bins i and len-i carry the
  // same physical frequency min(i, len-i) in [0, len/2]. "Top 90 % of
  // frequencies" keeps every bin whose physical frequency lies in the upper
  // 90 % of [0, len/2], i.e. zeroes the lowest 10 % (including DC).
  const double nyquist = static_cast<double>(len / 2);
  const double cutoff = (1.0 - config.high_freq_fraction) * nyquist;
  for (std::size_t i = 0; i < len; ++i) {
    const double freq = static_cast<double>(std::min(i, len - i));
    if (freq < cutoff || i == 0) spectrum[i] = 0.0;
  }
  return ifftToReal(std::move(spectrum), n);
}

double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config) {
  FCHAIN_SPAN_VAR(span, "signal.burst_threshold");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  if (xs.size() < 2) return 0.0;
  auto burst = burstSignal(xs, config);
  for (double& b : burst) b = std::fabs(b);
  return fchain::percentile(burst, config.magnitude_percentile);
}

}  // namespace fchain::signal
