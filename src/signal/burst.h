// Burstiness-derived dynamic prediction-error threshold (paper §II-B).
//
// For a candidate change point x_t, FChain takes the surrounding window
// X = x_{t-Q} .. x_{t+Q}, FFTs it, treats the top-k fraction (default 90 %)
// of frequencies as "high" frequencies, inverse-FFTs only those components to
// synthesize a *burst signal*, and uses a high percentile (default 90th) of
// the burst magnitude as the *expected prediction error* at x_t. A bursty
// series therefore tolerates larger prediction errors before a change point
// is declared abnormal; a stable series gets a tight threshold.
#pragma once

#include <span>
#include <vector>

namespace fchain::signal {

struct BurstConfig {
  /// Fraction of the frequency spectrum counted as high frequency, from the
  /// top (paper: "top k (e.g., 90%) frequencies").
  double high_freq_fraction = 0.9;
  /// Percentile of |burst| used as the expected prediction error.
  double magnitude_percentile = 90.0;
};

/// Synthesizes the burst (high-frequency) component of `xs`.
/// The result has the same length as `xs`.
std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config = {});

/// Expected prediction error for a window: the configured percentile of the
/// absolute burst signal. Returns 0 for windows shorter than 2 samples.
double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config = {});

}  // namespace fchain::signal
