// Burstiness-derived dynamic prediction-error threshold (paper §II-B).
//
// For a candidate change point x_t, FChain takes the surrounding window
// X = x_{t-Q} .. x_{t+Q}, FFTs it, treats the top-k fraction (default 90 %)
// of frequencies as "high" frequencies, inverse-FFTs only those components to
// synthesize a *burst signal*, and uses a high percentile (default 90th) of
// the burst magnitude as the *expected prediction error* at x_t. A bursty
// series therefore tolerates larger prediction errors before a change point
// is declared abnormal; a stable series gets a tight threshold.
#pragma once

#include <span>
#include <vector>

namespace fchain::signal {

class SignalScratch;

struct BurstConfig {
  /// Fraction of the frequency spectrum counted as high frequency, from the
  /// top (paper: "top k (e.g., 90%) frequencies").
  double high_freq_fraction = 0.9;
  /// Percentile of |burst| used as the expected prediction error.
  double magnitude_percentile = 90.0;
  /// Windows shorter than this have no meaningful spectrum to estimate
  /// burstiness from. expectedPredictionError() returns +inf for them — the
  /// explicit cold-start semantic: "no threshold yet", so nothing is judged
  /// abnormal until enough samples exist. (The old behaviour returned 0.0
  /// for n < 2, i.e. *every* nonzero error looked abnormal during cold
  /// start.) Must be >= 2; the online pipeline's windows are >= 21 samples,
  /// so steady-state behaviour is unaffected.
  std::size_t min_window = 8;
};

/// Synthesizes the burst (high-frequency) component of `xs`.
/// The result has the same length as `xs`; all zeros for n < 2.
std::vector<double> burstSignal(std::span<const double> xs,
                                const BurstConfig& config = {});

/// Zero-allocation variant: synthesizes into `scratch`'s burst lane and
/// returns it (valid until the next kernel call on the same scratch).
std::vector<double>& burstSignalInto(std::span<const double> xs,
                                     const BurstConfig& config,
                                     SignalScratch& scratch);

/// Expected prediction error for a window: the configured percentile of the
/// absolute burst signal. Returns +inf for windows shorter than
/// config.min_window (cold start — see BurstConfig::min_window).
double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config = {});

/// Zero-allocation variant of expectedPredictionError().
double expectedPredictionError(std::span<const double> xs,
                               const BurstConfig& config,
                               SignalScratch& scratch);

}  // namespace fchain::signal
