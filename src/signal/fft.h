// Radix-2 iterative fast Fourier transform.
//
// FChain's abnormal change point selector FFTs a small window (2Q+1 samples,
// Q = 20 s by default) around each candidate change point to split the signal
// into low-frequency baseline and high-frequency burst components (paper
// §II-B). Windows are zero-padded to the next power of two; the burst module
// trims the padding off again after the inverse transform.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace fchain::signal {

/// Smallest power of two >= n (n >= 1).
std::size_t nextPow2(std::size_t n);

/// In-place forward FFT. data.size() must be a power of two.
void fftInPlace(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifftInPlace(std::vector<std::complex<double>>& data);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Allocates exactly once (the returned spectrum buffer).
std::vector<std::complex<double>> fftReal(std::span<const double> xs);

/// Inverse FFT returning only the real parts of the first `n` samples.
/// Takes the spectrum by rvalue: the inverse transform runs in the caller's
/// buffer, so the only allocation is the returned real vector. Callers must
/// std::move their spectrum in (it is consumed).
std::vector<double> ifftToReal(std::vector<std::complex<double>>&& spectrum,
                               std::size_t n);

}  // namespace fchain::signal
