// Change point detection: CUSUM + bootstrap (paper §II-B, citing [21]).
//
// This is the classic Taylor-style procedure: the cumulative sum of
// mean-centered samples drifts when the level shifts; the magnitude of that
// drift is compared against bootstrap resamples of the same data to decide
// whether a change is statistically significant, and binary segmentation
// recurses into both halves to recover multiple change points. The paper
// notes (and Fig. 3 shows) that on fluctuating cloud metrics this yields many
// change points, most of which are normal workload fluctuation — filtering
// them is FChain's job, not CUSUM's.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fchain::signal {

struct CusumConfig {
  /// Bootstrap resamples per segment decision.
  std::size_t bootstrap_rounds = 200;
  /// Fraction of resamples that must show a smaller CUSUM range for the
  /// change to count as significant.
  double confidence = 0.95;
  /// Segments shorter than this are not split further.
  std::size_t min_segment = 6;
  /// Safety bound on recursion (maximum number of change points returned).
  std::size_t max_change_points = 64;
  /// Seed for the bootstrap shuffles; fixed so detection is deterministic.
  std::uint64_t seed = 0xc0521bULL;
};

struct ChangePoint {
  /// Index into the analyzed span: the first sample of the new regime.
  std::size_t index = 0;
  /// Bootstrap confidence in [0, 1].
  double confidence = 0.0;
  /// Level shift across the change (mean after - mean before).
  double shift = 0.0;
};

/// Detects change points in `xs`, sorted by index.
std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config = {});

}  // namespace fchain::signal
