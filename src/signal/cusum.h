// Change point detection: CUSUM + bootstrap (paper §II-B, citing [21]).
//
// This is the classic Taylor-style procedure: the cumulative sum of
// mean-centered samples drifts when the level shifts; the magnitude of that
// drift is compared against bootstrap resamples of the same data to decide
// whether a change is statistically significant, and binary segmentation
// recurses into both halves to recover multiple change points. The paper
// notes (and Fig. 3 shows) that on fluctuating cloud metrics this yields many
// change points, most of which are normal workload fluctuation — filtering
// them is FChain's job, not CUSUM's.
//
// Two bootstrap drivers:
//   - PooledPermutations (default, the hot-path engine): resampling
//     permutations are a pure function of (seed, rounds, segment length),
//     served from SignalScratch's permutation pool and applied by gather —
//     no per-round shuffle, no RNG in the loop, and the permutation-
//     invariant segment mean is hoisted out of the rounds. Because segments
//     no longer share RNG state, a segment whose significance is already
//     decided aborts its remaining rounds early (the decision is provably
//     unchanged), which is where most of the speedup on fault-free metrics
//     comes from.
//   - ThreadedRng (the original engine): one RNG threaded through the whole
//     segmentation recursion, Fisher-Yates shuffle per round. Kept
//     bit-identical to the pre-scratch implementation (the identity test
//     pins it against the frozen reference engine).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fchain::signal {

class SignalScratch;

enum class BootstrapMode : std::uint8_t {
  /// Per-segment-length permutation pool + gathered resampling + early
  /// exit. Statistically the same test; the drawn permutations differ from
  /// ThreadedRng, so borderline confidences can differ in the last few
  /// bootstrap counts.
  PooledPermutations,
  /// The original behaviour: one RNG threaded through the recursion.
  ThreadedRng,
};

struct CusumConfig {
  /// Bootstrap resamples per segment decision.
  std::size_t bootstrap_rounds = 200;
  /// Fraction of resamples that must show a smaller CUSUM range for the
  /// change to count as significant.
  double confidence = 0.95;
  /// Segments shorter than this are not split further.
  std::size_t min_segment = 6;
  /// Safety bound on recursion (maximum number of change points returned).
  std::size_t max_change_points = 64;
  /// Seed for the bootstrap shuffles; fixed so detection is deterministic.
  std::uint64_t seed = 0xc0521bULL;
  /// Bootstrap driver (see the header comment).
  BootstrapMode bootstrap = BootstrapMode::PooledPermutations;
};

struct ChangePoint {
  /// Index into the analyzed span: the first sample of the new regime.
  std::size_t index = 0;
  /// Bootstrap confidence in [0, 1].
  double confidence = 0.0;
  /// Level shift across the change (mean after - mean before).
  double shift = 0.0;
};

/// Detects change points in `xs`, sorted by index. Runs on the calling
/// thread's scratch arena (threadScratch()).
std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config = {});

/// Zero-allocation variant: detects into `out` (cleared first), using
/// `scratch` for the bootstrap buffers. `out` may be (and in the hot path
/// is) scratch.points(). Returns `out` for convenience.
std::vector<ChangePoint>& detectChangePointsInto(std::span<const double> xs,
                                                 const CusumConfig& config,
                                                 SignalScratch& scratch,
                                                 std::vector<ChangePoint>& out);

}  // namespace fchain::signal
