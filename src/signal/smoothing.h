// Moving-average smoothing.
//
// PAL [13] (and FChain on top of it) smooths raw 1 Hz samples before change
// point detection to remove sampling noise. The paper's §III-C documents a
// side effect we reproduce: smoothing can shift the apparent onset of a
// propagated anomaly *earlier* than the true culprit's onset, which is why
// the concurrent-CpuHog System S case is hard. The window is therefore a
// config knob rather than a constant.
#pragma once

#include <span>
#include <vector>

namespace fchain::signal {

/// Centered moving average with window `2 * half + 1`, edges clamped.
/// half == 0 returns the input unchanged.
std::vector<double> movingAverage(std::span<const double> xs, std::size_t half);

/// Zero-allocation variant: writes into `out` (resized to xs.size(); no
/// allocation once its capacity is reached). `out` must not alias `xs`.
/// Returns `out` for convenience.
std::vector<double>& movingAverageInto(std::span<const double> xs,
                                       std::size_t half,
                                       std::vector<double>& out);

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; alpha == 1 returns the input unchanged.
std::vector<double> ewma(std::span<const double> xs, double alpha);

}  // namespace fchain::signal
