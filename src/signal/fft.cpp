#include "signal/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/trace.h"

namespace fchain::signal {

namespace {

bool isPow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Cooley-Tukey iterative radix-2 with bit-reversal permutation.
/// `inverse` flips the twiddle sign; normalization is the caller's job.
void transform(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (!isPow2(n)) throw std::invalid_argument("fft: size not a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

std::size_t nextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fftInPlace(std::vector<std::complex<double>>& data) {
  transform(data, /*inverse=*/false);
}

void ifftInPlace(std::vector<std::complex<double>>& data) {
  transform(data, /*inverse=*/true);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv;
}

std::vector<std::complex<double>> fftReal(std::span<const double> xs) {
  FCHAIN_SPAN_VAR(span, "signal.fft");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  const std::size_t padded = nextPow2(std::max<std::size_t>(xs.size(), 1));
  // Reserve the padded size up front: bulk-assign the samples, then extend
  // with zero padding inside the same buffer — one allocation total.
  std::vector<std::complex<double>> data;
  data.reserve(padded);
  data.assign(xs.begin(), xs.end());
  data.resize(padded);
  fftInPlace(data);
  return data;
}

std::vector<double> ifftToReal(std::vector<std::complex<double>>&& spectrum,
                               std::size_t n) {
  FCHAIN_SPAN_VAR(span, "signal.ifft");
  span.arg("n", static_cast<std::int64_t>(spectrum.size()));
  ifftInPlace(spectrum);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && i < spectrum.size(); ++i) {
    out.push_back(spectrum[i].real());
  }
  return out;
}

}  // namespace fchain::signal
