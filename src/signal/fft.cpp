#include "signal/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/trace.h"

namespace fchain::signal {

namespace {

bool isPow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Cooley-Tukey iterative radix-2 with bit-reversal permutation.
/// `inverse` flips the twiddle sign; normalization is the caller's job.
/// When `plan` is non-null its precomputed permutation and twiddle tables
/// are used; the tables hold the exact values the recurrence below produces,
/// so both paths are bit-identical.
void transform(std::complex<double>* data, std::size_t n, bool inverse,
               const FftPlan* plan) {
  if (n <= 1) return;
  if (!isPow2(n)) throw std::invalid_argument("fft: size not a power of two");

  // Bit-reversal permutation.
  if (plan != nullptr) {
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t j = plan->bitrev[i];
      if (i < j) std::swap(data[i], data[j]);
    }
  } else {
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(data[i], data[j]);
    }
  }

  std::size_t stage_offset = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    if (plan != nullptr) {
      const std::complex<double>* tw =
          (inverse ? plan->inverse : plan->forward).data() + stage_offset;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < half; ++k) {
          const std::complex<double> u = data[i + k];
          const std::complex<double> v = data[i + k + half] * tw[k];
          data[i + k] = u + v;
          data[i + k + half] = u - v;
        }
      }
      stage_offset += half;
      continue;
    }
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < half; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + half] * w;
        data[i + k] = u + v;
        data[i + k + half] = u - v;
        w *= wlen;
      }
    }
  }
}

void fillTwiddles(std::size_t n, bool inverse,
                  std::vector<std::complex<double>>& out) {
  out.clear();
  out.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    // The exact accumulated-product sequence the direct transform computes
    // per block: identical rounding, hence bit-identical butterflies.
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      out.push_back(w);
      w *= wlen;
    }
  }
}

}  // namespace

std::size_t nextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan FftPlan::make(std::size_t n) {
  if (!isPow2(n)) {
    throw std::invalid_argument("FftPlan: size not a power of two");
  }
  FftPlan plan;
  plan.n = n;
  plan.bitrev.resize(n, 0);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan.bitrev[i] = static_cast<std::uint32_t>(j);
  }
  if (n > 1) {
    fillTwiddles(n, /*inverse=*/false, plan.forward);
    fillTwiddles(n, /*inverse=*/true, plan.inverse);
  }
  return plan;
}

void fftInPlace(std::vector<std::complex<double>>& data) {
  transform(data.data(), data.size(), /*inverse=*/false, nullptr);
}

void ifftInPlace(std::vector<std::complex<double>>& data) {
  transform(data.data(), data.size(), /*inverse=*/true, nullptr);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv;
}

void fftInPlace(std::span<std::complex<double>> data, const FftPlan& plan) {
  if (data.size() != plan.n) {
    throw std::invalid_argument("fftInPlace: plan size mismatch");
  }
  transform(data.data(), data.size(), /*inverse=*/false, &plan);
}

void ifftInPlace(std::span<std::complex<double>> data, const FftPlan& plan) {
  if (data.size() != plan.n) {
    throw std::invalid_argument("ifftInPlace: plan size mismatch");
  }
  transform(data.data(), data.size(), /*inverse=*/true, &plan);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv;
}

std::vector<std::complex<double>> fftReal(std::span<const double> xs) {
  FCHAIN_SPAN_VAR(span, "signal.fft");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  const std::size_t padded = nextPow2(std::max<std::size_t>(xs.size(), 1));
  // Reserve the padded size up front: bulk-assign the samples, then extend
  // with zero padding inside the same buffer — one allocation total.
  std::vector<std::complex<double>> data;
  data.reserve(padded);
  data.assign(xs.begin(), xs.end());
  data.resize(padded);
  fftInPlace(data);
  return data;
}

void fftRealInto(std::span<const double> xs, const FftPlan& plan,
                 std::vector<std::complex<double>>& spectrum) {
  const std::size_t padded = nextPow2(std::max<std::size_t>(xs.size(), 1));
  if (padded != plan.n) {
    throw std::invalid_argument("fftRealInto: plan size mismatch");
  }
  spectrum.assign(xs.begin(), xs.end());
  spectrum.resize(padded);
  transform(spectrum.data(), padded, /*inverse=*/false, &plan);
}

std::vector<double> ifftToReal(std::vector<std::complex<double>>&& spectrum,
                               std::size_t n) {
  FCHAIN_SPAN_VAR(span, "signal.ifft");
  span.arg("n", static_cast<std::int64_t>(spectrum.size()));
  ifftInPlace(spectrum);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && i < spectrum.size(); ++i) {
    out.push_back(spectrum[i].real());
  }
  return out;
}

void ifftRealInto(std::span<std::complex<double>> spectrum,
                  const FftPlan& plan, std::span<double> out) {
  ifftInPlace(spectrum, plan);
  const std::size_t n = std::min(out.size(), spectrum.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = spectrum[i].real();
}

}  // namespace fchain::signal
