// Local tangent estimation and tangent-based rollback (paper §II-B).
//
// The selected abnormal change point sometimes lies in the *middle* of the
// fault manifestation (gradual faults keep tripping CUSUM as they evolve).
// FChain walks back through the preceding change points while the local
// tangent stays similar (difference < 0.1 by default), stopping at the first
// point where the slope regime differs — that point is the onset.
#pragma once

#include <span>
#include <vector>

#include "signal/cusum.h"

namespace fchain::signal {

class SignalScratch;

struct RollbackConfig {
  /// Two tangents a and b count as "close" when
  ///   |a - b| < relative_epsilon * max(|a|, |b|) + scale_floor * sigma,
  /// where sigma is the robust scale of the series. The paper states an
  /// absolute "< 0.1" for its (unit-specific) setup; the relative form keeps
  /// the same behaviour across metrics with wildly different magnitudes.
  double relative_epsilon = 0.3;
  double scale_floor = 0.01;
  /// Half-width of the window used to estimate the local tangent.
  std::size_t tangent_half_window = 5;
};

/// OLS slope of xs over [index - half, index + half], clamped to the series.
double tangentAt(std::span<const double> xs, std::size_t index,
                 std::size_t half_window);

/// Rolls the abnormal change point at `points[selected]` back through its
/// predecessors while adjacent tangents stay within tangent_epsilon of each
/// other (after normalizing by the signal scale). Returns the index into
/// `points` of the onset change point.
std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected,
                          const RollbackConfig& config = {});

/// Zero-allocation variant: uses `scratch`'s stats lanes for the robust
/// scale estimate. `xs` must not be backed by a stats lane of `scratch`.
std::size_t rollbackOnset(std::span<const double> xs,
                          std::span<const ChangePoint> points,
                          std::size_t selected, const RollbackConfig& config,
                          SignalScratch& scratch);

}  // namespace fchain::signal
