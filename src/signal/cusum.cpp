#include "signal/cusum.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/trace.h"
#include "signal/scratch.h"

namespace fchain::signal {

namespace {

/// CUSUM range (max - min of the cumulative mean-centered sum) and the index
/// where |S| peaks, which estimates the change location.
struct CusumResult {
  double range = 0.0;
  std::size_t peak = 0;
  double mean = 0.0;  ///< segment mean (reused by the pooled bootstrap)
};

CusumResult cusumRange(std::span<const double> xs) {
  const double m = fchain::mean(xs);
  double s = 0.0;
  double lo = 0.0, hi = 0.0;
  double best_abs = 0.0;
  CusumResult result;
  result.mean = m;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    s += xs[i] - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (std::fabs(s) > best_abs) {
      best_abs = std::fabs(s);
      result.peak = i;
    }
  }
  result.range = hi - lo;
  return result;
}

/// Range only, over a permuted view of `xs` with the segment mean hoisted
/// (the mean is permutation-invariant up to summation order, and the pooled
/// bootstrap defines it as the unpermuted segment's mean). One fused gather
/// pass: no data movement, no buffer.
double cusumRangePermuted(std::span<const double> xs,
                          const std::uint32_t* perm, double mean) {
  double s = 0.0;
  double lo = 0.0, hi = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    s += xs[perm[i]] - mean;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return hi - lo;
}

/// Pooled bootstrap: does a random reordering produce as large a range at
/// least (1 - confidence) of the time? Aborts as soon as the answer can no
/// longer be "no" — exact same accept/reject decision and, for accepted
/// segments, the exact same confidence value as running every round (an
/// accepted segment by definition never hits the abort condition).
double pooledBootstrapConfidence(std::span<const double> xs,
                                 double observed_range, double segment_mean,
                                 const CusumConfig& config,
                                 SignalScratch& scratch) {
  const std::size_t rounds = config.bootstrap_rounds;
  if (rounds == 0) return 1.0;
  const auto perms = scratch.permutations(config.seed, rounds, xs.size());
  const auto rounds_f = static_cast<double>(rounds);
  std::size_t below = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::uint32_t* perm = perms.data() + round * xs.size();
    if (cusumRangePermuted(xs, perm, segment_mean) < observed_range) ++below;
    // Even if every remaining round lands below the observed range, the
    // final fraction cannot reach the significance bar: reject now.
    const std::size_t remaining = rounds - round - 1;
    if (static_cast<double>(below + remaining) / rounds_f <
        config.confidence) {
      return static_cast<double>(below) / rounds_f;
    }
  }
  return static_cast<double>(below) / rounds_f;
}

/// Original bootstrap: Fisher-Yates with the RNG threaded through the whole
/// recursion. The shuffle buffer comes from the scratch arena (it is free
/// again once the rounds finish, so one buffer serves every recursion
/// level), which is the only change vs the frozen reference engine —
/// bit-identical output.
double threadedBootstrapConfidence(std::span<const double> xs,
                                   double observed_range,
                                   const CusumConfig& config,
                                   fchain::Rng& rng,
                                   SignalScratch& scratch) {
  std::vector<double>& shuffled = scratch.shuffle(xs.size());
  std::copy(xs.begin(), xs.end(), shuffled.begin());
  std::size_t below = 0;
  for (std::size_t round = 0; round < config.bootstrap_rounds; ++round) {
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
    }
    if (cusumRange(shuffled).range < observed_range) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(config.bootstrap_rounds);
}

void detectRecursive(std::span<const double> xs, std::size_t offset,
                     const CusumConfig& config, fchain::Rng& rng,
                     SignalScratch& scratch, std::vector<ChangePoint>& out) {
  if (xs.size() < config.min_segment * 2) return;
  if (out.size() >= config.max_change_points) return;

  const CusumResult observed = cusumRange(xs);
  if (observed.range <= 0.0) return;

  const double confidence =
      config.bootstrap == BootstrapMode::PooledPermutations
          ? pooledBootstrapConfidence(xs, observed.range, observed.mean,
                                      config, scratch)
          : threadedBootstrapConfidence(xs, observed.range, config, rng,
                                        scratch);
  if (confidence < config.confidence) return;

  // Change starts at the sample *after* the |S| peak.
  const std::size_t split = observed.peak + 1;
  if (split < config.min_segment || xs.size() - split < config.min_segment) {
    return;
  }

  const double before = fchain::mean(xs.subspan(0, split));
  const double after = fchain::mean(xs.subspan(split));
  out.push_back(ChangePoint{offset + split, confidence, after - before});

  detectRecursive(xs.subspan(0, split), offset, config, rng, scratch, out);
  detectRecursive(xs.subspan(split), offset + split, config, rng, scratch,
                  out);
}

}  // namespace

std::vector<ChangePoint>& detectChangePointsInto(
    std::span<const double> xs, const CusumConfig& config,
    SignalScratch& scratch, std::vector<ChangePoint>& out) {
  // One span for the whole bootstrap/segmentation recursion — per-segment
  // spans would swamp the trace without adding signal.
  FCHAIN_SPAN_VAR(span, "signal.cusum");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  out.clear();
  fchain::Rng rng(config.seed);
  detectRecursive(xs, 0, config, rng, scratch, out);
  std::sort(out.begin(), out.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.index < b.index;
            });
  return out;
}

std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config) {
  std::vector<ChangePoint> points;
  detectChangePointsInto(xs, config, threadScratch(), points);
  return points;
}

}  // namespace fchain::signal
