#include "signal/cusum.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/trace.h"

namespace fchain::signal {

namespace {

/// CUSUM range (max - min of the cumulative mean-centered sum) and the index
/// where |S| peaks, which estimates the change location.
struct CusumResult {
  double range = 0.0;
  std::size_t peak = 0;
};

CusumResult cusumRange(std::span<const double> xs) {
  const double m = fchain::mean(xs);
  double s = 0.0;
  double lo = 0.0, hi = 0.0;
  double best_abs = 0.0;
  CusumResult result;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    s += xs[i] - m;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    if (std::fabs(s) > best_abs) {
      best_abs = std::fabs(s);
      result.peak = i;
    }
  }
  result.range = hi - lo;
  return result;
}

void detectRecursive(std::span<const double> xs, std::size_t offset,
                     const CusumConfig& config, fchain::Rng& rng,
                     std::vector<ChangePoint>& out) {
  if (xs.size() < config.min_segment * 2) return;
  if (out.size() >= config.max_change_points) return;

  const CusumResult observed = cusumRange(xs);
  if (observed.range <= 0.0) return;

  // Bootstrap: how often does a random reordering produce as large a range?
  std::vector<double> shuffled(xs.begin(), xs.end());
  std::size_t below = 0;
  for (std::size_t round = 0; round < config.bootstrap_rounds; ++round) {
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
      std::swap(shuffled[i], shuffled[rng.below(i + 1)]);
    }
    if (cusumRange(shuffled).range < observed.range) ++below;
  }
  const double confidence =
      static_cast<double>(below) / static_cast<double>(config.bootstrap_rounds);
  if (confidence < config.confidence) return;

  // Change starts at the sample *after* the |S| peak.
  const std::size_t split = observed.peak + 1;
  if (split < config.min_segment || xs.size() - split < config.min_segment) {
    return;
  }

  const double before = fchain::mean(xs.subspan(0, split));
  const double after = fchain::mean(xs.subspan(split));
  out.push_back(ChangePoint{offset + split, confidence, after - before});

  detectRecursive(xs.subspan(0, split), offset, config, rng, out);
  detectRecursive(xs.subspan(split), offset + split, config, rng, out);
}

}  // namespace

std::vector<ChangePoint> detectChangePoints(std::span<const double> xs,
                                            const CusumConfig& config) {
  // One span for the whole bootstrap/segmentation recursion — per-segment
  // spans would swamp the trace without adding signal.
  FCHAIN_SPAN_VAR(span, "signal.cusum");
  span.arg("n", static_cast<std::int64_t>(xs.size()));
  std::vector<ChangePoint> points;
  fchain::Rng rng(config.seed);
  detectRecursive(xs, 0, config, rng, points);
  std::sort(points.begin(), points.end(),
            [](const ChangePoint& a, const ChangePoint& b) {
              return a.index < b.index;
            });
  return points;
}

}  // namespace fchain::signal
