#include "signal/outlier.h"

#include <cmath>

#include "common/stats.h"
#include "signal/scratch.h"

namespace fchain::signal {

std::vector<ChangePoint>& outlierChangePointsInto(
    std::span<const ChangePoint> points, const OutlierConfig& config,
    SignalScratch& scratch, std::vector<ChangePoint>& out) {
  out.clear();
  if (points.size() < 3) {
    out.assign(points.begin(), points.end());
    return out;
  }

  // The magnitudes are only consumed through their order statistics, so they
  // go straight into the stats lanes: statsA is sorted for the median, then
  // statsB holds |magnitude - median| for the MAD. Sorting first does not
  // change either multiset, so this matches the allocating path bit for bit.
  std::vector<double>& magnitudes = scratch.statsA();
  magnitudes.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    magnitudes[i] = std::fabs(points[i].shift);
  }
  const double med = fchain::medianInPlace(magnitudes);
  std::vector<double>& deviations = scratch.statsB();
  deviations.resize(magnitudes.size());
  for (std::size_t i = 0; i < magnitudes.size(); ++i) {
    deviations[i] = std::fabs(magnitudes[i] - med);
  }
  const double mad = fchain::medianInPlace(deviations);
  // 1.4826 scales MAD to the stddev of a normal distribution.
  const double robust_sigma = 1.4826 * mad;

  for (const auto& p : points) {
    const double magnitude = std::fabs(p.shift);
    bool is_outlier;
    if (robust_sigma > 1e-12) {
      is_outlier = (magnitude - med) / robust_sigma > config.mad_zscore;
    } else {
      // All shifts nearly identical: only flag clear multiples of the median.
      is_outlier = med > 1e-12 && magnitude > config.degenerate_ratio * med;
    }
    if (is_outlier) out.push_back(p);
  }
  return out;
}

std::vector<ChangePoint> outlierChangePoints(
    std::span<const ChangePoint> points, const OutlierConfig& config) {
  std::vector<ChangePoint> out;
  outlierChangePointsInto(points, config, threadScratch(), out);
  return out;
}

}  // namespace fchain::signal
