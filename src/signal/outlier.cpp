#include "signal/outlier.h"

#include <cmath>

#include "common/stats.h"

namespace fchain::signal {

std::vector<ChangePoint> outlierChangePoints(
    std::span<const ChangePoint> points, const OutlierConfig& config) {
  std::vector<ChangePoint> out;
  if (points.size() < 3) {
    out.assign(points.begin(), points.end());
    return out;
  }

  std::vector<double> magnitudes;
  magnitudes.reserve(points.size());
  for (const auto& p : points) magnitudes.push_back(std::fabs(p.shift));

  const double med = fchain::median(magnitudes);
  const double mad = fchain::medianAbsDeviation(magnitudes);
  // 1.4826 scales MAD to the stddev of a normal distribution.
  const double robust_sigma = 1.4826 * mad;

  for (const auto& p : points) {
    const double magnitude = std::fabs(p.shift);
    bool is_outlier;
    if (robust_sigma > 1e-12) {
      is_outlier = (magnitude - med) / robust_sigma > config.mad_zscore;
    } else {
      // All shifts nearly identical: only flag clear multiples of the median.
      is_outlier = med > 1e-12 && magnitude > config.degenerate_ratio * med;
    }
    if (is_outlier) out.push_back(p);
  }
  return out;
}

}  // namespace fchain::signal
