#include "signal/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "signal/fft.h"

namespace fchain::signal {

std::vector<double> periodogram(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  const double m = fchain::mean(xs);
  std::vector<double> centered(xs.begin(), xs.end());
  for (double& x : centered) x -= m;
  const auto spectrum = fftReal(centered);
  const std::size_t half = spectrum.size() / 2;
  std::vector<double> power(half + 1);
  for (std::size_t k = 0; k <= half; ++k) power[k] = std::norm(spectrum[k]);
  return power;
}

std::optional<DominantPeriod> dominantPeriod(std::span<const double> xs,
                                             std::size_t min_period,
                                             std::size_t max_period) {
  if (xs.size() < 2 * min_period) return std::nullopt;
  const auto power = periodogram(xs);
  if (power.size() < 3) return std::nullopt;
  const double padded = static_cast<double>(nextPow2(xs.size()));

  double total = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) total += power[k];
  if (total <= 0.0) return std::nullopt;

  std::size_t best_bin = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    const double period = padded / static_cast<double>(k);
    if (period < static_cast<double>(min_period) ||
        period > static_cast<double>(max_period)) {
      continue;
    }
    if (best_bin == 0 || power[k] > power[best_bin]) best_bin = k;
  }
  if (best_bin == 0) return std::nullopt;

  DominantPeriod result;
  result.period = static_cast<std::size_t>(
      std::lround(padded / static_cast<double>(best_bin)));
  // Neighbouring bins share a leaked peak; count the 3-bin neighbourhood.
  double peak_power = power[best_bin];
  if (best_bin > 1) peak_power += power[best_bin - 1];
  if (best_bin + 1 < power.size()) peak_power += power[best_bin + 1];
  result.power_fraction = peak_power / total;
  return result;
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  const std::size_t n = xs.size();
  if (lag >= n || n < 2) return 0.0;
  const double m = fchain::mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - m;
    den += d * d;
    if (i + lag < n) num += d * (xs[i + lag] - m);
  }
  return den <= 0.0 ? 0.0 : num / den;
}

}  // namespace fchain::signal
