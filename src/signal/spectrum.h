// Spectral analysis helpers: periodogram and dominant-period detection.
//
// PRESS [12] (the online prediction model FChain builds on) has two modes:
// a *signature-driven* predictor for metrics with strong periodicity, and
// the state-driven Markov chain otherwise. The mode decision needs a power
// spectrum: if one period concentrates a large fraction of the (non-DC)
// energy, the metric has a repeating signature worth exploiting.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace fchain::signal {

/// One-sided periodogram of a (mean-removed, zero-padded) real signal:
/// power[k] is the squared magnitude of frequency bin k, k in [0, N/2].
std::vector<double> periodogram(std::span<const double> xs);

struct DominantPeriod {
  std::size_t period = 0;      ///< samples per cycle
  double power_fraction = 0.0; ///< bin power / total non-DC power
};

/// Finds the strongest periodic component with a period in
/// [min_period, max_period] samples. Returns nullopt when the signal is too
/// short or the band is empty.
std::optional<DominantPeriod> dominantPeriod(std::span<const double> xs,
                                             std::size_t min_period = 4,
                                             std::size_t max_period = 600);

/// Sample autocorrelation at the given lag (mean-removed, biased estimate).
double autocorrelation(std::span<const double> xs, std::size_t lag);

}  // namespace fchain::signal
