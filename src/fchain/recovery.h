// Warm restart for FChain processes (slave checkpointing + master incident
// replay).
//
// A slave's learned state is hours of online history; losing it to a crash
// means a blind re-calibration window during which faults pinpoint poorly
// (the paper's models must have "seen and learned" normal behaviour first).
// SlaveCheckpointer bounds that loss to zero: it journals every raw sample
// *before* it reaches the in-memory slave and periodically collapses the
// journal into a snapshot. recover() = load snapshot + replay journal
// through the same deterministic ingestAt path, so the rebuilt slave is
// bit-identical to one that never crashed.
//
// The crash-ordering invariants:
//   - journal-then-ingest: a sample is durable before it mutates state, so
//     a crash can lose at most the sample being written (torn tail), never
//     a sample the models already consumed;
//   - snapshot-then-truncate: checkpointNow() renames the new snapshot into
//     place before truncating the journal. A crash between the two leaves a
//     journal whose records are already inside the snapshot — replaying
//     them is value-safe (the duplicate path overwrites with equal values
//     and leaves the models untouched), never state-corrupting.
#pragma once

#include <optional>
#include <string>

#include "fchain/master.h"
#include "fchain/slave.h"
#include "persist/journal.h"

namespace fchain::core {

struct CheckpointPolicy {
  /// Auto-checkpoint cadence in *sample* time (deterministic, unlike wall
  /// time): when an ingested timestamp is this far past the last checkpoint,
  /// the journal is collapsed into a fresh snapshot.
  TimeSec snapshot_interval_sec = 600;
  /// Construction immediately checkpoints the wrapped slave, replacing any
  /// snapshot + journal already in the directory. When that persisted state
  /// extends further in sample time than the wrapped slave — i.e. the slave
  /// was NOT rebuilt from it via recover() — the overwrite would permanently
  /// destroy a crashed slave's learned history, so the constructor throws
  /// instead. Set true to discard the old state deliberately (e.g. a
  /// config change that invalidates it).
  bool discard_unrecovered_state = false;
};

class SlaveCheckpointer {
 public:
  /// Wraps a live slave (components already registered). Immediately writes
  /// a checkpoint, so `dir` always holds a consistent snapshot + journal
  /// pair from construction on. Epoch numbering continues from any snapshot
  /// already in `dir`. Throws std::runtime_error when `dir` holds persisted
  /// state the wrapped slave does not carry — wrap the result of recover()
  /// (or set CheckpointPolicy::discard_unrecovered_state) instead of
  /// silently destroying a crashed slave's learned history.
  SlaveCheckpointer(FChainSlave& slave, std::string dir,
                    CheckpointPolicy policy = {});

  /// Journals the raw sample, then feeds it to the slave (see the ordering
  /// invariants above). Auto-checkpoints per CheckpointPolicy.
  void ingestAt(ComponentId id, TimeSec t,
                const std::array<double, kMetricCount>& sample);

  /// Convenience: ingest at the component's current series end.
  void ingest(ComponentId id, const std::array<double, kMetricCount>& sample);

  /// Snapshots the slave's current state (atomic rename) and truncates the
  /// journal to start a new epoch.
  void checkpointNow();

  std::uint64_t epoch() const { return epoch_; }
  std::size_t journaledSinceSnapshot() const;
  std::string snapshotPath() const;
  std::string journalPath() const;

  /// True when `dir` holds persisted state for `host` (snapshot or journal).
  static bool hasState(const std::string& dir, HostId host);

  struct Recovered {
    FChainSlave slave;
    /// Epoch of the snapshot that was restored (0 = no snapshot, journal
    /// replayed into a fresh slave).
    std::uint64_t epoch = 0;
    /// Journal records replayed on top of the snapshot.
    std::size_t replayed = 0;
    /// False when the journal ended in a torn record (the expected crash
    /// signature) — the valid prefix was still replayed.
    bool journal_clean = true;
  };

  /// Rebuilds the slave persisted in `dir`: snapshot restore + full journal
  /// replay. `config` must match the crashed slave's config. Throws
  /// persist::CorruptDataError when the snapshot or a journal header is
  /// damaged (a torn journal *tail* is tolerated, not an error).
  static Recovered recover(const std::string& dir, HostId host,
                           FChainConfig config = {});

 private:
  TimeSec sampleClock() const;

  FChainSlave& slave_;
  std::string dir_;
  CheckpointPolicy policy_;
  std::uint64_t epoch_ = 0;
  std::optional<persist::SampleJournalWriter> journal_;
  TimeSec last_checkpoint_end_ = 0;
};

/// One incident re-run after a master restart.
struct RerunIncident {
  std::uint64_t id = 0;  ///< original journal id of the interrupted incident
  std::vector<ComponentId> components;
  TimeSec violation_time = 0;
  PinpointResult result;
};

/// Re-runs every localization the journal recorded as started but never
/// completed (a master crash mid-incident), in original start order, and
/// marks each done. The master's slaves must be registered and recovered
/// first. Safe when the same journal is attached to the master via
/// setIncidentJournal(): each re-run then also journals its own complete
/// start/done pair.
std::vector<RerunIncident> rerunPendingIncidents(
    FChainMaster& master, persist::IncidentJournal& journal);

}  // namespace fchain::core
