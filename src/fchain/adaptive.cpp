#include "fchain/adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace fchain::core {

namespace {

/// Normalized drift of a stretch: |OLS slope| x length over the stretch's
/// own robust sigma. Scale-invariant, so a collapsed-but-locally-flat
/// regime and a healthy regime compare on equal terms.
double normalizedDrift(std::span<const double> xs) {
  double sigma = fchain::medianAbsDeviation(xs) * 1.4826;
  if (sigma < 1e-9) sigma = std::max(1e-9, fchain::stddev(xs));
  return std::fabs(fchain::slope(xs)) * static_cast<double>(xs.size()) /
         sigma;
}

/// True when the stretch of `series` from `from` up to `onset` is a normal
/// baseline. Its normalized drift is compared against the normalized drift
/// this metric shows on same-length stretches of history taken well before
/// the violation: ambient workload drifts the same *relative* amount
/// regardless of diurnal phase, whereas the tail of an in-progress fault
/// drifts many of its own (collapsed-regime) sigmas.
bool quietBaselineBefore(const TimeSeries& series, TimeSec from, TimeSec onset,
                         double drift_sigmas) {
  // Trim a guard gap before the onset: the rollback estimate can land a few
  // seconds late, and even two manifestation samples at the end of the
  // segment would dominate its OLS slope.
  const auto segment = series.window(from, onset - 8);
  if (segment.size() < 10) return false;  // no baseline to speak of
  const double drift = normalizedDrift(segment);

  // Reference stretches end 600 s before the window so a slowly
  // manifesting fault cannot contaminate its own yardstick.
  const auto len = static_cast<TimeSec>(segment.size());
  std::vector<double> reference;
  for (TimeSec start = from - 1500; start + len <= from - 600;
       start += len / 2 + 1) {
    const auto hist = series.window(start, start + len);
    if (hist.size() == segment.size()) {
      reference.push_back(normalizedDrift(hist));
    }
  }
  double allowance = drift_sigmas;
  if (reference.size() >= 4) {
    allowance = std::max(allowance, 1.8 * fchain::percentile(reference, 90.0));
  }
  return drift <= allowance;
}

}  // namespace

AdaptiveResult localizeRecordAdaptive(
    const sim::RunRecord& record, const netdep::DependencyGraph* dependencies,
    const FChainConfig& config, const AdaptiveWindowConfig& adaptive) {
  AdaptiveResult out;
  if (!record.violation_time.has_value() || adaptive.ladder.empty()) {
    return out;
  }
  const TimeSec tv = *record.violation_time;

  // The fluctuation models are window-independent; replay them once.
  std::vector<NormalFluctuationModel> models;
  models.reserve(record.metrics.size());
  for (const auto& series : record.metrics) {
    models.push_back(replayModel(series, tv + 1, config.predictor));
  }

  std::vector<ComponentFinding> findings;
  for (std::size_t rung = 0; rung < adaptive.ladder.size(); ++rung) {
    const TimeSec window = adaptive.ladder[rung];
    out.chosen_window = window;
    out.rungs_tried = rung + 1;

    FChainConfig rung_config = config;
    rung_config.lookback_sec = window;
    AbnormalChangeSelector selector(rung_config);

    findings.clear();
    for (ComponentId id = 0; id < record.metrics.size(); ++id) {
      if (auto finding = selector.analyzeComponent(id, record.metrics[id],
                                                   models[id], tv)) {
        findings.push_back(std::move(*finding));
      }
    }

    const bool last_rung = rung + 1 == adaptive.ladder.size();
    if (findings.empty()) {
      if (last_rung) break;
      continue;  // nothing visible yet: manifestation predates the window
    }
    const auto& earliest_finding =
        *std::min_element(findings.begin(), findings.end(),
                          [](const auto& a, const auto& b) {
                            return a.onset < b.onset;
                          });
    const TimeSec earliest = earliest_finding.onset;
    const TimeSec edge =
        tv - window +
        static_cast<TimeSec>(adaptive.edge_fraction *
                             static_cast<double>(window));
    if (earliest <= edge && !last_rung) {
      continue;  // onset pinned at the window edge: likely truncated
    }
    // The earliest finding must sit on a quiet baseline; a drifting one
    // means this window only sees the tail of a longer manifestation.
    const auto& earliest_metric =
        *std::min_element(earliest_finding.metrics.begin(),
                          earliest_finding.metrics.end(),
                          [](const auto& a, const auto& b) {
                            return a.onset < b.onset;
                          });
    const auto& series =
        record.metrics[earliest_finding.component].of(earliest_metric.metric);
    if (!last_rung &&
        !quietBaselineBefore(series, tv - window, earliest,
                             adaptive.quiet_drift_sigmas)) {
      continue;
    }

    IntegratedPinpointer pinpointer(rung_config);
    out.result = pinpointer.pinpoint(std::move(findings),
                                     record.metrics.size(), dependencies);
    return out;
  }

  // Ladder exhausted: analyze with the widest window regardless.
  FChainConfig final_config = config;
  final_config.lookback_sec = adaptive.ladder.back();
  IntegratedPinpointer pinpointer(final_config);
  out.result = pinpointer.pinpoint(std::move(findings), record.metrics.size(),
                                   dependencies);
  return out;
}

}  // namespace fchain::core
