// Server half of the wire protocol: serves one FChainSlave over a socket.
//
// SlaveService owns the listener and a single live connection (the master;
// a newer connection simply replaces the old one — the master reconnects,
// it never fans multiple sockets at one slave) and dispatches decoded
// frames:
//
//   Hello                -> version check, then HelloReply{host,
//                           identity hash, component claims}
//   AnalyzeBatchRequest  -> FChainSlave::analyzeBatch (after the optional
//                           crash-drill delay, see analyze_delay_ms)
//   IngestRequest        -> SlaveCheckpointer::ingestAt when checkpointing
//                           (journal-then-ingest: the sample is durable
//                           before the reply goes out), else the raw slave
//   ListComponentsRequest-> the slave's component list
//   Shutdown             -> stops the serve loop
//
// A frame that fails CRC/decode gets an Error{BadRequest} reply (carrying
// the byte-offset message) and the connection is closed — a stream that
// delivered damage cannot be trusted to frame the next message. A torn
// frame or peer death just closes the connection; the master's
// SocketEndpoint retries through its reconnect path.
//
// connectSlave() is the master-side registration glue: handshake, claim the
// slave id in the SlaveRegistry (rejecting split-brain), then register the
// endpoint with the master under the handshake's component claims.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "fchain/master.h"
#include "fchain/recovery.h"
#include "fchain/slave.h"
#include "obs/metrics.h"
#include "runtime/slave_registry.h"
#include "runtime/socket.h"
#include "runtime/socket_endpoint.h"

namespace fchain::core {

struct SlaveServiceConfig {
  runtime::SocketAddress listen;
  /// Deadline for completing one frame read / reply write once the poll
  /// loop saw the connection readable.
  double io_timeout_ms = 10'000.0;
  /// Crash-drill hook: sleep this long before serving each analyze batch,
  /// so a drill can kill -9 the process deterministically mid-localization.
  /// 0 (the default) disables it.
  double analyze_delay_ms = 0.0;
  /// Metric registry for the server-side runtime.socket.* counters;
  /// nullptr uses the process-global obs::metrics().
  obs::MetricRegistry* registry = nullptr;
};

class SlaveService {
 public:
  /// The slave (and checkpointer, when given) must outlive the service.
  /// When `checkpointer` is non-null every ingest RPC goes through it, so
  /// a kill -9 at any moment loses at most the in-flight sample. Throws
  /// std::runtime_error when the listen address cannot be bound.
  SlaveService(FChainSlave& slave, SlaveServiceConfig config,
               SlaveCheckpointer* checkpointer = nullptr);
  ~SlaveService();
  SlaveService(const SlaveService&) = delete;
  SlaveService& operator=(const SlaveService&) = delete;

  /// Serves on a background thread.
  void start();
  /// Blocking serve loop (the daemon's main thread) — returns after stop()
  /// or a Shutdown frame.
  void run();
  void stop();

  /// Bound address (tcp port 0 resolved to the kernel-assigned port).
  const runtime::SocketAddress& address() const {
    return listener_.address();
  }
  std::uint64_t identityHash() const;

 private:
  void serveConnection();
  /// Decodes and dispatches one frame; false closes the connection.
  bool handleFrame(const std::vector<std::uint8_t>& frame);
  bool reply(const std::vector<std::uint8_t>& frame);

  FChainSlave& slave_;
  SlaveServiceConfig config_;
  SlaveCheckpointer* checkpointer_;
  runtime::Listener listener_;
  runtime::Socket conn_;
  std::atomic<bool> stop_{false};
  std::thread thread_;

  obs::Counter& metric_connects_;
  obs::Counter& metric_frames_tx_;
  obs::Counter& metric_frames_rx_;
  obs::Counter& metric_crc_errors_;
  obs::Counter& metric_torn_frames_;
};

/// Master-side registration over the wire: forces a connect + handshake,
/// claims (slave id, identity hash) in `registry` — throwing
/// std::invalid_argument when a different live identity already holds the
/// id (split-brain guard) — and registers the endpoint with the master
/// under the handshake's component claims. Throws std::runtime_error when
/// the slave is unreachable. Returns the handshake identity hash.
std::uint64_t connectSlave(FChainMaster& master,
                           runtime::SlaveRegistry& registry,
                           std::shared_ptr<runtime::SocketEndpoint> endpoint);

}  // namespace fchain::core
