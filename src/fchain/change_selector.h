// Abnormal change point selection (paper §II-B).
//
// Inside the look-back window [tv - W, tv] the selector:
//   1. smooths the raw samples and runs CUSUM + bootstrap change point
//      detection — this finds *many* change points on a fluctuating metric;
//   2. keeps only change-magnitude outliers (the PAL pre-filter);
//   3. keeps only outliers whose observed prediction error exceeds the
//      *expected* prediction error — the burstiness of the +-Q window around
//      the point, synthesized by FFT high-pass filtering (the predictability
//      test that distinguishes fault manifestation from normal workload
//      fluctuation);
//   4. rolls the earliest surviving point back through preceding change
//      points with similar tangents to land on the onset of the
//      manifestation;
//   5. reports, per component, the earliest onset across metrics plus the
//      trend direction and the set of fault-related metrics.
#pragma once

#include <optional>
#include <vector>

#include "common/time_series.h"
#include "fchain/config.h"
#include "fchain/fluctuation_model.h"

namespace fchain::core {

struct MetricFinding {
  MetricKind metric = MetricKind::CpuUsage;
  TimeSec onset = 0;          ///< rolled-back start of the abnormal change
  TimeSec change_point = 0;   ///< the selected abnormal change point itself
  Trend trend = Trend::Flat;  ///< direction of the level shift
  double prediction_error = 0.0;
  double expected_error = 0.0;
};

struct ComponentFinding {
  ComponentId component = kNoComponent;
  TimeSec onset = 0;          ///< earliest abnormal onset across metrics
  Trend trend = Trend::Flat;  ///< trend of the earliest metric finding
  std::vector<MetricFinding> metrics;
};

class AbnormalChangeSelector {
 public:
  explicit AbnormalChangeSelector(FChainConfig config = {})
      : config_(std::move(config)) {}

  const FChainConfig& config() const { return config_; }

  /// Analyzes one metric of one component. `errors` is the slave's online
  /// prediction error series for the same metric. Returns the finding when
  /// an abnormal change survives all filters.
  std::optional<MetricFinding> analyzeMetric(MetricKind kind,
                                             const TimeSeries& series,
                                             const TimeSeries& errors,
                                             TimeSec violation_time) const;

  /// Analyzes all metrics of a component; empty optional when the component
  /// shows no abnormal change in the look-back window.
  std::optional<ComponentFinding> analyzeComponent(
      ComponentId id, const MetricSeries& series,
      const NormalFluctuationModel& model, TimeSec violation_time) const;

 private:
  FChainConfig config_;
};

}  // namespace fchain::core
