#include "fchain/master.h"

namespace fchain::core {

PinpointResult FChainMaster::localize(
    const std::vector<ComponentId>& components,
    TimeSec violation_time) const {
  std::vector<ComponentFinding> findings;
  for (ComponentId id : components) {
    for (const FChainSlave* slave : slaves_) {
      if (!slave->monitors(id)) continue;
      if (auto finding = slave->analyze(id, violation_time)) {
        findings.push_back(std::move(*finding));
      }
      break;
    }
  }
  return pinpointer_.pinpoint(std::move(findings), components.size(),
                              &dependencies_);
}

PinpointResult FChainMaster::localizeAndValidate(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    const sim::Simulation& snapshot, const ValidationConfig& validation) const {
  PinpointResult result = localize(components, violation_time);
  if (result.external_factor || result.pinpointed.empty()) return result;
  OnlineValidator validator(validation);
  result.pinpointed = validator.validate(snapshot, result);
  return result;
}

}  // namespace fchain::core
