#include "fchain/master.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "runtime/worker_pool.h"

namespace fchain::core {

namespace {

using runtime::EndpointStatus;
using runtime::HealthState;

/// Salt stream for discovery-time backoff; keeps discovery retries on their
/// own deterministic jitter sequence, distinct from analysis retries.
constexpr std::uint64_t kDiscoverySalt = 0xd15c0ull;

}  // namespace

FChainMaster::~FChainMaster() = default;

void FChainMaster::addEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components,
    runtime::EndpointHealth health) {
  const std::size_t index = endpoints_.size();
  for (ComponentId id : components) {
    const auto [it, inserted] = routes_.emplace(id, index);
    if (!inserted) {
      throw std::invalid_argument(
          "component " + std::to_string(id) +
          " is already monitored by another registered slave");
    }
  }
  endpoints_.push_back({std::move(endpoint), health,
                        std::make_unique<std::mutex>()});
}

void FChainMaster::registerSlave(FChainSlave* slave) {
  if (slave == nullptr) {
    throw std::invalid_argument("cannot register a null slave");
  }
  if (!registered_.insert(slave).second) {
    throw std::invalid_argument("slave registered twice");
  }
  auto endpoint = std::make_shared<runtime::LocalEndpoint>(slave);
  addEndpoint(std::move(endpoint), slave->components(),
              runtime::EndpointHealth(retry_.degraded_after,
                                      retry_.down_after));
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  // Discovery goes through the same retry/health/stats machinery as the
  // analysis path: attempts are counted, retries are paced by the backoff
  // schedule, and the failure history carries into the endpoint's initial
  // health — a flaky slave no longer gets hammered invisibly.
  runtime::EndpointHealth health(retry_.degraded_after, retry_.down_after);
  MasterRuntimeStats local;
  runtime::ComponentListReply reply;
  const int attempts = std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ++local.requests;
    if (attempt > 0) {
      ++local.retries;
      local.simulated_backoff_ms += runtime::retryDelayMs(
          retry_, attempt - 1,
          mixSeed(kDiscoverySalt, static_cast<std::uint64_t>(endpoints_.size()),
                  static_cast<std::uint64_t>(attempt)));
    }
    reply = endpoint->listComponents();
    if (reply.status == EndpointStatus::Ok) {
      health.recordSuccess();
      break;
    }
    health.recordFailure();
  }
  if (reply.status != EndpointStatus::Ok) {
    ++local.failures;
    mergeStats(local);
    registered_.erase(endpoint.get());
    throw std::runtime_error(
        std::string("slave discovery failed after retries: ") +
        std::string(runtime::endpointStatusName(reply.status)));
  }
  mergeStats(local);
  addEndpoint(std::move(endpoint), reply.components, health);
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  addEndpoint(std::move(endpoint), components,
              runtime::EndpointHealth(retry_.degraded_after,
                                      retry_.down_after));
}

void FChainMaster::setWorkerThreads(int threads) {
  worker_threads_ = std::max(0, threads);
  pool_.reset();  // rebuilt lazily at the next parallel localize
}

std::vector<HealthState> FChainMaster::endpointHealth() const {
  std::vector<HealthState> states;
  states.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) states.push_back(ep.health.state());
  return states;
}

MasterRuntimeStats FChainMaster::runtimeStats() const {
  MasterRuntimeStats stats;
  stats.requests = metric_requests_.value();
  stats.retries = metric_retries_.value();
  stats.failures = metric_failures_.value();
  stats.simulated_backoff_ms = metric_backoff_ms_.value();
  return stats;
}

void FChainMaster::mergeStats(const MasterRuntimeStats& delta) {
  metric_requests_.add(delta.requests);
  metric_retries_.add(delta.retries);
  metric_failures_.add(delta.failures);
  metric_backoff_ms_.add(delta.simulated_backoff_ms);
}

PinpointResult FChainMaster::localize(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  FCHAIN_SPAN_VAR(span, "master.localize");
  span.arg("components", static_cast<std::int64_t>(components.size()));
  const std::uint64_t start_us = obs::tracer().now();
  PinpointResult result =
      worker_threads_ <= 0 ? localizeSerial(components, violation_time)
                           : localizeParallel(components, violation_time);
  // Guarded difference: an injected logical clock may not be monotonic.
  const std::uint64_t end_us = obs::tracer().now();
  metric_localize_ms_.observe(
      end_us >= start_us ? static_cast<double>(end_us - start_us) / 1000.0
                         : 0.0);
  return result;
}

PinpointResult FChainMaster::localizeSerial(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  FCHAIN_SPAN("master.serial");
  std::vector<ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  std::size_t analyzed = 0;
  MasterRuntimeStats local;

  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) {
      unanalyzed.push_back(id);
      continue;
    }
    Endpoint& ep = endpoints_[route->second];
    std::lock_guard<std::mutex> endpoint_lock(*ep.lock);
    // A down endpoint gets one probe instead of the full retry budget, so a
    // dead slave cannot stall every localization — yet can still recover.
    const int attempts = ep.health.state() == HealthState::Down
                             ? 1
                             : std::max(1, retry_.max_attempts);
    bool answered = false;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      runtime::AnalyzeRequest request;
      request.component = id;
      request.violation_time = violation_time;
      request.deadline_ms = retry_.request_deadline_ms;
      ++local.requests;
      if (attempt > 0) {
        ++local.retries;
        local.simulated_backoff_ms += runtime::retryDelayMs(
            retry_, attempt - 1,
            mixSeed(static_cast<std::uint64_t>(violation_time), id,
                    static_cast<std::uint64_t>(attempt)));
      }
      runtime::AnalyzeReply reply = ep.endpoint->analyze(request);
      if (reply.status == EndpointStatus::Ok) {
        ep.health.recordSuccess();
        answered = true;
        ++analyzed;
        if (reply.finding.has_value()) {
          findings.push_back(std::move(*reply.finding));
        }
        break;
      }
      ep.health.recordFailure();
    }
    if (!answered) {
      ++local.failures;
      unanalyzed.push_back(id);
    }
  }
  mergeStats(local);

  PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), components.size(), &dependencies_, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

void FChainMaster::runBatchJob(BatchJob& job, TimeSec violation_time) {
  FCHAIN_SPAN_VAR(span, "master.batch");
  span.arg("n", static_cast<std::int64_t>(job.ids.size()));
  Endpoint& ep = endpoints_[job.endpoint_index];
  // Hold the endpoint for the whole retry sequence: requests to one slave
  // stay strictly ordered even when other localize() calls run in parallel.
  std::lock_guard<std::mutex> endpoint_lock(*ep.lock);
  const int attempts = ep.health.state() == HealthState::Down
                           ? 1
                           : std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    runtime::AnalyzeBatchRequest request;
    request.components = job.ids;
    request.violation_time = violation_time;
    request.deadline_ms = retry_.request_deadline_ms;
    ++job.stats.requests;
    if (attempt > 0) {
      ++job.stats.retries;
      // Same seeding scheme as the serial path; the batch's backoff is
      // salted by its first component so the jitter sequence stays
      // deterministic in (violation_time, routing), never in scheduling.
      job.stats.simulated_backoff_ms += runtime::retryDelayMs(
          retry_, attempt - 1,
          mixSeed(static_cast<std::uint64_t>(violation_time), job.ids.front(),
                  static_cast<std::uint64_t>(attempt)));
    }
    runtime::AnalyzeBatchReply reply = ep.endpoint->analyzeBatch(request);
    if (reply.status == EndpointStatus::Ok &&
        reply.findings.size() == job.ids.size()) {
      ep.health.recordSuccess();
      job.findings = std::move(reply.findings);
      job.answered = true;
      return;
    }
    ep.health.recordFailure();
  }
  job.stats.failures += job.ids.size();
}

PinpointResult FChainMaster::localizeParallel(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  // Group components by slave, preserving caller order within each group:
  // one batch job per endpoint that monitors anything in this application.
  std::vector<BatchJob> jobs;
  std::map<std::size_t, std::size_t> job_of_endpoint;
  std::vector<ComponentId> unrouted;
  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) {
      unrouted.push_back(id);
      continue;
    }
    const auto [it, inserted] =
        job_of_endpoint.emplace(route->second, jobs.size());
    if (inserted) {
      jobs.emplace_back();
      jobs.back().endpoint_index = route->second;
    }
    jobs[it->second].ids.push_back(id);
  }

  if (pool_ == nullptr && worker_threads_ >= 1) {
    pool_ = std::make_unique<runtime::WorkerPool>(worker_threads_);
  }
  {
    FCHAIN_SPAN_VAR(fanout, "master.fanout");
    fanout.arg("jobs", static_cast<std::int64_t>(jobs.size()));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (BatchJob& job : jobs) {
      tasks.push_back([this, &job, violation_time] {
        runBatchJob(job, violation_time);
      });
    }
    pool_->run(std::move(tasks));
    // The fan-out is a barrier, so the pool queue must be empty again;
    // recording the gauge (instead of asserting) keeps a leak visible in a
    // metric snapshot even in release builds.
    metric_pool_pending_.set(static_cast<double>(pool_->pendingCount()));
  }

  FCHAIN_SPAN("master.merge");
  // Deterministic merge: walk the caller's component order and pull each
  // result from its job slot, exactly reproducing the serial path's
  // findings order. Stats merge job-by-job in first-appearance order so
  // even the floating-point backoff sum is schedule-independent.
  std::map<ComponentId, const std::optional<ComponentFinding>*> slot_of;
  for (const BatchJob& job : jobs) {
    if (!job.answered) continue;
    for (std::size_t i = 0; i < job.ids.size(); ++i) {
      slot_of.emplace(job.ids[i], &job.findings[i]);
    }
  }
  std::vector<ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed = std::move(unrouted);
  std::size_t analyzed = 0;
  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) continue;  // already in unanalyzed
    const auto slot = slot_of.find(id);
    if (slot == slot_of.end()) {
      unanalyzed.push_back(id);
      continue;
    }
    ++analyzed;
    if (slot->second->has_value()) findings.push_back(**slot->second);
  }
  for (const BatchJob& job : jobs) mergeStats(job.stats);

  PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), components.size(), &dependencies_, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

PinpointResult FChainMaster::localizeAndValidate(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    const sim::Simulation& snapshot, const ValidationConfig& validation) {
  PinpointResult result = localize(components, violation_time);
  if (result.external_factor || result.pinpointed.empty()) return result;
  FCHAIN_SPAN("master.validate");
  OnlineValidator validator(validation);
  result.pinpointed = validator.validate(snapshot, result);
  return result;
}

}  // namespace fchain::core
