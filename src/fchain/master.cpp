#include "fchain/master.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fchain::core {

namespace {

using runtime::EndpointStatus;
using runtime::HealthState;

}  // namespace

void FChainMaster::addEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  const std::size_t index = endpoints_.size();
  for (ComponentId id : components) {
    const auto [it, inserted] = routes_.emplace(id, index);
    if (!inserted) {
      throw std::invalid_argument(
          "component " + std::to_string(id) +
          " is already monitored by another registered slave");
    }
  }
  endpoints_.push_back(
      {std::move(endpoint),
       runtime::EndpointHealth(retry_.degraded_after, retry_.down_after)});
}

void FChainMaster::registerSlave(FChainSlave* slave) {
  if (slave == nullptr) {
    throw std::invalid_argument("cannot register a null slave");
  }
  if (!registered_.insert(slave).second) {
    throw std::invalid_argument("slave registered twice");
  }
  auto endpoint = std::make_shared<runtime::LocalEndpoint>(slave);
  addEndpoint(std::move(endpoint), slave->components());
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  runtime::ComponentListReply reply;
  for (int attempt = 0; attempt < std::max(1, retry_.max_attempts);
       ++attempt) {
    reply = endpoint->listComponents();
    if (reply.status == EndpointStatus::Ok) break;
  }
  if (reply.status != EndpointStatus::Ok) {
    registered_.erase(endpoint.get());
    throw std::runtime_error(
        std::string("slave discovery failed after retries: ") +
        std::string(runtime::endpointStatusName(reply.status)));
  }
  addEndpoint(std::move(endpoint), reply.components);
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  addEndpoint(std::move(endpoint), components);
}

std::vector<HealthState> FChainMaster::endpointHealth() const {
  std::vector<HealthState> states;
  states.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) states.push_back(ep.health.state());
  return states;
}

PinpointResult FChainMaster::localize(
    const std::vector<ComponentId>& components,
    TimeSec violation_time) const {
  std::vector<ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  std::size_t analyzed = 0;

  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) {
      unanalyzed.push_back(id);
      continue;
    }
    Endpoint& ep = endpoints_[route->second];
    // A down endpoint gets one probe instead of the full retry budget, so a
    // dead slave cannot stall every localization — yet can still recover.
    const int attempts = ep.health.state() == HealthState::Down
                             ? 1
                             : std::max(1, retry_.max_attempts);
    bool answered = false;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      runtime::AnalyzeRequest request;
      request.component = id;
      request.violation_time = violation_time;
      request.deadline_ms = retry_.request_deadline_ms;
      ++stats_.requests;
      if (attempt > 0) {
        ++stats_.retries;
        stats_.simulated_backoff_ms += runtime::retryDelayMs(
            retry_, attempt - 1,
            mixSeed(static_cast<std::uint64_t>(violation_time), id,
                    static_cast<std::uint64_t>(attempt)));
      }
      runtime::AnalyzeReply reply = ep.endpoint->analyze(request);
      if (reply.status == EndpointStatus::Ok) {
        ep.health.recordSuccess();
        answered = true;
        ++analyzed;
        if (reply.finding.has_value()) {
          findings.push_back(std::move(*reply.finding));
        }
        break;
      }
      ep.health.recordFailure();
    }
    if (!answered) {
      ++stats_.failures;
      unanalyzed.push_back(id);
    }
  }

  PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), components.size(), &dependencies_, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

PinpointResult FChainMaster::localizeAndValidate(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    const sim::Simulation& snapshot, const ValidationConfig& validation) const {
  PinpointResult result = localize(components, violation_time);
  if (result.external_factor || result.pinpointed.empty()) return result;
  OnlineValidator validator(validation);
  result.pinpointed = validator.validate(snapshot, result);
  return result;
}

}  // namespace fchain::core
