#include "fchain/master.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "runtime/worker_pool.h"

namespace fchain::core {

namespace {

using runtime::EndpointStatus;
using runtime::HealthState;

/// Salt stream for discovery-time backoff; keeps discovery retries on their
/// own deterministic jitter sequence, distinct from analysis retries.
constexpr std::uint64_t kDiscoverySalt = 0xd15c0ull;

}  // namespace

FChainMaster::~FChainMaster() = default;

void FChainMaster::addEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components,
    runtime::EndpointHealth health) {
  const std::size_t index = endpoints_.size();
  for (ComponentId id : components) {
    const auto [it, inserted] = routes_.emplace(id, index);
    if (!inserted) {
      throw std::invalid_argument(
          "component " + std::to_string(id) +
          " is already monitored by another registered slave");
    }
  }
  endpoints_.push_back({std::move(endpoint), health,
                        std::make_shared<std::mutex>(),
                        runtime::CircuitBreaker(watchdog_.breaker_trip_after,
                                                watchdog_.breaker_probe_after)});
}

void FChainMaster::registerSlave(FChainSlave* slave) {
  if (slave == nullptr) {
    throw std::invalid_argument("cannot register a null slave");
  }
  if (!registered_.insert(slave).second) {
    throw std::invalid_argument("slave registered twice");
  }
  auto endpoint = std::make_shared<runtime::LocalEndpoint>(slave);
  addEndpoint(std::move(endpoint), slave->components(),
              runtime::EndpointHealth(retry_.degraded_after,
                                      retry_.down_after));
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  // Discovery goes through the same retry/health/stats machinery as the
  // analysis path: attempts are counted, retries are paced by the backoff
  // schedule, and the failure history carries into the endpoint's initial
  // health — a flaky slave no longer gets hammered invisibly.
  runtime::EndpointHealth health(retry_.degraded_after, retry_.down_after);
  MasterRuntimeStats local;
  runtime::ComponentListReply reply;
  const int attempts = std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ++local.requests;
    if (attempt > 0) {
      ++local.retries;
      local.simulated_backoff_ms += runtime::retryDelayMs(
          retry_, attempt - 1,
          mixSeed(kDiscoverySalt, static_cast<std::uint64_t>(endpoints_.size()),
                  static_cast<std::uint64_t>(attempt)));
    }
    reply = endpoint->listComponents();
    if (reply.status == EndpointStatus::Ok) {
      health.recordSuccess();
      break;
    }
    health.recordFailure();
  }
  if (reply.status != EndpointStatus::Ok) {
    ++local.failures;
    mergeStats(local);
    registered_.erase(endpoint.get());
    throw std::runtime_error(
        std::string("slave discovery failed after retries: ") +
        std::string(runtime::endpointStatusName(reply.status)));
  }
  mergeStats(local);
  addEndpoint(std::move(endpoint), reply.components, health);
}

void FChainMaster::registerEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("cannot register a null endpoint");
  }
  if (!registered_.insert(endpoint.get()).second) {
    throw std::invalid_argument("endpoint registered twice");
  }
  addEndpoint(std::move(endpoint), components,
              runtime::EndpointHealth(retry_.degraded_after,
                                      retry_.down_after));
}

void FChainMaster::setWorkerThreads(int threads) {
  worker_threads_ = std::max(0, threads);
  pool_.reset();  // rebuilt lazily at the next parallel localize
}

void FChainMaster::setWatchdog(runtime::WatchdogConfig config) {
  watchdog_ = config;
  for (Endpoint& ep : endpoints_) {
    ep.breaker = runtime::CircuitBreaker(config.breaker_trip_after,
                                         config.breaker_probe_after);
  }
}

void FChainMaster::recordOutcome(Endpoint& ep, bool ok) {
  const HealthState before = ep.health.state();
  if (ok) {
    ep.health.recordSuccess();
  } else {
    ep.health.recordFailure();
  }
  const HealthState after = ep.health.state();
  if (after == before) return;
  switch (after) {
    case HealthState::Healthy: metric_state_healthy_.add(1); break;
    case HealthState::Degraded: metric_state_degraded_.add(1); break;
    case HealthState::Down: metric_state_down_.add(1); break;
  }
}

std::vector<HealthState> FChainMaster::endpointHealth() const {
  std::vector<HealthState> states;
  states.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) states.push_back(ep.health.state());
  return states;
}

MasterRuntimeStats FChainMaster::runtimeStats() const {
  MasterRuntimeStats stats;
  stats.requests = metric_requests_.value();
  stats.retries = metric_retries_.value();
  stats.failures = metric_failures_.value();
  stats.simulated_backoff_ms = metric_backoff_ms_.value();
  stats.watchdog_trips = metric_watchdog_trips_.value();
  stats.breaker_opens = metric_breaker_opens_.value();
  stats.deadline_skips = metric_deadline_skips_.value();
  return stats;
}

void FChainMaster::mergeStats(const MasterRuntimeStats& delta) {
  metric_requests_.add(delta.requests);
  metric_retries_.add(delta.retries);
  metric_retries_total_.add(delta.retries);
  metric_failures_.add(delta.failures);
  metric_backoff_ms_.add(delta.simulated_backoff_ms);
  metric_watchdog_trips_.add(delta.watchdog_trips);
  metric_breaker_opens_.add(delta.breaker_opens);
  metric_deadline_skips_.add(delta.deadline_skips);
}

PinpointResult FChainMaster::localize(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  FCHAIN_SPAN_VAR(span, "master.localize");
  span.arg("components", static_cast<std::int64_t>(components.size()));
  // Journal the localization's *input* before any work: a crash anywhere
  // below leaves a pending entry that rerunPendingIncidents() can re-run.
  std::uint64_t incident_id = 0;
  if (incident_journal_ != nullptr) {
    incident_id = incident_journal_->logStart(components, violation_time);
  }
  Deadline deadline;
  if (watchdog_.localize_deadline_ms > 0.0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(
                       watchdog_.localize_deadline_ms));
  }
  const std::uint64_t start_us = obs::tracer().now();
  PinpointResult result =
      worker_threads_ <= 0
          ? localizeSerial(components, violation_time, deadline)
          : localizeParallel(components, violation_time, deadline);
  // Guarded difference: an injected logical clock may not be monotonic.
  const std::uint64_t end_us = obs::tracer().now();
  metric_localize_ms_.observe(
      end_us >= start_us ? static_cast<double>(end_us - start_us) / 1000.0
                         : 0.0);
  if (incident_journal_ != nullptr) incident_journal_->logDone(incident_id);
  return result;
}

PinpointResult FChainMaster::localizeSerial(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    Deadline deadline) {
  FCHAIN_SPAN("master.serial");
  std::vector<ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  std::size_t analyzed = 0;
  MasterRuntimeStats local;
  const bool use_watchdog = watchdog_.call_timeout_ms > 0.0;

  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) {
      unanalyzed.push_back(id);
      continue;
    }
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      // Out of wall-time budget: shed the rest of the application into
      // degraded-mode coverage instead of blowing the diagnosis SLO.
      ++local.deadline_skips;
      unanalyzed.push_back(id);
      continue;
    }
    Endpoint& ep = endpoints_[route->second];
    if (!ep.breaker.allowRequest()) {
      // Breaker open after repeated hangs: don't spend a full watchdog
      // timeout on this endpoint, route its component to degraded coverage.
      unanalyzed.push_back(id);
      continue;
    }
    // Without the watchdog the endpoint is locked across the whole retry
    // sequence (the reference behaviour). With it, each attempt locks
    // *inside* the sacrificial thread, so an abandoned call wedges only
    // that endpoint, never this coordinator loop.
    std::unique_lock<std::mutex> endpoint_lock;
    if (!use_watchdog) {
      endpoint_lock = std::unique_lock<std::mutex>(*ep.lock);
    }
    // A down endpoint gets one probe instead of the full retry budget, so a
    // dead slave cannot stall every localization — yet can still recover.
    const int attempts = ep.health.state() == HealthState::Down
                             ? 1
                             : std::max(1, retry_.max_attempts);
    bool answered = false;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      runtime::AnalyzeRequest request;
      request.component = id;
      request.violation_time = violation_time;
      request.deadline_ms = retry_.request_deadline_ms;
      ++local.requests;
      if (attempt > 0) {
        ++local.retries;
        local.simulated_backoff_ms += runtime::retryDelayMs(
            retry_, attempt - 1,
            mixSeed(static_cast<std::uint64_t>(violation_time), id,
                    static_cast<std::uint64_t>(attempt)));
      }
      runtime::AnalyzeReply reply;
      if (use_watchdog) {
        const auto endpoint = ep.endpoint;
        const auto lock = ep.lock;
        auto bounded = runtime::callWithWallTimeout(
            [endpoint, lock, request] {
              std::lock_guard<std::mutex> g(*lock);
              return endpoint->analyze(request);
            },
            watchdog_.call_timeout_ms);
        if (!bounded.has_value()) {
          // Hung call: abandon it *and* the rest of the retry budget —
          // more attempts against a wedged endpoint only burn the deadline.
          ++local.watchdog_trips;
          if (ep.breaker.recordTrip()) ++local.breaker_opens;
          recordOutcome(ep, false);
          break;
        }
        ep.breaker.recordCompletion();
        reply = std::move(*bounded);
      } else {
        reply = ep.endpoint->analyze(request);
      }
      if (reply.status == EndpointStatus::Ok) {
        recordOutcome(ep, true);
        answered = true;
        ++analyzed;
        if (reply.finding.has_value()) {
          findings.push_back(std::move(*reply.finding));
        }
        break;
      }
      recordOutcome(ep, false);
    }
    if (!answered) {
      ++local.failures;
      unanalyzed.push_back(id);
    }
  }
  mergeStats(local);

  PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), components.size(), &dependencies_, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

void FChainMaster::runBatchJob(BatchJob& job, TimeSec violation_time,
                               Deadline deadline) {
  FCHAIN_SPAN_VAR(span, "master.batch");
  span.arg("n", static_cast<std::int64_t>(job.ids.size()));
  Endpoint& ep = endpoints_[job.endpoint_index];
  if (!ep.breaker.allowRequest()) {
    // Breaker open after repeated hangs: the whole batch goes straight to
    // degraded-mode coverage (unanswered -> unanalyzed).
    return;
  }
  const bool use_watchdog = watchdog_.call_timeout_ms > 0.0;
  // Without the watchdog, hold the endpoint for the whole retry sequence:
  // requests to one slave stay strictly ordered even when other localize()
  // calls run in parallel. With it, each attempt locks inside the
  // sacrificial thread so an abandoned call cannot park this pool worker.
  std::unique_lock<std::mutex> endpoint_lock;
  if (!use_watchdog) {
    endpoint_lock = std::unique_lock<std::mutex>(*ep.lock);
  }
  const int attempts = ep.health.state() == HealthState::Down
                           ? 1
                           : std::max(1, retry_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (deadline && std::chrono::steady_clock::now() >= *deadline) {
      job.stats.deadline_skips += job.ids.size();
      return;
    }
    runtime::AnalyzeBatchRequest request;
    request.components = job.ids;
    request.violation_time = violation_time;
    request.deadline_ms = retry_.request_deadline_ms;
    ++job.stats.requests;
    if (attempt > 0) {
      ++job.stats.retries;
      // Same seeding scheme as the serial path; the batch's backoff is
      // salted by its first component so the jitter sequence stays
      // deterministic in (violation_time, routing), never in scheduling.
      job.stats.simulated_backoff_ms += runtime::retryDelayMs(
          retry_, attempt - 1,
          mixSeed(static_cast<std::uint64_t>(violation_time), job.ids.front(),
                  static_cast<std::uint64_t>(attempt)));
    }
    runtime::AnalyzeBatchReply reply;
    if (use_watchdog) {
      const auto endpoint = ep.endpoint;
      const auto lock = ep.lock;
      auto bounded = runtime::callWithWallTimeout(
          [endpoint, lock, request] {
            std::lock_guard<std::mutex> g(*lock);
            return endpoint->analyzeBatch(request);
          },
          watchdog_.call_timeout_ms);
      if (!bounded.has_value()) {
        ++job.stats.watchdog_trips;
        if (ep.breaker.recordTrip()) ++job.stats.breaker_opens;
        recordOutcome(ep, false);
        break;  // a wedged endpoint: stop burning the deadline on retries
      }
      ep.breaker.recordCompletion();
      reply = std::move(*bounded);
    } else {
      reply = ep.endpoint->analyzeBatch(request);
    }
    if (reply.status == EndpointStatus::Ok &&
        reply.findings.size() == job.ids.size()) {
      recordOutcome(ep, true);
      job.findings = std::move(reply.findings);
      job.answered = true;
      return;
    }
    recordOutcome(ep, false);
  }
  job.stats.failures += job.ids.size();
}

PinpointResult FChainMaster::localizeParallel(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    Deadline deadline) {
  // Group components by slave, preserving caller order within each group:
  // one batch job per endpoint that monitors anything in this application.
  std::vector<BatchJob> jobs;
  std::map<std::size_t, std::size_t> job_of_endpoint;
  std::vector<ComponentId> unrouted;
  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) {
      unrouted.push_back(id);
      continue;
    }
    const auto [it, inserted] =
        job_of_endpoint.emplace(route->second, jobs.size());
    if (inserted) {
      jobs.emplace_back();
      jobs.back().endpoint_index = route->second;
    }
    jobs[it->second].ids.push_back(id);
  }

  if (pool_ == nullptr && worker_threads_ >= 1) {
    pool_ = std::make_unique<runtime::WorkerPool>(worker_threads_);
  }
  {
    FCHAIN_SPAN_VAR(fanout, "master.fanout");
    fanout.arg("jobs", static_cast<std::int64_t>(jobs.size()));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs.size());
    for (BatchJob& job : jobs) {
      tasks.push_back([this, &job, violation_time, deadline] {
        runBatchJob(job, violation_time, deadline);
      });
    }
    pool_->run(std::move(tasks));
    // The fan-out is a barrier, so the pool queue must be empty again;
    // recording the gauge (instead of asserting) keeps a leak visible in a
    // metric snapshot even in release builds.
    metric_pool_pending_.set(static_cast<double>(pool_->pendingCount()));
  }

  FCHAIN_SPAN("master.merge");
  // Deterministic merge: walk the caller's component order and pull each
  // result from its job slot, exactly reproducing the serial path's
  // findings order. Stats merge job-by-job in first-appearance order so
  // even the floating-point backoff sum is schedule-independent.
  std::map<ComponentId, const std::optional<ComponentFinding>*> slot_of;
  for (const BatchJob& job : jobs) {
    if (!job.answered) continue;
    for (std::size_t i = 0; i < job.ids.size(); ++i) {
      slot_of.emplace(job.ids[i], &job.findings[i]);
    }
  }
  std::vector<ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed = std::move(unrouted);
  std::size_t analyzed = 0;
  for (ComponentId id : components) {
    const auto route = routes_.find(id);
    if (route == routes_.end()) continue;  // already in unanalyzed
    const auto slot = slot_of.find(id);
    if (slot == slot_of.end()) {
      unanalyzed.push_back(id);
      continue;
    }
    ++analyzed;
    if (slot->second->has_value()) findings.push_back(**slot->second);
  }
  for (const BatchJob& job : jobs) mergeStats(job.stats);

  PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), components.size(), &dependencies_, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

PinpointResult FChainMaster::localizeAndValidate(
    const std::vector<ComponentId>& components, TimeSec violation_time,
    const sim::Simulation& snapshot, const ValidationConfig& validation) {
  PinpointResult result = localize(components, violation_time);
  if (result.external_factor || result.pinpointed.empty()) return result;
  FCHAIN_SPAN("master.validate");
  OnlineValidator validator(validation);
  result.pinpointed = validator.validate(snapshot, result);
  return result;
}

}  // namespace fchain::core
